//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of the criterion API the workspace's
//! benches use: `Criterion`, benchmark groups, `bench_function` /
//! `bench_with_input`, `Bencher::iter` / `iter_batched`, `BenchmarkId`,
//! and the `criterion_group!` / `criterion_main!` macros. It measures
//! wall-clock time and reports the median per-iteration latency; it does
//! no statistical regression analysis.
//!
//! The per-benchmark measurement budget defaults to ~1 s and can be
//! overridden with the `CRITERION_MEASURE_MS` environment variable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a batched setup's cost relates to the routine (accepted for API
/// compatibility; all variants behave the same here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is small relative to the routine.
    SmallInput,
    /// Setup output is large relative to the routine.
    LargeInput,
    /// One setup per routine invocation.
    PerIteration,
}

/// A two-part benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

fn measure_budget() -> Duration {
    let ms = std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(1000);
    Duration::from_millis(ms.max(1))
}

/// Measures closures and prints their median per-iteration latency.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    /// Median nanoseconds per iteration of the last `iter`/`iter_batched`.
    median_ns: f64,
    iterations: u64,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Self {
            budget,
            median_ns: f64::NAN,
            iterations: 0,
        }
    }

    /// Benchmarks `routine`, timing each call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let mut samples = Vec::new();
        let start = Instant::now();
        loop {
            let t = Instant::now();
            black_box(routine());
            samples.push(t.elapsed().as_nanos() as f64);
            if start.elapsed() >= self.budget && samples.len() >= 10 {
                break;
            }
            if samples.len() >= 100_000 {
                break;
            }
        }
        self.record(samples);
    }

    /// Benchmarks `routine` on fresh inputs from `setup`; only the routine
    /// is timed.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut samples = Vec::new();
        let start = Instant::now();
        loop {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            samples.push(t.elapsed().as_nanos() as f64);
            if start.elapsed() >= self.budget && samples.len() >= 10 {
                break;
            }
            if samples.len() >= 100_000 {
                break;
            }
        }
        self.record(samples);
    }

    fn record(&mut self, mut samples: Vec<f64>) {
        samples.sort_by(|a, b| a.total_cmp(b));
        self.iterations = samples.len() as u64;
        self.median_ns = median_of_sorted(&samples);
    }
}

fn median_of_sorted(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

fn human_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} \u{b5}s", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark context handed to `criterion_group!` functions.
#[derive(Debug)]
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            budget: measure_budget(),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        println!(
            "{name:<50} time: [{}]   ({} samples)",
            human_ns(b.median_ns),
            b.iterations
        );
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is time-budgeted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.budget);
        f(&mut b, input);
        println!(
            "{:<50} time: [{}]   ({} samples)",
            format!("{}/{}", self.name, id),
            human_ns(b.median_ns),
            b.iterations
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_even_and_odd() {
        assert_eq!(median_of_sorted(&[1.0, 2.0, 4.0]), 2.0);
        assert_eq!(median_of_sorted(&[1.0, 3.0]), 2.0);
        assert!(median_of_sorted(&[]).is_nan());
    }

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_MEASURE_MS", "10");
        let mut b = Bencher::new(Duration::from_millis(10));
        b.iter(|| std::hint::black_box(2u64 + 2));
        assert!(b.median_ns >= 0.0);
        assert!(b.iterations >= 10);
        let mut b = Bencher::new(Duration::from_millis(10));
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iterations >= 10);
    }
}
