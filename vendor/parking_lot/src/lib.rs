//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides only [`Mutex`] with `parking_lot`'s poison-free `lock()`
//! signature, implemented over `std::sync::Mutex` (a poisoned lock is
//! recovered rather than propagated, matching `parking_lot`'s behaviour
//! of not poisoning at all).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// The guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a mutex.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Poisoning is
    /// transparently recovered.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
