//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the API surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over primitive
//! integer and float ranges. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic, fast, and statistically strong enough for
//! simulation and randomized-placement purposes. It is **not** the real
//! `rand` crate: streams differ from upstream `StdRng`, so only
//! self-consistency (same seed → same stream) may be relied upon.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Random number generators.
pub mod rngs {
    /// A deterministic, seedable generator (xoshiro256++).
    ///
    /// Stand-in for `rand::rngs::StdRng`; the output stream differs from
    /// upstream, but same-seed reproducibility holds.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: [u64; 4],
    }
}

use rngs::StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        Self {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }
}

/// The user-facing generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Convenience methods over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive primitive
    /// ranges).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(draw)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = ((rng.next_u64() as u128) % span) as $t;
                lo.wrapping_add(draw)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5f64..9.25);
            assert!((-2.5..9.25).contains(&f));
            let i = rng.gen_range(5u16..=5);
            assert_eq!(i, 5);
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }
}
