//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of the proptest API the workspace's
//! property tests use: the [`proptest!`] macro with optional
//! `#![proptest_config(...)]`, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`, [`strategy::Strategy`] with `prop_map`, range and
//! tuple strategies, [`strategy::Just`], [`prop_oneof!`], and
//! [`collection::vec`].
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs verbatim), and the default case count is 64 (overridable with
//! the `PROPTEST_CASES` environment variable) to keep offline CI snappy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// A strategy producing `Vec`s of values from `element`, with a
    /// length drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestCaseResult, TestRng};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use test_runner::ProptestConfig;

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (with formatted context) rather than panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // Not routed through format! — the stringified condition may
        // itself contain braces.
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Picks uniformly between several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        concat!(
                            "proptest case {}/{} failed: {}",
                            $(concat!("\n  ", stringify!($arg), " = {:?}")),+
                        ),
                        case + 1,
                        config.cases,
                        e,
                        $($arg),+
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(
            x in 1u32..=4,
            y in 10.0f64..20.0,
            z in 0usize..8,
        ) {
            prop_assert!((1..=4).contains(&x));
            prop_assert!((10.0..20.0).contains(&y));
            prop_assert!(z < 8, "z = {}", z);
        }

        #[test]
        fn tuples_and_vec_compose(
            pairs in crate::collection::vec((0u32..5, 0.0f64..1.0), 1..10),
        ) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 10);
            for (a, b) in &pairs {
                prop_assert!(*a < 5);
                prop_assert!((0.0..1.0).contains(b));
            }
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&v));
            prop_assert_ne!(v, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_cases_is_honoured(x in 0u64..1000) {
            // The body runs; the case count is checked implicitly by the
            // macro loop bound.
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn prop_map_transforms() {
        let strategy = (1u32..=3).prop_map(|v| v * 10);
        let mut rng = TestRng::deterministic("prop_map_transforms");
        for _ in 0..50 {
            let v = strategy.new_value(&mut rng);
            assert!([10, 20, 30].contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_reports_inputs() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 0u32..10) {
                prop_assert!(x < 5, "x too big: {}", x);
            }
        }
        inner();
    }
}
