//! The case-running machinery: configuration, RNG, and failure type.

use std::fmt;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases, overridable with the `PROPTEST_CASES` environment
    /// variable (upstream proptest defaults to 256; 64 keeps the offline
    /// suite snappy).
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self {
            cases: cases.max(1),
        }
    }
}

/// A failed property assertion (from `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The per-case result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic RNG driving value generation (xoshiro256++ seeded
/// from the test's name, so distinct tests explore distinct streams but
/// every run of one test is reproducible).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// A generator seeded deterministically from `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut s = h;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            state: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}
