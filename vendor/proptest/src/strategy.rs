//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type.
///
/// The subset of proptest's `Strategy` this workspace needs: generation
/// only — failing cases report their inputs instead of shrinking them.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, map }
    }
}

/// Boxes a strategy for use in heterogeneous collections (see
/// [`crate::prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(strategy)
}

impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

/// Uniformly picks one of several strategies per draw (see
/// [`crate::prop_oneof!`]).
pub struct Union<T: Debug> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: Debug> Union<T> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T: Debug> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + ((rng.next_u64() as u128 % span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident.$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
