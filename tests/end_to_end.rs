//! End-to-end integration: schedule → verify → simulate, for every
//! bundled workload under every scheduler.

use rstorm::prelude::*;
use rstorm::workloads::{clusters, micro, yahoo};

fn all_workloads() -> Vec<Topology> {
    vec![
        micro::linear_network_bound(),
        micro::diamond_network_bound(),
        micro::star_network_bound(),
        micro::linear_cpu_bound(),
        micro::diamond_cpu_bound(),
        micro::star_cpu_bound(),
        yahoo::page_load(),
        yahoo::processing(),
    ]
}

#[test]
fn rstorm_schedules_every_workload_without_violations() {
    let cluster = clusters::emulab_micro();
    for topology in all_workloads() {
        let plan = schedule_all(&RStormScheduler::new(), &[&topology], &cluster)
            .unwrap_or_else(|e| panic!("{}: {e}", topology.id()));
        let violations = verify_plan(&plan, &[&topology], &cluster);
        assert!(violations.is_empty(), "{}: {violations:?}", topology.id());
        let assignment = plan.assignment(topology.id().as_str()).unwrap();
        assert_eq!(assignment.len() as u32, topology.total_tasks());
    }
}

#[test]
fn every_scheduler_places_every_task() {
    let cluster = clusters::emulab_micro();
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(RStormScheduler::new()),
        Box::new(EvenScheduler::new()),
        Box::new(OfflineLinearizationScheduler::new()),
        Box::new(RandomScheduler::seeded(11)),
    ];
    for scheduler in &schedulers {
        for topology in all_workloads() {
            let plan = schedule_all(scheduler.as_ref(), &[&topology], &cluster)
                .unwrap_or_else(|e| panic!("{}/{}: {e}", scheduler.name(), topology.id()));
            assert_eq!(
                plan.assignment(topology.id().as_str()).unwrap().len() as u32,
                topology.total_tasks(),
                "{}/{}",
                scheduler.name(),
                topology.id()
            );
        }
    }
}

#[test]
fn simulation_flows_tuples_for_every_workload() {
    let cluster = clusters::emulab_micro();
    for topology in all_workloads() {
        let mut state = GlobalState::new(&cluster);
        let assignment = RStormScheduler::new()
            .schedule(&topology, &cluster, &mut state)
            .unwrap();
        let mut sim = Simulation::new(cluster.clone(), SimConfig::quick());
        sim.add_topology(&topology, &assignment);
        let report = sim.run();
        let throughput = report.steady_throughput(topology.id().as_str(), 1);
        assert!(
            throughput > 0.0,
            "{}: no tuples reached the sinks",
            topology.id()
        );
        assert!(report.totals.roots_completed > 0, "{}", topology.id());
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let cluster = clusters::emulab_micro();
    let run = || {
        let topology = micro::linear_network_bound();
        let mut state = GlobalState::new(&cluster);
        let assignment = RStormScheduler::new()
            .schedule(&topology, &cluster, &mut state)
            .unwrap();
        let mut sim = Simulation::new(cluster.clone(), SimConfig::quick());
        sim.add_topology(&topology, &assignment);
        let report = sim.run();
        (assignment, report.throughput["linear-net"].windows.clone())
    };
    let (a1, w1) = run();
    let (a2, w2) = run();
    assert_eq!(a1, a2, "scheduling must be deterministic");
    assert_eq!(w1, w2, "simulation must be deterministic");
}

#[test]
fn rstorm_uses_fewer_machines_than_default_on_cpu_bound_workloads() {
    // The Figure 9/10 headline: same throughput with roughly half the
    // machines.
    let cluster = clusters::emulab_micro();
    for topology in [micro::linear_cpu_bound(), micro::diamond_cpu_bound()] {
        let mut s1 = GlobalState::new(&cluster);
        let rstorm = RStormScheduler::new()
            .schedule(&topology, &cluster, &mut s1)
            .unwrap();
        let mut s2 = GlobalState::new(&cluster);
        let even = EvenScheduler::new()
            .schedule(&topology, &cluster, &mut s2)
            .unwrap();
        assert!(
            rstorm.used_nodes().len() + 3 <= even.used_nodes().len(),
            "{}: rstorm {} vs default {}",
            topology.id(),
            rstorm.used_nodes().len(),
            even.used_nodes().len()
        );
    }
}

#[test]
fn network_bound_throughput_favors_rstorm() {
    // The Figure 8 headline, as a coarse integration check (the precise
    // factors live in the bench harness and EXPERIMENTS.md).
    let cluster = clusters::emulab_micro();
    let topology = micro::linear_network_bound();

    let mut s1 = GlobalState::new(&cluster);
    let a1 = RStormScheduler::new()
        .schedule(&topology, &cluster, &mut s1)
        .unwrap();
    let mut sim = Simulation::new(cluster.clone(), SimConfig::quick());
    sim.add_topology(&topology, &a1);
    let rstorm = sim.run();

    let mut s2 = GlobalState::new(&cluster);
    let a2 = EvenScheduler::new()
        .schedule(&topology, &cluster, &mut s2)
        .unwrap();
    let mut sim = Simulation::new(cluster.clone(), SimConfig::quick());
    sim.add_topology(&topology, &a2);
    let even = sim.run();

    let r = rstorm.steady_throughput("linear-net", 2);
    let e = even.steady_throughput("linear-net", 2);
    assert!(r > 1.2 * e, "rstorm {r:.0} vs default {e:.0}");
    // And it does so while crossing the racks less.
    assert!(rstorm.inter_rack_mb < even.inter_rack_mb);
}
