//! Fast-engine / reference-engine parity: the dense-id, slab-pooled,
//! precomputed-routing `Simulation` must produce reports **identical**
//! to the string-keyed `ReferenceSimulation` on every bundled workload —
//! same totals, same per-window throughput, same latency bits, same
//! event count. Any hot-path "optimization" that changes a single event
//! ordering, RNG draw, or float-summation order fails here.

use rstorm::prelude::*;
use rstorm::workloads::cases::{fig8_cases, yahoo_cases};
use rstorm::workloads::{clusters, yahoo};
use std::sync::Arc;

fn schedule(topology: &Topology, cluster: &Cluster) -> Assignment {
    RStormScheduler::new()
        .schedule(topology, cluster, &mut GlobalState::new(cluster))
        .unwrap_or_else(|e| panic!("{}: {e}", topology.id()))
}

fn assert_parity(name: &str, build: impl Fn() -> (Simulation, ReferenceSimulation)) {
    let (fast, reference) = build();
    let fast_report = fast.run();
    let reference_report = reference.run();
    assert_eq!(
        fast_report, reference_report,
        "{name}: fast and reference engines disagree"
    );
    // The equality above deliberately excludes debug counters; pin the
    // strongest shared one explicitly.
    assert_eq!(
        fast_report.debug.events, reference_report.debug.events,
        "{name}: engines processed different event counts"
    );
    assert_eq!(
        fast_report.to_json(),
        reference_report.to_json(),
        "{name}: serialized reports differ"
    );
    // And the fast engine must actually be exercising its slab pool —
    // a parity test against an engine that silently fell back to fresh
    // allocations would prove nothing about the fast path.
    assert!(
        fast_report.debug.root_pool_hits > 0,
        "{name}: root slab pool never re-used a slot"
    );
}

#[test]
fn micro_and_yahoo_cases_are_bit_identical() {
    let config = SimConfig::quick().with_sim_time_ms(20_000.0);
    for case in fig8_cases().into_iter().chain(yahoo_cases()) {
        let cluster = Arc::new(case.cluster.clone());
        let assignment = schedule(&case.topology, &cluster);
        assert_parity(case.name, || {
            let mut fast = Simulation::new(Arc::clone(&cluster), config.clone());
            fast.add_topology(&case.topology, &assignment);
            let mut reference = ReferenceSimulation::new(Arc::clone(&cluster), config.clone());
            reference.add_topology(&case.topology, &assignment);
            (fast, reference)
        });
    }
}

#[test]
fn multi_topology_contention_is_bit_identical() {
    // Two topologies sharing one 24-node cluster (the fig13 layout):
    // cross-topology CPU contention and interleaved event streams are
    // where engine reorderings would surface first.
    let cluster = Arc::new(clusters::emulab_multi());
    let page_load = yahoo::page_load();
    let processing = yahoo::processing();
    let plan = schedule_all(
        &RStormScheduler::new(),
        &[&processing, &page_load],
        &cluster,
    )
    .expect("fig13 layout is feasible");
    let config = SimConfig::quick().with_sim_time_ms(20_000.0);
    assert_parity("multi_topology", || {
        let mut fast = Simulation::new(Arc::clone(&cluster), config.clone());
        let mut reference = ReferenceSimulation::new(Arc::clone(&cluster), config.clone());
        for t in [&page_load, &processing] {
            let assignment = plan.assignment(t.id().as_str()).unwrap();
            fast.add_topology(t, assignment);
            reference.add_topology(t, assignment);
        }
        (fast, reference)
    });
}

#[test]
fn parity_holds_across_seeds() {
    let case = &fig8_cases()[0];
    let cluster = Arc::new(case.cluster.clone());
    let assignment = schedule(&case.topology, &cluster);
    for seed in [1u64, 7, 42] {
        let config = SimConfig::quick()
            .with_sim_time_ms(15_000.0)
            .with_seed(seed);
        assert_parity(&format!("{}@seed{seed}", case.name), || {
            let mut fast = Simulation::new(Arc::clone(&cluster), config.clone());
            fast.add_topology(&case.topology, &assignment);
            let mut reference = ReferenceSimulation::new(Arc::clone(&cluster), config.clone());
            reference.add_topology(&case.topology, &assignment);
            (fast, reference)
        });
    }
}
