//! Chaos-harness integration: crash-then-recover scenarios on the
//! paper's workloads, exercised through the public facade.
//!
//! These pin the PR's acceptance criteria: the same fault plan and seed
//! produce bit-identical reports, and a crash-then-recover on the Yahoo
//! PageLoad topology ends with the full topology re-placed and zero
//! memory-overcommit violations.

use rstorm::prelude::*;
use rstorm::workloads::{clusters, micro, yahoo};
use std::sync::Arc;

/// The node the initial R-Storm placement put tasks on — the only kind
/// of victim whose crash actually displaces the topology.
fn host_node(cluster: &Cluster, topology: &Topology) -> String {
    let mut state = GlobalState::new(cluster);
    let a = RStormScheduler::new()
        .schedule(topology, cluster, &mut state)
        .unwrap();
    let host = a.iter().next().unwrap().1.node.as_str().to_owned();
    host
}

fn quick_scenario(victim: String, crash_at_ms: f64, heal_at_ms: f64) -> ChaosConfig {
    let mut cfg = ChaosConfig::new(victim, crash_at_ms, heal_at_ms);
    cfg.sim = SimConfig::quick();
    cfg
}

#[test]
fn same_fault_plan_and_seed_are_bit_identical() {
    let cluster = Arc::new(clusters::emulab_micro());
    let topology = micro::linear_network_bound();
    let cfg = quick_scenario(host_node(&cluster, &topology), 20_000.0, 35_000.0);
    let a = rstorm::sim::run_crash_recover(&cluster, &topology, &cfg);
    let b = rstorm::sim::run_crash_recover(&cluster, &topology, &cfg);
    assert_eq!(a.report, b.report);
    assert_eq!(a.report.to_json(), b.report.to_json());
    assert_eq!(a.events, b.events);
    assert_eq!(a.plan, b.plan);
}

#[test]
fn seeded_fault_plans_replay_identically_in_the_simulator() {
    let cluster = clusters::emulab_micro();
    let topology = micro::linear_network_bound();
    let mut state = GlobalState::new(&cluster);
    let assignment = RStormScheduler::new()
        .schedule(&topology, &cluster, &mut state)
        .unwrap();
    let nodes: Vec<String> = cluster
        .nodes()
        .iter()
        .map(|n| n.id().as_str().to_owned())
        .collect();
    let names: Vec<&str> = nodes.iter().map(String::as_str).collect();
    let plan = FaultPlan::seeded_crashes(7, &names, 2, 10_000.0, 40_000.0, 5_000.0);

    let run = |plan: FaultPlan| {
        let mut sim = Simulation::new(cluster.clone(), SimConfig::quick());
        sim.add_topology(&topology, &assignment);
        sim.set_fault_plan(plan);
        sim.run()
    };
    let r1 = run(plan.clone());
    let r2 = run(plan.clone());
    assert_eq!(r1, r2, "same plan, same seed, same bits");
    // And a different seed is a genuinely different plan.
    assert_ne!(
        plan,
        FaultPlan::seeded_crashes(8, &names, 2, 10_000.0, 40_000.0, 5_000.0)
    );
}

#[test]
fn survivable_seeded_crashes_lose_nothing_under_replay() {
    // Property: when every crashed node recovers (seeded_crashes always
    // pairs a crash with a recovery) and the replay budget is ample, the
    // guaranteed-processing plane quarantines nothing and every root that
    // settled within the run acked — across seeds, and bit-identically
    // on repeat runs of the same seed.
    let cluster = clusters::emulab_micro();
    let topology = micro::linear_network_bound();
    let mut state = GlobalState::new(&cluster);
    let assignment = RStormScheduler::new()
        .schedule(&topology, &cluster, &mut state)
        .unwrap();
    let nodes: Vec<String> = cluster
        .nodes()
        .iter()
        .map(|n| n.id().as_str().to_owned())
        .collect();
    let names: Vec<&str> = nodes.iter().map(String::as_str).collect();

    let run = |plan: FaultPlan| {
        let mut sim = Simulation::new(cluster.clone(), SimConfig::quick().with_max_replays(8));
        sim.add_topology(&topology, &assignment);
        sim.set_fault_plan(plan);
        sim.run()
    };

    let mut total_replays = 0;
    for seed in [1, 7, 42, 1337] {
        let plan = FaultPlan::seeded_crashes(seed, &names, 2, 10_000.0, 40_000.0, 5_000.0);
        let report = run(plan.clone());
        assert_eq!(
            report.tuples_quarantined(),
            0,
            "seed {seed}: survivable crashes must quarantine nothing"
        );
        assert_eq!(
            report.zero_loss_ratio(),
            1.0,
            "seed {seed}: every settled root must ack ({:?})",
            report.totals
        );
        total_replays += report.totals.roots_replayed;

        // Same seed, same bits — in the report and its JSON rendering.
        let again = run(plan);
        assert_eq!(report, again, "seed {seed}: replay runs are deterministic");
        assert_eq!(report.to_json(), again.to_json());
    }
    assert!(
        total_replays > 0,
        "at least one seed must actually exercise the replay path"
    );
}

#[test]
fn adaptive_rebalance_never_targets_a_dead_node() {
    use rstorm::cluster::NodeId;
    use rstorm::workloads::drifted;
    use std::collections::BTreeSet;

    let mut cluster = clusters::emulab_micro();
    let topology = drifted::under_declared_linear();
    let mut state = GlobalState::new(&cluster);
    let assignment = RStormScheduler::new()
        .schedule(&topology, &cluster, &mut state)
        .unwrap();
    let host = assignment.iter().next().unwrap().1.node.as_str().to_owned();

    // An idle node goes silent: it displaces nothing (the drifted
    // pipeline is packed on `host`), but being empty it has maximal CPU
    // headroom — exactly the node a naive target pick would migrate onto.
    let victim = cluster
        .nodes()
        .iter()
        .map(|n| n.id().as_str().to_owned())
        .find(|n| *n != host)
        .unwrap();
    let mut manager = RecoveryManager::new(RecoveryConfig::default());
    for node in cluster.nodes() {
        manager.observe_heartbeat(node.id().as_str(), 0.0);
    }
    let names: Vec<String> = cluster
        .nodes()
        .iter()
        .map(|n| n.id().as_str().to_owned())
        .collect();
    for node in &names {
        if *node != victim {
            manager.observe_heartbeat(node, 10_000.0);
        }
    }
    let scheduler = RStormScheduler::new();
    let events = manager.tick(10_000.0, &mut cluster, &mut state, &scheduler, &[&topology]);
    assert!(
        events
            .iter()
            .any(|e| matches!(e, RecoveryEvent::NodeDeclaredDead { node, .. } if *node == victim)),
        "victim declared dead: {events:?}"
    );
    let forbidden: BTreeSet<NodeId> = manager.dead_nodes().map(NodeId::new).collect();
    assert!(forbidden.contains(&NodeId::new(victim.as_str())));

    // The drift the adaptive plane would see: the hot bolt grossly
    // under-declared, the hosting node saturated, everything else starved
    // (the dead node's last observation included).
    let mut refiner = ProfileRefiner::new(1.0);
    refiner.observe(
        topology.id().as_str(),
        "crunch",
        drifted::HOT_DECLARED_POINTS,
        30.0,
    );
    let utils: Vec<(String, f64)> = names
        .iter()
        .map(|n| (n.clone(), if *n == host { 0.97 } else { 0.02 }))
        .collect();
    let drift = DriftDetector::default().detect(&topology, &refiner, &utils);
    assert!(!drift.is_clean());

    let plan = DeltaScheduler::new()
        .plan(
            &topology, &cluster, &mut state, &drift, &refiner, &forbidden,
        )
        .unwrap();
    assert!(!plan.is_empty(), "the saturated host sheds tasks");
    for m in &plan.moves {
        assert!(
            !forbidden.contains(&m.to),
            "move {m:?} targets the dead node {victim}"
        );
    }
    for (task, slot) in plan.updated.iter() {
        assert!(
            slot.node.as_str() != victim,
            "task {task} placed on the dead node {victim}"
        );
    }
}

#[test]
fn yahoo_page_load_crash_then_recover_replaces_everything() {
    let cluster = Arc::new(clusters::emulab_multi());
    let topology = yahoo::page_load();
    let cfg = quick_scenario(host_node(&cluster, &topology), 15_000.0, 30_000.0);
    let out = rstorm::sim::run_crash_recover(&cluster, &topology, &cfg);

    // The outage was seen and fully recovered from.
    let obs = out.observations;
    assert!(obs.time_to_detect_ms > 0.0, "crash detected: {obs:?}");
    assert!(
        obs.time_to_recover_ms >= obs.time_to_detect_ms,
        "fully re-placed after detection: {obs:?}"
    );
    assert!(obs.reschedule_attempts >= 1);

    // The final plan places every task and violates nothing — in
    // particular zero memory overcommit.
    let assignment = out
        .plan
        .assignment(topology.id().as_str())
        .expect("topology re-placed");
    assert!(!assignment.is_degraded(), "no unplaced tasks remain");
    let violations = verify_plan(&out.plan, &[&topology], &cluster);
    assert!(violations.is_empty(), "clean plan, got {violations:?}");

    // The recovery metrics ride along in the report and its JSON.
    assert_eq!(out.report.recovery, Some(obs));
    assert!(out.report.to_json().contains("\"recovery\""));
}
