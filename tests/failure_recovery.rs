//! Failure injection: node deaths, rescheduling, and capacity exhaustion.

use rstorm::prelude::*;

fn cluster() -> Cluster {
    ClusterBuilder::new()
        .homogeneous_racks(2, 4, ResourceCapacity::emulab_node(), 4)
        .build()
        .unwrap()
}

fn pipeline(mem: f64) -> Topology {
    let mut b = TopologyBuilder::new("pipeline");
    b.set_spout("src", 4)
        .set_cpu_load(40.0)
        .set_memory_load(mem);
    b.set_bolt("mid", 4)
        .shuffle_grouping("src")
        .set_cpu_load(30.0)
        .set_memory_load(mem);
    b.set_bolt("out", 4)
        .shuffle_grouping("mid")
        .set_cpu_load(30.0)
        .set_memory_load(mem);
    b.build().unwrap()
}

/// Full recovery cycle: fail → release → reschedule → verify.
fn recover(
    scheduler: &dyn Scheduler,
    cluster: &mut Cluster,
    state: &mut GlobalState,
    topology: &Topology,
    victim: &str,
) -> Result<Assignment, ScheduleError> {
    cluster.kill_node(victim);
    for tid in state.handle_node_failure(victim) {
        state.release_topology(tid.as_str());
    }
    scheduler.schedule(topology, cluster, state)
}

#[test]
fn reschedule_avoids_the_dead_node() {
    let mut cluster = cluster();
    let topology = pipeline(256.0);
    let scheduler = RStormScheduler::new();
    let mut state = GlobalState::new(&cluster);
    let before = scheduler.schedule(&topology, &cluster, &mut state).unwrap();
    let victim = before.used_nodes().iter().next().unwrap().clone();

    let after = recover(
        &scheduler,
        &mut cluster,
        &mut state,
        &topology,
        victim.as_str(),
    )
    .expect("survivors have capacity");
    assert!(!after.used_nodes().contains(&victim));
    assert_eq!(after.len() as u32, topology.total_tasks());
    assert!(verify_plan(state.plan(), &[&topology], &cluster).is_empty());
}

#[test]
fn repeated_failures_eventually_exhaust_capacity() {
    // Kill nodes one by one; every successful reschedule must be clean,
    // and the first failure must be an honest capacity error.
    let mut cluster = cluster();
    let topology = pipeline(700.0); // 12 tasks × 700 MB = 8.4 GB total
    let scheduler = RStormScheduler::new();
    let mut state = GlobalState::new(&cluster);
    scheduler.schedule(&topology, &cluster, &mut state).unwrap();

    let node_names: Vec<String> = cluster
        .nodes()
        .iter()
        .map(|n| n.id().as_str().to_owned())
        .collect();

    let mut failed = false;
    for victim in &node_names {
        match recover(&scheduler, &mut cluster, &mut state, &topology, victim) {
            Ok(assignment) => {
                assert!(verify_plan(state.plan(), &[&topology], &cluster).is_empty());
                assert_eq!(assignment.len() as u32, topology.total_tasks());
            }
            Err(ScheduleError::InsufficientMemory {
                needed_mb,
                best_available_mb,
                ..
            }) => {
                assert!(needed_mb > best_available_mb);
                failed = true;
                break;
            }
            Err(ScheduleError::NoAliveNodes) => {
                failed = true;
                break;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(
        failed,
        "8.4 GB cannot fit after enough of the 16 GB cluster has died"
    );
}

#[test]
fn simulation_after_recovery_still_flows() {
    let mut cluster = cluster();
    let topology = pipeline(256.0);
    let scheduler = RStormScheduler::new();
    let mut state = GlobalState::new(&cluster);
    let before = scheduler.schedule(&topology, &cluster, &mut state).unwrap();
    let victim = before.used_nodes().iter().next().unwrap().clone();
    let after = recover(
        &scheduler,
        &mut cluster,
        &mut state,
        &topology,
        victim.as_str(),
    )
    .unwrap();

    let mut sim = Simulation::new(cluster.clone(), SimConfig::quick());
    sim.add_topology(&topology, &after);
    let report = sim.run();
    assert!(report.steady_throughput("pipeline", 1) > 0.0);
    // The dead node does no work.
    assert!(report
        .node_utilization
        .iter()
        .all(|(n, _)| n != victim.as_str()));
}

#[test]
fn revived_node_rejoins_the_pool() {
    let mut cluster = cluster();
    cluster.kill_node("rack-0-node-0");
    let state = GlobalState::new(&cluster);
    assert!(state.remaining("rack-0-node-0").is_none());

    cluster.revive_node("rack-0-node-0");
    let state = GlobalState::new(&cluster);
    assert!(state.remaining("rack-0-node-0").is_some());
}

#[test]
fn default_scheduler_also_recovers_but_without_guarantees() {
    let mut cluster = cluster();
    let topology = pipeline(700.0);
    let scheduler = EvenScheduler::new();
    let mut state = GlobalState::new(&cluster);
    scheduler.schedule(&topology, &cluster, &mut state).unwrap();

    // Kill half the cluster: the even scheduler still "succeeds" — by
    // over-committing memory, the paper's catastrophic failure mode.
    for i in 0..4 {
        let victim = format!("rack-0-node-{i}");
        cluster.kill_node(&victim);
        for tid in state.handle_node_failure(&victim) {
            state.release_topology(tid.as_str());
        }
        scheduler.schedule(&topology, &cluster, &mut state).unwrap();
        state.release_topology("pipeline");
    }
    scheduler.schedule(&topology, &cluster, &mut state).unwrap();
    let violations = verify_plan(state.plan(), &[&topology], &cluster);
    assert!(
        violations
            .iter()
            .any(|v| format!("{v:?}").contains("MemoryOvercommit")),
        "4 nodes × 2 GB cannot hold 8.4 GB without over-commit: {violations:?}"
    );
}
