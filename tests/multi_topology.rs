//! Multi-topology scheduling (§6.5): several applications sharing one
//! cluster through one `GlobalState`.

use rstorm::prelude::*;
use rstorm::workloads::{clusters, yahoo};

#[test]
fn rstorm_separates_the_yahoo_topologies() {
    let cluster = clusters::emulab_multi();
    let processing = yahoo::processing();
    let page_load = yahoo::page_load();
    let plan = schedule_all(
        &RStormScheduler::new(),
        &[&processing, &page_load],
        &cluster,
    )
    .expect("both fit the 24-node cluster");

    assert!(verify_plan(&plan, &[&processing, &page_load], &cluster).is_empty());

    let a = plan.assignment("processing").unwrap().used_nodes();
    let b = plan.assignment("page-load").unwrap().used_nodes();
    let overlap = a.intersection(&b).count();
    assert!(
        overlap <= 2,
        "R-Storm should keep the topologies mostly apart, overlapped on {overlap} nodes"
    );
}

#[test]
fn default_scheduler_interleaves_the_topologies() {
    let cluster = clusters::emulab_multi();
    let processing = yahoo::processing();
    let page_load = yahoo::page_load();
    let plan = schedule_all(&EvenScheduler::new(), &[&processing, &page_load], &cluster).unwrap();

    let a = plan.assignment("processing").unwrap().used_nodes();
    let b = plan.assignment("page-load").unwrap().used_nodes();
    assert!(
        a.intersection(&b).count() >= 4,
        "round-robin wrap-around shares machines between topologies"
    );
}

#[test]
fn shared_state_accumulates_reservations() {
    let cluster = clusters::emulab_multi();
    let processing = yahoo::processing();
    let page_load = yahoo::page_load();

    let mut state = GlobalState::new(&cluster);
    let scheduler = RStormScheduler::new();
    scheduler
        .schedule(&processing, &cluster, &mut state)
        .unwrap();
    let remaining_after_first: f64 = state.iter_remaining().map(|(_, r)| r.cpu_points).sum();
    scheduler
        .schedule(&page_load, &cluster, &mut state)
        .unwrap();
    let remaining_after_second: f64 = state.iter_remaining().map(|(_, r)| r.cpu_points).sum();
    assert!(
        remaining_after_second < remaining_after_first,
        "the second topology must see the first one's reservations"
    );

    // Releasing the first returns exactly its demand.
    state.release_topology("processing");
    let after_release: f64 = state.iter_remaining().map(|(_, r)| r.cpu_points).sum();
    let expected = remaining_after_second + processing.total_resources().cpu_points;
    assert!((after_release - expected).abs() < 1e-6);
}

#[test]
fn joint_simulation_runs_both_topologies() {
    let cluster = clusters::emulab_multi();
    let processing = yahoo::processing();
    let page_load = yahoo::page_load();
    let plan = schedule_all(
        &RStormScheduler::new(),
        &[&processing, &page_load],
        &cluster,
    )
    .unwrap();

    let mut sim = Simulation::new(cluster, SimConfig::quick());
    sim.add_topology(&page_load, plan.assignment("page-load").unwrap());
    sim.add_topology(&processing, plan.assignment("processing").unwrap());
    let report = sim.run();

    assert!(report.steady_throughput("page-load", 1) > 0.0);
    assert!(report.steady_throughput("processing", 1) > 0.0);
    assert_eq!(report.totals.roots_timed_out, 0, "R-Storm plan is healthy");
}

#[test]
fn degraded_processing_under_default_schedule() {
    // The Figure 13 mechanism in miniature: under the default scheduler
    // the Processing pipeline loses throughput it keeps under R-Storm.
    // (The full death spiral needs the 15-minute run in the fig13 bench.)
    let cluster = clusters::emulab_multi();
    let processing = yahoo::processing();
    let page_load = yahoo::page_load();

    let run = |scheduler: &dyn Scheduler| {
        let plan = schedule_all(scheduler, &[&processing, &page_load], &cluster).unwrap();
        let mut sim = Simulation::new(cluster.clone(), SimConfig::quick());
        sim.add_topology(&page_load, plan.assignment("page-load").unwrap());
        sim.add_topology(&processing, plan.assignment("processing").unwrap());
        sim.run()
    };

    let rstorm = run(&RStormScheduler::new());
    let default = run(&EvenScheduler::new());
    let r = rstorm.steady_throughput("processing", 2);
    let d = default.steady_throughput("processing", 2);
    assert!(
        d < 0.95 * r,
        "processing under default ({d:.0}) should trail R-Storm ({r:.0})"
    );
}

#[test]
fn duplicate_submission_is_rejected() {
    let cluster = clusters::emulab_multi();
    let t = yahoo::page_load();
    let err = schedule_all(&RStormScheduler::new(), &[&t, &t], &cluster).unwrap_err();
    assert!(matches!(err, ScheduleError::AlreadyScheduled(_)));
}
