//! Regression net over the reproduced paper results: quick-mode versions
//! of every figure's *shape* (who wins, roughly how). The precise
//! full-length numbers live in EXPERIMENTS.md; these tests keep the
//! shapes from silently regressing as the code evolves.
//!
//! Runs are shortened (60–90 simulated seconds) so the whole file stays
//! CI-friendly; thresholds are set loose enough to be stable across the
//! shorter horizon.

use rstorm::prelude::*;
use rstorm::workloads::{clusters, micro, yahoo};

fn compare(topology: &Topology, cluster: &Cluster, sim_time_ms: f64) -> (SimReport, SimReport) {
    let run = |scheduler: &dyn Scheduler| {
        let mut state = GlobalState::new(cluster);
        let assignment = scheduler.schedule(topology, cluster, &mut state).unwrap();
        let mut sim = Simulation::new(
            cluster.clone(),
            SimConfig::default().with_sim_time_ms(sim_time_ms),
        );
        sim.add_topology(topology, &assignment);
        sim.run()
    };
    (run(&RStormScheduler::new()), run(&EvenScheduler::new()))
}

fn ratio(topology: &Topology, cluster: &Cluster, sim_time_ms: f64) -> f64 {
    let (rstorm, even) = compare(topology, cluster, sim_time_ms);
    let id = topology.id().as_str();
    rstorm.steady_throughput(id, 2) / even.steady_throughput(id, 2).max(1e-9)
}

// ---- Figure 8: network-bound throughput -----------------------------------

#[test]
fn fig8a_linear_network_bound_shape() {
    let r = ratio(
        &micro::linear_network_bound(),
        &clusters::emulab_micro(),
        90_000.0,
    );
    assert!((1.3..2.0).contains(&r), "paper ≈ 1.5, measured {r:.2}");
}

#[test]
fn fig8b_diamond_network_bound_shape() {
    let r = ratio(
        &micro::diamond_network_bound(),
        &clusters::emulab_micro(),
        90_000.0,
    );
    assert!((1.1..1.6).contains(&r), "paper ≈ 1.3, measured {r:.2}");
}

#[test]
fn fig8c_star_network_bound_shape() {
    let r = ratio(
        &micro::star_network_bound(),
        &clusters::emulab_micro(),
        90_000.0,
    );
    assert!((1.3..2.0).contains(&r), "paper ≈ 1.47, measured {r:.2}");
}

// ---- Figure 9: CPU-bound throughput and machine counts ---------------------

#[test]
fn fig9ab_equal_throughput_on_fewer_machines() {
    let cluster = clusters::emulab_micro();
    for topology in [micro::linear_cpu_bound(), micro::diamond_cpu_bound()] {
        let (rstorm, even) = compare(&topology, &cluster, 60_000.0);
        let id = topology.id().as_str();
        let r = rstorm.steady_throughput(id, 2);
        let e = even.steady_throughput(id, 2);
        assert!(
            (0.9..1.1).contains(&(r / e)),
            "{id}: throughput should match, {r:.0} vs {e:.0}"
        );
        assert!(
            rstorm.used_nodes_by_topology[id] + 3 <= even.used_nodes_by_topology[id],
            "{id}: R-Storm should use far fewer machines"
        );
    }
}

#[test]
fn fig9c_star_default_is_bottlenecked() {
    let r = ratio(
        &micro::star_cpu_bound(),
        &clusters::emulab_micro(),
        90_000.0,
    );
    assert!(
        r > 1.15,
        "R-Storm must clearly win the star, measured {r:.2}"
    );
}

// ---- Figure 10: CPU utilization --------------------------------------------

#[test]
fn fig10_utilization_ordering() {
    let cluster = clusters::emulab_micro();
    let mut improvements = Vec::new();
    for topology in [
        micro::linear_cpu_bound(),
        micro::diamond_cpu_bound(),
        micro::star_cpu_bound(),
    ] {
        let (rstorm, even) = compare(&topology, &cluster, 60_000.0);
        improvements
            .push(rstorm.mean_used_cpu_utilization.mean / even.mean_used_cpu_utilization.mean);
    }
    // Every workload shows a clear utilization win...
    for (i, imp) in improvements.iter().enumerate() {
        assert!(*imp > 1.3, "workload {i}: ratio {imp:.2}");
    }
    // ...and the paper's ordering (star > diamond > linear) holds.
    assert!(
        improvements[2] > improvements[0],
        "star ({:.2}) should beat linear ({:.2})",
        improvements[2],
        improvements[0]
    );
}

// ---- Figure 12: Yahoo topologies -------------------------------------------

#[test]
fn fig12_yahoo_topologies_favor_rstorm() {
    let cluster = clusters::emulab_micro();
    let pl = ratio(&yahoo::page_load(), &cluster, 90_000.0);
    assert!(pl > 1.15, "PageLoad measured {pl:.2}");
    let pr = ratio(&yahoo::processing(), &cluster, 90_000.0);
    assert!(pr > 1.2, "Processing measured {pr:.2}");
}

// ---- Figure 13: multi-topology differential collapse ------------------------

#[test]
fn fig13_processing_collapses_under_default_only() {
    let cluster = clusters::emulab_multi();
    let processing = yahoo::processing();
    let page_load = yahoo::page_load();

    let run = |scheduler: &dyn Scheduler| {
        let plan = schedule_all(scheduler, &[&processing, &page_load], &cluster).unwrap();
        let mut sim = Simulation::new(
            cluster.clone(),
            SimConfig::default().with_sim_time_ms(420_000.0),
        );
        sim.add_topology(&page_load, plan.assignment("page-load").unwrap());
        sim.add_topology(&processing, plan.assignment("processing").unwrap());
        sim.run()
    };

    let rstorm = run(&RStormScheduler::new());
    let default = run(&EvenScheduler::new());

    // R-Storm: both topologies healthy, zero timeouts.
    assert_eq!(rstorm.totals.roots_timed_out, 0);
    assert!(rstorm.steady_throughput("processing", 2) > 30_000.0);

    // Default: Processing's tuple trees blow the 30 s timeout en masse
    // and its late windows collapse, while PageLoad merely degrades.
    assert!(
        default.totals.roots_timed_out > 10_000,
        "expected mass timeouts, got {}",
        default.totals.roots_timed_out
    );
    let windows = &default.throughput["processing"].windows;
    let late = &windows[windows.len() - 6..];
    let late_mean = late.iter().sum::<f64>() / late.len() as f64;
    assert!(
        late_mean < 0.2 * rstorm.steady_throughput("processing", 2),
        "processing should have collapsed, late windows {late:?}"
    );
    let pl_ratio =
        default.steady_throughput("page-load", 2) / rstorm.steady_throughput("page-load", 2);
    assert!(
        pl_ratio > 0.5,
        "PageLoad must survive (got {:.0}% of R-Storm)",
        pl_ratio * 100.0
    );
}
