//! Replays the chaos-fuzzer regression corpus and property-checks the
//! shrinker's contract.
//!
//! Every `.plan` file under `tests/fuzz_corpus/` is a minimal
//! reproducer the fuzzer once shrank from a violating fault plan (see
//! the directory's README). Replaying them through the full oracle set
//! on the honest engine must be clean: a violation here is a real
//! robustness regression, caught without re-running the fuzzer.

use proptest::prelude::*;
use rstorm::cluster::{Cluster, ClusterBuilder, ResourceCapacity};
use rstorm::scheduler::{RStormScheduler, RecoveryConfig};
use rstorm::sim::{check_fault_plan, run_fuzz_campaign, FuzzConfig, FuzzReproducer, SimConfig};
use rstorm::topology::{ExecutionProfile, Topology, TopologyBuilder};
use std::path::PathBuf;
use std::sync::Arc;

/// The corpus cluster: two racks of two Emulab-profile nodes
/// (`rack-0-node-0` … `rack-1-node-1`), the names the corpus plans
/// refer to.
fn cluster() -> Arc<Cluster> {
    Arc::new(
        ClusterBuilder::new()
            .homogeneous_racks(2, 2, ResourceCapacity::emulab_node(), 4)
            .build()
            .expect("2x2 emulab cluster builds"),
    )
}

/// The corpus workload: two components at 1.4 GB each on 2 GB nodes, so
/// spout and sink never colocate and node faults disturb the tuple path.
fn split_topology() -> Topology {
    let mut b = TopologyBuilder::new("fuzz-corpus");
    b.set_spout("src", 1)
        .set_profile(ExecutionProfile::network_bound(100))
        .set_cpu_load(20.0)
        .set_memory_load(1_400.0);
    b.set_bolt("sink", 1)
        .shuffle_grouping("src")
        .set_profile(ExecutionProfile::network_bound(100).into_sink())
        .set_cpu_load(20.0)
        .set_memory_load(1_400.0);
    b.build().expect("split topology builds")
}

/// The honest twin of the configuration the corpus entries were mined
/// under: same tight replay budget and short tuple timeout (so the
/// plans still reach quarantine pressure), no planted bug.
fn honest_cfg() -> FuzzConfig {
    let mut sim = SimConfig::quick()
        .with_sim_time_ms(30_000.0)
        .with_max_replays(1);
    sim.tuple_timeout_ms = 3_000.0;
    FuzzConfig {
        iterations: 1,
        seed: 42,
        max_atoms: 3,
        sim,
        recovery: RecoveryConfig::default(),
    }
}

/// The planted twin: identical except the drain-ledger bug is armed.
fn planted_cfg(iterations: u32, seed: u64) -> FuzzConfig {
    let mut cfg = honest_cfg();
    cfg.iterations = iterations;
    cfg.seed = seed;
    cfg.sim = cfg.sim.with_planted_quarantine_bug(true);
    cfg
}

fn corpus_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fuzz_corpus");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|entry| entry.expect("corpus dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "plan"))
        .collect();
    files.sort();
    files
}

/// Every corpus reproducer must replay clean on the honest engine, with
/// the full oracle set armed.
#[test]
fn corpus_replays_clean_on_the_honest_engine() {
    let files = corpus_files();
    assert!(!files.is_empty(), "the seeded corpus must not be empty");
    let cluster = cluster();
    let topology = split_topology();
    let scheduler = RStormScheduler::new();
    let cfg = honest_cfg();
    for path in files {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let repro =
            FuzzReproducer::from_text(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            check_fault_plan(&cluster, &topology, &scheduler, &cfg, &repro.plan),
            None,
            "{}: corpus reproducer trips an oracle on the honest engine",
            path.display()
        );
    }
}

/// The corpus files themselves stay parseable and carry the headers the
/// fuzzer wrote — a malformed entry would otherwise only fail at the
/// point someone tries to debug with it.
#[test]
fn corpus_files_round_trip_through_the_text_codec() {
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).expect("corpus file is readable");
        let repro =
            FuzzReproducer::from_text(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let round = FuzzReproducer::from_text(&repro.to_text())
            .unwrap_or_else(|e| panic!("{}: re-parse: {e}", path.display()));
        assert_eq!(repro.oracle, round.oracle, "{}", path.display());
        assert_eq!(repro.plan, round.plan, "{}", path.display());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// The shrinker's contract, over arbitrary campaign seeds: whatever
    /// a planted-bug campaign finds, both the original plan and its
    /// shrunk reproducer trip the oracle the verdict recorded — the
    /// shrinker never wanders onto a different failure.
    #[test]
    fn shrunk_reproducers_trip_the_same_oracle_as_their_parents(seed in 0u64..1 << 32) {
        let cluster = cluster();
        let topology = split_topology();
        let scheduler = RStormScheduler::new();
        let cfg = planted_cfg(3, seed);
        let out = run_fuzz_campaign(&cluster, &topology, &scheduler, &cfg, 2);
        for repro in &out.reproducers {
            prop_assert!(!repro.plan.events().is_empty(), "shrunk plan went empty");
            prop_assert!(
                repro.plan.events().len() <= repro.original.events().len(),
                "shrinking grew the plan"
            );
            let parent = check_fault_plan(&cluster, &topology, &scheduler, &cfg, &repro.original);
            prop_assert_eq!(
                parent.as_ref(),
                Some(&repro.oracle),
                "original plan no longer trips the recorded oracle"
            );
            let shrunk = check_fault_plan(&cluster, &topology, &scheduler, &cfg, &repro.plan);
            prop_assert_eq!(
                shrunk.as_ref(),
                Some(&repro.oracle),
                "shrunk plan trips a different oracle than its parent"
            );
        }
    }
}
