//! Property-based tests (proptest) over randomly generated topologies and
//! clusters: the invariants the R-Storm paper promises must hold for
//! *every* input, not just the bundled workloads.

use proptest::prelude::*;
use rstorm::cluster::config::StormConfig;
use rstorm::prelude::*;
use rstorm::scheduler::rstorm::task_selection;
use rstorm::topology::{bfs_component_order, ResourceRequest};

// ---------- generators ----------------------------------------------------

#[derive(Debug, Clone)]
struct ComponentSpec {
    parallelism: u32,
    cpu: f64,
    mem: f64,
    /// Which earlier components this one subscribes to (index offsets).
    inputs: Vec<usize>,
}

fn arb_topology() -> impl Strategy<Value = Topology> {
    // Component 0 is always a spout; each later component subscribes to
    // at least one earlier component, forming a connected DAG.
    let spec = (
        1u32..=4,
        1.0f64..80.0,
        16.0f64..512.0,
        proptest::collection::vec(0usize..8, 1..3),
    );
    proptest::collection::vec(spec, 2..7).prop_map(|raw| {
        let specs: Vec<ComponentSpec> = raw
            .into_iter()
            .map(|(parallelism, cpu, mem, inputs)| ComponentSpec {
                parallelism,
                cpu,
                mem,
                inputs,
            })
            .collect();
        let mut b = TopologyBuilder::new("prop");
        b.set_spout("c0", specs[0].parallelism)
            .set_cpu_load(specs[0].cpu)
            .set_memory_load(specs[0].mem);
        for (i, s) in specs.iter().enumerate().skip(1) {
            let mut bolt = b.set_bolt(format!("c{i}"), s.parallelism);
            let mut subscribed = std::collections::BTreeSet::new();
            for raw in &s.inputs {
                subscribed.insert(raw % i);
            }
            for from in subscribed {
                bolt.shuffle_grouping(format!("c{from}"));
            }
            bolt.set_cpu_load(s.cpu).set_memory_load(s.mem);
        }
        b.build()
            .expect("generated topologies are structurally valid")
    })
}

fn arb_cluster() -> impl Strategy<Value = Cluster> {
    (
        1u32..=3,
        1u32..=4,
        100.0f64..400.0,
        1024.0f64..8192.0,
        1u16..=4,
    )
        .prop_map(|(racks, nodes, cpu, mem, slots)| {
            ClusterBuilder::new()
                .homogeneous_racks(racks, nodes, ResourceCapacity::new(cpu, mem, 100.0), slots)
                .build()
                .expect("generated clusters are valid")
        })
}

// ---------- scheduling invariants -----------------------------------------

proptest! {
    /// The paper's property 2: "no hard resource constraints is violated"
    /// — whenever R-Storm produces a schedule, it is completely clean.
    #[test]
    fn rstorm_success_implies_clean_plan(
        topology in arb_topology(),
        cluster in arb_cluster(),
    ) {
        let mut state = GlobalState::new(&cluster);
        if let Ok(assignment) =
            RStormScheduler::new().schedule(&topology, &cluster, &mut state)
        {
            prop_assert_eq!(assignment.len() as u32, topology.total_tasks());
            let violations = verify_plan(state.plan(), &[&topology], &cluster);
            prop_assert!(violations.is_empty(), "{:?}", violations);
            for (node, remaining) in state.iter_remaining() {
                prop_assert!(
                    remaining.memory_mb >= -1e-9,
                    "node {} over-committed: {} MB",
                    node,
                    remaining.memory_mb
                );
            }
        }
    }

    /// When R-Storm refuses a topology, the refusal is honest: the
    /// reported demand really exceeds the best remaining node.
    #[test]
    fn rstorm_failure_is_justified(
        topology in arb_topology(),
        cluster in arb_cluster(),
    ) {
        let mut state = GlobalState::new(&cluster);
        match RStormScheduler::new().schedule(&topology, &cluster, &mut state) {
            Err(ScheduleError::InsufficientMemory { needed_mb, best_available_mb, .. }) => {
                prop_assert!(needed_mb > best_available_mb);
            }
            Err(ScheduleError::NoAliveNodes) => {
                prop_assert_eq!(cluster.alive_nodes().count(), 0);
            }
            _ => {}
        }
    }

    /// Scheduling is a pure function of its inputs.
    #[test]
    fn rstorm_is_deterministic(
        topology in arb_topology(),
        cluster in arb_cluster(),
    ) {
        let r1 = RStormScheduler::new()
            .schedule(&topology, &cluster, &mut GlobalState::new(&cluster));
        let r2 = RStormScheduler::new()
            .schedule(&topology, &cluster, &mut GlobalState::new(&cluster));
        prop_assert_eq!(r1.is_ok(), r2.is_ok());
        if let (Ok(a1), Ok(a2)) = (r1, r2) {
            prop_assert_eq!(a1, a2);
        }
    }

    /// The even scheduler always places everything, spreads across all
    /// nodes when slots allow, and never leaves a slot hosting wildly
    /// more tasks than another (round-robin balance).
    #[test]
    fn even_scheduler_places_and_balances(
        topology in arb_topology(),
        cluster in arb_cluster(),
    ) {
        let mut state = GlobalState::new(&cluster);
        let assignment = EvenScheduler::new()
            .schedule(&topology, &cluster, &mut state)
            .expect("even scheduling never fails on a live cluster");
        prop_assert_eq!(assignment.len() as u32, topology.total_tasks());

        let slots: usize = cluster.alive_slots().count();
        let tasks = topology.total_tasks() as usize;
        let per_node: Vec<usize> = cluster
            .alive_nodes()
            .map(|n| assignment.tasks_on_node(n.id().as_str()).len())
            .collect();
        let max = per_node.iter().copied().max().unwrap_or(0);
        let min = per_node.iter().copied().min().unwrap_or(0);
        // Round-robin over node-interleaved slots: per-node counts differ
        // by at most ceil(slots_per_node) across a full wrap.
        let slots_per_node = slots / cluster.alive_nodes().count();
        prop_assert!(
            max - min <= slots_per_node.max(1) + tasks / slots.max(1),
            "imbalance: {:?}",
            per_node
        );
    }
}

// ---------- ordering invariants --------------------------------------------

proptest! {
    /// Algorithm 2: the BFS component order visits every component
    /// exactly once, starting with a spout.
    #[test]
    fn bfs_order_is_a_permutation(topology in arb_topology()) {
        let order = bfs_component_order(&topology);
        prop_assert_eq!(order.len(), topology.components().len());
        let unique: std::collections::BTreeSet<_> =
            order.iter().map(|c| c.as_str().to_owned()).collect();
        prop_assert_eq!(unique.len(), order.len());
        prop_assert!(topology.component(order[0].as_str()).unwrap().is_spout());
    }

    /// Algorithm 3: the task ordering contains every task exactly once,
    /// whatever the traversal strategy.
    #[test]
    fn task_ordering_is_a_permutation(
        topology in arb_topology(),
        strategy in prop_oneof![
            Just(TraversalOrder::Bfs),
            Just(TraversalOrder::Dfs),
            Just(TraversalOrder::Declaration),
        ],
    ) {
        let task_set = topology.task_set();
        let order = task_selection::task_ordering(&topology, &task_set, strategy);
        prop_assert_eq!(order.len(), task_set.len());
        let mut ids: Vec<u32> = order.iter().map(|t| t.as_u32()).collect();
        ids.sort_unstable();
        let expected: Vec<u32> = (0..task_set.len() as u32).collect();
        prop_assert_eq!(ids, expected);
    }
}

// ---------- metric and model invariants -------------------------------------

proptest! {
    /// Summary statistics stay within their algebraic bounds.
    #[test]
    fn summary_bounds(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::of(values.iter().copied());
        prop_assert_eq!(s.count, values.len());
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.stddev >= 0.0);
        prop_assert!(s.stddev <= (s.max - s.min) + 1e-9);
    }

    /// Windowed counters conserve events.
    #[test]
    fn windowed_counter_conserves(
        events in proptest::collection::vec((0.0f64..1e5, 1u64..100), 0..100),
    ) {
        let mut c = rstorm::metrics::WindowedCounter::new(10_000.0);
        let mut total = 0u64;
        for (t, n) in &events {
            c.record(*t, *n);
            total += n;
        }
        prop_assert_eq!(c.total(), total);
        prop_assert_eq!(c.window_counts().iter().sum::<u64>(), total);
    }

    /// Resource arithmetic is component-wise and order-independent.
    #[test]
    fn resource_request_algebra(
        a in (0.0f64..1e3, 0.0f64..1e4, 0.0f64..1e2),
        b in (0.0f64..1e3, 0.0f64..1e4, 0.0f64..1e2),
        k in 0.0f64..10.0,
    ) {
        let ra = ResourceRequest::new(a.0, a.1, a.2);
        let rb = ResourceRequest::new(b.0, b.1, b.2);
        prop_assert_eq!(ra.saturating_add(&rb), rb.saturating_add(&ra));
        let scaled = ra.scaled(k);
        prop_assert!((scaled.cpu_points - ra.cpu_points * k).abs() < 1e-9);
        prop_assert!((scaled.memory_mb - ra.memory_mb * k).abs() < 1e-9);
    }

    /// The storm.yaml subset round-trips through its own serializer.
    #[test]
    fn storm_config_roundtrip(
        mem in 1.0f64..1e6,
        cpu in 1.0f64..1e4,
        ports in proptest::collection::vec(1024u16..65535, 1..6),
    ) {
        let text = format!(
            "supervisor.memory.capacity.mb: {mem:?}\n\
             supervisor.cpu.capacity: {cpu:?}\n\
             supervisor.slots.ports: [{}]\n\
             storm.scheduler: \"rstorm\"\n",
            ports.iter().map(u16::to_string).collect::<Vec<_>>().join(", ")
        );
        let parsed = StormConfig::parse(&text).unwrap();
        let reparsed = StormConfig::parse(&parsed.to_yaml()).unwrap();
        prop_assert_eq!(&parsed, &reparsed);
        prop_assert_eq!(parsed.get_f64("supervisor.memory.capacity.mb"), Some(mem));
        prop_assert_eq!(parsed.slot_ports(), ports);
    }
}

// ---------- optimality gap (fewer, heavier cases) ---------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On instances small enough for exact branch-and-bound, the greedy
    /// R-Storm heuristic must never beat the optimum (sanity of the
    /// solver) and the optimum must be a valid plan.
    #[test]
    fn exhaustive_lower_bounds_greedy(
        p0 in 1u32..=2, p1 in 1u32..=2, p2 in 1u32..=2,
        cpu in 5.0f64..60.0,
        mem in 32.0f64..700.0,
    ) {
        use rstorm::scheduler::schedulers::{placement_cost, ExhaustiveScheduler};
        let mut b = TopologyBuilder::new("opt");
        b.set_spout("a", p0).set_cpu_load(cpu).set_memory_load(mem);
        b.set_bolt("b", p1).shuffle_grouping("a").set_cpu_load(cpu).set_memory_load(mem);
        b.set_bolt("c", p2).shuffle_grouping("b").set_cpu_load(cpu).set_memory_load(mem);
        let topology = b.build().unwrap();
        let cluster = ClusterBuilder::new()
            .homogeneous_racks(2, 2, ResourceCapacity::emulab_node(), 4)
            .build()
            .unwrap();

        let optimal = ExhaustiveScheduler::new()
            .schedule(&topology, &cluster, &mut GlobalState::new(&cluster));
        let greedy = RStormScheduler::new()
            .schedule(&topology, &cluster, &mut GlobalState::new(&cluster));
        if let (Ok(optimal), Ok(greedy)) = (optimal, greedy) {
            let c_opt = placement_cost(&topology, &cluster, &optimal);
            let c_greedy = placement_cost(&topology, &cluster, &greedy);
            prop_assert!(
                c_opt <= c_greedy + 1e-9,
                "optimum {} must not exceed greedy {}",
                c_opt,
                c_greedy
            );
            // And the optimum is itself a clean plan.
            let mut state = GlobalState::new(&cluster);
            let a = ExhaustiveScheduler::new()
                .schedule(&topology, &cluster, &mut state)
                .unwrap();
            prop_assert_eq!(a.len() as u32, topology.total_tasks());
            prop_assert!(verify_plan(state.plan(), &[&topology], &cluster).is_empty());
        }
    }
}

// ---------- indexed/reference scheduler parity ------------------------------

/// Everything a scheduler invocation may observably change, with floats
/// captured as raw bits: remaining resources per node (in id order), the
/// plan, and every slot's occupancy. Map iteration order (which is not
/// observable behaviour) is deliberately excluded.
type ObservableBits = (Vec<(String, [u64; 3])>, String, Vec<usize>);

fn observable_bits(state: &GlobalState, cluster: &Cluster) -> ObservableBits {
    let remaining = state
        .iter_remaining()
        .map(|(n, r)| {
            (
                n.as_str().to_owned(),
                [
                    r.cpu_points.to_bits(),
                    r.memory_mb.to_bits(),
                    r.bandwidth.to_bits(),
                ],
            )
        })
        .collect();
    let plan = format!("{:?}", state.plan());
    let occupancy = cluster
        .nodes()
        .iter()
        .flat_map(|n| n.slots().iter())
        .map(|s| state.slot_occupancy(s))
        .collect();
    (remaining, plan, occupancy)
}

proptest! {
    /// The tentpole's correctness bar: the indexed fast path
    /// ([`RStormScheduler`]: dense scan, rack aggregates, undo-log
    /// atomicity) must be **byte-identical** to the pre-index
    /// implementation ([`ReferenceRStormScheduler`]: string-keyed scan,
    /// clone-based atomicity) — same assignments, same errors, same
    /// remaining-resource bits — on arbitrary inputs.
    #[test]
    fn indexed_scheduler_matches_reference(
        topology in arb_topology(),
        cluster in arb_cluster(),
    ) {
        let mut fast_state = GlobalState::new(&cluster);
        let mut ref_state = GlobalState::new(&cluster);
        let fast = RStormScheduler::new().schedule(&topology, &cluster, &mut fast_state);
        let reference =
            ReferenceRStormScheduler::new().schedule(&topology, &cluster, &mut ref_state);
        match (fast, reference) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(format!("{a:?}"), format!("{b:?}")),
            diverged => prop_assert!(false, "paths diverged: {:?}", diverged),
        }
        prop_assert_eq!(
            observable_bits(&fast_state, &cluster),
            observable_bits(&ref_state, &cluster)
        );
    }

    /// Undo-log atomicity: a rejected topology leaves the state
    /// bit-identical to before the attempt — including when the rejection
    /// happens mid-topology on a cluster already carrying reservations
    /// from an earlier success.
    #[test]
    fn failed_schedule_leaves_state_bit_identical(
        warmup in arb_topology(),
        heavy_mem in 1500.0f64..6000.0,
        cluster in arb_cluster(),
    ) {
        let scheduler = RStormScheduler::new();
        let mut state = GlobalState::new(&cluster);
        // Best-effort warmup so the rollback must preserve non-trivial
        // existing bookkeeping, not just return to the pristine state.
        let _ = scheduler.schedule(&warmup, &cluster, &mut state);

        // A topology whose later tasks outgrow every generated node
        // (node memory < 8192; total demand far above), so rejection
        // usually happens after some tasks were already placed.
        let mut b = TopologyBuilder::new("heavy");
        b.set_spout("light", 2).set_cpu_load(1.0).set_memory_load(8.0);
        b.set_bolt("heavy", 4)
            .shuffle_grouping("light")
            .set_cpu_load(1.0)
            .set_memory_load(heavy_mem);
        let heavy = b.build().unwrap();

        let before = observable_bits(&state, &cluster);
        if let Err(err) = scheduler.schedule(&heavy, &cluster, &mut state) {
            prop_assert!(matches!(err, ScheduleError::InsufficientMemory { .. }));
            prop_assert_eq!(observable_bits(&state, &cluster), before);
            prop_assert!(!state.is_scheduled("heavy"));
        }
    }
}

// ---------- failure/recovery state parity -----------------------------------

/// Observables masked to the *alive* part of the cluster: remaining
/// resources and slot occupancy of alive nodes (float bits), plus the
/// whole plan. Dead nodes are out of the schedulable pool, so their
/// stale bookkeeping is not observable behaviour.
type AliveBits = (Vec<(String, [u64; 3])>, String, Vec<usize>);

fn alive_observable_bits(state: &GlobalState, cluster: &Cluster) -> AliveBits {
    let remaining = state
        .iter_remaining()
        .filter(|(n, _)| cluster.is_alive(n.as_str()))
        .map(|(n, r)| {
            (
                n.as_str().to_owned(),
                [
                    r.cpu_points.to_bits(),
                    r.memory_mb.to_bits(),
                    r.bandwidth.to_bits(),
                ],
            )
        })
        .collect();
    let plan = format!("{:?}", state.plan());
    let occupancy = cluster
        .alive_nodes()
        .flat_map(|n| n.slots().iter())
        .map(|s| state.slot_occupancy(s))
        .collect();
    (remaining, plan, occupancy)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The recovery tentpole's bookkeeping bar: after ANY interleaving of
    /// node failures and recoveries, the incrementally maintained
    /// [`GlobalState`] must be bit-identical (on alive-masked
    /// observables) to one rebuilt from scratch out of the surviving
    /// cluster and the same plan. Integer resource loads keep the
    /// reserve/release float arithmetic exactly representable, so "bit
    /// identical" is a fair bar.
    #[test]
    fn incremental_failure_recovery_matches_rebuild(
        spout_par in 1u32..=3,
        bolt_par in 1u32..=4,
        cpu_units in 1u32..40,
        mem_units in 1u32..48,
        ops in proptest::collection::vec((0usize..6, 0u32..3), 1..10),
    ) {
        let mut b = TopologyBuilder::new("fr");
        b.set_spout("s", spout_par)
            .set_cpu_load(f64::from(cpu_units))
            .set_memory_load(f64::from(mem_units * 16));
        b.set_bolt("k", bolt_par)
            .shuffle_grouping("s")
            .set_cpu_load(f64::from(cpu_units))
            .set_memory_load(f64::from(mem_units * 16));
        let topology = b.build().unwrap();

        let mut cluster = ClusterBuilder::new()
            .homogeneous_racks(2, 3, ResourceCapacity::new(400.0, 4096.0, 100.0), 4)
            .build()
            .unwrap();
        let node_names: Vec<String> = cluster
            .nodes()
            .iter()
            .map(|n| n.id().as_str().to_owned())
            .collect();

        let mut state = GlobalState::new(&cluster);
        let Ok(_) = RStormScheduler::new().schedule(&topology, &cluster, &mut state) else {
            return Ok(());
        };

        for &(pick, op) in &ops {
            let node = &node_names[pick % node_names.len()];
            // Two-thirds kills, one-third recoveries: failure churn with
            // occasional rejoins, in arbitrary order.
            if op > 0 {
                cluster.kill_node(node);
                let _displaced = state.handle_node_failure(node);
            } else {
                cluster.revive_node(node);
                state.handle_node_recovery(node);
            }
        }

        let rebuilt = GlobalState::rebuild(&cluster, &[&topology], state.plan());
        prop_assert_eq!(
            alive_observable_bits(&state, &cluster),
            alive_observable_bits(&rebuilt, &cluster)
        );
    }
}

// ---------- simulator conservation (fewer, heavier cases) -------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tuple conservation under simulation: completions never exceed
    /// emissions, sink counts never exceed processing counts, and a
    /// feasible R-Storm schedule always makes progress.
    #[test]
    fn simulation_conserves_tuples(
        topology in arb_topology(),
        seed in 0u64..1000,
    ) {
        let cluster = ClusterBuilder::new()
            .homogeneous_racks(2, 3, ResourceCapacity::new(400.0, 8192.0, 100.0), 4)
            .build()
            .unwrap();
        let mut state = GlobalState::new(&cluster);
        let Ok(assignment) =
            RStormScheduler::new().schedule(&topology, &cluster, &mut state)
        else {
            return Ok(());
        };
        let mut config = SimConfig::quick().with_seed(seed);
        config.sim_time_ms = 20_000.0;
        let mut sim = Simulation::new(cluster, config);
        sim.add_topology(&topology, &assignment);
        let report = sim.run();
        let t = &report.totals;
        prop_assert!(t.roots_completed + t.roots_timed_out <= t.spout_batches);
        prop_assert!(t.tuples_completed <= t.tuples_processed.max(t.spout_batches * 1000));
        prop_assert!(t.batches_dropped <= t.batches_delivered);
        prop_assert!(t.spout_batches > 0, "spouts must make progress");
    }

    /// The adaptive plane's zero-drift bar, as a property: observations
    /// that match the declarations yield a clean drift report, an empty
    /// migration plan, an untouched scheduling state — and an empty plan
    /// handed to the simulator keeps the run bit-identical to one that
    /// never heard of the rebalance plane.
    #[test]
    fn zero_drift_keeps_everything_bit_identical(
        topology in arb_topology(),
        seed in 0u64..1000,
    ) {
        let cluster = std::sync::Arc::new(
            ClusterBuilder::new()
                .homogeneous_racks(2, 3, ResourceCapacity::new(400.0, 8192.0, 100.0), 4)
                .build()
                .unwrap(),
        );
        let mut state = GlobalState::new(&cluster);
        let Ok(assignment) =
            RStormScheduler::new().schedule(&topology, &cluster, &mut state)
        else {
            return Ok(());
        };

        // A refiner that observed exactly the declarations.
        let mut refiner = ProfileRefiner::new(1.0);
        for c in topology.components() {
            let declared = c.resources().cpu_points;
            refiner.observe("prop", c.id().as_str(), declared, declared);
        }
        let drift = DriftDetector::default().detect(&topology, &refiner, &[]);
        prop_assert!(drift.is_clean());

        let before = observable_bits(&state, &cluster);
        let plan = DeltaScheduler::new()
            .plan(
                &topology,
                &cluster,
                &mut state,
                &drift,
                &refiner,
                &std::collections::BTreeSet::new(),
            )
            .unwrap();
        prop_assert!(plan.is_empty());
        prop_assert_eq!(observable_bits(&state, &cluster), before);

        let config = SimConfig::quick().with_sim_time_ms(8_000.0).with_seed(seed);
        let mut plain = Simulation::new(std::sync::Arc::clone(&cluster), config.clone());
        plain.add_topology(&topology, &assignment);
        let mut adaptive = Simulation::new(std::sync::Arc::clone(&cluster), config);
        adaptive.add_topology(&topology, &assignment);
        adaptive.schedule_migration(&plan, 4_000.0, 1_000.0);
        let plain_report = plain.run();
        let adaptive_report = adaptive.run();
        prop_assert_eq!(&plain_report, &adaptive_report);
        prop_assert_eq!(plain_report.debug.events, adaptive_report.debug.events);
    }

    /// The simulator tentpole's correctness bar, as a property: on
    /// arbitrary feasible topologies the dense-id fast engine and the
    /// string-keyed reference engine must produce **identical** reports —
    /// same totals, same per-window counts, same latency bits.
    #[test]
    fn fast_simulation_matches_reference(
        topology in arb_topology(),
        seed in 0u64..1000,
    ) {
        let cluster = std::sync::Arc::new(
            ClusterBuilder::new()
                .homogeneous_racks(2, 3, ResourceCapacity::new(400.0, 8192.0, 100.0), 4)
                .build()
                .unwrap(),
        );
        let Ok(assignment) = RStormScheduler::new().schedule(
            &topology,
            &cluster,
            &mut GlobalState::new(&cluster),
        ) else {
            return Ok(());
        };
        let config = SimConfig::quick().with_sim_time_ms(8_000.0).with_seed(seed);
        let mut fast = Simulation::new(std::sync::Arc::clone(&cluster), config.clone());
        fast.add_topology(&topology, &assignment);
        let mut reference =
            ReferenceSimulation::new(std::sync::Arc::clone(&cluster), config);
        reference.add_topology(&topology, &assignment);
        let fast_report = fast.run();
        let reference_report = reference.run();
        prop_assert_eq!(&fast_report, &reference_report);
        prop_assert_eq!(fast_report.debug.events, reference_report.debug.events);
        prop_assert_eq!(fast_report.to_json(), reference_report.to_json());
    }

    /// The incremental-routing tentpole's correctness bar, as a property:
    /// for arbitrary migration plans — empty, random scatters or a full
    /// replacement of every task — a run that patches only the moved
    /// routing rows is bit-identical to one that rebuilds the whole table
    /// on every migration.
    #[test]
    fn incremental_routing_matches_full_rebuild(
        topology in arb_topology(),
        raw_moves in proptest::collection::vec((0usize..64, 0usize..64), 0..10),
        replace_all in 0usize..2,
        seed in 0u64..1000,
    ) {
        let cluster = std::sync::Arc::new(
            ClusterBuilder::new()
                .homogeneous_racks(2, 3, ResourceCapacity::new(400.0, 8192.0, 100.0), 4)
                .build()
                .unwrap(),
        );
        let Ok(assignment) = RStormScheduler::new().schedule(
            &topology,
            &cluster,
            &mut GlobalState::new(&cluster),
        ) else {
            return Ok(());
        };
        let tasks: Vec<_> = assignment.iter().map(|(t, _)| t).collect();
        let nodes: Vec<String> = cluster
            .nodes()
            .iter()
            .map(|n| n.id().as_str().to_owned())
            .collect();
        // Either scatter a few random tasks or relocate every task — the
        // no-op case is the empty `raw_moves` vector.
        let picked: Vec<(usize, usize)> = if replace_all == 1 {
            (0..tasks.len()).map(|i| (i, (i + 1) % nodes.len())).collect()
        } else {
            raw_moves
                .iter()
                .map(|&(t, n)| (t % tasks.len(), n % nodes.len()))
                .collect()
        };
        let mut slots: std::collections::BTreeMap<_, _> =
            assignment.iter().map(|(t, s)| (t, s.clone())).collect();
        let mut moves = Vec::new();
        for &(ti, ni) in &picked {
            let task = tasks[ti];
            let old = slots[&task].node.clone();
            slots.insert(task, WorkerSlot::new(nodes[ni].as_str(), 6700));
            moves.push(MigrationMove {
                task,
                component: "c".to_owned(),
                from: old,
                to: rstorm::cluster::NodeId::new(nodes[ni].as_str()),
            });
        }
        let plan = MigrationPlan {
            topology: topology.id().clone(),
            moves,
            updated: Assignment::new(topology.id().clone(), slots),
        };
        let run = |incremental: bool| {
            let config = SimConfig::quick()
                .with_sim_time_ms(8_000.0)
                .with_seed(seed)
                .with_incremental_routing(incremental);
            let mut sim = Simulation::new(std::sync::Arc::clone(&cluster), config);
            sim.add_topology(&topology, &assignment);
            sim.schedule_migration(&plan, 3_000.0, 500.0);
            sim.run()
        };
        let patched = run(true);
        let rebuilt = run(false);
        prop_assert_eq!(&patched, &rebuilt);
        prop_assert_eq!(patched.debug.events, rebuilt.debug.events);
    }

    /// The network-plane gate's correctness bar, as a property: leaving
    /// `network_model` at its default and setting it to `Legacy`
    /// explicitly must be the same engine bit for bit — same report,
    /// same JSON, same debug event count — across random migration plans
    /// *and* random fault plans (crashes, partitions, degradations), the
    /// transitions where a half-gated fair-plane branch would first leak.
    #[test]
    fn legacy_network_model_is_bit_identical_to_the_default_engine(
        topology in arb_topology(),
        raw_moves in proptest::collection::vec((0usize..64, 0usize..64), 0..6),
        fault_atoms in proptest::collection::vec(
            (0u8..4, 1u64..10, 1u64..8, 0usize..64),
            0..4,
        ),
        seed in 0u64..1000,
    ) {
        let cluster = std::sync::Arc::new(
            ClusterBuilder::new()
                .homogeneous_racks(2, 3, ResourceCapacity::new(400.0, 8192.0, 100.0), 4)
                .build()
                .unwrap(),
        );
        let Ok(assignment) = RStormScheduler::new().schedule(
            &topology,
            &cluster,
            &mut GlobalState::new(&cluster),
        ) else {
            return Ok(());
        };
        let tasks: Vec<_> = assignment.iter().map(|(t, _)| t).collect();
        let nodes: Vec<String> = cluster
            .nodes()
            .iter()
            .map(|n| n.id().as_str().to_owned())
            .collect();
        let racks: Vec<String> = cluster
            .racks()
            .iter()
            .map(|r| r.as_str().to_owned())
            .collect();

        // A random scatter of task relocations, as in the routing property.
        let mut slots: std::collections::BTreeMap<_, _> =
            assignment.iter().map(|(t, s)| (t, s.clone())).collect();
        let mut moves = Vec::new();
        for &(t, n) in &raw_moves {
            let task = tasks[t % tasks.len()];
            let node = &nodes[n % nodes.len()];
            let old = slots[&task].node.clone();
            slots.insert(task, WorkerSlot::new(node.as_str(), 6700));
            moves.push(MigrationMove {
                task,
                component: "c".to_owned(),
                from: old,
                to: rstorm::cluster::NodeId::new(node.as_str()),
            });
        }
        let plan = MigrationPlan {
            topology: topology.id().clone(),
            moves,
            updated: Assignment::new(topology.id().clone(), slots),
        };

        // A random fault plan on the 500 ms grid inside the 8 s horizon.
        let mut faults = FaultPlan::new();
        for &(kind, at_slot, len_slot, pick) in &fault_atoms {
            let at = 500.0 * at_slot as f64;
            let len = 500.0 * len_slot as f64;
            match kind {
                0 => {
                    let node = &nodes[pick % nodes.len()];
                    faults = faults.crash_node(at, node).recover_node(at + len, node);
                }
                1 => {
                    faults = faults.crash_node(at, &nodes[pick % nodes.len()]);
                }
                2 => {
                    faults = faults.partition_rack(at, at + len, &racks[pick % racks.len()]);
                }
                _ => {
                    faults = faults.degrade_links(at, at + len, 25.0);
                }
            }
        }

        let run = |explicit_legacy: bool| {
            let mut config = SimConfig::quick().with_sim_time_ms(8_000.0).with_seed(seed);
            if explicit_legacy {
                config = config.with_network_model(NetworkModel::Legacy);
            }
            let mut sim = Simulation::new(std::sync::Arc::clone(&cluster), config);
            sim.add_topology(&topology, &assignment);
            sim.schedule_migration(&plan, 3_000.0, 500.0);
            sim.set_fault_plan(faults.clone());
            sim.run()
        };
        let default_report = run(false);
        let legacy_report = run(true);
        prop_assert_eq!(&default_report, &legacy_report);
        prop_assert_eq!(default_report.to_json(), legacy_report.to_json());
        prop_assert_eq!(default_report.debug.events, legacy_report.debug.events);
    }
}
