//! Golden-report regression test: the simulator's exact output —
//! deterministic JSON, every float formatted from its full bit pattern —
//! is pinned for a fixed workload, schedule, seed and horizon. Any
//! change to event ordering, RNG consumption, float arithmetic order or
//! the report boundary shows up as a diff here, even if it is too small
//! to fail a statistical assertion.
//!
//! To bless an *intentional* behaviour change, regenerate with
//! `UPDATE_GOLDEN=1 cargo test --test golden_report` and review the
//! diff like any other code change.

use rstorm::prelude::*;
use rstorm::workloads::cases::fig8_cases;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); bless with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "{name}: report drifted from {}.\n\
         If the change is intentional, regenerate with UPDATE_GOLDEN=1 \
         and review the diff.\n--- expected ---\n{expected}\n--- actual ---\n{actual}",
        path.display()
    );
}

#[test]
fn linear_net_quick_report_is_stable() {
    let case = fig8_cases()
        .into_iter()
        .find(|c| c.name == "linear_net")
        .expect("linear_net case exists");
    let assignment = RStormScheduler::new()
        .schedule(
            &case.topology,
            &case.cluster,
            &mut GlobalState::new(&case.cluster),
        )
        .expect("linear_net is feasible");
    let mut sim = Simulation::new(case.cluster, SimConfig::quick());
    sim.add_topology(&case.topology, &assignment);
    let report = sim.run();
    check_golden("linear_net_quick", &report.to_json());
}
