//! The paper's production scenario (§6.4–6.5): Yahoo!'s PageLoad and
//! Processing topologies — event-level advertising data for near
//! real-time analytical reporting — sharing one 24-node cluster.
//!
//! Reproduces the Figure 13 situation end to end: under R-Storm both
//! pipelines run at full speed on disjoint machines; under the default
//! round-robin the heavyweight Processing pipeline is starved by
//! colocation, blows its tuple timeouts and grinds to a near halt.
//!
//! ```sh
//! cargo run --release --example ad_analytics
//! ```

use rstorm::prelude::*;
use rstorm::workloads::{clusters, yahoo};

fn run(scheduler: &dyn Scheduler) {
    let cluster = clusters::emulab_multi();
    let processing = yahoo::processing();
    let page_load = yahoo::page_load();

    let plan = schedule_all(scheduler, &[&processing, &page_load], &cluster)
        .expect("both topologies fit the 24-node cluster");

    println!("\n=== {} scheduler ===", scheduler.name());
    for topology in [&processing, &page_load] {
        let assignment = plan
            .assignment(topology.id().as_str())
            .expect("scheduled above");
        println!(
            "{}: {} tasks on {} machines",
            topology.id(),
            assignment.len(),
            assignment.used_nodes().len()
        );
    }

    // Overlap tells the story: R-Storm separates the topologies, the
    // default scheduler stacks them onto the same machines.
    let a = plan.assignment("processing").unwrap().used_nodes();
    let b = plan.assignment("page-load").unwrap().used_nodes();
    println!(
        "machines shared by both topologies: {}",
        a.intersection(&b).count()
    );

    // Five simulated minutes is enough to see the default schedule's
    // death spiral develop (the paper ran ~15).
    let mut sim = Simulation::new(cluster, SimConfig::default());
    sim.add_topology(&page_load, plan.assignment("page-load").unwrap());
    sim.add_topology(&processing, plan.assignment("processing").unwrap());
    let report = sim.run();

    for topology in ["page-load", "processing"] {
        println!(
            "{topology}: {:.0} tuples/10s steady",
            report.steady_throughput(topology, 2)
        );
    }
    println!(
        "tuple trees timed out: {} of {}",
        report.totals.roots_timed_out, report.totals.spout_batches
    );
}

fn main() {
    println!("Yahoo! ad-analytics pipelines on a 24-node, 2-rack cluster");
    run(&RStormScheduler::new());
    run(&EvenScheduler::new());
    println!(
        "\nThe default schedule colocates Processing's near-full-core bolts \
         with PageLoad's tasks; starved of CPU, they fall behind the fixed-rate \
         event feed, every tuple tree exceeds the 30 s timeout, and goodput \
         collapses — the behaviour §6.5 of the paper reports from production."
    );
}
