//! Quickstart: build a topology, schedule it with R-Storm, simulate the
//! schedule, and compare against Storm's default scheduler.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rstorm::prelude::*;

fn word_count() -> Topology {
    let mut builder = TopologyBuilder::new("word-count");
    // A sentence source, a splitter and a per-word counter — the classic
    // Storm starter topology, annotated with the paper's resource API:
    // setCPULoad / setMemoryLoad per component instance.
    builder
        .set_spout("sentences", 4)
        .set_cpu_load(50.0)
        .set_memory_load(512.0)
        .set_profile(ExecutionProfile::new(0.05, 1.0, 200));
    builder
        .set_bolt("split", 6)
        .shuffle_grouping("sentences")
        .set_cpu_load(30.0)
        .set_memory_load(256.0)
        .set_profile(ExecutionProfile::new(0.04, 1.0, 120));
    builder
        .set_bolt("count", 6)
        .fields_grouping("split", ["word"])
        .set_cpu_load(30.0)
        .set_memory_load(256.0)
        .set_profile(ExecutionProfile::new(0.03, 0.0, 50));
    builder.build().expect("the example topology is valid")
}

fn main() {
    // Two racks of six single-core workers — the paper's Emulab cluster.
    let cluster = ClusterBuilder::new()
        .homogeneous_racks(2, 6, ResourceCapacity::emulab_node(), 4)
        .build()
        .expect("the example cluster is valid");

    let topology = word_count();
    println!(
        "topology `{}`: {} components, {} tasks, demand {}",
        topology.id(),
        topology.components().len(),
        topology.total_tasks(),
        topology.total_resources(),
    );

    for scheduler in [
        &RStormScheduler::new() as &dyn Scheduler,
        &EvenScheduler::new(),
    ] {
        let mut state = GlobalState::new(&cluster);
        let assignment = scheduler
            .schedule(&topology, &cluster, &mut state)
            .expect("the example is feasible");

        println!("\n=== {} scheduler ===", scheduler.name());
        println!("machines used: {}", assignment.used_nodes().len());
        for node in assignment.used_nodes() {
            let tasks = assignment.tasks_on_node(node.as_str());
            let remaining = state.remaining(node.as_str()).expect("node exists");
            println!(
                "  {node}: {} tasks, {:.0} CPU pts / {:.0} MB left",
                tasks.len(),
                remaining.cpu_points,
                remaining.memory_mb
            );
        }

        // No hard constraint may be violated by R-Storm; the default
        // scheduler gets no such guarantee — verify and report.
        let violations = verify_plan(state.plan(), &[&topology], &cluster);
        println!("constraint violations: {}", violations.len());

        let mut sim = Simulation::new(cluster.clone(), SimConfig::quick());
        sim.add_topology(&topology, &assignment);
        let report = sim.run();
        println!(
            "steady throughput: {:.0} tuples/10s over {} machines",
            report.steady_throughput("word-count", 1),
            report.used_nodes
        );
    }
}
