//! Failure injection and rescheduling.
//!
//! §3 of the paper motivates a fast heuristic precisely because of this
//! scenario: "if there are failures in the Storm cluster and executors
//! need to be rescheduled, the scheduler must be able to produce another
//! scheduling quickly. If executors are not rescheduled quickly, whole
//! topologies may be stalled."
//!
//! This example schedules a topology, kills a machine it uses, reschedules
//! with R-Storm onto the survivors, and verifies every invariant still
//! holds.
//!
//! ```sh
//! cargo run --release --example failure_recovery
//! ```

use rstorm::prelude::*;
use std::time::Instant;

fn pipeline() -> Topology {
    let mut b = TopologyBuilder::new("sensor-pipeline");
    b.set_spout("sensors", 4)
        .set_cpu_load(40.0)
        .set_memory_load(384.0)
        .set_profile(ExecutionProfile::new(0.05, 1.0, 150));
    b.set_bolt("validate", 4)
        .shuffle_grouping("sensors")
        .set_cpu_load(30.0)
        .set_memory_load(256.0)
        .set_profile(ExecutionProfile::new(0.04, 1.0, 150));
    b.set_bolt("aggregate", 4)
        .fields_grouping("validate", ["sensor_id"])
        .set_cpu_load(30.0)
        .set_memory_load(256.0)
        .set_profile(ExecutionProfile::new(0.04, 0.0, 80));
    b.build().expect("the example topology is valid")
}

fn main() {
    let mut cluster = ClusterBuilder::new()
        .homogeneous_racks(2, 4, ResourceCapacity::emulab_node(), 4)
        .build()
        .expect("the example cluster is valid");
    let topology = pipeline();
    let scheduler = RStormScheduler::new();

    // Initial schedule.
    let mut state = GlobalState::new(&cluster);
    let assignment = scheduler
        .schedule(&topology, &cluster, &mut state)
        .expect("initial scheduling is feasible");
    println!("initial schedule uses: {:?}", assignment.used_nodes());
    assert!(verify_plan(state.plan(), &[&topology], &cluster).is_empty());

    // A machine the topology uses dies.
    let victim = assignment
        .used_nodes()
        .iter()
        .next()
        .expect("at least one node is used")
        .clone();
    println!("\n!! node `{victim}` fails");
    cluster.kill_node(victim.as_str());

    // Nimbus-side recovery: drop the node from the resource pool, release
    // every affected topology and reschedule it on the survivors.
    let started = Instant::now();
    let affected = state.handle_node_failure(victim.as_str());
    println!("affected topologies: {affected:?}");
    for tid in &affected {
        state.release_topology(tid.as_str());
    }
    let new_assignment = scheduler
        .schedule(&topology, &cluster, &mut state)
        .expect("survivors have enough capacity");
    let elapsed = started.elapsed();

    println!(
        "rescheduled in {elapsed:?} — \"snappy\" as §3 demands (well under \
         Nimbus's 10 s scheduling period)"
    );
    println!("new schedule uses: {:?}", new_assignment.used_nodes());

    // Invariants after recovery: the dead node is unused, everything is
    // placed, no hard constraint is violated.
    assert!(!new_assignment.used_nodes().iter().any(|n| n == &victim));
    assert_eq!(new_assignment.len() as u32, topology.total_tasks());
    let violations = verify_plan(state.plan(), &[&topology], &cluster);
    assert!(violations.is_empty(), "unexpected: {violations:?}");
    println!("all invariants hold after recovery");

    // And the rescheduled topology still flows.
    let mut sim = Simulation::new(cluster, SimConfig::quick());
    sim.add_topology(&topology, &new_assignment);
    let report = sim.run();
    println!(
        "post-recovery throughput: {:.0} tuples/10s",
        report.steady_throughput("sensor-pipeline", 1)
    );
}
