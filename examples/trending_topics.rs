//! The introduction's motivating workload: "computing a stream of
//! trending topics in tweets" (§2) — a multi-stage aggregation with a
//! fan-out, key-partitioned counting and a global merge.
//!
//! Demonstrates weight tuning: boosting the network weight packs the
//! pipeline more tightly around the reference node, while zeroing it
//! degenerates into pure resource fitting.
//!
//! ```sh
//! cargo run --release --example trending_topics
//! ```

use rstorm::prelude::*;

fn trending_topics() -> Topology {
    let mut b = TopologyBuilder::new("trending-topics");
    b.set_max_spout_pending(8);
    // Tweet firehose at a fixed feed rate.
    b.set_spout("tweets", 4)
        .set_profile(ExecutionProfile::new(0.06, 1.0, 280).with_max_rate(4_000.0))
        .set_cpu_load(30.0)
        .set_memory_load(512.0);
    // Extract hashtags (several per tweet on average).
    b.set_bolt("extract-topics", 6)
        .shuffle_grouping("tweets")
        .set_profile(ExecutionProfile::new(0.04, 1.5, 60))
        .set_cpu_load(30.0)
        .set_memory_load(256.0);
    // Rolling count per topic: key-partitioned so each topic's counter
    // lives in exactly one task.
    b.set_bolt("rolling-count", 8)
        .fields_grouping("extract-topics", ["topic"])
        .set_profile(ExecutionProfile::new(0.05, 0.2, 40))
        .set_cpu_load(35.0)
        .set_memory_load(384.0);
    // Intermediate per-partition rankings, merged globally.
    b.set_bolt("intermediate-rank", 4)
        .fields_grouping("rolling-count", ["topic"])
        .set_profile(ExecutionProfile::new(0.08, 0.5, 120))
        .set_cpu_load(25.0)
        .set_memory_load(256.0);
    b.set_bolt("total-rank", 1)
        .global_grouping("intermediate-rank")
        .set_profile(ExecutionProfile::new(0.1, 0.0, 200))
        .set_cpu_load(40.0)
        .set_memory_load(512.0);
    b.build().expect("the example topology is valid")
}

fn main() {
    let cluster = ClusterBuilder::new()
        .homogeneous_racks(2, 6, ResourceCapacity::emulab_node(), 4)
        .build()
        .expect("the example cluster is valid");
    let topology = trending_topics();

    println!(
        "trending-topics: {} tasks, total demand {}",
        topology.total_tasks(),
        topology.total_resources()
    );

    let variants: Vec<(&str, Box<dyn Scheduler>)> = vec![
        (
            "r-storm (default weights)",
            Box::new(RStormScheduler::new()),
        ),
        (
            "r-storm (no network term)",
            Box::new(RStormScheduler::with_config(RStormConfig {
                weights: SoftConstraintWeights::default().without_network(),
                traversal: TraversalOrder::Bfs,
            })),
        ),
        ("default storm", Box::new(EvenScheduler::new())),
        (
            "offline linearization",
            Box::new(OfflineLinearizationScheduler::new()),
        ),
    ];

    for (name, scheduler) in variants {
        let mut state = GlobalState::new(&cluster);
        let assignment = scheduler
            .schedule(&topology, &cluster, &mut state)
            .expect("the example is feasible");

        // Placement-quality summary: how many racks and machines, and how
        // much of the graph's communication stays rack-local.
        let used = assignment.used_nodes();
        let racks: std::collections::BTreeSet<_> = used
            .iter()
            .map(|n| cluster.rack_of(n.as_str()).expect("node exists").clone())
            .collect();

        let mut sim = Simulation::new(cluster.clone(), SimConfig::quick());
        sim.add_topology(&topology, &assignment);
        let report = sim.run();

        println!(
            "{name:>28}: {:>2} machines / {} rack(s), {:>7.0} tuples/10s",
            used.len(),
            racks.len(),
            report.steady_throughput("trending-topics", 1),
        );
    }
}
