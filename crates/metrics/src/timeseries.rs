//! Simple append-only time series.

use crate::summary::Summary;

/// An append-only series of `(time_ms, value)` points with monotonically
/// non-decreasing timestamps.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if `time_ms` is earlier than the previous point or not
    /// finite.
    pub fn push(&mut self, time_ms: f64, value: f64) {
        assert!(time_ms.is_finite(), "time must be finite");
        if let Some(&(last, _)) = self.points.last() {
            assert!(
                time_ms >= last,
                "time series must be monotonic: {time_ms} < {last}"
            );
        }
        self.points.push((time_ms, value));
    }

    /// All points in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Values only.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|&(_, v)| v)
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Summary over all values.
    pub fn summary(&self) -> Summary {
        Summary::of(self.values())
    }

    /// Summary over the values at or after `from_ms` (steady-state view).
    pub fn summary_from(&self, from_ms: f64) -> Summary {
        Summary::of(
            self.points
                .iter()
                .filter(|&&(t, _)| t >= from_ms)
                .map(|&(_, v)| v),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut ts = TimeSeries::new();
        assert!(ts.is_empty());
        ts.push(0.0, 10.0);
        ts.push(10.0, 20.0);
        ts.push(10.0, 30.0); // equal timestamps are allowed
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.points()[1], (10.0, 20.0));
        assert_eq!(ts.summary().mean, 20.0);
    }

    #[test]
    fn summary_from_skips_warmup() {
        let mut ts = TimeSeries::new();
        ts.push(0.0, 0.0);
        ts.push(10.0, 100.0);
        ts.push(20.0, 100.0);
        let steady = ts.summary_from(10.0);
        assert_eq!(steady.count, 2);
        assert_eq!(steady.mean, 100.0);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn out_of_order_rejected() {
        let mut ts = TimeSeries::new();
        ts.push(10.0, 1.0);
        ts.push(5.0, 1.0);
    }
}
