//! Per-node CPU utilization accounting.
//!
//! The paper's Figure 10 compares the *average CPU utilization of machines
//! used in the cluster* under each scheduler. The tracker accumulates busy
//! core-milliseconds per node; utilization is busy time divided by
//! capacity (cores × elapsed time).

use crate::summary::Summary;
use std::collections::BTreeMap;

/// Accumulates CPU busy time per node and reports utilization.
#[derive(Debug, Clone, Default)]
pub struct CpuUtilizationTracker {
    /// node -> (cores, busy core-milliseconds)
    nodes: BTreeMap<String, (f64, f64)>,
}

impl CpuUtilizationTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a node with its core count. Nodes never registered are
    /// "unused" and excluded from reports.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is not strictly positive.
    pub fn register_node(&mut self, node: impl Into<String>, cores: f64) {
        assert!(
            cores.is_finite() && cores > 0.0,
            "core count must be positive, got {cores}"
        );
        self.nodes.entry(node.into()).or_insert((cores, 0.0));
    }

    /// Adds `busy_core_ms` of busy time to a node. Unregistered nodes are
    /// registered lazily with one core.
    pub fn add_busy(&mut self, node: &str, busy_core_ms: f64) {
        assert!(
            busy_core_ms.is_finite() && busy_core_ms >= 0.0,
            "busy time must be non-negative, got {busy_core_ms}"
        );
        self.nodes.entry(node.to_owned()).or_insert((1.0, 0.0)).1 += busy_core_ms;
    }

    /// Utilization of one node over an elapsed wall time, as a fraction of
    /// its total core capacity (0.0–1.0, can exceed 1.0 only on accounting
    /// error, which is asserted against).
    pub fn utilization(&self, node: &str, elapsed_ms: f64) -> Option<f64> {
        let &(cores, busy) = self.nodes.get(node)?;
        if elapsed_ms <= 0.0 {
            return Some(0.0);
        }
        Some(busy / (cores * elapsed_ms))
    }

    /// Per-node utilizations over `elapsed_ms` for nodes with any busy
    /// time (the "machines used"), sorted by node name.
    pub fn used_node_utilizations(&self, elapsed_ms: f64) -> Vec<(String, f64)> {
        self.nodes
            .iter()
            .filter(|(_, &(_, busy))| busy > 0.0)
            .map(|(n, &(cores, busy))| (n.clone(), busy / (cores * elapsed_ms)))
            .collect()
    }

    /// Average utilization over the machines actually used — the Figure 10
    /// metric.
    pub fn mean_used_utilization(&self, elapsed_ms: f64) -> Summary {
        Summary::of(
            self.used_node_utilizations(elapsed_ms)
                .into_iter()
                .map(|(_, u)| u),
        )
    }

    /// Number of nodes that did any work.
    pub fn used_node_count(&self) -> usize {
        self.nodes.values().filter(|&&(_, busy)| busy > 0.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_is_busy_over_capacity() {
        let mut t = CpuUtilizationTracker::new();
        t.register_node("n1", 2.0);
        t.add_busy("n1", 1_000.0); // 1000 core-ms over 2 cores
        assert_eq!(t.utilization("n1", 1_000.0), Some(0.5));
        assert_eq!(t.utilization("missing", 1_000.0), None);
    }

    #[test]
    fn unused_nodes_excluded_from_used_mean() {
        let mut t = CpuUtilizationTracker::new();
        t.register_node("busy-1", 1.0);
        t.register_node("busy-2", 1.0);
        t.register_node("idle", 1.0);
        t.add_busy("busy-1", 800.0);
        t.add_busy("busy-2", 400.0);
        let mean = t.mean_used_utilization(1_000.0);
        assert_eq!(mean.count, 2, "idle machine excluded");
        assert!((mean.mean - 0.6).abs() < 1e-12);
        assert_eq!(t.used_node_count(), 2);
    }

    #[test]
    fn lazy_registration_defaults_to_one_core() {
        let mut t = CpuUtilizationTracker::new();
        t.add_busy("surprise", 250.0);
        assert_eq!(t.utilization("surprise", 1_000.0), Some(0.25));
    }

    #[test]
    fn zero_elapsed_reports_zero() {
        let mut t = CpuUtilizationTracker::new();
        t.register_node("n", 1.0);
        assert_eq!(t.utilization("n", 0.0), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "core count")]
    fn zero_cores_rejected() {
        CpuUtilizationTracker::new().register_node("n", 0.0);
    }
}
