//! Plain-text and CSV rendering for the bench harness output.

/// Renders rows as an aligned plain-text table. `header` and every row
/// must have the same number of columns.
///
/// ```
/// use rstorm_metrics::text_table;
/// let t = text_table(
///     &["scheduler", "throughput"],
///     &[vec!["r-storm".into(), "25496".into()],
///       vec!["default".into(), "16695".into()]],
/// );
/// assert!(t.contains("r-storm"));
/// ```
pub fn text_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity must match header");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let render = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<w$}"));
        }
        line.trim_end().to_owned()
    };
    out.push_str(&render(header.to_vec(), &widths));
    out.push('\n');
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&render(sep.iter().map(String::as_str).collect(), &widths));
    out.push('\n');
    for row in rows {
        out.push_str(&render(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Renders rows as CSV (no quoting — callers must not embed commas).
pub fn csv_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), header.len(), "row arity must match header");
        for cell in row {
            assert!(
                !cell.contains(',') && !cell.contains('\n'),
                "CSV cells must not contain commas or newlines: {cell:?}"
            );
        }
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_aligns_columns() {
        let t = text_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("----"));
        // The value column starts at the same offset on every row.
        let offset = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][offset..offset + 1], "1");
        assert_eq!(&lines[3][offset..offset + 2], "22");
    }

    #[test]
    fn csv_is_plain() {
        let c = csv_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_rejected() {
        text_table(&["one"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    #[should_panic(expected = "CSV cells")]
    fn commas_in_cells_rejected() {
        csv_table(&["a"], &[vec!["1,2".into()]]);
    }
}
