//! The `StatisticServer`: cluster-wide throughput collection.
//!
//! Mirrors the paper's module of the same name (§5.1). Counters are kept
//! per `(topology, component)`; topology-level throughput follows the
//! paper's definition (§6.2): *"the throughput of a topology is the
//! average throughput of all output bolts"*, in tuples per 10-second
//! window.

use crate::counter::WindowedCounter;
use crate::summary::Summary;
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};

/// Default reporting window: the paper's "tuples/10sec".
pub const DEFAULT_WINDOW_MS: f64 = 10_000.0;

#[derive(Debug, Default)]
struct Inner {
    /// (topology, component) -> processed-tuple counter.
    processed: HashMap<(String, String), WindowedCounter>,
    /// (topology, component) -> emitted-tuple counter.
    emitted: HashMap<(String, String), WindowedCounter>,
    /// (topology, component) -> observed CPU busy-time, in microseconds
    /// of core time (integer so it fits the windowed counter).
    busy_us: HashMap<(String, String), WindowedCounter>,
    /// (topology, component) -> (summed queue-depth samples, sample count).
    queue_depth: HashMap<(String, String), (u64, u64)>,
    /// topology -> declared sink components.
    sinks: HashMap<String, BTreeSet<String>>,
}

/// Thread-safe statistics collector.
#[derive(Debug)]
pub struct StatisticServer {
    window_ms: f64,
    inner: Mutex<Inner>,
}

impl Default for StatisticServer {
    fn default() -> Self {
        Self::new(DEFAULT_WINDOW_MS)
    }
}

impl StatisticServer {
    /// Creates a server with the given window width in milliseconds.
    pub fn new(window_ms: f64) -> Self {
        Self {
            window_ms,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Declares `component` as an output (sink) bolt of `topology`.
    /// Topology throughput averages over the declared sinks.
    pub fn declare_sink(&self, topology: &str, component: &str) {
        self.inner
            .lock()
            .sinks
            .entry(topology.to_owned())
            .or_default()
            .insert(component.to_owned());
    }

    /// Records `count` tuples *processed* by `component` at `at_ms`.
    pub fn record_processed(&self, topology: &str, component: &str, at_ms: f64, count: u64) {
        let mut inner = self.inner.lock();
        let window = self.window_ms;
        inner
            .processed
            .entry((topology.to_owned(), component.to_owned()))
            .or_insert_with(|| WindowedCounter::new(window))
            .record(at_ms, count);
    }

    /// Records `count` tuples *emitted* by `component` at `at_ms`.
    pub fn record_emitted(&self, topology: &str, component: &str, at_ms: f64, count: u64) {
        let mut inner = self.inner.lock();
        let window = self.window_ms;
        inner
            .emitted
            .entry((topology.to_owned(), component.to_owned()))
            .or_insert_with(|| WindowedCounter::new(window))
            .record(at_ms, count);
    }

    /// Records `busy_us` microseconds of observed CPU busy core-time for
    /// `component` at `at_ms`. The simulator's stats-export hook feeds
    /// this on every snapshot tick; the profile refiner reads it back as
    /// observed CPU points via
    /// [`StatisticServer::observed_cpu_points`].
    pub fn record_busy_us(&self, topology: &str, component: &str, at_ms: f64, busy_us: u64) {
        let mut inner = self.inner.lock();
        let window = self.window_ms;
        inner
            .busy_us
            .entry((topology.to_owned(), component.to_owned()))
            .or_insert_with(|| WindowedCounter::new(window))
            .record(at_ms, busy_us);
    }

    /// Records one queue-depth sample (`depth` tuples waiting across the
    /// component's tasks) taken at a stats-snapshot tick.
    pub fn record_queue_depth(&self, topology: &str, component: &str, depth: u64) {
        let mut inner = self.inner.lock();
        let entry = inner
            .queue_depth
            .entry((topology.to_owned(), component.to_owned()))
            .or_insert((0, 0));
        entry.0 += depth;
        entry.1 += 1;
    }

    /// Total observed CPU busy core-time of a component in milliseconds.
    pub fn component_busy_core_ms(&self, topology: &str, component: &str) -> f64 {
        self.inner
            .lock()
            .busy_us
            .get(&(topology.to_owned(), component.to_owned()))
            .map_or(0.0, |c| c.total() as f64 / 1000.0)
    }

    /// Observed CPU load of a component in the paper's *points* (100 =
    /// one full core), summed across the component's tasks: busy core
    /// time divided by elapsed wall time. Divide by the component's
    /// parallelism for a per-task figure comparable to `setCPULoad`.
    pub fn observed_cpu_points(&self, topology: &str, component: &str, elapsed_ms: f64) -> f64 {
        if elapsed_ms <= 0.0 {
            return 0.0;
        }
        self.component_busy_core_ms(topology, component) / elapsed_ms * 100.0
    }

    /// Mean queue depth over all recorded snapshot samples; `0.0` when no
    /// sample was taken.
    pub fn mean_queue_depth(&self, topology: &str, component: &str) -> f64 {
        self.inner
            .lock()
            .queue_depth
            .get(&(topology.to_owned(), component.to_owned()))
            .map_or(0.0, |(sum, n)| {
                if *n == 0 {
                    0.0
                } else {
                    *sum as f64 / *n as f64
                }
            })
    }

    /// Tuples *processed* per second by a component over complete windows
    /// in `[0, until_ms)` (see [`WindowedCounter::rate_per_sec`]).
    pub fn component_rate_per_sec(&self, topology: &str, component: &str, until_ms: f64) -> f64 {
        self.inner
            .lock()
            .processed
            .get(&(topology.to_owned(), component.to_owned()))
            .map_or(0.0, |c| c.rate_per_sec(until_ms))
    }

    /// Tuples processed per complete window by one component.
    pub fn component_windows(&self, topology: &str, component: &str, until_ms: f64) -> Vec<u64> {
        self.inner
            .lock()
            .processed
            .get(&(topology.to_owned(), component.to_owned()))
            .map(|c| c.complete_window_counts(until_ms))
            .unwrap_or_else(|| vec![0; (until_ms / self.window_ms).floor() as usize])
    }

    /// Total tuples processed by a component.
    pub fn component_total(&self, topology: &str, component: &str) -> u64 {
        self.inner
            .lock()
            .processed
            .get(&(topology.to_owned(), component.to_owned()))
            .map_or(0, WindowedCounter::total)
    }

    /// Total tuples emitted by a component.
    pub fn component_emitted_total(&self, topology: &str, component: &str) -> u64 {
        self.inner
            .lock()
            .emitted
            .get(&(topology.to_owned(), component.to_owned()))
            .map_or(0, WindowedCounter::total)
    }

    /// Topology throughput: the per-window *average over the declared
    /// sinks* of tuples processed, over complete windows in
    /// `[0, until_ms)`.
    pub fn topology_throughput(&self, topology: &str, until_ms: f64) -> ThroughputReport {
        let sinks: Vec<String> = self
            .inner
            .lock()
            .sinks
            .get(topology)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default();
        let num_windows = (until_ms / self.window_ms).floor() as usize;
        let mut windows = vec![0.0f64; num_windows];
        if !sinks.is_empty() {
            for sink in &sinks {
                let counts = self.component_windows(topology, sink, until_ms);
                for (w, c) in windows.iter_mut().zip(counts) {
                    *w += c as f64;
                }
            }
            let n = sinks.len() as f64;
            for w in &mut windows {
                *w /= n;
            }
        }
        ThroughputReport {
            window_ms: self.window_ms,
            windows,
        }
    }
}

/// Per-window topology throughput (average across sink bolts), in tuples
/// per window.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    /// Window width in milliseconds.
    pub window_ms: f64,
    /// Average sink throughput per complete window.
    pub windows: Vec<f64>,
}

impl ThroughputReport {
    /// Summary over all windows.
    pub fn summary(&self) -> Summary {
        Summary::of(self.windows.iter().copied())
    }

    /// Summary skipping the first `skip` warm-up windows.
    pub fn steady_state(&self, skip: usize) -> Summary {
        Summary::of(self.windows.iter().skip(skip).copied())
    }

    /// Mean tuples per *second* at steady state.
    pub fn steady_tuples_per_sec(&self, skip: usize) -> f64 {
        self.steady_state(skip).mean / (self.window_ms / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_throughput_averages_sinks() {
        let s = StatisticServer::new(10_000.0);
        s.declare_sink("t", "sink-a");
        s.declare_sink("t", "sink-b");
        // Window 0: a=100, b=50. Window 1: a=200, b=0.
        s.record_processed("t", "sink-a", 1_000.0, 100);
        s.record_processed("t", "sink-b", 2_000.0, 50);
        s.record_processed("t", "sink-a", 12_000.0, 200);
        let r = s.topology_throughput("t", 20_000.0);
        assert_eq!(r.windows, vec![75.0, 100.0]);
        assert_eq!(r.summary().mean, 87.5);
    }

    #[test]
    fn non_sink_components_do_not_affect_topology_rate() {
        let s = StatisticServer::new(10_000.0);
        s.declare_sink("t", "sink");
        s.record_processed("t", "middle", 1_000.0, 1_000_000);
        s.record_processed("t", "sink", 1_000.0, 10);
        let r = s.topology_throughput("t", 10_000.0);
        assert_eq!(r.windows, vec![10.0]);
    }

    #[test]
    fn unknown_topology_reports_zeroes() {
        let s = StatisticServer::new(10_000.0);
        let r = s.topology_throughput("ghost", 30_000.0);
        assert_eq!(r.windows, vec![0.0, 0.0, 0.0]);
        assert_eq!(s.component_total("ghost", "x"), 0);
    }

    #[test]
    fn emitted_and_processed_tracked_separately() {
        let s = StatisticServer::default();
        s.record_emitted("t", "spout", 0.0, 500);
        s.record_processed("t", "bolt", 0.0, 450);
        assert_eq!(s.component_emitted_total("t", "spout"), 500);
        assert_eq!(s.component_total("t", "bolt"), 450);
        assert_eq!(s.component_emitted_total("t", "bolt"), 0);
    }

    #[test]
    fn steady_state_skips_warmup() {
        let r = ThroughputReport {
            window_ms: 10_000.0,
            windows: vec![5.0, 100.0, 100.0],
        };
        assert_eq!(r.steady_state(1).mean, 100.0);
        assert_eq!(r.steady_tuples_per_sec(1), 10.0);
    }

    #[test]
    fn component_windows_for_unknown_component_are_zero() {
        let s = StatisticServer::new(10_000.0);
        assert_eq!(s.component_windows("t", "c", 25_000.0), vec![0, 0]);
    }

    #[test]
    fn busy_time_converts_to_observed_cpu_points() {
        let s = StatisticServer::new(10_000.0);
        // 5 s of busy core-time over a 20 s run = 25 points.
        s.record_busy_us("t", "bolt", 1_000.0, 2_500_000);
        s.record_busy_us("t", "bolt", 11_000.0, 2_500_000);
        assert_eq!(s.component_busy_core_ms("t", "bolt"), 5_000.0);
        assert_eq!(s.observed_cpu_points("t", "bolt", 20_000.0), 25.0);
        assert_eq!(s.observed_cpu_points("t", "ghost", 20_000.0), 0.0);
        assert_eq!(s.observed_cpu_points("t", "bolt", 0.0), 0.0);
    }

    #[test]
    fn queue_depth_samples_average() {
        let s = StatisticServer::new(10_000.0);
        s.record_queue_depth("t", "bolt", 4);
        s.record_queue_depth("t", "bolt", 8);
        assert_eq!(s.mean_queue_depth("t", "bolt"), 6.0);
        assert_eq!(s.mean_queue_depth("t", "ghost"), 0.0);
    }

    #[test]
    fn processed_rate_per_sec() {
        let s = StatisticServer::new(10_000.0);
        s.record_processed("t", "sink", 1_000.0, 400);
        s.record_processed("t", "sink", 11_000.0, 600);
        assert_eq!(s.component_rate_per_sec("t", "sink", 20_000.0), 50.0);
        assert_eq!(s.component_rate_per_sec("t", "ghost", 20_000.0), 0.0);
    }
}
