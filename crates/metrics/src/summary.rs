//! Scalar summary statistics.

use std::fmt;

/// Mean / standard deviation / min / max / count of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean (0.0 for an empty sample).
    pub mean: f64,
    /// Population standard deviation (0.0 for fewer than two samples).
    pub stddev: f64,
    /// Minimum (0.0 for an empty sample).
    pub min: f64,
    /// Maximum (0.0 for an empty sample).
    pub max: f64,
}

impl Summary {
    /// Computes a summary over an iterator of samples.
    pub fn of(values: impl IntoIterator<Item = f64>) -> Self {
        let mut count = 0usize;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for v in values {
            count += 1;
            sum += v;
            sum_sq += v * v;
            min = min.min(v);
            max = max.max(v);
        }
        if count == 0 {
            return Self {
                count: 0,
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = count as f64;
        let mean = sum / n;
        let variance = (sum_sq / n - mean * mean).max(0.0);
        Self {
            count,
            mean,
            stddev: variance.sqrt(),
            min,
            max,
        }
    }

    /// Relative improvement of `self.mean` over `baseline.mean`, as a
    /// fraction (0.5 = 50% higher). Returns `None` when the baseline mean
    /// is zero (the paper reports such cases as "orders of magnitude").
    pub fn improvement_over(&self, baseline: &Summary) -> Option<f64> {
        if baseline.mean == 0.0 {
            None
        } else {
            Some(self.mean / baseline.mean - 1.0)
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:.1} ± {:.1} (min {:.1}, max {:.1}, n={})",
            self.mean, self.stddev, self.min, self.max, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        let s = Summary::of([]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn known_values() {
        let s = Summary::of([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 2.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn single_value_has_zero_stddev() {
        let s = Summary::of([3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
    }

    #[test]
    fn improvement_math() {
        let rstorm = Summary::of([150.0]);
        let default = Summary::of([100.0]);
        assert_eq!(rstorm.improvement_over(&default), Some(0.5));
        let dead = Summary::of([0.0]);
        assert_eq!(rstorm.improvement_over(&dead), None);
    }

    #[test]
    fn display_format() {
        let s = Summary::of([1.0, 3.0]);
        assert_eq!(s.to_string(), "mean 2.0 ± 1.0 (min 1.0, max 3.0, n=2)");
    }
}
