//! Fixed-width time-window event counters.

/// Counts events into fixed-width, contiguous time windows starting at
/// t = 0. The paper reports throughput in tuples per 10-second window, so
/// a window width of `10_000.0` ms is the usual configuration.
#[derive(Debug, Clone)]
pub struct WindowedCounter {
    window_ms: f64,
    counts: Vec<u64>,
}

impl WindowedCounter {
    /// Creates a counter with the given window width in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `window_ms` is not strictly positive and finite.
    pub fn new(window_ms: f64) -> Self {
        assert!(
            window_ms.is_finite() && window_ms > 0.0,
            "window width must be positive and finite, got {window_ms}"
        );
        Self {
            window_ms,
            counts: Vec::new(),
        }
    }

    /// The configured window width in milliseconds.
    pub fn window_ms(&self) -> f64 {
        self.window_ms
    }

    /// Records `count` events at time `at_ms` (milliseconds since start).
    ///
    /// # Panics
    ///
    /// Panics if `at_ms` is negative or not finite.
    pub fn record(&mut self, at_ms: f64, count: u64) {
        assert!(
            at_ms.is_finite() && at_ms >= 0.0,
            "event time must be non-negative and finite, got {at_ms}"
        );
        let idx = (at_ms / self.window_ms) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += count;
    }

    /// Counts per window, from the first window to the last one that saw
    /// an event (intermediate empty windows are included as zero).
    pub fn window_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Mean events per *second* over the complete windows in
    /// `[0, until_ms)`; `0.0` if no window has completed yet.
    ///
    /// This is the drift detector's view of a counter: a window-aligned
    /// rate that ignores the ragged final window, so two counters sampled
    /// at the same `until_ms` are directly comparable.
    pub fn rate_per_sec(&self, until_ms: f64) -> f64 {
        let counts = self.complete_window_counts(until_ms);
        if counts.is_empty() {
            return 0.0;
        }
        let elapsed_s = counts.len() as f64 * self.window_ms / 1000.0;
        counts.iter().sum::<u64>() as f64 / elapsed_s
    }

    /// Counts per window truncated to full windows within `[0, until_ms)`.
    /// Use this to drop the final partial window of a simulation run.
    pub fn complete_window_counts(&self, until_ms: f64) -> Vec<u64> {
        let full = (until_ms / self.window_ms).floor() as usize;
        let mut counts = self.counts.clone();
        counts.truncate(full);
        counts.resize(full.min(counts.len().max(full)), 0);
        // Ensure we report exactly `full` windows even if the tail saw no
        // events at all.
        if counts.len() < full {
            counts.resize(full, 0);
        }
        counts
    }

    /// Total number of recorded events.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean events per window over the windows returned by
    /// [`WindowedCounter::complete_window_counts`]; `None` if there are no
    /// complete windows.
    pub fn mean_per_window(&self, until_ms: f64) -> Option<f64> {
        let counts = self.complete_window_counts(until_ms);
        if counts.is_empty() {
            return None;
        }
        Some(counts.iter().sum::<u64>() as f64 / counts.len() as f64)
    }

    /// Mean events per window ignoring an initial warm-up prefix of
    /// `skip` windows (the paper lets topologies "stabilize and converge"
    /// before reading throughput).
    pub fn steady_state_mean(&self, until_ms: f64, skip: usize) -> Option<f64> {
        let counts = self.complete_window_counts(until_ms);
        if counts.len() <= skip {
            return None;
        }
        let tail = &counts[skip..];
        Some(tail.iter().sum::<u64>() as f64 / tail.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_land_in_their_window() {
        let mut c = WindowedCounter::new(10_000.0);
        c.record(0.0, 1);
        c.record(9_999.9, 1);
        c.record(10_000.0, 5);
        c.record(35_000.0, 2);
        assert_eq!(c.window_counts(), vec![2, 5, 0, 2]);
        assert_eq!(c.total(), 9);
    }

    #[test]
    fn rate_per_sec_uses_complete_windows_only() {
        let mut c = WindowedCounter::new(10_000.0);
        c.record(1_000.0, 100);
        c.record(11_000.0, 300);
        c.record(21_000.0, 1_000_000); // partial window: ignored
        assert_eq!(c.rate_per_sec(25_000.0), 400.0 / 20.0);
        assert_eq!(c.rate_per_sec(5_000.0), 0.0);
        assert_eq!(WindowedCounter::new(10.0).rate_per_sec(1_000.0), 0.0);
    }

    #[test]
    fn complete_windows_drop_partial_tail() {
        let mut c = WindowedCounter::new(10_000.0);
        c.record(5_000.0, 10);
        c.record(25_000.0, 4);
        // Run lasted 28 s: only two complete 10 s windows.
        assert_eq!(c.complete_window_counts(28_000.0), vec![10, 0]);
    }

    #[test]
    fn complete_windows_pad_with_zeroes() {
        let mut c = WindowedCounter::new(10_000.0);
        c.record(1_000.0, 1);
        // 50 s run but events only in the first window.
        assert_eq!(c.complete_window_counts(50_000.0), vec![1, 0, 0, 0, 0]);
    }

    #[test]
    fn means() {
        let mut c = WindowedCounter::new(10_000.0);
        for w in 0..6u64 {
            c.record(w as f64 * 10_000.0 + 1.0, if w < 2 { 0 } else { 100 });
        }
        assert_eq!(c.mean_per_window(60_000.0), Some(400.0 / 6.0));
        // Skipping the 2-window warm-up gives the steady-state rate.
        assert_eq!(c.steady_state_mean(60_000.0, 2), Some(100.0));
        assert_eq!(c.steady_state_mean(60_000.0, 6), None);
        assert_eq!(WindowedCounter::new(10.0).mean_per_window(5.0), None);
    }

    #[test]
    #[should_panic(expected = "window width")]
    fn zero_window_rejected() {
        WindowedCounter::new(0.0);
    }

    #[test]
    #[should_panic(expected = "event time")]
    fn negative_time_rejected() {
        WindowedCounter::new(10.0).record(-1.0, 1);
    }
}
