//! # rstorm-metrics
//!
//! Statistics collection for R-Storm — the counterpart of the paper's
//! *StatisticServer* module (§5.1): "responsible for collecting statistics
//! in the Storm cluster, e.g., throughput on a task, component, and
//! topology level."
//!
//! The reporting conventions match the paper's evaluation (§6.2):
//! throughput is tallied in **tuples per 10-second window**, topology
//! throughput is the **average throughput of all output (sink) bolts**,
//! and CPU utilization is averaged over the machines actually used.
//!
//! ## Example
//!
//! ```
//! use rstorm_metrics::WindowedCounter;
//!
//! let mut counter = WindowedCounter::new(10_000.0); // 10 s windows
//! counter.record(500.0, 3);
//! counter.record(12_000.0, 5);
//! assert_eq!(counter.window_counts(), vec![3, 5]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod counter;
mod cpu;
mod report;
mod stats_server;
mod summary;
mod timeseries;

pub use counter::WindowedCounter;
pub use cpu::CpuUtilizationTracker;
pub use report::{csv_table, text_table};
pub use stats_server::{StatisticServer, ThroughputReport};
pub use summary::Summary;
pub use timeseries::TimeSeries;
