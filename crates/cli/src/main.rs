//! The `rstorm` command-line interface: schedule, verify, simulate and
//! compare topologies described in plain-text spec files (see the
//! `rstorm-spec` crate for the formats).
//!
//! ```text
//! rstorm schedule --topology topo.spec --cluster cluster.spec [--scheduler NAME]
//! rstorm simulate --topology topo.spec --cluster cluster.spec [--duration-s N] [--seed N]
//! rstorm compare  --topology topo.spec --cluster cluster.spec [--duration-s N]
//! rstorm sweep    [--grid quick|full] [--seeds A..B] [--workers N] [--out FILE]
//! rstorm fuzz     --topology topo.spec --cluster cluster.spec [--iterations N] [--seed N]
//! rstorm scale    [--tasks N] [--nodes N] [--horizon-ms N] [--seed N] [--churn]
//! rstorm example-specs
//! ```

use rstorm_cluster::Cluster;
use rstorm_core::schedulers::EvenScheduler;
use rstorm_core::{schedulers, verify_plan, GlobalState, RStormScheduler, Scheduler};
use rstorm_metrics::text_table;
use rstorm_sim::{
    run_adaptive_rebalance, run_control_outage, run_crash_recover, run_fuzz_campaign, run_sweep,
    AdaptiveConfig, ChaosConfig, ControlOutageConfig, FuzzConfig, NetworkModel, SeedRange,
    SimConfig, SimReport, Simulation,
};
use rstorm_spec::{parse_cluster, parse_topology};
use rstorm_topology::Topology;
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
rstorm — resource-aware scheduling for Storm-style topologies

USAGE:
    rstorm schedule --topology FILE --cluster FILE [--scheduler NAME]
    rstorm simulate --topology FILE --cluster FILE [--scheduler NAME]
                    [--duration-s N] [--seed N]
    rstorm compare  --topology FILE --cluster FILE [--duration-s N] [--seed N]
    rstorm chaos    --topology FILE --cluster FILE [--victim NODE]
                    [--crash-at-s N] [--heal-at-s N] [--duration-s N] [--seed N]
                    [--replay] [--max-replays N] [--network fair|legacy]
                    [--nimbus-down-ms N] [--journal on|off]
    rstorm rebalance --topology FILE --cluster FILE [--observe-s N]
                    [--rebalance-at-s N] [--pause-ms N] [--alpha X]
                    [--duration-s N] [--seed N]
    rstorm sweep    [--grid quick|full] [--seeds A..B] [--workers N]
                    [--out FILE] [--network fair|legacy]
    rstorm fuzz     --topology FILE --cluster FILE [--iterations N]
                    [--seed N] [--max-atoms N] [--duration-s N]
                    [--scheduler NAME] [--workers N] [--corpus-dir DIR]
                    [--out FILE] [--journal on|off]
    rstorm scale    [--tasks N] [--nodes N] [--horizon-ms N] [--seed N]
                    [--churn]
    rstorm example-specs

SCHEDULERS:
    rstorm (default), default (Storm's round-robin), offline, random,
    exhaustive
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("missing command".into());
    };
    match command.as_str() {
        "schedule" => schedule_cmd(&parse_flags(&args[1..])?),
        "simulate" => simulate_cmd(&parse_flags(&args[1..])?),
        "compare" => compare_cmd(&parse_flags(&args[1..])?),
        "chaos" => chaos_cmd(&parse_flags(&args[1..])?),
        "rebalance" => rebalance_cmd(&parse_flags(&args[1..])?),
        "sweep" => sweep_cmd(&parse_flags(&args[1..])?),
        "fuzz" => fuzz_cmd(&parse_flags(&args[1..])?),
        "scale" => scale_cmd(&parse_flags(&args[1..])?),
        "example-specs" => {
            print_example_specs();
            Ok(())
        }
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Flags that take no value: their presence means `"true"`.
const BOOLEAN_FLAGS: &[&str] = &["replay", "churn"];

fn parse_flags(args: &[String]) -> Result<BTreeMap<String, String>, String> {
    let mut flags = BTreeMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got `{flag}`"))?;
        if BOOLEAN_FLAGS.contains(&name) {
            flags.insert(name.to_owned(), "true".to_owned());
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_owned(), value.clone());
    }
    Ok(flags)
}

fn load_inputs(flags: &BTreeMap<String, String>) -> Result<(Topology, Cluster), String> {
    let topology_path = flags.get("topology").ok_or("--topology FILE is required")?;
    let cluster_path = flags.get("cluster").ok_or("--cluster FILE is required")?;
    let topology_text = std::fs::read_to_string(topology_path)
        .map_err(|e| format!("reading {topology_path}: {e}"))?;
    let cluster_text = std::fs::read_to_string(cluster_path)
        .map_err(|e| format!("reading {cluster_path}: {e}"))?;
    let topology = parse_topology(&topology_text).map_err(|e| format!("{topology_path}: {e}"))?;
    let cluster = parse_cluster(&cluster_text).map_err(|e| format!("{cluster_path}: {e}"))?;
    Ok((topology, cluster))
}

/// Parses `--journal on|off`; `default` applies when the flag is absent.
fn journal_flag(flags: &BTreeMap<String, String>, default: bool) -> Result<bool, String> {
    match flags.get("journal").map(String::as_str) {
        None => Ok(default),
        Some("on") => Ok(true),
        Some("off") => Ok(false),
        Some(other) => Err(format!(
            "invalid --journal `{other}` (expected `on` or `off`)"
        )),
    }
}

fn make_scheduler(flags: &BTreeMap<String, String>) -> Result<Box<dyn Scheduler>, String> {
    let name = flags
        .get("scheduler")
        .map(String::as_str)
        .unwrap_or("rstorm");
    let scheduler: Box<dyn Scheduler> =
        schedulers::by_name(name).ok_or_else(|| format!("unknown scheduler `{name}`"))?;
    Ok(scheduler)
}

fn sim_config(flags: &BTreeMap<String, String>) -> Result<SimConfig, String> {
    let mut config = SimConfig::default();
    if let Some(seconds) = flags.get("duration-s") {
        let seconds: f64 = seconds
            .parse()
            .map_err(|_| format!("invalid --duration-s `{seconds}`"))?;
        config = config.with_sim_time_ms(seconds * 1000.0);
    }
    if let Some(seed) = flags.get("seed") {
        let seed: u64 = seed
            .parse()
            .map_err(|_| format!("invalid --seed `{seed}`"))?;
        config = config.with_seed(seed);
    }
    Ok(config)
}

/// Applies `--network fair|legacy` to `config`. Absent, the config is
/// returned untouched (the default `Legacy` model); an unknown word is
/// a typed error carrying [`NetworkModel::parse`]'s message.
fn apply_network_flag(
    flags: &BTreeMap<String, String>,
    config: SimConfig,
) -> Result<SimConfig, String> {
    match flags.get("network") {
        Some(raw) => {
            let model = NetworkModel::parse(raw).map_err(|e| format!("invalid --network: {e}"))?;
            Ok(config.with_network_model(model))
        }
        None => Ok(config),
    }
}

fn schedule_cmd(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let (topology, cluster) = load_inputs(flags)?;
    let scheduler = make_scheduler(flags)?;
    let mut state = GlobalState::new(&cluster);
    let assignment = scheduler
        .schedule(&topology, &cluster, &mut state)
        .map_err(|e| e.to_string())?;

    println!(
        "scheduled `{}` with the {} scheduler: {} tasks on {} machines\n",
        topology.id(),
        scheduler.name(),
        assignment.len(),
        assignment.used_nodes().len()
    );
    let task_set = topology.task_set();
    let rows: Vec<Vec<String>> = task_set
        .tasks()
        .iter()
        .map(|t| {
            vec![
                t.to_string(),
                assignment
                    .slot_of(t.id)
                    .expect("complete assignment")
                    .to_string(),
            ]
        })
        .collect();
    println!("{}", text_table(&["task", "worker slot"], &rows));

    let violations = verify_plan(state.plan(), &[&topology], &cluster);
    if violations.is_empty() {
        println!("plan verified: no constraint violations");
    } else {
        println!("plan has {} violation(s):", violations.len());
        for v in &violations {
            println!("  - {v}");
        }
    }
    Ok(())
}

fn print_report(topology: &Topology, report: &SimReport) {
    println!(
        "steady throughput: {:.0} tuples/10s (mean over sink bolts)",
        report.steady_throughput(topology.id().as_str(), 2)
    );
    println!(
        "tuple latency: mean {:.2} ms (max {:.2} ms over {} completed trees)",
        report.latency_ms.mean, report.latency_ms.max, report.latency_ms.count
    );
    println!(
        "machines used: {}, mean CPU utilization {:.0}%",
        report.used_nodes,
        report.mean_used_cpu_utilization.mean * 100.0
    );
    println!(
        "inter-rack traffic: {:.1} MB; tuple trees timed out: {}",
        report.inter_rack_mb, report.totals.roots_timed_out
    );
}

fn simulate_cmd(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let (topology, cluster) = load_inputs(flags)?;
    let scheduler = make_scheduler(flags)?;
    let config = sim_config(flags)?;
    let mut state = GlobalState::new(&cluster);
    let assignment = scheduler
        .schedule(&topology, &cluster, &mut state)
        .map_err(|e| e.to_string())?;
    let duration = config.sim_time_ms;
    let mut sim = Simulation::new(cluster, config);
    sim.add_topology(&topology, &assignment);
    let report = sim.run();
    println!(
        "simulated `{}` for {:.0} s under the {} scheduler",
        topology.id(),
        duration / 1000.0,
        scheduler.name()
    );
    print_report(&topology, &report);
    Ok(())
}

fn compare_cmd(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let (topology, cluster) = load_inputs(flags)?;
    let config = sim_config(flags)?;
    for scheduler in [
        &RStormScheduler::new() as &dyn Scheduler,
        &EvenScheduler::new(),
    ] {
        let mut state = GlobalState::new(&cluster);
        let assignment = scheduler
            .schedule(&topology, &cluster, &mut state)
            .map_err(|e| e.to_string())?;
        let mut sim = Simulation::new(cluster.clone(), config.clone());
        sim.add_topology(&topology, &assignment);
        let report = sim.run();
        println!("=== {} ===", scheduler.name());
        print_report(&topology, &report);
        println!();
    }
    Ok(())
}

/// Runs a crash-then-recover chaos scenario: schedules with R-Storm,
/// crashes the victim node mid-run, and reports detection/recovery
/// latency plus the data-plane damage. With `--nimbus-down-ms N` the
/// control plane itself goes dark 2 s before the crash for N ms, and a
/// successor reassumes afterwards — journaled by default, cold with
/// `--journal off` — reporting time-to-reassume and the journal
/// decisions replayed alongside the usual recovery metrics.
fn chaos_cmd(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let (topology, cluster) = load_inputs(flags)?;
    let config = apply_network_flag(flags, sim_config(flags)?)?;
    let duration_s = config.sim_time_ms / 1000.0;

    let parse_s = |name: &str, default: f64| -> Result<f64, String> {
        match flags.get(name) {
            Some(raw) => raw.parse().map_err(|_| format!("invalid --{name} `{raw}`")),
            None => Ok(default),
        }
    };
    let crash_at_s = parse_s("crash-at-s", duration_s / 3.0)?;
    let heal_at_s = parse_s("heal-at-s", crash_at_s + duration_s / 4.0)?;
    if !(crash_at_s >= 0.0 && crash_at_s < heal_at_s) {
        return Err(format!(
            "need 0 <= --crash-at-s ({crash_at_s}) < --heal-at-s ({heal_at_s})"
        ));
    }

    let cluster = Arc::new(cluster);
    let victim = match flags.get("victim") {
        Some(name) => name.clone(),
        None => {
            // Default to a node the placement actually uses — crashing an
            // idle machine demonstrates nothing.
            let mut state = GlobalState::new(&cluster);
            let assignment = RStormScheduler::new()
                .schedule(&topology, &cluster, &mut state)
                .map_err(|e| e.to_string())?;
            let host = assignment.iter().next().expect("non-empty assignment");
            host.1.node.as_str().to_owned()
        }
    };
    if !cluster.nodes().iter().any(|n| n.id().as_str() == victim) {
        return Err(format!("--victim `{victim}` is not a node of the cluster"));
    }

    // `--replay` turns on guaranteed processing with a default budget of
    // 3 re-emissions per root; `--max-replays` sets the budget exactly.
    let max_replays: u32 = match flags.get("max-replays") {
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid --max-replays `{raw}`"))?,
        None if flags.contains_key("replay") => 3,
        None => 0,
    };

    // `--nimbus-down-ms` switches to the control-plane outage scenario:
    // Nimbus goes dark 2 s before the crash, so the victim's silence
    // starts while nobody is watching.
    if let Some(raw) = flags.get("nimbus-down-ms") {
        let nimbus_down_ms: f64 = raw
            .parse()
            .ok()
            .filter(|ms: &f64| ms.is_finite() && *ms > 0.0)
            .ok_or_else(|| {
                format!("invalid --nimbus-down-ms `{raw}` (need a positive duration)")
            })?;
        let journal = journal_flag(flags, true)?;
        let mut outage = ControlOutageConfig::new(
            victim.clone(),
            crash_at_s * 1000.0,
            heal_at_s * 1000.0,
            (crash_at_s * 1000.0 - 2_000.0).max(0.0),
            nimbus_down_ms,
        );
        outage.sim = config.with_max_replays(max_replays);
        outage.recovery.journal = journal;
        let out = run_control_outage(&cluster, &topology, &outage).map_err(|e| e.to_string())?;

        println!(
            "control outage on `{}`: crash {victim} at {crash_at_s:.0} s, Nimbus down \
             {:.0}..{:.0} s, journal {} (sim {duration_s:.0} s{})\n",
            topology.id(),
            outage.nimbus_down_at_ms / 1000.0,
            (outage.nimbus_down_at_ms + nimbus_down_ms) / 1000.0,
            if journal { "on" } else { "off" },
            if max_replays > 0 {
                format!(", replay budget {max_replays}")
            } else {
                String::new()
            }
        );
        for event in &out.events {
            println!("  {event:?}");
        }
        println!();
        if out.time_to_reassume_ms >= 0.0 {
            println!(
                "time to reassume: {:.0} ms after Nimbus went down",
                out.time_to_reassume_ms
            );
        } else {
            println!("time to reassume: never (the outage outlived the run)");
        }
        println!("journal decisions replayed: {}", out.decisions_replayed);
        let obs = out.observations;
        if obs.time_to_detect_ms >= 0.0 {
            println!(
                "time to detect: {:.0} ms after the crash",
                obs.time_to_detect_ms
            );
        } else {
            println!("time to detect: never (within the run)");
        }
        if obs.time_to_recover_ms >= 0.0 {
            println!(
                "time to full re-placement: {:.0} ms after the crash",
                obs.time_to_recover_ms
            );
        } else {
            println!("time to full re-placement: never (within the run)");
        }
        if max_replays > 0 {
            println!(
                "replay: {} roots re-emitted; {} tuples quarantined; zero-loss ratio {:.3}",
                obs.roots_replayed,
                obs.tuples_quarantined,
                out.report.zero_loss_ratio()
            );
        }
        println!();
        print_report(&topology, &out.report);

        let violations = verify_plan(&out.plan, &[&topology], &cluster);
        if violations.is_empty() {
            println!("final plan verified: no constraint violations");
            return Ok(());
        }
        let mut lines = vec![format!("final plan has {} violation(s):", violations.len())];
        lines.extend(violations.iter().map(|v| format!("  - {v}")));
        return Err(lines.join("\n"));
    }
    if flags.contains_key("journal") {
        return Err("--journal requires --nimbus-down-ms".into());
    }

    let mut chaos = ChaosConfig::new(victim.clone(), crash_at_s * 1000.0, heal_at_s * 1000.0);
    chaos.sim = config.with_max_replays(max_replays);
    let out = run_crash_recover(&cluster, &topology, &chaos);

    println!(
        "chaos scenario on `{}`: crash {victim} at {crash_at_s:.0} s, heal at {heal_at_s:.0} s \
         (sim {duration_s:.0} s{})\n",
        topology.id(),
        if max_replays > 0 {
            format!(", replay budget {max_replays}")
        } else {
            String::new()
        }
    );
    for event in &out.events {
        println!("  {event:?}");
    }
    let obs = out.observations;
    println!();
    if obs.time_to_detect_ms >= 0.0 {
        println!(
            "time to detect: {:.0} ms after the crash",
            obs.time_to_detect_ms
        );
    } else {
        println!("time to detect: never (within the run)");
    }
    if obs.time_to_recover_ms >= 0.0 {
        println!(
            "time to full re-placement: {:.0} ms after the crash",
            obs.time_to_recover_ms
        );
    } else {
        println!("time to full re-placement: never (within the run)");
    }
    println!(
        "tuples lost: {}; throughput dip depth: {:.0}%; reschedule attempts: {}",
        obs.tuples_lost,
        obs.throughput_dip_depth * 100.0,
        obs.reschedule_attempts
    );
    if max_replays > 0 {
        println!(
            "replay: {} roots re-emitted; {} tuples quarantined; zero-loss ratio {:.3}; \
             {} flap(s) suppressed",
            obs.roots_replayed,
            obs.tuples_quarantined,
            out.report.zero_loss_ratio(),
            obs.suppressed_flaps
        );
    }
    println!();
    print_report(&topology, &out.report);

    let violations = verify_plan(&out.plan, &[&topology], &cluster);
    if violations.is_empty() {
        println!("final plan verified: no constraint violations");
    } else {
        println!("final plan has {} violation(s):", violations.len());
        for v in &violations {
            println!("  - {v}");
        }
    }
    Ok(())
}

/// Runs the adaptive rebalance plane end to end: profiles the R-Storm
/// placement, detects declaration drift, plans a minimal-move migration
/// and reports the static / adaptive / full-reschedule comparison.
fn rebalance_cmd(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let (topology, cluster) = load_inputs(flags)?;
    let config = sim_config(flags)?;
    let duration_s = config.sim_time_ms / 1000.0;

    let parse_f = |name: &str, default: f64| -> Result<f64, String> {
        match flags.get(name) {
            Some(raw) => raw.parse().map_err(|_| format!("invalid --{name} `{raw}`")),
            None => Ok(default),
        }
    };
    let mut adaptive = AdaptiveConfig::default();
    // Defaults scale with the horizon so short runs still observe,
    // rebalance and then measure the effect.
    adaptive.observe_ms = parse_f("observe-s", duration_s / 3.0)? * 1000.0;
    adaptive.stats_interval_ms = (adaptive.observe_ms / 10.0).max(1.0);
    adaptive.rebalance_at_ms = parse_f("rebalance-at-s", duration_s / 3.0)? * 1000.0;
    adaptive.pause_ms = parse_f("pause-ms", adaptive.pause_ms)?;
    adaptive.alpha = parse_f("alpha", adaptive.alpha)?;
    if !(adaptive.observe_ms > 0.0 && adaptive.observe_ms.is_finite()) {
        return Err(format!(
            "--observe-s must be positive, got {}",
            adaptive.observe_ms / 1000.0
        ));
    }
    if !(adaptive.alpha > 0.0 && adaptive.alpha <= 1.0) {
        return Err(format!("--alpha must be in (0, 1], got {}", adaptive.alpha));
    }
    if !(adaptive.pause_ms >= 0.0 && adaptive.pause_ms.is_finite()) {
        return Err(format!(
            "--pause-ms must be non-negative, got {}",
            adaptive.pause_ms
        ));
    }
    adaptive.sim = config;

    let cluster = Arc::new(cluster);
    let out = run_adaptive_rebalance(&cluster, &topology, &adaptive);

    println!(
        "adaptive rebalance on `{}`: profiled {:.0} s, rebalance at {:.0} s, \
         pause {:.0} ms/task (sim {:.0} s)\n",
        topology.id(),
        adaptive.observe_ms / 1000.0,
        adaptive.rebalance_at_ms / 1000.0,
        adaptive.pause_ms,
        adaptive.sim.sim_time_ms / 1000.0
    );

    if out.drift.is_clean() {
        println!("no declaration drift detected; placement left untouched");
    } else {
        println!("drifted components:");
        let rows: Vec<Vec<String>> = out
            .drift
            .drifted
            .iter()
            .map(|d| {
                vec![
                    d.component.clone(),
                    format!("{:.1}", d.declared_cpu_points),
                    format!("{:.1}", d.observed_cpu_points),
                    format!("{:.2}x", d.ratio),
                ]
            })
            .collect();
        println!(
            "{}",
            text_table(&["component", "declared", "observed", "ratio"], &rows)
        );
        println!(
            "saturated nodes: {:?}; starved nodes: {:?}",
            out.drift.saturated_nodes, out.drift.starved_nodes
        );
    }
    println!();
    if out.plan.is_empty() {
        println!("migration plan: empty (simulation stays bit-identical to static)");
    } else {
        println!(
            "migration plan: {} move(s) (a full reschedule would move {}):",
            out.plan.len(),
            out.rescheduled_moves
        );
        for m in &out.plan.moves {
            println!(
                "  {} ({}) {} -> {}",
                m.task,
                m.component,
                m.from.as_str(),
                m.to.as_str()
            );
        }
    }
    println!();
    println!("net tuples completed over the full horizon:");
    let rows = vec![
        vec!["static".to_owned(), out.static_net().to_string()],
        vec!["adaptive".to_owned(), out.adaptive_net().to_string()],
        vec![
            "full reschedule".to_owned(),
            out.rescheduled_net().to_string(),
        ],
    ];
    println!("{}", text_table(&["strategy", "tuples"], &rows));
    println!("=== adaptive run ===");
    print_report(&topology, &out.adaptive_report);
    Ok(())
}

/// Runs the Monte-Carlo scenario sweep: a preset grid of (workload ×
/// scheduler × fault × seed) runs fanned across a worker pool, with
/// per-group distributions printed and, with `--out`, the deterministic
/// aggregated JSON written to a file.
fn sweep_cmd(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let seeds: SeedRange = match flags.get("seeds") {
        Some(raw) => raw
            .parse()
            .map_err(|e| format!("invalid --seeds `{raw}`: {e}"))?,
        None => SeedRange::new(0, 8).expect("the default seed range is valid"),
    };
    let mut grid = match flags.get("grid").map(String::as_str) {
        None | Some("quick") => rstorm_workloads::sweep::quick_grid(seeds),
        Some("full") => rstorm_workloads::sweep::full_grid(seeds),
        Some(other) => return Err(format!("unknown --grid `{other}` (expected quick or full)")),
    };
    // `--network fair` runs the whole grid on the fair-share plane
    // (congestion specs use it regardless; this flag extends it to every
    // job). `--network legacy` is the explicit default spelling.
    grid.sim = apply_network_flag(flags, grid.sim)?;
    let workers: usize = match flags.get("workers") {
        Some(raw) => {
            let n = raw
                .parse()
                .map_err(|_| format!("invalid --workers `{raw}`"))?;
            if n == 0 {
                return Err("--workers must be at least 1".into());
            }
            n
        }
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    };

    println!(
        "sweeping {} jobs ({} cases x {} schedulers x {} faults x {} seeds) on {} worker(s)...",
        grid.job_count(),
        grid.cases.len(),
        grid.schedulers.len(),
        grid.faults.len(),
        seeds.len(),
        workers
    );
    let out = run_sweep(&grid, workers);

    println!(
        "\n{:<40} {:>9} {:>9} {:>10} {:>8} {:>9}",
        "group", "detect", "recover", "net", "±stdev", "zeroloss"
    );
    for g in &out.summary.groups {
        println!(
            "{:<40} {:>7.0}ms {:>7.0}ms {:>10.0} {:>8.0} {:>9.3}",
            g.name, g.detect_ms.p50, g.recover_ms.p50, g.net_mean, g.net_stdev, g.zero_loss_min
        );
    }
    println!(
        "\n{} jobs on {} worker(s) in {:.2} s",
        out.summary.jobs,
        out.workers,
        out.wall.as_secs_f64()
    );

    if let Some(path) = flags.get("out") {
        std::fs::write(path, out.summary.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Runs an invariant-directed chaos-fuzz campaign against the given
/// workload: seeded fault plans sampled from the crash / flap / burst /
/// partition / degrade / Nimbus-outage / control-loss grammar, each
/// checked against the oracle set (accounting invariants, zero loss,
/// detection liveness, routing parity, reconciliation convergence and
/// placement, determinism), with violating plans shrunk to minimal
/// reproducers. `--corpus-dir` writes each reproducer as a replayable
/// `.plan` file; a campaign that finds violations exits non-zero.
fn fuzz_cmd(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let (topology, cluster) = load_inputs(flags)?;
    let cluster = Arc::new(cluster);
    let name = flags
        .get("scheduler")
        .map(String::as_str)
        .unwrap_or("rstorm");
    let scheduler =
        schedulers::by_name(name).ok_or_else(|| format!("unknown scheduler `{name}`"))?;

    let mut cfg = FuzzConfig::default();
    if let Some(raw) = flags.get("iterations") {
        cfg.iterations = raw
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("invalid --iterations `{raw}` (need a positive integer)"))?;
    }
    if let Some(raw) = flags.get("seed") {
        cfg.seed = raw.parse().map_err(|_| format!("invalid --seed `{raw}`"))?;
    }
    if let Some(raw) = flags.get("max-atoms") {
        cfg.max_atoms = raw
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("invalid --max-atoms `{raw}` (need a positive integer)"))?;
    }
    if let Some(raw) = flags.get("duration-s") {
        let seconds: f64 = raw
            .parse()
            .map_err(|_| format!("invalid --duration-s `{raw}`"))?;
        cfg.sim = cfg.sim.with_sim_time_ms(seconds * 1000.0);
    }
    // Journaled failover is the fuzz default (Nimbus-outage atoms are in
    // the grammar); `--journal off` fuzzes the cold-successor plane.
    cfg.recovery.journal = journal_flag(flags, cfg.recovery.journal)?;
    let workers: usize = match flags.get("workers") {
        Some(raw) => raw
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("invalid --workers `{raw}` (need a positive integer)"))?,
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    };

    println!(
        "fuzzing `{}` under the {} scheduler: {} iterations, seed {}, horizon {:.0} s, \
         {} worker(s), oracles on\n",
        topology.id(),
        name,
        cfg.iterations,
        cfg.seed,
        cfg.sim.sim_time_ms / 1000.0,
        workers
    );
    let out = run_fuzz_campaign(&cluster, &topology, &*scheduler, &cfg, workers);
    print!("{}", out.campaign_log());

    if let Some(dir) = flags.get("corpus-dir") {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
        for r in &out.reproducers {
            let path = format!("{dir}/fuzz-{}-{:04}.plan", r.seed, r.iteration);
            std::fs::write(&path, r.to_text()).map_err(|e| format!("writing {path}: {e}"))?;
            println!("wrote {path}");
        }
    }
    if let Some(path) = flags.get("out") {
        std::fs::write(path, out.campaign_log()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }

    if out.is_clean() {
        println!("\ncampaign clean: no oracle violated");
        Ok(())
    } else {
        Err(format!(
            "fuzz campaign tripped {} oracle violation(s); see the shrunk reproducers above",
            out.reproducers.len()
        ))
    }
}

/// Runs the scale plane from the CLI: a √tasks-wide chain of exactly
/// `--tasks` tasks on a `--nodes`-node cluster, optionally with the
/// migration-churn variant (`--churn`) that drives the composed
/// `DeltaScheduler` plans through the run — exercising the incremental
/// routing patch path at whatever size fits the terminal's patience.
fn scale_cmd(flags: &BTreeMap<String, String>) -> Result<(), String> {
    use rstorm_workloads::scale;

    let parse_u32 = |name: &str, default: u32| -> Result<u32, String> {
        match flags.get(name) {
            Some(raw) => raw.parse().map_err(|_| format!("invalid --{name} `{raw}`")),
            None => Ok(default),
        }
    };
    let tasks = parse_u32("tasks", scale::SCALE_TASKS)?;
    if tasks < 2 {
        return Err(format!("--tasks must be at least 2, got {tasks}"));
    }
    let nodes = parse_u32("nodes", scale::SCALE_NODES)?;
    if nodes == 0 {
        return Err("--nodes must be at least 1".into());
    }
    let horizon_ms: f64 = match flags.get("horizon-ms") {
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid --horizon-ms `{raw}`"))?,
        None => scale::SCALE_HORIZON_MS,
    };
    if !(horizon_ms > 0.0 && horizon_ms.is_finite()) {
        return Err(format!("--horizon-ms must be positive, got {horizon_ms}"));
    }
    let mut config = SimConfig::default().with_sim_time_ms(horizon_ms);
    if let Some(seed) = flags.get("seed") {
        let seed: u64 = seed
            .parse()
            .map_err(|_| format!("invalid --seed `{seed}`"))?;
        config = config.with_seed(seed);
    }
    let churn = flags.contains_key("churn");

    let topology = scale::scale_topology(tasks);
    let cluster = scale::scale_cluster(nodes);
    // Validate schedulability up front so an undersized cluster is a
    // typed error, not a panic out of `churn_plans`.
    let mut state = GlobalState::new(&cluster);
    let assignment = RStormScheduler::new()
        .schedule(&topology, &cluster, &mut state)
        .map_err(|e| format!("{tasks} tasks do not fit on {nodes} nodes: {e}"))?;

    println!(
        "scale plane: {} tasks in {} components on {} nodes, horizon {:.0} s{}",
        tasks,
        topology.components().len(),
        cluster.nodes().len(),
        horizon_ms / 1000.0,
        if churn { ", with migration churn" } else { "" }
    );

    let mut sim = Simulation::new(cluster.clone(), config);
    if churn {
        let (churn_assignment, plans) =
            scale::churn_plans(&topology, &cluster, scale::SCALE_CHURN_ROUNDS);
        let migrations: usize = plans.iter().map(|p| p.len()).sum();
        println!(
            "churn: {} migrations over {} plans via the incremental routing patch path",
            migrations,
            plans.len()
        );
        sim.add_topology(&topology, &churn_assignment);
        scale::schedule_churn(&mut sim, &plans, horizon_ms);
    } else {
        sim.add_topology(&topology, &assignment);
    }
    println!();
    let report = sim.run();
    print_report(&topology, &report);
    Ok(())
}

fn print_example_specs() {
    println!("# ---- word-count.spec ----------------------------------");
    println!(
        "topology word-count\nworkers 12\nmax-spout-pending 4\n\n\
         spout sentences parallelism=4 cpu=50 mem=512 work-ms=0.05 bytes=200 rate=7000\n\
         bolt split parallelism=6 cpu=30 mem=256 work-ms=0.04\n  subscribe sentences shuffle\n\
         bolt count parallelism=6 cpu=30 mem=256 work-ms=0.03 emit=0\n  subscribe split fields word\n"
    );
    println!("# ---- emulab.spec ---------------------------------------");
    println!("cluster");
    for rack in 0..2 {
        println!("rack rack-{rack}");
        for node in 0..6 {
            println!("  node rack-{rack}-node-{node} cpu=100 mem=2048 slots=4");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing() {
        let flags = parse_flags(&[
            "--topology".into(),
            "t.spec".into(),
            "--seed".into(),
            "7".into(),
        ])
        .unwrap();
        assert_eq!(flags["topology"], "t.spec");
        assert_eq!(flags["seed"], "7");
        assert!(parse_flags(&["oops".into()]).is_err());
        assert!(parse_flags(&["--dangling".into()]).is_err());
    }

    #[test]
    fn boolean_flags_take_no_value() {
        // `--replay` alone is complete…
        let flags = parse_flags(&["--replay".into()]).unwrap();
        assert_eq!(flags["replay"], "true");
        // …and does not swallow the following flag.
        let flags = parse_flags(&["--replay".into(), "--seed".into(), "9".into()]).unwrap();
        assert_eq!(flags["replay"], "true");
        assert_eq!(flags["seed"], "9");
    }

    #[test]
    fn scheduler_selection() {
        let mut flags = BTreeMap::new();
        assert_eq!(make_scheduler(&flags).unwrap().name(), "rstorm");
        flags.insert("scheduler".into(), "default".into());
        assert_eq!(make_scheduler(&flags).unwrap().name(), "default");
        flags.insert("scheduler".into(), "martian".into());
        assert!(make_scheduler(&flags).is_err());
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run(&["frobnicate".into()]).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn end_to_end_through_temp_files() {
        let dir = std::env::temp_dir().join("rstorm-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let topo = dir.join("t.spec");
        let clus = dir.join("c.spec");
        std::fs::write(
            &topo,
            "topology t\nspout s parallelism=2 cpu=20 mem=128\n\
             bolt k parallelism=2 cpu=20 mem=128 emit=0\n  subscribe s shuffle\n",
        )
        .unwrap();
        std::fs::write(
            &clus,
            "cluster\nrack r0\n  node n0 cpu=100 mem=2048 slots=4\n  node n1 cpu=100 mem=2048 slots=4\n",
        )
        .unwrap();
        let flags = parse_flags(&[
            "--topology".into(),
            topo.to_string_lossy().into_owned(),
            "--cluster".into(),
            clus.to_string_lossy().into_owned(),
            "--duration-s".into(),
            "20".into(),
        ])
        .unwrap();
        schedule_cmd(&flags).unwrap();
        simulate_cmd(&flags).unwrap();
        compare_cmd(&flags).unwrap();
        chaos_cmd(&flags).unwrap();
        rebalance_cmd(&flags).unwrap();

        // Replay-enabled chaos, both spellings.
        let mut replay = flags.clone();
        replay.insert("replay".into(), "true".into());
        chaos_cmd(&replay).unwrap();
        replay.insert("max-replays".into(), "5".into());
        chaos_cmd(&replay).unwrap();
        replay.insert("max-replays".into(), "-1".into());
        assert!(chaos_cmd(&replay).unwrap_err().contains("max-replays"));

        // Chaos on both network planes: the legacy spelling and the
        // fair-share flow model end to end.
        let mut network = flags.clone();
        network.insert("network".into(), "legacy".into());
        chaos_cmd(&network).unwrap();
        network.insert("network".into(), "fair".into());
        chaos_cmd(&network).unwrap();
        network.insert("network".into(), "warp".into());
        let err = chaos_cmd(&network).unwrap_err();
        assert!(err.contains("--network") && err.contains("warp"), "{err}");

        // A Nimbus outage bridged by the journaled successor, then the
        // cold-failover variant.
        let mut nimbus = flags.clone();
        nimbus.insert("replay".into(), "true".into());
        nimbus.insert("nimbus-down-ms".into(), "4000".into());
        chaos_cmd(&nimbus).unwrap();
        nimbus.insert("journal".into(), "off".into());
        chaos_cmd(&nimbus).unwrap();

        // An honest two-component topology must be rejected-free but also
        // reject nonsense rebalance knobs.
        let mut bad = flags.clone();
        bad.insert("alpha".into(), "3".into());
        assert!(rebalance_cmd(&bad).unwrap_err().contains("alpha"));
    }

    #[test]
    fn sweep_rejects_bad_arguments_with_typed_errors() {
        // Inverted and empty ranges surface the typed ParseRangeError
        // message instead of panicking.
        let mut flags = BTreeMap::new();
        flags.insert("seeds".into(), "9..2".into());
        let err = sweep_cmd(&flags).unwrap_err();
        assert!(err.contains("no seeds"), "{err}");
        flags.insert("seeds".into(), "5..5".into());
        let err = sweep_cmd(&flags).unwrap_err();
        assert!(err.contains("no seeds"), "{err}");
        flags.insert("seeds".into(), "abc".into());
        let err = sweep_cmd(&flags).unwrap_err();
        assert!(err.contains("start..end"), "{err}");
        flags.insert("seeds".into(), "0..x".into());
        let err = sweep_cmd(&flags).unwrap_err();
        assert!(err.contains("not a non-negative integer"), "{err}");

        flags.insert("seeds".into(), "0..4".into());
        flags.insert("grid".into(), "medium".into());
        assert!(sweep_cmd(&flags).unwrap_err().contains("--grid"));
        flags.insert("grid".into(), "quick".into());
        flags.insert("workers".into(), "0".into());
        assert!(sweep_cmd(&flags).unwrap_err().contains("--workers"));
        flags.insert("workers".into(), "two".into());
        assert!(sweep_cmd(&flags).unwrap_err().contains("--workers"));
        flags.insert("workers".into(), "2".into());
        flags.insert("network".into(), "warp".into());
        let err = sweep_cmd(&flags).unwrap_err();
        assert!(err.contains("--network") && err.contains("warp"), "{err}");
    }

    #[test]
    fn chaos_rejects_bad_inputs() {
        let dir = std::env::temp_dir().join("rstorm-cli-chaos-test");
        std::fs::create_dir_all(&dir).unwrap();
        let topo = dir.join("t.spec");
        let clus = dir.join("c.spec");
        std::fs::write(
            &topo,
            "topology t\nspout s parallelism=1 cpu=20 mem=128\n\
             bolt k parallelism=1 cpu=20 mem=128 emit=0\n  subscribe s shuffle\n",
        )
        .unwrap();
        std::fs::write(
            &clus,
            "cluster\nrack r0\n  node n0 cpu=100 mem=2048 slots=4\n  node n1 cpu=100 mem=2048 slots=4\n",
        )
        .unwrap();
        let base = vec![
            "--topology".to_owned(),
            topo.to_string_lossy().into_owned(),
            "--cluster".to_owned(),
            clus.to_string_lossy().into_owned(),
        ];
        let mut bad_victim = base.clone();
        bad_victim.extend(["--victim".to_owned(), "ghost".to_owned()]);
        let err = chaos_cmd(&parse_flags(&bad_victim).unwrap()).unwrap_err();
        assert!(err.contains("ghost"), "{err}");

        let mut bad_times = base.clone();
        bad_times.extend([
            "--crash-at-s".to_owned(),
            "50".to_owned(),
            "--heal-at-s".to_owned(),
            "10".to_owned(),
        ]);
        let err = chaos_cmd(&parse_flags(&bad_times).unwrap()).unwrap_err();
        assert!(err.contains("crash-at-s"), "{err}");

        // Control-outage flags: a non-positive duration, a --journal
        // value that is neither on nor off, and --journal without the
        // outage all surface typed errors.
        let mut bad_nimbus = base.clone();
        bad_nimbus.extend(["--nimbus-down-ms".to_owned(), "-5".to_owned()]);
        let err = chaos_cmd(&parse_flags(&bad_nimbus).unwrap()).unwrap_err();
        assert!(err.contains("--nimbus-down-ms"), "{err}");

        let mut bad_journal = base.clone();
        bad_journal.extend([
            "--nimbus-down-ms".to_owned(),
            "4000".to_owned(),
            "--journal".to_owned(),
            "maybe".to_owned(),
        ]);
        let err = chaos_cmd(&parse_flags(&bad_journal).unwrap()).unwrap_err();
        assert!(err.contains("--journal") && err.contains("maybe"), "{err}");

        let mut stray_journal = base.clone();
        stray_journal.extend(["--journal".to_owned(), "on".to_owned()]);
        let err = chaos_cmd(&parse_flags(&stray_journal).unwrap()).unwrap_err();
        assert!(err.contains("--nimbus-down-ms"), "{err}");
    }

    #[test]
    fn fuzz_runs_a_tiny_clean_campaign() {
        let dir = std::env::temp_dir().join("rstorm-cli-fuzz-test");
        std::fs::create_dir_all(&dir).unwrap();
        let topo = dir.join("t.spec");
        let clus = dir.join("c.spec");
        std::fs::write(
            &topo,
            "topology t\nspout s parallelism=1 cpu=20 mem=128\n\
             bolt k parallelism=1 cpu=20 mem=128 emit=0\n  subscribe s shuffle\n",
        )
        .unwrap();
        std::fs::write(
            &clus,
            "cluster\nrack r0\n  node n0 cpu=100 mem=2048 slots=4\n  node n1 cpu=100 mem=2048 slots=4\n",
        )
        .unwrap();
        let log = dir.join("campaign.log");
        let flags = parse_flags(&[
            "--topology".into(),
            topo.to_string_lossy().into_owned(),
            "--cluster".into(),
            clus.to_string_lossy().into_owned(),
            "--iterations".into(),
            "3".into(),
            "--duration-s".into(),
            "20".into(),
            "--workers".into(),
            "2".into(),
            "--out".into(),
            log.to_string_lossy().into_owned(),
        ])
        .unwrap();
        fuzz_cmd(&flags).unwrap();
        let written = std::fs::read_to_string(&log).unwrap();
        assert!(written.contains("violations=0"), "{written}");
    }

    #[test]
    fn fuzz_rejects_bad_arguments_with_typed_errors() {
        let with = |pairs: &[(&str, &str)]| {
            let mut flags = BTreeMap::new();
            for (k, v) in pairs {
                flags.insert((*k).to_owned(), (*v).to_owned());
            }
            flags
        };
        // Input validation fires before the specs are even needed only
        // for missing files; flag errors need the inputs loaded first.
        let dir = std::env::temp_dir().join("rstorm-cli-fuzz-bad-test");
        std::fs::create_dir_all(&dir).unwrap();
        let topo = dir.join("t.spec");
        let clus = dir.join("c.spec");
        std::fs::write(
            &topo,
            "topology t\nspout s parallelism=1 cpu=20 mem=128\n\
             bolt k parallelism=1 cpu=20 mem=128 emit=0\n  subscribe s shuffle\n",
        )
        .unwrap();
        std::fs::write(
            &clus,
            "cluster\nrack r0\n  node n0 cpu=100 mem=2048 slots=4\n",
        )
        .unwrap();
        let t = topo.to_string_lossy().into_owned();
        let c = clus.to_string_lossy().into_owned();
        let base: &[(&str, &str)] = &[("topology", t.as_str()), ("cluster", c.as_str())];
        let mut bad = with(base);
        bad.insert("iterations".into(), "0".into());
        assert!(fuzz_cmd(&bad).unwrap_err().contains("--iterations"));
        let mut bad = with(base);
        bad.insert("max-atoms".into(), "none".into());
        assert!(fuzz_cmd(&bad).unwrap_err().contains("--max-atoms"));
        let mut bad = with(base);
        bad.insert("workers".into(), "0".into());
        assert!(fuzz_cmd(&bad).unwrap_err().contains("--workers"));
        let mut bad = with(base);
        bad.insert("scheduler".into(), "martian".into());
        assert!(fuzz_cmd(&bad).unwrap_err().contains("martian"));
        let mut bad = with(base);
        bad.insert("journal".into(), "sometimes".into());
        let err = fuzz_cmd(&bad).unwrap_err();
        assert!(
            err.contains("--journal") && err.contains("sometimes"),
            "{err}"
        );
    }

    #[test]
    fn scale_runs_small_cases_end_to_end() {
        let args = |extra: &[&str]| {
            let mut v = vec![
                "--tasks".to_owned(),
                "50".to_owned(),
                "--nodes".to_owned(),
                "6".to_owned(),
                "--horizon-ms".to_owned(),
                "5000".to_owned(),
            ];
            v.extend(extra.iter().map(|s| (*s).to_owned()));
            parse_flags(&v).unwrap()
        };
        scale_cmd(&args(&[])).unwrap();
        scale_cmd(&args(&["--churn"])).unwrap();
        scale_cmd(&args(&["--seed", "7"])).unwrap();
    }

    #[test]
    fn scale_rejects_bad_arguments_with_typed_errors() {
        let with = |pairs: &[(&str, &str)]| {
            let mut flags = BTreeMap::new();
            for (k, v) in pairs {
                flags.insert((*k).to_owned(), (*v).to_owned());
            }
            flags
        };
        let err = scale_cmd(&with(&[("tasks", "1")])).unwrap_err();
        assert!(err.contains("--tasks"), "{err}");
        let err = scale_cmd(&with(&[("tasks", "lots")])).unwrap_err();
        assert!(err.contains("--tasks"), "{err}");
        let err = scale_cmd(&with(&[("tasks", "4"), ("nodes", "0")])).unwrap_err();
        assert!(err.contains("--nodes"), "{err}");
        let err = scale_cmd(&with(&[
            ("tasks", "4"),
            ("nodes", "1"),
            ("horizon-ms", "-5"),
        ]))
        .unwrap_err();
        assert!(err.contains("--horizon-ms"), "{err}");
        let err = scale_cmd(&with(&[("tasks", "4"), ("nodes", "1"), ("seed", "x")])).unwrap_err();
        assert!(err.contains("--seed"), "{err}");
        // An honestly undersized cluster is a typed error, not a panic.
        let err = scale_cmd(&with(&[("tasks", "500"), ("nodes", "1")])).unwrap_err();
        assert!(err.contains("do not fit"), "{err}");
    }
}
