//! Errors raised while constructing or querying a cluster.

use crate::ids::NodeId;
use std::error::Error;
use std::fmt;

/// Why a cluster failed to validate, or a query failed to resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterError {
    /// Two nodes were declared with the same id.
    DuplicateNode(NodeId),
    /// The cluster has no nodes.
    Empty,
    /// A query referenced a node id not in the cluster layout. Recovery
    /// paths hit this when an assignment outlives the node it named; it
    /// must surface as an error, not a process abort.
    UnknownNode(NodeId),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateNode(id) => write!(f, "node `{id}` declared more than once"),
            Self::Empty => f.write_str("cluster has no nodes"),
            Self::UnknownNode(id) => write!(f, "unknown node `{id}`"),
        }
    }
}

impl Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_duplicate() {
        let e = ClusterError::DuplicateNode(NodeId::new("n1"));
        assert!(e.to_string().contains("`n1`"));
        assert_eq!(ClusterError::Empty.to_string(), "cluster has no nodes");
        let e = ClusterError::UnknownNode(NodeId::new("ghost"));
        assert_eq!(e.to_string(), "unknown node `ghost`");
    }
}
