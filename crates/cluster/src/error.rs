//! Errors raised while constructing a cluster.

use crate::ids::NodeId;
use std::error::Error;
use std::fmt;

/// Why a cluster failed to validate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterError {
    /// Two nodes were declared with the same id.
    DuplicateNode(NodeId),
    /// The cluster has no nodes.
    Empty,
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateNode(id) => write!(f, "node `{id}` declared more than once"),
            Self::Empty => f.write_str("cluster has no nodes"),
        }
    }
}

impl Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_duplicate() {
        let e = ClusterError::DuplicateNode(NodeId::new("n1"));
        assert!(e.to_string().contains("`n1`"));
        assert_eq!(ClusterError::Empty.to_string(), "cluster has no nodes");
    }
}
