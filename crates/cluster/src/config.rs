//! A minimal parser for the `storm.yaml`-style configuration the paper's
//! administration API uses (§5.2):
//!
//! ```yaml
//! # resources of this supervisor
//! supervisor.memory.capacity.mb: 20480.0
//! supervisor.cpu.capacity: 100.0
//! supervisor.slots.ports: [6700, 6701, 6702, 6703]
//! storm.scheduler: "rstorm"
//! ```
//!
//! Only the flat `key: value` subset Storm actually uses for these keys is
//! supported (scalars and flow-style integer lists), which keeps this
//! hand-rolled and dependency-free — a full YAML implementation would be
//! three orders of magnitude more code than the configuration needs.

use crate::node::ResourceCapacity;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// Configuration key for a supervisor's memory capacity in MB (paper §5.2).
pub const KEY_MEMORY_CAPACITY_MB: &str = "supervisor.memory.capacity.mb";
/// Configuration key for a supervisor's CPU capacity in points (paper §5.2).
pub const KEY_CPU_CAPACITY: &str = "supervisor.cpu.capacity";
/// Configuration key for a supervisor's bandwidth capacity (our extension,
/// symmetric with the other two resource dimensions).
pub const KEY_BANDWIDTH_CAPACITY: &str = "supervisor.bandwidth.capacity";
/// Configuration key for worker slot ports.
pub const KEY_SLOTS_PORTS: &str = "supervisor.slots.ports";
/// Configuration key selecting the scheduler implementation, analogous to
/// Storm's `storm.scheduler` class name.
pub const KEY_SCHEDULER: &str = "storm.scheduler";

/// A parsed configuration value.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigValue {
    /// A floating point scalar (`100.0`).
    Number(f64),
    /// A bare or quoted string (`"rstorm"`).
    Text(String),
    /// A flow-style list of integers (`[6700, 6701]`).
    IntList(Vec<u16>),
}

impl ConfigValue {
    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as text, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer list, if it is one.
    pub fn as_int_list(&self) -> Option<&[u16]> {
        match self {
            Self::IntList(v) => Some(v),
            _ => None,
        }
    }
}

/// A parse failure, with the 1-based line number it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "storm.yaml line {}: {}", self.line, self.message)
    }
}

impl Error for ConfigError {}

/// A parsed `storm.yaml`-style configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StormConfig {
    entries: BTreeMap<String, ConfigValue>,
}

impl StormConfig {
    /// Parses configuration text. Later duplicate keys override earlier
    /// ones, matching YAML mapping semantics in Storm's loader.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut entries = BTreeMap::new();
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once(':').ok_or_else(|| ConfigError {
                line: line_no,
                message: format!("expected `key: value`, got `{raw}`"),
            })?;
            let key = key.trim();
            if key.is_empty() {
                return Err(ConfigError {
                    line: line_no,
                    message: "empty key".to_owned(),
                });
            }
            let value = parse_value(value.trim()).map_err(|message| ConfigError {
                line: line_no,
                message,
            })?;
            entries.insert(key.to_owned(), value);
        }
        Ok(Self { entries })
    }

    /// Looks up a raw value.
    pub fn get(&self, key: &str) -> Option<&ConfigValue> {
        self.entries.get(key)
    }

    /// Looks up a numeric value.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(ConfigValue::as_f64)
    }

    /// Looks up a text value.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(ConfigValue::as_str)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries were parsed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The supervisor resource capacity this configuration declares, with
    /// Storm-like defaults for missing keys (4 GB, one core, bandwidth
    /// 100).
    pub fn supervisor_capacity(&self) -> ResourceCapacity {
        ResourceCapacity::new(
            self.get_f64(KEY_CPU_CAPACITY).unwrap_or(100.0),
            self.get_f64(KEY_MEMORY_CAPACITY_MB).unwrap_or(4096.0),
            self.get_f64(KEY_BANDWIDTH_CAPACITY).unwrap_or(100.0),
        )
    }

    /// The worker slot ports this configuration declares (default: four
    /// slots starting at 6700, Storm's usual layout).
    pub fn slot_ports(&self) -> Vec<u16> {
        self.get(KEY_SLOTS_PORTS)
            .and_then(ConfigValue::as_int_list)
            .map(<[u16]>::to_vec)
            .unwrap_or_else(|| vec![6700, 6701, 6702, 6703])
    }

    /// The configured scheduler name, if any (e.g. `"rstorm"` or
    /// `"default"`).
    pub fn scheduler(&self) -> Option<&str> {
        self.get_str(KEY_SCHEDULER)
    }

    /// Serializes back to `storm.yaml` text (keys sorted). Parsing the
    /// output yields an equal configuration (round-trip property).
    pub fn to_yaml(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.entries {
            match v {
                ConfigValue::Number(n) => out.push_str(&format!("{k}: {n:?}\n")),
                ConfigValue::Text(s) => out.push_str(&format!("{k}: \"{s}\"\n")),
                ConfigValue::IntList(l) => {
                    let items: Vec<String> = l.iter().map(u16::to_string).collect();
                    out.push_str(&format!("{k}: [{}]\n", items.join(", ")));
                }
            }
        }
        out
    }
}

fn strip_comment(line: &str) -> &str {
    // A `#` starts a comment unless inside quotes.
    let mut in_quotes = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' => in_quotes = !in_quotes,
            '#' if !in_quotes => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str) -> Result<ConfigValue, String> {
    if text.is_empty() {
        return Err("missing value".to_owned());
    }
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| format!("unterminated list `{text}`"))?;
        let mut items = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let v = u16::from_str(part).map_err(|_| format!("invalid port `{part}`"))?;
            items.push(v);
        }
        return Ok(ConfigValue::IntList(items));
    }
    if let Some(stripped) = text.strip_prefix('"') {
        let s = stripped
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string `{text}`"))?;
        return Ok(ConfigValue::Text(s.to_owned()));
    }
    if let Ok(v) = f64::from_str(text) {
        if !v.is_finite() {
            return Err(format!("non-finite number `{text}`"));
        }
        return Ok(ConfigValue::Number(v));
    }
    Ok(ConfigValue::Text(text.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_EXAMPLE: &str = "\
# Example of usage, straight from the paper:
supervisor.memory.capacity.mb: 20480.0
supervisor.cpu.capacity: 100.0
";

    #[test]
    fn parses_the_papers_example() {
        let c = StormConfig::parse(PAPER_EXAMPLE).unwrap();
        assert_eq!(c.get_f64(KEY_MEMORY_CAPACITY_MB), Some(20480.0));
        assert_eq!(c.get_f64(KEY_CPU_CAPACITY), Some(100.0));
        let cap = c.supervisor_capacity();
        assert_eq!(cap.memory_mb, 20480.0);
        assert_eq!(cap.cpu_points, 100.0);
        assert_eq!(cap.bandwidth, 100.0, "default bandwidth");
    }

    #[test]
    fn defaults_for_missing_keys() {
        let c = StormConfig::parse("").unwrap();
        assert!(c.is_empty());
        assert_eq!(c.supervisor_capacity().memory_mb, 4096.0);
        assert_eq!(c.slot_ports(), vec![6700, 6701, 6702, 6703]);
        assert_eq!(c.scheduler(), None);
    }

    #[test]
    fn ports_and_scheduler() {
        let c = StormConfig::parse(
            "supervisor.slots.ports: [6700, 6701]\nstorm.scheduler: \"rstorm\"\n",
        )
        .unwrap();
        assert_eq!(c.slot_ports(), vec![6700, 6701]);
        assert_eq!(c.scheduler(), Some("rstorm"));
    }

    #[test]
    fn bare_strings_are_text() {
        let c = StormConfig::parse("storm.scheduler: default").unwrap();
        assert_eq!(c.scheduler(), Some("default"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let c = StormConfig::parse(
            "\n# full-line comment\nsupervisor.cpu.capacity: 200.0 # trailing\n\n",
        )
        .unwrap();
        assert_eq!(c.get_f64(KEY_CPU_CAPACITY), Some(200.0));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn hash_inside_quotes_is_kept() {
        let c = StormConfig::parse("storm.scheduler: \"weird#name\"").unwrap();
        assert_eq!(c.scheduler(), Some("weird#name"));
    }

    #[test]
    fn later_duplicates_override() {
        let c =
            StormConfig::parse("supervisor.cpu.capacity: 100.0\nsupervisor.cpu.capacity: 400.0\n")
                .unwrap();
        assert_eq!(c.get_f64(KEY_CPU_CAPACITY), Some(400.0));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = StormConfig::parse("good.key: 1.0\nbad line without colon\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));

        let err = StormConfig::parse(": 1.0").unwrap_err();
        assert_eq!(err.message, "empty key");

        let err = StormConfig::parse("k: [6700").unwrap_err();
        assert!(err.message.contains("unterminated list"));

        let err = StormConfig::parse("k: \"oops").unwrap_err();
        assert!(err.message.contains("unterminated string"));

        let err = StormConfig::parse("k: [horse]").unwrap_err();
        assert!(err.message.contains("invalid port"));

        let err = StormConfig::parse("k:").unwrap_err();
        assert!(err.message.contains("missing value"));
    }

    #[test]
    fn roundtrip_through_to_yaml() {
        let c = StormConfig::parse(
            "supervisor.memory.capacity.mb: 20480.0\n\
             supervisor.slots.ports: [6700, 6701]\n\
             storm.scheduler: \"rstorm\"\n",
        )
        .unwrap();
        let reparsed = StormConfig::parse(&c.to_yaml()).unwrap();
        assert_eq!(c, reparsed);
    }
}
