//! Identifiers for cluster entities.

use std::borrow::Borrow;
use std::fmt;

macro_rules! string_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(String);

        impl $name {
            /// Creates a new identifier.
            pub fn new(id: impl Into<String>) -> Self {
                Self(id.into())
            }

            /// Returns the identifier as a string slice.
            pub fn as_str(&self) -> &str {
                &self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                Self(s.to_owned())
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                Self(s)
            }
        }

        impl Borrow<str> for $name {
            fn borrow(&self) -> &str {
                &self.0
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }
    };
}

string_id! {
    /// Identifier of a worker node (a supervisor machine).
    NodeId
}

string_id! {
    /// Identifier of a server rack (the paper's "VLAN" / sub-cluster).
    RackId
}

/// A worker slot: one worker-process port on a node. Storm assigns
/// executors to slots; each slot hosts exactly one worker process, so two
/// tasks in the same slot communicate intra-process.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerSlot {
    /// The node this slot lives on.
    pub node: NodeId,
    /// The supervisor port identifying the worker process.
    pub port: u16,
}

impl WorkerSlot {
    /// Creates a slot for `node` at `port`.
    pub fn new(node: impl Into<NodeId>, port: u16) -> Self {
        Self {
            node: node.into(),
            port,
        }
    }
}

impl fmt::Display for WorkerSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_display_and_ordering() {
        let a = WorkerSlot::new("node-1", 6700);
        let b = WorkerSlot::new("node-1", 6701);
        assert_eq!(a.to_string(), "node-1:6700");
        assert!(a < b);
    }

    #[test]
    fn ids_roundtrip() {
        let n: NodeId = "n3".into();
        assert_eq!(n.as_str(), "n3");
        let r = RackId::new(String::from("rack-0"));
        assert_eq!(r.to_string(), "rack-0");
    }
}
