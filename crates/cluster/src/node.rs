//! Worker nodes and their resource capacities.

use crate::ids::{NodeId, RackId, WorkerSlot};
use std::fmt;

/// Total resources a node offers, in the paper's three dimensions:
/// CPU points (soft), memory megabytes (hard) and bandwidth (soft).
///
/// Set by the administrator through `storm.yaml` (§5.2):
/// `supervisor.cpu.capacity: 100.0` means one core;
/// `supervisor.memory.capacity.mb: 20480.0` means 20 GB.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceCapacity {
    /// CPU capacity in points (100 per core).
    pub cpu_points: f64,
    /// Memory capacity in megabytes.
    pub memory_mb: f64,
    /// Bandwidth capacity (abstract units; the NIC's relative capacity).
    pub bandwidth: f64,
}

impl ResourceCapacity {
    /// Creates a capacity vector.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is negative or not finite.
    pub fn new(cpu_points: f64, memory_mb: f64, bandwidth: f64) -> Self {
        for (name, v) in [
            ("cpu_points", cpu_points),
            ("memory_mb", memory_mb),
            ("bandwidth", bandwidth),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "capacity dimension `{name}` must be finite and non-negative, got {v}"
            );
        }
        Self {
            cpu_points,
            memory_mb,
            bandwidth,
        }
    }

    /// Capacity for a typical machine with `cores` CPU cores and
    /// `memory_mb` of RAM, using the paper's point system
    /// (CPU availability = 100 × number of cores).
    pub fn for_machine(cores: u32, memory_mb: f64) -> Self {
        Self::new(f64::from(cores) * 100.0, memory_mb, 100.0)
    }

    /// The paper's Emulab worker: one 3 GHz core, 2 GB RAM, 100 Mbps NIC.
    pub fn emulab_node() -> Self {
        Self::new(100.0, 2048.0, 100.0)
    }

    /// A zero capacity.
    pub fn zero() -> Self {
        Self {
            cpu_points: 0.0,
            memory_mb: 0.0,
            bandwidth: 0.0,
        }
    }

    /// Component-wise sum.
    pub fn saturating_add(&self, other: &Self) -> Self {
        Self {
            cpu_points: self.cpu_points + other.cpu_points,
            memory_mb: self.memory_mb + other.memory_mb,
            bandwidth: self.bandwidth + other.bandwidth,
        }
    }

    /// Number of full cores this capacity represents (CPU points / 100),
    /// minimum 1 when CPU capacity is non-zero — used by the simulator's
    /// processor-sharing model.
    pub fn cores(&self) -> f64 {
        self.cpu_points / 100.0
    }
}

impl fmt::Display for ResourceCapacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{cpu: {:.1} pts, mem: {:.1} MB, bw: {:.1}}}",
            self.cpu_points, self.memory_mb, self.bandwidth
        )
    }
}

/// A worker node (supervisor machine): identity, rack membership, total
/// capacity and worker slots.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    id: NodeId,
    rack: RackId,
    capacity: ResourceCapacity,
    slots: Vec<WorkerSlot>,
}

impl Node {
    /// Base port of the first worker slot, matching Storm's default
    /// `supervisor.slots.ports` starting at 6700.
    pub const BASE_SLOT_PORT: u16 = 6700;

    /// Creates a node with `num_slots` worker slots on consecutive ports
    /// starting at [`Node::BASE_SLOT_PORT`].
    ///
    /// # Panics
    ///
    /// Panics if `num_slots` is zero.
    pub fn new(
        id: impl Into<NodeId>,
        rack: impl Into<RackId>,
        capacity: ResourceCapacity,
        num_slots: u16,
    ) -> Self {
        assert!(num_slots > 0, "a node must have at least one worker slot");
        let id = id.into();
        let slots = (0..num_slots)
            .map(|i| WorkerSlot::new(id.clone(), Self::BASE_SLOT_PORT + i))
            .collect();
        Self {
            id,
            rack: rack.into(),
            capacity,
            slots,
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> &NodeId {
        &self.id
    }

    /// The rack this node belongs to.
    pub fn rack(&self) -> &RackId {
        &self.rack
    }

    /// Total resource capacity.
    pub fn capacity(&self) -> &ResourceCapacity {
        &self.capacity
    }

    /// Worker slots in port order.
    pub fn slots(&self) -> &[WorkerSlot] {
        &self.slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_capacity_uses_point_system() {
        let c = ResourceCapacity::for_machine(4, 16384.0);
        assert_eq!(c.cpu_points, 400.0);
        assert_eq!(c.cores(), 4.0);
        assert_eq!(c.memory_mb, 16384.0);
    }

    #[test]
    fn emulab_node_matches_paper_setup() {
        let c = ResourceCapacity::emulab_node();
        assert_eq!(c.cpu_points, 100.0);
        assert_eq!(c.memory_mb, 2048.0);
    }

    #[test]
    fn node_slots_start_at_6700() {
        let n = Node::new("n0", "rack-0", ResourceCapacity::emulab_node(), 3);
        let ports: Vec<u16> = n.slots().iter().map(|s| s.port).collect();
        assert_eq!(ports, vec![6700, 6701, 6702]);
        assert!(n.slots().iter().all(|s| s.node == *n.id()));
    }

    #[test]
    #[should_panic(expected = "at least one worker slot")]
    fn zero_slots_rejected() {
        Node::new("n0", "r0", ResourceCapacity::emulab_node(), 0);
    }

    #[test]
    #[should_panic(expected = "must be finite and non-negative")]
    fn negative_capacity_rejected() {
        ResourceCapacity::new(-1.0, 0.0, 0.0);
    }

    #[test]
    fn capacity_addition() {
        let total =
            ResourceCapacity::emulab_node().saturating_add(&ResourceCapacity::emulab_node());
        assert_eq!(total.cpu_points, 200.0);
        assert_eq!(total.memory_mb, 4096.0);
    }
}
