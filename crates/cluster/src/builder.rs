//! Programmatic cluster construction.

use crate::cluster::Cluster;
use crate::error::ClusterError;
use crate::ids::{NodeId, RackId};
use crate::network::NetworkCosts;
use crate::node::{Node, ResourceCapacity};

/// Builder for [`Cluster`] values.
///
/// ```
/// use rstorm_cluster::{ClusterBuilder, ResourceCapacity};
///
/// let cluster = ClusterBuilder::new()
///     .add_node("frontend-1", "rack-a", ResourceCapacity::for_machine(8, 32768.0), 4)
///     .add_node("frontend-2", "rack-a", ResourceCapacity::for_machine(8, 32768.0), 4)
///     .add_node("backend-1", "rack-b", ResourceCapacity::for_machine(16, 65536.0), 4)
///     .build()
///     .unwrap();
/// assert_eq!(cluster.racks().len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct ClusterBuilder {
    nodes: Vec<Node>,
    costs: NetworkCosts,
}

impl ClusterBuilder {
    /// Starts a new, empty cluster with the default (Emulab-like) network
    /// cost model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the network cost model.
    pub fn network_costs(mut self, costs: NetworkCosts) -> Self {
        self.costs = costs;
        self
    }

    /// Adds a node with `num_slots` worker slots.
    ///
    /// # Panics
    ///
    /// Panics if `num_slots` is zero.
    pub fn add_node(
        mut self,
        id: impl Into<NodeId>,
        rack: impl Into<RackId>,
        capacity: ResourceCapacity,
        num_slots: u16,
    ) -> Self {
        self.nodes.push(Node::new(id, rack, capacity, num_slots));
        self
    }

    /// Adds `racks` racks of `nodes_per_rack` identical nodes each. Racks
    /// are named `rack-<r>`, nodes `rack-<r>-node-<n>`.
    ///
    /// This is the shape of the paper's Emulab clusters: 2 racks × 6 nodes
    /// for the single-topology experiments, 2 racks × 12 for the
    /// multi-topology experiment.
    pub fn homogeneous_racks(
        mut self,
        racks: u32,
        nodes_per_rack: u32,
        capacity: ResourceCapacity,
        slots_per_node: u16,
    ) -> Self {
        for r in 0..racks {
            let rack = format!("rack-{r}");
            for n in 0..nodes_per_rack {
                self.nodes.push(Node::new(
                    format!("{rack}-node-{n}"),
                    rack.clone(),
                    capacity,
                    slots_per_node,
                ));
            }
        }
        self
    }

    /// Validates and finalizes the cluster.
    pub fn build(self) -> Result<Cluster, ClusterError> {
        Cluster::from_parts(self.nodes, self.costs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_layout_names() {
        let c = ClusterBuilder::new()
            .homogeneous_racks(2, 2, ResourceCapacity::emulab_node(), 4)
            .build()
            .unwrap();
        let names: Vec<_> = c
            .nodes()
            .iter()
            .map(|n| n.id().as_str().to_owned())
            .collect();
        assert_eq!(
            names,
            vec![
                "rack-0-node-0",
                "rack-0-node-1",
                "rack-1-node-0",
                "rack-1-node-1"
            ]
        );
    }

    #[test]
    fn duplicate_node_rejected() {
        let err = ClusterBuilder::new()
            .add_node("n", "r", ResourceCapacity::emulab_node(), 1)
            .add_node("n", "r", ResourceCapacity::emulab_node(), 1)
            .build()
            .unwrap_err();
        assert_eq!(err, ClusterError::DuplicateNode(NodeId::new("n")));
    }

    #[test]
    fn empty_cluster_rejected() {
        assert_eq!(
            ClusterBuilder::new().build().unwrap_err(),
            ClusterError::Empty
        );
    }

    #[test]
    fn custom_costs_are_kept() {
        let mut costs = NetworkCosts::emulab();
        costs.distance_inter_rack = 42.0;
        let c = ClusterBuilder::new()
            .network_costs(costs)
            .add_node("n", "r", ResourceCapacity::emulab_node(), 1)
            .build()
            .unwrap();
        assert_eq!(c.costs().distance_inter_rack, 42.0);
    }
}
