//! # rstorm-cluster
//!
//! The Nimbus-side *cluster* model consumed by the R-Storm scheduler:
//! racks, worker nodes (supervisors) with resource capacities, worker
//! slots, and the data-center network-distance hierarchy the paper's
//! node-selection metric is built on (§4):
//!
//! 1. inter-rack communication is the slowest,
//! 2. inter-node communication is slow,
//! 3. inter-process communication is faster,
//! 4. intra-process communication is the fastest.
//!
//! Capacities mirror the paper's `storm.yaml` administration API (§5.2):
//! `supervisor.memory.capacity.mb` and `supervisor.cpu.capacity` (in CPU
//! points, 100 per core). A minimal parser for that configuration format
//! is provided in [`config`].
//!
//! ## Example
//!
//! ```
//! use rstorm_cluster::{ClusterBuilder, ResourceCapacity};
//!
//! // The paper's Emulab setup: two racks ("VLANs") of six single-core
//! // 2 GB machines.
//! let cluster = ClusterBuilder::new()
//!     .homogeneous_racks(2, 6, ResourceCapacity::new(100.0, 2048.0, 100.0), 4)
//!     .build()
//!     .unwrap();
//! assert_eq!(cluster.nodes().len(), 12);
//! assert_eq!(cluster.racks().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod builder;
mod cluster;
pub mod config;
mod error;
mod ids;
mod index;
mod network;
mod node;

pub use builder::ClusterBuilder;
pub use cluster::Cluster;
pub use error::ClusterError;
pub use ids::{NodeId, RackId, WorkerSlot};
pub use index::{ClusterIndex, RackRange};
pub use network::{NetworkCosts, PlacementRelation};
pub use node::{Node, ResourceCapacity};
