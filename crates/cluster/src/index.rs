//! The indexed fast path over a cluster's immutable layout.
//!
//! Scheduling hot loops must not hash strings or compare rack names per
//! candidate node (the paper rules out slow scheduling outright:
//! "scheduling decisions need to be made in a snappy manner", §3). A
//! [`ClusterIndex`] is built once per [`crate::Cluster`] and interns every
//! node id to a dense `u32`, precomputes each node's rack index and
//! capacity, and reduces [`networkDistance`](ClusterIndex::distance) to
//! two integer compares against precomputed cost levels.
//!
//! Dense node indices are assigned in **sorted node-id order**, so a scan
//! over `0..len` visits nodes exactly as a `BTreeMap<NodeId, _>` iteration
//! would — schedulers that break ties by "first node in id order" keep
//! byte-identical behaviour on the indexed path. Rack indices follow the
//! cluster's first-seen rack order, and each rack's member list preserves
//! node *declaration* order, so per-rack float aggregations sum in the
//! same order as the original string-keyed scans (bit-exact results).

use crate::ids::NodeId;
use crate::network::{NetworkCosts, PlacementRelation};
use crate::node::{Node, ResourceCapacity};
use std::collections::HashMap;

/// A rack's span of dense node indices, when its members are contiguous
/// in sorted-id order (true for conventional `rack-X-node-Y` naming).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RackRange {
    /// The rack's index (position in [`crate::Cluster::racks`] order).
    pub rack: u32,
    /// First dense node index of the rack (inclusive).
    pub start: u32,
    /// Last dense node index of the rack (exclusive).
    pub end: u32,
}

/// Precomputed dense-index view of a cluster's immutable layout: interned
/// node ids, per-node rack indices and capacities, and O(1) network
/// distance. Shared by reference from [`crate::Cluster::index`]; liveness
/// is deliberately *not* part of the index (it changes at runtime and is
/// tracked by the scheduler's state).
#[derive(Debug)]
pub struct ClusterIndex {
    /// Node ids in dense-index (= sorted id) order.
    ids: Vec<NodeId>,
    /// Node id → dense index.
    positions: HashMap<NodeId, u32>,
    /// Dense node index → rack index.
    rack_of: Vec<u32>,
    /// Rack index → member dense indices, in node declaration order.
    rack_members: Vec<Vec<u32>>,
    /// Rack spans sorted by `start`, covering `0..len`, if every rack is
    /// contiguous in sorted-id order.
    rack_ranges: Option<Vec<RackRange>>,
    /// Dense node index → total capacity.
    capacities: Vec<ResourceCapacity>,
    /// Distance when the candidate *is* the reference node.
    d_same_node: f64,
    /// Distance within the reference rack.
    d_same_rack: f64,
    /// Distance across racks.
    d_inter_rack: f64,
    /// Largest node CPU capacity (min 1.0), for normalization.
    max_cpu_points: f64,
    /// Largest node memory capacity (min 1.0), for normalization.
    max_memory_mb: f64,
}

impl ClusterIndex {
    /// Builds the index. `nodes` is the cluster's declaration-order node
    /// list; `rack_index_of_name` maps rack names to their first-seen
    /// rack order.
    pub(crate) fn build(
        nodes: &[Node],
        rack_index_of_name: &HashMap<&str, u32>,
        costs: &NetworkCosts,
    ) -> Self {
        // Dense index = position in sorted-id order.
        let mut order: Vec<usize> = (0..nodes.len()).collect();
        order.sort_by(|&a, &b| nodes[a].id().cmp(nodes[b].id()));

        let mut ids = Vec::with_capacity(nodes.len());
        let mut positions = HashMap::with_capacity(nodes.len());
        let mut rack_of = vec![0u32; nodes.len()];
        let mut capacities = Vec::with_capacity(nodes.len());
        // declaration position -> dense index, to build rack member lists
        // in declaration order afterwards.
        let mut dense_of_decl = vec![0u32; nodes.len()];
        for (dense, &decl) in order.iter().enumerate() {
            let node = &nodes[decl];
            let dense = dense as u32;
            ids.push(node.id().clone());
            positions.insert(node.id().clone(), dense);
            rack_of[dense as usize] = rack_index_of_name[node.rack().as_str()];
            capacities.push(*node.capacity());
            dense_of_decl[decl] = dense;
        }

        let rack_count = rack_index_of_name.len();
        let mut rack_members: Vec<Vec<u32>> = vec![Vec::new(); rack_count];
        for (decl, node) in nodes.iter().enumerate() {
            let rack = rack_index_of_name[node.rack().as_str()];
            rack_members[rack as usize].push(dense_of_decl[decl]);
        }

        let rack_ranges = Self::contiguous_ranges(&rack_of, rack_count);

        let mut max_cpu_points: f64 = 1.0;
        let mut max_memory_mb: f64 = 1.0;
        for c in &capacities {
            max_cpu_points = max_cpu_points.max(c.cpu_points);
            max_memory_mb = max_memory_mb.max(c.memory_mb);
        }

        Self {
            ids,
            positions,
            rack_of,
            rack_members,
            rack_ranges,
            capacities,
            d_same_node: costs
                .distance(PlacementRelation::SameNode)
                .min(costs.distance(PlacementRelation::SameWorker)),
            d_same_rack: costs.distance(PlacementRelation::SameRack),
            d_inter_rack: costs.distance(PlacementRelation::InterRack),
            max_cpu_points,
            max_memory_mb,
        }
    }

    /// Rack spans if every rack occupies a contiguous run of dense
    /// indices; `None` as soon as one rack is fragmented.
    fn contiguous_ranges(rack_of: &[u32], rack_count: usize) -> Option<Vec<RackRange>> {
        let mut ranges: Vec<RackRange> = Vec::with_capacity(rack_count);
        let mut seen = vec![false; rack_count];
        for (dense, &rack) in rack_of.iter().enumerate() {
            let dense = dense as u32;
            match ranges.last_mut() {
                Some(last) if last.rack == rack => last.end = dense + 1,
                _ => {
                    if seen[rack as usize] {
                        return None; // rack re-appears after a gap
                    }
                    seen[rack as usize] = true;
                    ranges.push(RackRange {
                        rack,
                        start: dense,
                        end: dense + 1,
                    });
                }
            }
        }
        Some(ranges)
    }

    /// Number of nodes (dense indices are `0..len`).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if the cluster has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The dense index of a node id.
    pub fn node_index(&self, id: &str) -> Option<u32> {
        self.positions.get(id).copied()
    }

    /// The node id at a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn node_id(&self, index: u32) -> &NodeId {
        &self.ids[index as usize]
    }

    /// All node ids, in dense-index (sorted) order.
    pub fn node_ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// The rack index of a node.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn rack_of(&self, index: u32) -> u32 {
        self.rack_of[index as usize]
    }

    /// Number of racks.
    pub fn rack_count(&self) -> usize {
        self.rack_members.len()
    }

    /// A rack's member dense indices, in node declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `rack` is out of range.
    pub fn rack_members(&self, rack: u32) -> &[u32] {
        &self.rack_members[rack as usize]
    }

    /// Rack spans sorted by start, covering all dense indices — present
    /// when every rack is contiguous in sorted-id order.
    pub fn rack_ranges(&self) -> Option<&[RackRange]> {
        self.rack_ranges.as_deref()
    }

    /// A node's total capacity.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn capacity(&self, index: u32) -> &ResourceCapacity {
        &self.capacities[index as usize]
    }

    /// Scheduler network distance between two nodes by dense index: no
    /// hashing, no string compares. Matches
    /// [`crate::Cluster::node_distance`] value-for-value.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn distance(&self, a: u32, b: u32) -> f64 {
        if a == b {
            self.d_same_node
        } else if self.rack_of[a as usize] == self.rack_of[b as usize] {
            self.d_same_rack
        } else {
            self.d_inter_rack
        }
    }

    /// The distance used when the candidate is the reference node itself.
    pub fn distance_same_node(&self) -> f64 {
        self.d_same_node
    }

    /// The distance within the reference node's rack.
    pub fn distance_same_rack(&self) -> f64 {
        self.d_same_rack
    }

    /// The distance outside the reference node's rack.
    pub fn distance_inter_rack(&self) -> f64 {
        self.d_inter_rack
    }

    /// Largest node CPU capacity in the cluster, floored at 1.0 — the
    /// normalization scale used by resource-abundance comparisons.
    pub fn max_cpu_points(&self) -> f64 {
        self.max_cpu_points
    }

    /// Largest node memory capacity in the cluster, floored at 1.0.
    pub fn max_memory_mb(&self) -> f64 {
        self.max_memory_mb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ClusterBuilder;
    use crate::cluster::Cluster;

    fn two_racks() -> Cluster {
        ClusterBuilder::new()
            .homogeneous_racks(2, 3, ResourceCapacity::emulab_node(), 2)
            .build()
            .unwrap()
    }

    #[test]
    fn dense_order_is_sorted_id_order() {
        let c = two_racks();
        let idx = c.index();
        assert_eq!(idx.len(), 6);
        let ids: Vec<&str> = idx.node_ids().iter().map(NodeId::as_str).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
        for (i, id) in idx.node_ids().iter().enumerate() {
            assert_eq!(idx.node_index(id.as_str()), Some(i as u32));
        }
        assert_eq!(idx.node_index("ghost"), None);
    }

    #[test]
    fn distance_matches_string_path() {
        let c = two_racks();
        let idx = c.index();
        for a in idx.node_ids() {
            for b in idx.node_ids() {
                let (ia, ib) = (
                    idx.node_index(a.as_str()).unwrap(),
                    idx.node_index(b.as_str()).unwrap(),
                );
                assert_eq!(
                    idx.distance(ia, ib).to_bits(),
                    c.node_distance(a.as_str(), b.as_str()).unwrap().to_bits(),
                    "distance({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn rack_members_preserve_declaration_order() {
        // Declare nodes so sorted order differs from declaration order.
        let c = ClusterBuilder::new()
            .add_node("b-node", "r0", ResourceCapacity::emulab_node(), 1)
            .add_node("a-node", "r0", ResourceCapacity::emulab_node(), 1)
            .add_node("c-node", "r1", ResourceCapacity::emulab_node(), 1)
            .build()
            .unwrap();
        let idx = c.index();
        // Dense: a-node=0, b-node=1, c-node=2. Rack 0 declared b-node
        // first.
        let r0: Vec<&str> = idx
            .rack_members(0)
            .iter()
            .map(|&i| idx.node_id(i).as_str())
            .collect();
        assert_eq!(r0, vec!["b-node", "a-node"]);
        assert_eq!(idx.rack_of(idx.node_index("c-node").unwrap()), 1);
    }

    #[test]
    fn contiguous_racks_yield_ranges() {
        let c = two_racks();
        let ranges = c
            .index()
            .rack_ranges()
            .expect("rack-N naming sorts contiguously");
        assert_eq!(ranges.len(), 2);
        assert_eq!((ranges[0].start, ranges[0].end), (0, 3));
        assert_eq!((ranges[1].start, ranges[1].end), (3, 6));
        // Ranges partition 0..len in order.
        assert_eq!(ranges[0].rack, 0);
        assert_eq!(ranges[1].rack, 1);
    }

    #[test]
    fn fragmented_racks_yield_no_ranges() {
        // Sorted order interleaves the racks: a-0 (r0), b-0 (r1), c-0 (r0).
        let c = ClusterBuilder::new()
            .add_node("a-0", "r0", ResourceCapacity::emulab_node(), 1)
            .add_node("b-0", "r1", ResourceCapacity::emulab_node(), 1)
            .add_node("c-0", "r0", ResourceCapacity::emulab_node(), 1)
            .build()
            .unwrap();
        assert!(c.index().rack_ranges().is_none());
    }

    #[test]
    fn capacities_and_norm_maxima() {
        let c = ClusterBuilder::new()
            .add_node(
                "small",
                "r0",
                ResourceCapacity::new(100.0, 2048.0, 100.0),
                1,
            )
            .add_node("big", "r1", ResourceCapacity::new(400.0, 16384.0, 100.0), 1)
            .build()
            .unwrap();
        let idx = c.index();
        assert_eq!(idx.max_cpu_points(), 400.0);
        assert_eq!(idx.max_memory_mb(), 16384.0);
        let big = idx.node_index("big").unwrap();
        assert_eq!(idx.capacity(big).memory_mb, 16384.0);
    }
}
