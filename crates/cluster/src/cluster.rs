//! The cluster: racks of nodes plus the network cost model.

use crate::error::ClusterError;
use crate::ids::{NodeId, RackId, WorkerSlot};
use crate::index::ClusterIndex;
use crate::network::{NetworkCosts, PlacementRelation};
use crate::node::{Node, ResourceCapacity};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// An immutable-topology cluster of worker nodes grouped into racks, with
/// a network cost model and a liveness set (for failure injection).
///
/// Construct via [`crate::ClusterBuilder`].
#[derive(Debug, Clone)]
pub struct Cluster {
    nodes: Vec<Node>,
    positions: HashMap<NodeId, usize>,
    racks: Vec<RackId>,
    rack_members: HashMap<RackId, Vec<NodeId>>,
    costs: NetworkCosts,
    dead: HashSet<NodeId>,
    index: Arc<ClusterIndex>,
}

impl Cluster {
    pub(crate) fn from_parts(nodes: Vec<Node>, costs: NetworkCosts) -> Result<Self, ClusterError> {
        if nodes.is_empty() {
            return Err(ClusterError::Empty);
        }
        let mut positions = HashMap::new();
        let mut racks = Vec::new();
        let mut rack_members: HashMap<RackId, Vec<NodeId>> = HashMap::new();
        for (i, n) in nodes.iter().enumerate() {
            if positions.insert(n.id().clone(), i).is_some() {
                return Err(ClusterError::DuplicateNode(n.id().clone()));
            }
            if !rack_members.contains_key(n.rack()) {
                racks.push(n.rack().clone());
            }
            rack_members
                .entry(n.rack().clone())
                .or_default()
                .push(n.id().clone());
        }
        let rack_index_of_name: HashMap<&str, u32> = racks
            .iter()
            .enumerate()
            .map(|(i, r)| (r.as_str(), i as u32))
            .collect();
        let index = Arc::new(ClusterIndex::build(&nodes, &rack_index_of_name, &costs));
        Ok(Self {
            nodes,
            positions,
            racks,
            rack_members,
            costs,
            dead: HashSet::new(),
            index,
        })
    }

    /// The dense-index fast-path view of this cluster's immutable layout
    /// (see [`ClusterIndex`]). Built once at construction.
    pub fn index(&self) -> &ClusterIndex {
        &self.index
    }

    /// The index as a shareable handle — schedulers hold this so state
    /// keyed by dense indices can verify (via [`Arc::ptr_eq`]) that it
    /// was built against the same cluster layout.
    pub fn shared_index(&self) -> Arc<ClusterIndex> {
        Arc::clone(&self.index)
    }

    /// All nodes, in declaration order (dead ones included).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All currently alive nodes, in declaration order.
    pub fn alive_nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes
            .iter()
            .filter(move |n| !self.dead.contains(n.id()))
    }

    /// Looks up a node by id.
    pub fn node(&self, id: &str) -> Option<&Node> {
        self.positions.get(id).map(|&i| &self.nodes[i])
    }

    /// Rack ids in first-seen order.
    pub fn racks(&self) -> &[RackId] {
        &self.racks
    }

    /// Node ids in a rack, in declaration order.
    pub fn rack_nodes(&self, rack: &str) -> &[NodeId] {
        self.rack_members.get(rack).map_or(&[], Vec::as_slice)
    }

    /// The rack a node belongs to.
    pub fn rack_of(&self, node: &str) -> Option<&RackId> {
        self.node(node).map(Node::rack)
    }

    /// The network cost model.
    pub fn costs(&self) -> &NetworkCosts {
        &self.costs
    }

    /// Every worker slot of every alive node.
    pub fn alive_slots(&self) -> impl Iterator<Item = &WorkerSlot> {
        self.alive_nodes().flat_map(|n| n.slots().iter())
    }

    /// Total capacity of all alive nodes in a rack.
    pub fn rack_capacity(&self, rack: &str) -> ResourceCapacity {
        self.rack_nodes(rack)
            .iter()
            .filter(|id| self.is_alive(id.as_str()))
            .filter_map(|id| self.node(id.as_str()))
            .map(Node::capacity)
            .fold(ResourceCapacity::zero(), |acc, c| acc.saturating_add(c))
    }

    /// Total capacity of all alive nodes.
    pub fn total_capacity(&self) -> ResourceCapacity {
        self.alive_nodes()
            .map(Node::capacity)
            .fold(ResourceCapacity::zero(), |acc, c| acc.saturating_add(c))
    }

    /// Classifies how two slots relate in the network hierarchy.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownNode`] if either slot references a node id
    /// not in the cluster layout (recovery paths may hold assignments
    /// naming nodes that no longer exist; they must not abort the host).
    pub fn relation(
        &self,
        a: &WorkerSlot,
        b: &WorkerSlot,
    ) -> Result<PlacementRelation, ClusterError> {
        if a == b {
            self.require_known(a.node.as_str())?;
            return Ok(PlacementRelation::SameWorker);
        }
        if a.node == b.node {
            self.require_known(a.node.as_str())?;
            return Ok(PlacementRelation::SameNode);
        }
        let rack_a = self
            .rack_of(a.node.as_str())
            .ok_or_else(|| ClusterError::UnknownNode(a.node.clone()))?;
        let rack_b = self
            .rack_of(b.node.as_str())
            .ok_or_else(|| ClusterError::UnknownNode(b.node.clone()))?;
        Ok(if rack_a == rack_b {
            PlacementRelation::SameRack
        } else {
            PlacementRelation::InterRack
        })
    }

    /// Scheduler network distance between two *nodes* (node granularity,
    /// as used by Algorithm 4's `networkDistance(refNode, θj)`).
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownNode`] if either node id is not in the
    /// cluster layout (including `a == b` for an unknown id).
    pub fn node_distance(&self, a: &str, b: &str) -> Result<f64, ClusterError> {
        if a == b {
            self.require_known(a)?;
            return Ok(self
                .costs
                .distance(PlacementRelation::SameNode)
                .min(self.costs.distance(PlacementRelation::SameWorker)));
        }
        let rack_a = self
            .rack_of(a)
            .ok_or_else(|| ClusterError::UnknownNode(NodeId::new(a)))?;
        let rack_b = self
            .rack_of(b)
            .ok_or_else(|| ClusterError::UnknownNode(NodeId::new(b)))?;
        Ok(if rack_a == rack_b {
            self.costs.distance(PlacementRelation::SameRack)
        } else {
            self.costs.distance(PlacementRelation::InterRack)
        })
    }

    fn require_known(&self, id: &str) -> Result<(), ClusterError> {
        if self.positions.contains_key(id) {
            Ok(())
        } else {
            Err(ClusterError::UnknownNode(NodeId::new(id)))
        }
    }

    /// Index-based variant of [`Cluster::node_distance`]: `None` if
    /// either node id is unknown (including `a == b` for an id not in the
    /// cluster). Dead nodes are part of the immutable layout and still
    /// have a distance — liveness is the scheduler's concern.
    pub fn try_node_distance(&self, a: &str, b: &str) -> Option<f64> {
        let ia = self.index.node_index(a)?;
        let ib = self.index.node_index(b)?;
        Some(self.index.distance(ia, ib))
    }

    /// Marks a node dead (failure injection). Returns true if the node was
    /// alive. Scheduling and simulation skip dead nodes.
    pub fn kill_node(&mut self, id: &str) -> bool {
        if self.positions.contains_key(id) {
            self.dead.insert(NodeId::new(id))
        } else {
            false
        }
    }

    /// Revives a previously killed node. Returns true if it was dead.
    pub fn revive_node(&mut self, id: &str) -> bool {
        self.dead.remove(id)
    }

    /// Returns true if the node exists and is alive.
    pub fn is_alive(&self, id: &str) -> bool {
        self.positions.contains_key(id) && !self.dead.contains(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ClusterBuilder;

    fn two_racks() -> Cluster {
        ClusterBuilder::new()
            .homogeneous_racks(2, 3, ResourceCapacity::emulab_node(), 2)
            .build()
            .unwrap()
    }

    #[test]
    fn layout_queries() {
        let c = two_racks();
        assert_eq!(c.nodes().len(), 6);
        assert_eq!(c.racks().len(), 2);
        assert_eq!(c.rack_nodes("rack-0").len(), 3);
        assert_eq!(c.rack_of("rack-1-node-2").unwrap().as_str(), "rack-1");
        assert!(c.node("rack-0-node-0").is_some());
        assert!(c.node("nope").is_none());
        assert_eq!(c.alive_slots().count(), 12);
    }

    #[test]
    fn capacities_aggregate() {
        let c = two_racks();
        assert_eq!(c.rack_capacity("rack-0").cpu_points, 300.0);
        assert_eq!(c.total_capacity().memory_mb, 6.0 * 2048.0);
    }

    #[test]
    fn relation_classification_uses_rack_layout() {
        let c = two_racks();
        let s = |n: &str, p: u16| WorkerSlot::new(n, p);
        assert_eq!(
            c.relation(&s("rack-0-node-0", 6700), &s("rack-0-node-0", 6700)),
            Ok(PlacementRelation::SameWorker)
        );
        assert_eq!(
            c.relation(&s("rack-0-node-0", 6700), &s("rack-0-node-0", 6701)),
            Ok(PlacementRelation::SameNode)
        );
        assert_eq!(
            c.relation(&s("rack-0-node-0", 6700), &s("rack-0-node-1", 6700)),
            Ok(PlacementRelation::SameRack)
        );
        assert_eq!(
            c.relation(&s("rack-0-node-0", 6700), &s("rack-1-node-0", 6700)),
            Ok(PlacementRelation::InterRack)
        );
    }

    #[test]
    fn relation_reports_unknown_nodes_as_errors() {
        let c = two_racks();
        let s = |n: &str, p: u16| WorkerSlot::new(n, p);
        // Every arm checks existence, including the same-slot shortcut.
        assert_eq!(
            c.relation(&s("ghost", 6700), &s("ghost", 6700)),
            Err(ClusterError::UnknownNode(NodeId::new("ghost")))
        );
        assert_eq!(
            c.relation(&s("ghost", 6700), &s("ghost", 6701)),
            Err(ClusterError::UnknownNode(NodeId::new("ghost")))
        );
        assert_eq!(
            c.relation(&s("rack-0-node-0", 6700), &s("ghost", 6700)),
            Err(ClusterError::UnknownNode(NodeId::new("ghost")))
        );
    }

    #[test]
    fn node_distances_follow_hierarchy() {
        let c = two_racks();
        let same = c.node_distance("rack-0-node-0", "rack-0-node-0").unwrap();
        let rack = c.node_distance("rack-0-node-0", "rack-0-node-1").unwrap();
        let cross = c.node_distance("rack-0-node-0", "rack-1-node-0").unwrap();
        assert!(same < rack && rack < cross);
        // Unknown ids yield typed errors instead of aborting the host.
        assert_eq!(
            c.node_distance("ghost", "rack-0-node-0"),
            Err(ClusterError::UnknownNode(NodeId::new("ghost")))
        );
        assert_eq!(
            c.node_distance("ghost", "ghost"),
            Err(ClusterError::UnknownNode(NodeId::new("ghost")))
        );
    }

    #[test]
    fn failure_injection() {
        let mut c = two_racks();
        assert!(c.is_alive("rack-0-node-0"));
        assert!(c.kill_node("rack-0-node-0"));
        assert!(!c.kill_node("rack-0-node-0"), "already dead");
        assert!(!c.is_alive("rack-0-node-0"));
        assert_eq!(c.alive_nodes().count(), 5);
        assert_eq!(c.rack_capacity("rack-0").cpu_points, 200.0);
        assert!(c.revive_node("rack-0-node-0"));
        assert_eq!(c.alive_nodes().count(), 6);
        assert!(!c.kill_node("ghost"), "unknown nodes cannot be killed");
    }

    #[test]
    fn rack_capacity_of_unknown_rack_is_zero() {
        let c = two_racks();
        assert_eq!(c.rack_capacity("rack-9").cpu_points, 0.0);
    }

    #[test]
    fn try_node_distance_handles_unknown_and_dead_nodes() {
        let mut c = two_racks();
        // Known pairs agree bit-for-bit with the panicking path.
        assert_eq!(
            c.try_node_distance("rack-0-node-0", "rack-1-node-0"),
            c.node_distance("rack-0-node-0", "rack-1-node-0").ok()
        );
        assert_eq!(
            c.try_node_distance("rack-0-node-0", "rack-0-node-0"),
            c.node_distance("rack-0-node-0", "rack-0-node-0").ok()
        );
        // Unknown ids yield None, mirroring the Result path's
        // UnknownNode — even when a == b.
        assert_eq!(c.try_node_distance("ghost", "rack-0-node-0"), None);
        assert_eq!(c.try_node_distance("rack-0-node-0", "ghost"), None);
        assert_eq!(c.try_node_distance("ghost", "ghost"), None);
        // Dead nodes keep their place in the layout: distance still known.
        assert!(c.kill_node("rack-0-node-1"));
        assert_eq!(
            c.try_node_distance("rack-0-node-0", "rack-0-node-1"),
            Some(c.costs().distance(PlacementRelation::SameRack))
        );
    }
}
