//! The data-center network model.
//!
//! The paper's key insight (§4) is the latency hierarchy of a typical
//! cluster layout (Figure 4): servers on racks joined by a top-of-rack
//! switch, racks joined by a core switch. Communication cost grows as
//! tasks move apart:
//!
//! 1. intra-process (same worker slot)  — fastest,
//! 2. inter-process (same node)         — faster,
//! 3. inter-node (same rack)            — slow,
//! 4. inter-rack                        — slowest.
//!
//! [`PlacementRelation`] classifies a pair of placements into that
//! hierarchy, and [`NetworkCosts`] assigns it (a) the abstract *distance*
//! used by R-Storm's node-selection metric and (b) physical latency /
//! bandwidth parameters used by the discrete-event simulator. Defaults
//! match the paper's Emulab testbed: 100 Mbps NICs and a 4 ms inter-rack
//! round-trip time.

use crate::ids::WorkerSlot;
use std::fmt;

/// How far apart two worker-slot placements are in the network hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PlacementRelation {
    /// Same worker slot (same worker process): intra-process messaging.
    SameWorker,
    /// Different slots on the same node: inter-process over loopback.
    SameNode,
    /// Different nodes on the same rack: through the top-of-rack switch.
    SameRack,
    /// Nodes on different racks: through the core switch.
    InterRack,
}

impl PlacementRelation {
    /// Classifies a pair of slots given a function mapping a slot's node
    /// to its rack name.
    pub fn classify<'a>(
        a: &'a WorkerSlot,
        b: &'a WorkerSlot,
        rack_of: impl Fn(&'a WorkerSlot) -> &'a str,
    ) -> Self {
        if a == b {
            Self::SameWorker
        } else if a.node == b.node {
            Self::SameNode
        } else if rack_of(a) == rack_of(b) {
            Self::SameRack
        } else {
            Self::InterRack
        }
    }
}

impl fmt::Display for PlacementRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SameWorker => f.write_str("same-worker"),
            Self::SameNode => f.write_str("same-node"),
            Self::SameRack => f.write_str("same-rack"),
            Self::InterRack => f.write_str("inter-rack"),
        }
    }
}

/// Cost parameters for each level of the placement hierarchy.
///
/// `distance_*` values feed the scheduler's Euclidean node-selection
/// metric (the `networkDistance(refNode, θj)` term of Algorithm 4);
/// `latency_*`/`bandwidth_*` values feed the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkCosts {
    /// Scheduler distance for two tasks in the same worker process.
    pub distance_same_worker: f64,
    /// Scheduler distance for two slots on the same node.
    pub distance_same_node: f64,
    /// Scheduler distance for two nodes on the same rack.
    pub distance_same_rack: f64,
    /// Scheduler distance across racks.
    pub distance_inter_rack: f64,

    /// One-way latency (ms) for intra-process tuple transfer.
    pub latency_same_worker_ms: f64,
    /// One-way latency (ms) for inter-process (same node) transfer.
    pub latency_same_node_ms: f64,
    /// One-way latency (ms) between nodes on the same rack.
    pub latency_same_rack_ms: f64,
    /// One-way latency (ms) across racks (paper: 4 ms RTT → 2 ms one-way).
    pub latency_inter_rack_ms: f64,

    /// Per-node NIC bandwidth in megabits per second (paper: 100 Mbps).
    pub node_bandwidth_mbps: f64,
    /// Aggregate inter-rack uplink bandwidth in megabits per second.
    /// The shared core-switch uplink is the contended resource that makes
    /// rack-crossing placements expensive.
    pub inter_rack_bandwidth_mbps: f64,
}

impl NetworkCosts {
    /// Costs matching the paper's Emulab testbed (§6.1): 100 Mbps NICs,
    /// two VLANs with 4 ms inter-rack RTT. Scheduler distances grow one
    /// order per hierarchy level.
    pub fn emulab() -> Self {
        Self::default()
    }

    /// The scheduler distance for a placement relation.
    pub fn distance(&self, relation: PlacementRelation) -> f64 {
        match relation {
            PlacementRelation::SameWorker => self.distance_same_worker,
            PlacementRelation::SameNode => self.distance_same_node,
            PlacementRelation::SameRack => self.distance_same_rack,
            PlacementRelation::InterRack => self.distance_inter_rack,
        }
    }

    /// One-way transfer latency for a placement relation, in milliseconds.
    pub fn latency_ms(&self, relation: PlacementRelation) -> f64 {
        match relation {
            PlacementRelation::SameWorker => self.latency_same_worker_ms,
            PlacementRelation::SameNode => self.latency_same_node_ms,
            PlacementRelation::SameRack => self.latency_same_rack_ms,
            PlacementRelation::InterRack => self.latency_inter_rack_ms,
        }
    }

    /// Transfer time in milliseconds for `bytes` at the relation's
    /// bandwidth, excluding queueing (the simulator adds contention).
    /// Intra-node transfers are treated as memory-speed (no serialization
    /// over the NIC).
    pub fn transfer_ms(&self, relation: PlacementRelation, bytes: u32) -> f64 {
        let mbps = match relation {
            PlacementRelation::SameWorker | PlacementRelation::SameNode => return 0.0,
            PlacementRelation::SameRack => self.node_bandwidth_mbps,
            PlacementRelation::InterRack => {
                self.node_bandwidth_mbps.min(self.inter_rack_bandwidth_mbps)
            }
        };
        // bytes -> megabits, divided by Mbps gives seconds; ×1000 → ms.
        (f64::from(bytes) * 8.0 / 1_000_000.0) / mbps * 1000.0
    }
}

impl Default for NetworkCosts {
    fn default() -> Self {
        Self {
            distance_same_worker: 0.0,
            distance_same_node: 0.5,
            distance_same_rack: 1.0,
            distance_inter_rack: 5.0,
            latency_same_worker_ms: 0.001,
            latency_same_node_ms: 0.05,
            latency_same_rack_ms: 1.0,
            latency_inter_rack_ms: 2.0,
            node_bandwidth_mbps: 100.0,
            inter_rack_bandwidth_mbps: 600.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rack_of(slot: &WorkerSlot) -> &str {
        // Test convention: node names are "<rack>-<i>".
        slot.node.as_str().split('-').next().unwrap()
    }

    #[test]
    fn classification_hierarchy() {
        let a = WorkerSlot::new("r0-1", 6700);
        assert_eq!(
            PlacementRelation::classify(&a, &WorkerSlot::new("r0-1", 6700), rack_of),
            PlacementRelation::SameWorker
        );
        assert_eq!(
            PlacementRelation::classify(&a, &WorkerSlot::new("r0-1", 6701), rack_of),
            PlacementRelation::SameNode
        );
        assert_eq!(
            PlacementRelation::classify(&a, &WorkerSlot::new("r0-2", 6700), rack_of),
            PlacementRelation::SameRack
        );
        assert_eq!(
            PlacementRelation::classify(&a, &WorkerSlot::new("r1-1", 6700), rack_of),
            PlacementRelation::InterRack
        );
    }

    #[test]
    fn costs_grow_with_distance() {
        let c = NetworkCosts::emulab();
        let rels = [
            PlacementRelation::SameWorker,
            PlacementRelation::SameNode,
            PlacementRelation::SameRack,
            PlacementRelation::InterRack,
        ];
        for w in rels.windows(2) {
            assert!(
                c.distance(w[0]) < c.distance(w[1]),
                "distance must increase along the hierarchy"
            );
            assert!(
                c.latency_ms(w[0]) < c.latency_ms(w[1]),
                "latency must increase along the hierarchy"
            );
        }
    }

    #[test]
    fn emulab_inter_rack_latency_is_half_rtt() {
        // The paper specifies a 4 ms inter-rack round trip.
        assert_eq!(NetworkCosts::emulab().latency_inter_rack_ms * 2.0, 4.0);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let c = NetworkCosts::emulab();
        // 100 Mbps = 12.5 MB/s → 1250 bytes take 0.1 ms.
        let t = c.transfer_ms(PlacementRelation::SameRack, 1250);
        assert!((t - 0.1).abs() < 1e-9, "got {t}");
        // Intra-node transfers are free of NIC serialization.
        assert_eq!(c.transfer_ms(PlacementRelation::SameNode, 1_000_000), 0.0);
        assert_eq!(c.transfer_ms(PlacementRelation::SameWorker, 1_000_000), 0.0);
    }

    #[test]
    fn relation_ordering_matches_hierarchy() {
        assert!(PlacementRelation::SameWorker < PlacementRelation::SameNode);
        assert!(PlacementRelation::SameNode < PlacementRelation::SameRack);
        assert!(PlacementRelation::SameRack < PlacementRelation::InterRack);
    }
}
