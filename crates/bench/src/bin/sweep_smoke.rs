//! Quick Monte-Carlo sweep-fleet smoke test.
//!
//! Runs the quick scenario grid (2 workloads × 2 schedulers ×
//! healthy/crash-recover × 8 seeds, 60 s sims) twice — once on a single
//! worker, once on `min(8, available cores)` workers — and writes the
//! aggregated distributions plus the parallel speedup to
//! `BENCH_sweep.json` in the current directory.
//!
//! Gates, before anything is written:
//!
//! * **Determinism under parallelism** — the aggregated JSON payload of
//!   the two runs must be byte-identical: worker count must never leak
//!   into results.
//! * **Zero loss** — every group of the quick grid is survivable, so
//!   every group must report `zero_loss_ratio == 1.0` across all seeds.
//! * **Detection** — every crash group must have measured real detect
//!   and recover latencies (no sentinel leaking into a crash group).
//!
//! The `sweep/parallel_speedup` case reports serial-vs-parallel wall
//! time. On a single-core machine the pool degenerates to one worker
//! both times, so the speedup is reported as exactly 1.0 (same
//! configuration twice — measuring it would only report scheduler
//! noise); `bench_guard` enforces ≥ 1.0 either way. On an 8-core runner
//! the quick grid targets ≥ 6x.
//!
//! Run with `cargo run --release -p rstorm-bench --bin sweep_smoke`.

use rstorm_bench::harness::BenchReport;
use rstorm_sim::sweep::run_sweep;
use rstorm_sim::SeedRange;
use rstorm_workloads::sweep::quick_grid;

/// Workers on the parallel side: all cores, capped at the 8 the
/// acceptance target is quoted for.
fn parallel_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

fn main() {
    let mut report = BenchReport::new("Monte-Carlo scenario sweep (quick grid)", "ns");
    let grid = quick_grid(SeedRange::new(0, 8).expect("0..8 is a valid range"));
    let workers = parallel_workers();

    let serial = run_sweep(&grid, 1);
    let parallel = run_sweep(&grid, workers);

    // Determinism gate: worker count must never leak into the payload.
    let payload = serial.summary.to_json();
    assert_eq!(
        payload,
        parallel.summary.to_json(),
        "aggregated sweep payload differs between 1 and {} workers",
        parallel.workers
    );

    // Zero-loss and detection gates over every group of the quick grid.
    for g in &serial.summary.groups {
        assert!(g.survivable, "the quick grid must stay survivable");
        assert_eq!(
            g.zero_loss_min, 1.0,
            "{}: a survivable scenario lost settled roots",
            g.name
        );
        if g.name.ends_with("/crash_recover") {
            assert!(g.detect_ms.p99 > 0.0, "{}: crash undetected", g.name);
            assert!(
                g.recover_ms.p99 >= g.detect_ms.p50,
                "{}: not fully re-placed",
                g.name
            );
        }
    }

    let serial_ns = serial.wall.as_nanos() as u64;
    let parallel_ns = parallel.wall.as_nanos() as u64;
    // One worker on both sides is the same configuration twice; timing
    // noise is not a speedup, so the degenerate case pins 1.0.
    let speedup = if parallel.workers == 1 {
        1.0
    } else {
        serial_ns as f64 / parallel_ns as f64
    };

    println!(
        "{:<32} {:>6} {:>8} {:>12} {:>12} {:>9}",
        "grid", "jobs", "workers", "serial", "parallel", "speedup"
    );
    println!(
        "{:<32} {:>6} {:>8} {:>9.2} s {:>9.2} s {:>8.2}x",
        "quick",
        serial.summary.jobs,
        parallel.workers,
        serial_ns as f64 / 1e9,
        parallel_ns as f64 / 1e9,
        speedup
    );
    println!(
        "\n{:<40} {:>9} {:>9} {:>10} {:>9}",
        "group", "detect", "recover", "net", "zeroloss"
    );
    for g in &serial.summary.groups {
        println!(
            "{:<40} {:>7.0}ms {:>7.0}ms {:>10.0} {:>9.3}",
            g.name, g.detect_ms.p50, g.recover_ms.p50, g.net_mean, g.zero_loss_min
        );
    }

    report.push_case(format!(
        "{{\"name\": \"sweep/parallel_speedup\", \"jobs\": {}, \"workers\": {}, \
         \"serial_ns\": {serial_ns}, \"parallel_ns\": {parallel_ns}, \
         \"speedup_vs_reference\": {speedup:.2}}}",
        serial.summary.jobs, parallel.workers
    ));
    for g in &serial.summary.groups {
        report.push_case(g.json_line());
    }
    report.write("BENCH_sweep.json");
}
