//! Figure 8: throughput of the network-bound micro-benchmark topologies
//! (Linear 8a, Diamond 8b, Star 8c), R-Storm vs Storm's default scheduler.
//!
//! Paper result: "scheduling computed by R-Storm provides on average of
//! around 50%, 30%, and 47% higher throughput than that computed by
//! Storm's default scheduler, for the Linear, Diamond, and Star
//! Topologies, respectively" (§6.3.1).

use rstorm_bench::{config_from_args, figure_header, Comparison};
use rstorm_workloads::{clusters, micro};

fn main() {
    let config = config_from_args();
    let cluster = std::sync::Arc::new(clusters::emulab_micro());

    let cases = [
        (
            "Fig 8a (Linear, network-bound)",
            micro::linear_network_bound(),
            "+50%",
        ),
        (
            "Fig 8b (Diamond, network-bound)",
            micro::diamond_network_bound(),
            "+30%",
        ),
        (
            "Fig 8c (Star, network-bound)",
            micro::star_network_bound(),
            "+47%",
        ),
    ];

    for (name, topology, paper) in cases {
        figure_header(name, &format!("R-Storm ≈ {paper} throughput vs default"));
        let cmp = Comparison::run(&topology, &cluster, config.clone());
        println!("{}", cmp.timeline_table());
        println!("measured: {}", cmp.summary_line());
        println!();
    }
}
