//! Ablation study (ours, E7 in DESIGN.md): which pieces of R-Storm's
//! heuristic buy the improvement?
//!
//! Three axes, each evaluated on the network-bound micro-benchmarks:
//!
//! 1. **Task ordering** — BFS (the paper's Algorithm 2) vs DFS vs plain
//!    declaration order.
//! 2. **Network-distance term** — the full distance metric vs one with
//!    `weight_b = 0` (resource fit only).
//! 3. **Placement-quality floor** — the seeded random scheduler.

use rstorm_bench::{config_from_args, figure_header, simulate_single, WARMUP_WINDOWS};
use rstorm_cluster::{Cluster, ClusterBuilder, ResourceCapacity};
use rstorm_core::schedulers::RandomScheduler;
use rstorm_core::{RStormConfig, RStormScheduler, Scheduler, SoftConstraintWeights};
use rstorm_metrics::text_table;
use rstorm_topology::{Topology, TraversalOrder};
use rstorm_workloads::{micro, yahoo};

type Variant = (&'static str, Box<dyn Scheduler>);
type Workload = (&'static str, fn() -> Topology);

fn rstorm(traversal: TraversalOrder, weights: SoftConstraintWeights) -> RStormScheduler {
    RStormScheduler::with_config(RStormConfig { weights, traversal })
}

/// The Emulab cluster with node ids *interleaved* across the two racks.
/// On the standard preset, node-id tie-breaking happens to keep even a
/// network-oblivious scheduler inside one rack, masking the ablated term;
/// interleaving removes that accident without changing the hardware.
fn interleaved_cluster() -> Cluster {
    let mut b = ClusterBuilder::new();
    for i in 0..12u32 {
        b = b.add_node(
            format!("node-{i:02}"),
            format!("rack-{}", i % 2),
            ResourceCapacity::emulab_node(),
            4,
        );
    }
    b.build().expect("static preset is valid")
}

fn main() {
    let config = config_from_args();
    let cluster = std::sync::Arc::new(interleaved_cluster());

    figure_header(
        "Ablation: task ordering × distance metric (network-bound workloads)",
        "BFS + network-aware distance should dominate every ablated variant",
    );

    let workloads: Vec<Workload> = vec![
        ("linear-net", micro::linear_network_bound),
        ("diamond-net", micro::diamond_network_bound),
        ("star-net", micro::star_network_bound),
        ("page-load", yahoo::page_load),
    ];

    let variants: Vec<Variant> = vec![
        (
            "rstorm (bfs, full)",
            Box::new(rstorm(
                TraversalOrder::Bfs,
                SoftConstraintWeights::default(),
            )),
        ),
        (
            "rstorm (dfs)",
            Box::new(rstorm(
                TraversalOrder::Dfs,
                SoftConstraintWeights::default(),
            )),
        ),
        (
            "rstorm (declaration)",
            Box::new(rstorm(
                TraversalOrder::Declaration,
                SoftConstraintWeights::default(),
            )),
        ),
        (
            "rstorm (no network term)",
            Box::new(rstorm(
                TraversalOrder::Bfs,
                SoftConstraintWeights::default().without_network(),
            )),
        ),
        (
            "rstorm (network weight 1)",
            Box::new(rstorm(
                TraversalOrder::Bfs,
                SoftConstraintWeights::new(1.0, 1.0, 1.0),
            )),
        ),
        (
            "rstorm (network weight 100)",
            Box::new(rstorm(
                TraversalOrder::Bfs,
                SoftConstraintWeights::new(1.0, 1.0, 100.0),
            )),
        ),
        ("random placement", Box::new(RandomScheduler::seeded(7))),
    ];

    let mut rows = Vec::new();
    for (wname, make) in &workloads {
        let mut baseline = 0.0;
        for (vname, scheduler) in &variants {
            let topology = make();
            let report = simulate_single(scheduler.as_ref(), &topology, &cluster, config.clone());
            let throughput = report.steady_throughput(topology.id().as_str(), WARMUP_WINDOWS);
            if *vname == "rstorm (bfs, full)" {
                baseline = throughput;
            }
            let relative = if baseline > 0.0 {
                format!("{:+.0}%", (throughput / baseline - 1.0) * 100.0)
            } else {
                "n/a".to_owned()
            };
            rows.push(vec![
                (*wname).to_owned(),
                (*vname).to_owned(),
                format!("{throughput:.0}"),
                relative,
                format!("{}", report.used_nodes_by_topology[topology.id().as_str()]),
            ]);
        }
    }
    println!(
        "{}",
        text_table(
            &[
                "workload",
                "variant",
                "tuples/10s",
                "vs full r-storm",
                "machines"
            ],
            &rows
        )
    );
}
