//! Quick simulator-performance smoke test.
//!
//! Where the criterion benches (`cargo bench -p rstorm-bench`) produce
//! statistically careful numbers, this binary answers one question fast:
//! how much quicker is the dense-id/slab/precomputed-routing `Simulation`
//! than the string-keyed `ReferenceSimulation` it is bit-for-bit
//! equivalent to? It runs the fig8-scale micro benchmarks (Linear,
//! Diamond, Star, network-bound) and the Yahoo PageLoad layout at
//! `SimConfig::quick()`, plus one long-horizon case, verifies per case
//! that both engines produce identical reports, reports median wall time
//! per run and ns per simulated second, and writes the results to
//! `BENCH_sim.json` in the current directory.
//!
//! Run with `cargo run --release -p rstorm-bench --bin sim_smoke`.

use rstorm_bench::harness::{median_ns, BenchReport};
use rstorm_bench::schedule_fresh;
use rstorm_cluster::Cluster;
use rstorm_core::{Assignment, RStormScheduler};
use rstorm_sim::{ReferenceSimulation, SimConfig, Simulation};
use rstorm_topology::Topology;
use rstorm_workloads::cases::{fig8_cases, yahoo_cases, WorkloadCase};
use std::sync::Arc;
use std::time::Duration;

struct CaseResult {
    name: String,
    tasks: u32,
    nodes: u32,
    sim_ms: f64,
    events: u64,
    fast_ns: u64,
    reference_ns: u64,
}

fn time_case(
    name: &str,
    topology: &Topology,
    cluster: &Arc<Cluster>,
    assignment: &Assignment,
    config: &SimConfig,
    budget: Duration,
) -> CaseResult {
    let build_fast = || {
        let mut sim = Simulation::new(Arc::clone(cluster), config.clone());
        sim.add_topology(topology, assignment);
        sim
    };
    let build_reference = || {
        let mut sim = ReferenceSimulation::new(Arc::clone(cluster), config.clone());
        sim.add_topology(topology, assignment);
        sim
    };

    // Parity gate: a fast engine that diverges from the reference is not
    // worth timing.
    let fast_report = build_fast().run();
    let reference_report = build_reference().run();
    assert_eq!(
        fast_report, reference_report,
        "{name}: fast and reference engines disagree"
    );

    let fast_ns = median_ns(
        build_fast,
        |sim| {
            std::hint::black_box(sim.run());
        },
        budget,
    );
    let reference_ns = median_ns(
        build_reference,
        |sim| {
            std::hint::black_box(sim.run());
        },
        budget,
    );
    CaseResult {
        name: name.to_string(),
        tasks: topology.task_set().len() as u32,
        nodes: cluster.nodes().len() as u32,
        sim_ms: config.sim_time_ms,
        events: fast_report.debug.events,
        fast_ns,
        reference_ns,
    }
}

fn run_case(case: &WorkloadCase, config: &SimConfig, budget: Duration, suffix: &str) -> CaseResult {
    let cluster = Arc::new(case.cluster.clone());
    let assignment = schedule_fresh(&RStormScheduler::new(), &case.topology, &cluster);
    time_case(
        &format!("{}{suffix}", case.name),
        &case.topology,
        &cluster,
        &assignment,
        config,
        budget,
    )
}

fn json_line(r: &CaseResult) -> String {
    let speedup = r.reference_ns as f64 / r.fast_ns as f64;
    let ns_per_sim_s = r.fast_ns as f64 / (r.sim_ms / 1000.0);
    format!(
        "{{\"name\": \"{}\", \"tasks\": {}, \"nodes\": {}, \"sim_ms\": {:.0}, \
         \"events\": {}, \"fast_ns\": {}, \"reference_ns\": {}, \
         \"fast_ns_per_sim_second\": {:.0}, \"speedup_vs_reference\": {speedup:.2}}}",
        r.name, r.tasks, r.nodes, r.sim_ms, r.events, r.fast_ns, r.reference_ns, ns_per_sim_s
    )
}

fn main() {
    // Per-engine-per-case sampling budget; 6 cases × 2 engines keeps the
    // whole run under ~30 s in release.
    let budget = Duration::from_millis(900);
    let mut report = BenchReport::new("simulation wall time (median per full run)", "ns");
    let quick = SimConfig::quick();
    // One long-horizon case: steady state dominates, which is where the
    // pooled slab and precomputed routes pay off most.
    let long = SimConfig::quick().with_sim_time_ms(600_000.0);

    let mut results = Vec::new();
    for case in fig8_cases() {
        results.push(run_case(&case, &quick, budget, ""));
    }
    let yahoo = yahoo_cases();
    let page_load = yahoo
        .iter()
        .find(|c| c.name == "page_load")
        .expect("page_load case exists");
    results.push(run_case(page_load, &quick, budget, ""));
    let linear = fig8_cases()
        .into_iter()
        .find(|c| c.name == "linear_net")
        .expect("linear_net case exists");
    results.push(run_case(&linear, &long, budget, "_long"));

    println!(
        "{:<18} {:>6} {:>6} {:>9} {:>10} {:>12} {:>12} {:>14} {:>9}",
        "case", "tasks", "nodes", "sim_s", "events", "fast", "reference", "ns/sim-s", "speedup"
    );
    for r in &results {
        println!(
            "{:<18} {:>6} {:>6} {:>9.0} {:>10} {:>9.2} ms {:>9.2} ms {:>14.0} {:>8.2}x",
            r.name,
            r.tasks,
            r.nodes,
            r.sim_ms / 1000.0,
            r.events,
            r.fast_ns as f64 / 1e6,
            r.reference_ns as f64 / 1e6,
            r.fast_ns as f64 / (r.sim_ms / 1000.0),
            r.reference_ns as f64 / r.fast_ns as f64,
        );
    }

    for r in &results {
        report.push_case(json_line(r));
    }
    report.write("BENCH_sim.json");
}
