//! Control-plane fault-domain smoke test.
//!
//! Runs fixed Nimbus-outage scenarios through [`run_control_outage`]
//! and the two-plane fault-plan harness, and writes `BENCH_control.json`
//! in the current directory:
//!
//! * **Failover case** — the victim crashes *while Nimbus is down*, so
//!   no incumbent ever observes the silence. A journaled successor
//!   seeds the roster's heartbeats on reassumption, detects the crash,
//!   and reschedules inside the replay budget: `zero_loss_ratio` must
//!   be exactly `1.0`. The journal-less twin of the same scenario is
//!   structurally blind — it must actually lose roots, proving the
//!   journal is load-bearing rather than vacuously pinned.
//! * **Replay case** — the crash is detected and rescheduled *before*
//!   the outage; the successor must replay at least the dead
//!   declaration and the reschedule from the journal, without declaring
//!   the victim dead a second time.
//!
//! Both composed scenarios are also run through [`run_fault_plan_with`]
//! so the reconciliation audit ([`rstorm_sim::ReconcileAudit`]) checks
//! convergence and placement integrity. The case lines carry
//! `failover_zero_loss` and `reconciliation_convergence`, which
//! `bench_guard` pins at exactly `1.0` with no environment-variable
//! relaxation.
//!
//! Run with `cargo run --release -p rstorm-bench --bin control_smoke`.

use rstorm_bench::harness::BenchReport;
use rstorm_cluster::{Cluster, ClusterBuilder, ResourceCapacity};
use rstorm_core::{schedulers, GlobalState, RecoveryConfig};
use rstorm_sim::{
    run_control_outage, run_fault_plan_with, ControlOutageConfig, FaultPlan, SimConfig,
};
use rstorm_topology::{ExecutionProfile, TaskSet, Topology, TopologyBuilder};
use std::sync::Arc;
use std::time::Instant;

/// Failover-case victim crash time (milliseconds) — inside the outage.
const FAILOVER_CRASH_AT_MS: f64 = 15_000.0;
/// Failover-case Nimbus window: `[13 s, 23 s)`, fully masking the crash.
const FAILOVER_NIMBUS_AT_MS: f64 = 13_000.0;
/// Length of the failover-case Nimbus outage (milliseconds).
const FAILOVER_NIMBUS_DOWN_MS: f64 = 10_000.0;
/// When the failover-case victim would heartbeat again — late enough
/// that a blind control plane gets no second chance to see it crash.
const FAILOVER_HEAL_AT_MS: f64 = 55_000.0;
/// Replay-case crash/heal: detected, rescheduled, and readmitted well
/// before Nimbus dies at 14 s.
const REPLAY_CRASH_AT_MS: f64 = 5_000.0;
/// Replay-case heal time (milliseconds).
const REPLAY_HEAL_AT_MS: f64 = 12_000.0;
/// Replay-case Nimbus window start (milliseconds).
const REPLAY_NIMBUS_AT_MS: f64 = 14_000.0;
/// Length of the replay-case Nimbus outage (milliseconds).
const REPLAY_NIMBUS_DOWN_MS: f64 = 8_000.0;
/// Root replay budget of the failover case: `(3 + 1) x 5 s = 20 s` of
/// retries — wide enough to bridge the journaled successor's detect-
/// and-reschedule latency (~10 s), narrow enough that the blind twin
/// exhausts it with most of the 60 s horizon left.
const FAILOVER_MAX_REPLAYS: u32 = 3;
/// Tuple timeout pairing with [`FAILOVER_MAX_REPLAYS`].
const FAILOVER_TUPLE_TIMEOUT_MS: f64 = 5_000.0;

/// Two racks of two Emulab-profile nodes, as in the fuzz smoke.
fn cluster() -> Arc<Cluster> {
    Arc::new(
        ClusterBuilder::new()
            .homogeneous_racks(2, 2, ResourceCapacity::emulab_node(), 4)
            .build()
            .expect("2x2 emulab cluster builds"),
    )
}

/// A topology whose two components cannot colocate (1.4 GB each on 2 GB
/// nodes), as in the fuzz smoke: the spout stays alive when the sink's
/// node crashes, so replays keep re-emitting into the outage and the
/// retry budget genuinely drains when nobody reschedules the sink.
fn split_topology() -> Topology {
    let mut b = TopologyBuilder::new("control-smoke");
    b.set_spout("src", 1)
        .set_profile(ExecutionProfile::network_bound(100))
        .set_cpu_load(20.0)
        .set_memory_load(1_400.0);
    b.set_bolt("sink", 1)
        .shuffle_grouping("src")
        .set_profile(ExecutionProfile::network_bound(100).into_sink())
        .set_cpu_load(20.0)
        .set_memory_load(1_400.0);
    b.build().expect("split topology builds")
}

/// The node hosting the sink under the R-Storm scheduler — crashing it
/// severs the tuple path while leaving the spout emitting.
fn sink_node(cluster: &Cluster, topology: &Topology) -> String {
    let scheduler = schedulers::by_name("rstorm").expect("rstorm scheduler exists");
    let mut state = GlobalState::new(cluster);
    let a = scheduler
        .schedule(topology, cluster, &mut state)
        .expect("split topology places");
    let tasks = TaskSet::instantiate(topology);
    let sink_task = tasks
        .tasks()
        .iter()
        .find(|t| t.component.as_str() == "sink")
        .expect("the topology has a sink")
        .id;
    let host = a
        .iter()
        .find(|(task, _)| *task == sink_task)
        .expect("the sink is placed")
        .1
        .node
        .as_str()
        .to_owned();
    host
}

/// The failover scenario's simulation knobs (see the budget constants).
fn failover_sim() -> SimConfig {
    let mut sim = SimConfig::quick().with_max_replays(FAILOVER_MAX_REPLAYS);
    sim.tuple_timeout_ms = FAILOVER_TUPLE_TIMEOUT_MS;
    sim
}

fn main() {
    let mut report = BenchReport::new("Control-plane fault domain", "ns");
    let cluster = cluster();
    let topology = split_topology();
    let victim = sink_node(&cluster, &topology);
    let scheduler = schedulers::by_name("rstorm").expect("rstorm scheduler exists");

    // -- Failover case: crash masked by the outage. --
    let mut cfg = ControlOutageConfig::new(
        &victim,
        FAILOVER_CRASH_AT_MS,
        FAILOVER_HEAL_AT_MS,
        FAILOVER_NIMBUS_AT_MS,
        FAILOVER_NIMBUS_DOWN_MS,
    );
    cfg.sim = failover_sim();
    cfg.recovery.journal = true;
    let t0 = Instant::now();
    let journaled = run_control_outage(&cluster, &topology, &cfg).expect("failover case runs");
    let failover_ns = t0.elapsed().as_nanos() as u64;
    assert!(
        journaled.time_to_reassume_ms >= FAILOVER_NIMBUS_DOWN_MS,
        "successor reassumed after {} ms of a {} ms outage",
        journaled.time_to_reassume_ms,
        FAILOVER_NIMBUS_DOWN_MS
    );
    assert!(
        journaled.observations.time_to_detect_ms > 0.0,
        "the journaled successor must detect the masked crash"
    );
    let journaled_zero_loss = journaled.report.zero_loss_ratio();
    assert_eq!(
        journaled_zero_loss, 1.0,
        "journaled failover lost settled roots (ratio {journaled_zero_loss})"
    );

    // The journal-less twin must actually lose: a cold successor never
    // saw the victim heartbeat, so detection is structurally impossible
    // and the replay budget drains dry.
    let mut cold_cfg = cfg.clone();
    cold_cfg.recovery.journal = false;
    let cold = run_control_outage(&cluster, &topology, &cold_cfg).expect("cold twin runs");
    assert_eq!(
        cold.observations.time_to_detect_ms, -1.0,
        "a cold successor cannot detect a pre-failover silence"
    );
    let cold_zero_loss = cold.report.zero_loss_ratio();
    assert!(
        cold_zero_loss < 1.0,
        "the journal-less twin must lose roots, or the pin proves nothing \
         (ratio {cold_zero_loss})"
    );

    // -- Replay case: decisions journaled before the outage. --
    let mut cfg = ControlOutageConfig::new(
        &victim,
        REPLAY_CRASH_AT_MS,
        REPLAY_HEAL_AT_MS,
        REPLAY_NIMBUS_AT_MS,
        REPLAY_NIMBUS_DOWN_MS,
    );
    cfg.sim = SimConfig::quick().with_max_replays(8);
    cfg.recovery.journal = true;
    let t0 = Instant::now();
    let replayed = run_control_outage(&cluster, &topology, &cfg).expect("replay case runs");
    let replay_ns = t0.elapsed().as_nanos() as u64;
    assert!(
        replayed.decisions_replayed >= 2,
        "expected the declare + reschedule records in the journal, replayed {}",
        replayed.decisions_replayed
    );
    assert_eq!(
        replayed.report.zero_loss_ratio(),
        1.0,
        "the pre-outage reschedule keeps the replay case lossless"
    );

    // -- Reconciliation audits over both composed scenarios. --
    let journal_on = RecoveryConfig {
        journal: true,
        ..RecoveryConfig::default()
    };
    let plans = [
        FaultPlan::new()
            .crash_node(FAILOVER_CRASH_AT_MS, &victim)
            .recover_node(40_000.0, &victim)
            .nimbus_crash(FAILOVER_NIMBUS_AT_MS, FAILOVER_NIMBUS_DOWN_MS),
        FaultPlan::new()
            .crash_node(REPLAY_CRASH_AT_MS, &victim)
            .recover_node(REPLAY_HEAL_AT_MS, &victim)
            .nimbus_crash(REPLAY_NIMBUS_AT_MS, REPLAY_NIMBUS_DOWN_MS),
    ];
    let mut audits = 0_u32;
    let mut audits_passed = 0_u32;
    for plan in &plans {
        let out = run_fault_plan_with(
            &cluster,
            &topology,
            plan,
            &SimConfig::quick().with_max_replays(8),
            &journal_on,
            &*scheduler,
        )
        .expect("audit plan runs");
        let audit = out
            .reconciliation
            .expect("control-fault plans carry a reconciliation audit");
        audits += 1;
        let passed = audit.converged && !audit.double_placed_or_orphaned;
        assert!(
            passed,
            "reconciliation audit failed: converged={} double_placed_or_orphaned={}",
            audit.converged, audit.double_placed_or_orphaned
        );
        audits_passed += u32::from(passed);
    }
    let convergence = f64::from(audits_passed) / f64::from(audits);

    println!(
        "{:<10} {:>14} {:>12} {:>12} {:>10}",
        "case", "reassume_ms", "zero_loss", "replayed", "wall"
    );
    println!(
        "{:<10} {:>14.0} {:>12.3} {:>12} {:>7.2} s",
        "failover",
        journaled.time_to_reassume_ms,
        journaled_zero_loss,
        journaled.decisions_replayed,
        failover_ns as f64 / 1e9
    );
    println!(
        "{:<10} {:>14.0} {:>12.3} {:>12} {:>7.2} s",
        "replay",
        replayed.time_to_reassume_ms,
        replayed.report.zero_loss_ratio(),
        replayed.decisions_replayed,
        replay_ns as f64 / 1e9
    );
    println!("cold twin zero_loss_ratio: {cold_zero_loss:.3} (journal off, loses by design)");
    println!("reconciliation audits: {audits_passed}/{audits} converged");

    report.push_case(format!(
        "{{\"name\": \"control/failover\", \"wall_ns\": {failover_ns}, \
         \"time_to_reassume_ms\": {:?}, \"journaled_zero_loss\": {journaled_zero_loss:?}, \
         \"cold_zero_loss\": {cold_zero_loss:?}, \"failover_zero_loss\": {journaled_zero_loss:?}}}",
        journaled.time_to_reassume_ms
    ));
    report.push_case(format!(
        "{{\"name\": \"control/replay\", \"wall_ns\": {replay_ns}, \
         \"time_to_reassume_ms\": {:?}, \"decisions_replayed\": {}, \
         \"reconciliation_convergence\": {convergence:?}}}",
        replayed.time_to_reassume_ms, replayed.decisions_replayed
    ));
    report.write("BENCH_control.json");
}
