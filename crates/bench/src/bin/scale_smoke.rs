//! Scale-plane smoke benchmark: the 10k-task / 1k-node case.
//!
//! Two cases, written to `BENCH_scale.json`:
//!
//! * **`scale/base`** — the plain scale topology, fast engine vs the
//!   string-keyed `ReferenceSimulation` (identical reports asserted
//!   before timing), reported as `speedup_vs_reference` like the other
//!   smoke bins.
//! * **`scale/churn`** — the migration-churn variant: ~100 composed
//!   `DeltaScheduler` plans applied across the run. The fast engine runs
//!   twice — incremental routing patches on vs off (full rebuild per
//!   migration) — with bit-identical reports asserted (`routing_parity`)
//!   before timing. The full-vs-patched ratio is reported under the
//!   `speedup_vs_reference` key so `bench_guard`'s ≥ 1.0 gate applies
//!   to it unchanged; the acceptance target for this row is ≥ 5x.
//!
//! `SCALE_SMOKE_HORIZON_MS` trims the simulated horizon (default
//! 60 000 ms — one tenth of the workload's full 10-minute case — so the
//! reference engine stays affordable; CI trims further). The reference
//! engine is skipped entirely for the churn case: the incremental-vs-full
//! comparison is internal to the fast engine.
//!
//! Run with `cargo run --release -p rstorm-bench --bin scale_smoke`.

use rstorm_bench::harness::{median_ns, BenchReport};
use rstorm_bench::schedule_fresh;
use rstorm_core::RStormScheduler;
use rstorm_sim::{ReferenceSimulation, SimConfig, Simulation};
use rstorm_workloads::scale::{
    churn_plans, scale_cluster, scale_topology, schedule_churn, SCALE_CHURN_ROUNDS, SCALE_NODES,
    SCALE_TASKS,
};
use std::sync::Arc;
use std::time::Duration;

fn horizon_ms() -> f64 {
    std::env::var("SCALE_SMOKE_HORIZON_MS")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|h| h.is_finite() && *h > 0.0)
        .unwrap_or(60_000.0)
}

fn main() {
    let horizon = horizon_ms();
    let budget = Duration::from_millis(1500);
    let topology = scale_topology(SCALE_TASKS);
    let cluster = Arc::new(scale_cluster(SCALE_NODES));
    let config = SimConfig::default().with_sim_time_ms(horizon);
    let mut report = BenchReport::new("scale plane wall time (median per full run)", "ns");

    // ---- scale/base: fast engine vs reference oracle ------------------
    let assignment = schedule_fresh(&RStormScheduler::new(), &topology, &cluster);
    let build_fast = || {
        let mut sim = Simulation::new(Arc::clone(&cluster), config.clone());
        sim.add_topology(&topology, &assignment);
        sim
    };
    let build_reference = || {
        let mut sim = ReferenceSimulation::new(Arc::clone(&cluster), config.clone());
        sim.add_topology(&topology, &assignment);
        sim
    };
    let fast_report = build_fast().run();
    let reference_report = build_reference().run();
    assert_eq!(
        fast_report, reference_report,
        "scale/base: fast and reference engines disagree"
    );
    let fast_ns = median_ns(
        build_fast,
        |sim| {
            std::hint::black_box(sim.run());
        },
        budget,
    );
    let reference_ns = median_ns(
        build_reference,
        |sim| {
            std::hint::black_box(sim.run());
        },
        budget,
    );
    let base_speedup = reference_ns as f64 / fast_ns as f64;
    println!(
        "scale/base   {} tasks on {} nodes, {:.0} sim-s, {} events: \
         fast {:.2} ms vs reference {:.2} ms ({base_speedup:.2}x)",
        SCALE_TASKS,
        SCALE_NODES,
        horizon / 1000.0,
        fast_report.debug.events,
        fast_ns as f64 / 1e6,
        reference_ns as f64 / 1e6,
    );
    report.push_case(format!(
        "{{\"name\": \"scale/base\", \"tasks\": {SCALE_TASKS}, \"nodes\": {SCALE_NODES}, \
         \"sim_ms\": {horizon:.0}, \"events\": {}, \"fast_ns\": {fast_ns}, \
         \"reference_ns\": {reference_ns}, \"speedup_vs_reference\": {base_speedup:.2}}}",
        fast_report.debug.events
    ));

    // ---- scale/churn: incremental patches vs full rebuilds ------------
    let (churn_assignment, plans) = churn_plans(&topology, &cluster, SCALE_CHURN_ROUNDS);
    let migrations: usize = plans.iter().map(|p| p.len()).sum();
    assert!(
        plans.len() >= SCALE_CHURN_ROUNDS as usize / 2,
        "churn generation collapsed: only {} of {SCALE_CHURN_ROUNDS} rounds moved tasks",
        plans.len()
    );
    let build_churn = |incremental: bool| {
        let cluster = Arc::clone(&cluster);
        let topology = &topology;
        let assignment = &churn_assignment;
        let plans = &plans;
        move || {
            let mut sim = Simulation::new(
                Arc::clone(&cluster),
                SimConfig::default()
                    .with_sim_time_ms(horizon)
                    .with_incremental_routing(incremental),
            );
            sim.add_topology(topology, assignment);
            schedule_churn(&mut sim, plans, horizon);
            sim
        }
    };
    let patched_report = build_churn(true)().run();
    let full_report = build_churn(false)().run();
    assert_eq!(
        patched_report, full_report,
        "scale/churn: patched and fully-rebuilt runs disagree"
    );
    assert_eq!(patched_report.debug.events, full_report.debug.events);
    let patched_ns = median_ns(
        build_churn(true),
        |sim| {
            std::hint::black_box(sim.run());
        },
        budget,
    );
    let full_ns = median_ns(
        build_churn(false),
        |sim| {
            std::hint::black_box(sim.run());
        },
        budget,
    );
    let churn_speedup = full_ns as f64 / patched_ns as f64;
    println!(
        "scale/churn  {} migrations over {} plans: \
         patched {:.2} ms vs full rebuild {:.2} ms ({churn_speedup:.2}x)",
        migrations,
        plans.len(),
        patched_ns as f64 / 1e6,
        full_ns as f64 / 1e6,
    );
    report.push_case(format!(
        "{{\"name\": \"scale/churn\", \"tasks\": {SCALE_TASKS}, \"nodes\": {SCALE_NODES}, \
         \"sim_ms\": {horizon:.0}, \"migrations\": {migrations}, \"patched_ns\": {patched_ns}, \
         \"full_ns\": {full_ns}, \"routing_parity\": 1.000, \
         \"speedup_vs_reference\": {churn_speedup:.2}}}"
    ));

    report.write("BENCH_scale.json");
}
