//! Trunk-contention smoke test of the fair-share network plane.
//!
//! Runs the network-bound Linear micro-benchmark (24 tasks, fat tuples)
//! on the two-rack Emulab cluster with a 4:1 oversubscribed fabric
//! (150 Mbps rack trunks) under `NetworkModel::Fair` twice: once
//! placed by R-Storm (proximity packing — the chain fits one rack) and
//! once by the even round-robin scheduler (which spreads it across both
//! racks and pushes every hop through the rack uplinks). The fair plane
//! makes the spread placement pay for trunk contention, so R-Storm must
//! win on steady-state throughput — the
//! `rstorm_beats_even_on_trunk` metric, gated ≥ 1.0 by `bench_guard`.
//!
//! Gates, before anything is written:
//!
//! * **Trunk saturation** — the even placement must actually saturate a
//!   rack uplink (saturated telemetry windows > 0); a workload that
//!   never contends demonstrates nothing.
//! * **Packing wins** — R-Storm's steady-state throughput must be at
//!   least the even scheduler's under trunk contention.
//! * **Legacy bit-identity** — `network_model = Legacy` (the default)
//!   must produce the exact report the default-configured engine does.
//!
//! The second case times the legacy path against the string-keyed
//! `ReferenceSimulation` (median wall time), reported as
//! `speedup_vs_reference` — the fair plane must not have slowed the
//! default engine down.
//!
//! Run with `cargo run --release -p rstorm-bench --bin congestion_smoke`.

use rstorm_bench::harness::{median_ns, BenchReport};
use rstorm_cluster::Cluster;
use rstorm_core::{schedulers, Assignment, GlobalState};
use rstorm_sim::{NetworkModel, ReferenceSimulation, SimConfig, SimReport, Simulation};
use rstorm_topology::Topology;
use rstorm_workloads::{clusters, micro};
use std::sync::Arc;
use std::time::Duration;

/// Simulation horizon: long enough for a stable steady state.
const SIM_MS: f64 = 60_000.0;
/// Warm-up windows skipped when averaging steady-state throughput.
const WARMUP_WINDOWS: usize = 2;
/// Wall-time budget per timed side of the legacy case.
const BUDGET: Duration = Duration::from_secs(2);

fn place(name: &str, topology: &Topology, cluster: &Arc<Cluster>) -> Assignment {
    let scheduler = schedulers::by_name(name).expect("known scheduler");
    scheduler
        .schedule(topology, cluster, &mut GlobalState::new(cluster))
        .unwrap_or_else(|e| panic!("{name} cannot place the congestion workload: {e}"))
}

fn run_with(
    cluster: &Arc<Cluster>,
    topology: &Topology,
    assignment: &Assignment,
    config: SimConfig,
) -> SimReport {
    let mut sim = Simulation::new(Arc::clone(cluster), config);
    sim.add_topology(topology, assignment);
    sim.run()
}

/// Uplink-trunk telemetry of a fair-plane report: total saturated
/// windows, total MB carried and the worst mean utilization.
fn trunk_stats(report: &SimReport) -> (u64, f64, f64) {
    let network = report
        .network
        .as_ref()
        .expect("fair-plane runs export link telemetry");
    let mut windows = 0;
    let mut mb = 0.0;
    let mut peak = 0.0f64;
    for link in &network.links {
        if link.link.ends_with(".uplink") {
            windows += link.saturated_windows;
            mb += link.mb_carried;
            peak = peak.max(link.mean_utilization);
        }
    }
    (windows, mb, peak)
}

fn main() {
    let mut report = BenchReport::new("fair-share network plane (trunk contention)", "ns");
    let cluster = Arc::new(clusters::emulab_oversubscribed());
    let topology = micro::linear_network_bound();
    let tname = topology.id().as_str().to_owned();
    let tasks = topology.task_set().len();
    let nodes = cluster.nodes().len();

    let rstorm_assignment = place("rstorm", &topology, &cluster);
    let even_assignment = place("even", &topology, &cluster);

    // -- Case 1: trunk contention under the fair plane. --
    let fair = SimConfig::quick()
        .with_sim_time_ms(SIM_MS)
        .with_network_model(NetworkModel::Fair);
    let rstorm_report = run_with(&cluster, &topology, &rstorm_assignment, fair.clone());
    let even_report = run_with(&cluster, &topology, &even_assignment, fair);
    let rstorm_net = rstorm_report.steady_throughput(&tname, WARMUP_WINDOWS);
    let even_net = even_report.steady_throughput(&tname, WARMUP_WINDOWS);
    let (even_windows, even_trunk_mb, even_peak) = trunk_stats(&even_report);
    let (_, rstorm_trunk_mb, _) = trunk_stats(&rstorm_report);

    assert!(
        even_windows > 0,
        "the spread placement must saturate a rack uplink (peak utilization {even_peak:.3})"
    );
    assert!(
        even_net > 0.0,
        "the even placement must still make progress under contention"
    );
    let ratio = rstorm_net / even_net;
    assert!(
        ratio >= 1.0,
        "proximity packing must beat spreading under trunk saturation: \
         rstorm {rstorm_net:.0} vs even {even_net:.0} tuples/window"
    );

    // -- Case 2: the legacy path — bit-identical and not slower. --
    let legacy = SimConfig::quick().with_sim_time_ms(SIM_MS);
    let default_report = run_with(&cluster, &topology, &rstorm_assignment, legacy.clone());
    let explicit_report = run_with(
        &cluster,
        &topology,
        &rstorm_assignment,
        legacy.clone().with_network_model(NetworkModel::Legacy),
    );
    assert_eq!(
        default_report, explicit_report,
        "explicit Legacy must be the default engine bit for bit"
    );
    assert!(
        default_report.network.is_none(),
        "the legacy path must not export fair-plane telemetry"
    );

    let build_fast = || {
        let mut sim = Simulation::new(Arc::clone(&cluster), legacy.clone());
        sim.add_topology(&topology, &rstorm_assignment);
        sim
    };
    let build_reference = || {
        let mut sim = ReferenceSimulation::new(Arc::clone(&cluster), legacy.clone());
        sim.add_topology(&topology, &rstorm_assignment);
        sim
    };
    let fast_ns = median_ns(
        build_fast,
        |sim| {
            std::hint::black_box(sim.run());
        },
        BUDGET,
    );
    let reference_ns = median_ns(
        build_reference,
        |sim| {
            std::hint::black_box(sim.run());
        },
        BUDGET,
    );
    let speedup = reference_ns as f64 / fast_ns as f64;

    println!(
        "{:<26} {:>12} {:>12} {:>8}",
        "placement", "net (t/win)", "trunk MB", "sat win"
    );
    println!(
        "{:<26} {:>12.0} {:>12.1} {:>8}",
        "rstorm (packed)", rstorm_net, rstorm_trunk_mb, 0
    );
    println!(
        "{:<26} {:>12.0} {:>12.1} {:>8}",
        "even (spread)", even_net, even_trunk_mb, even_windows
    );
    println!(
        "\nrstorm_beats_even_on_trunk: {ratio:.2}x  (even peak trunk utilization {even_peak:.3})"
    );
    println!(
        "legacy engine: fast {:.1} ms vs reference {:.1} ms ({speedup:.2}x)",
        fast_ns as f64 / 1e6,
        reference_ns as f64 / 1e6
    );

    report.push_case(format!(
        "{{\"name\": \"network/trunk_contention\", \"tasks\": {tasks}, \"nodes\": {nodes}, \
         \"sim_ms\": {SIM_MS}, \"rstorm_net\": {rstorm_net:.1}, \"even_net\": {even_net:.1}, \
         \"rstorm_trunk_mb\": {rstorm_trunk_mb:.1}, \"even_trunk_mb\": {even_trunk_mb:.1}, \
         \"even_trunk_saturated_windows\": {even_windows}, \
         \"even_trunk_peak_utilization\": {even_peak:.3}, \
         \"rstorm_beats_even_on_trunk\": {ratio:.2}}}"
    ));
    report.push_case(format!(
        "{{\"name\": \"network/legacy_engine\", \"tasks\": {tasks}, \"nodes\": {nodes}, \
         \"sim_ms\": {SIM_MS}, \"fast_ns\": {fast_ns}, \"reference_ns\": {reference_ns}, \
         \"speedup_vs_reference\": {speedup:.2}}}"
    ));
    report.write("BENCH_network.json");
}
