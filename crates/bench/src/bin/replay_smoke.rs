//! Quick guaranteed-processing (replay plane) smoke test.
//!
//! Runs the PR 3 crash-then-recover scenario (crash a tasked node a
//! third of the way in, heal it 15 s later) with spout replay enabled
//! (`max_replays = 8`) on the fig8 Linear/network micro case and the
//! Yahoo PageLoad layout, gates on replay correctness, and writes the
//! zero-loss metrics plus wall-time numbers to `BENCH_replay.json` in
//! the current directory.
//!
//! Three gates run per case before anything is timed:
//!
//! * **Parity** — a replay-*disabled* run with an empty [`FaultPlan`]
//!   must be bit-identical to the fault-free `ReferenceSimulation` (the
//!   replay hooks must cost nothing when unused, in bits as well as
//!   time).
//! * **Zero loss** — with replay enabled, the survivable outage must
//!   quarantine nothing: every root that settled within the run acked,
//!   i.e. `zero_loss_ratio == 1.0`.
//! * **Replay exercised** — the scenario must actually replay roots
//!   (`roots_replayed > 0`), so the gate cannot pass vacuously.
//!
//! The timed comparison pits the replay-enabled fault-injected fast run
//! against the fault-free reference run: the reference engine models
//! neither faults nor replay, so this measures what guaranteed
//! processing under an outage costs relative to the baseline engine on
//! the same workload. `bench_guard` enforces `speedup_vs_reference ≥
//! 1.0` and `zero_loss_ratio == 1.0` on the emitted file.
//!
//! Run with `cargo run --release -p rstorm-bench --bin replay_smoke`.

use rstorm_bench::harness::{median_ns, BenchReport};
use rstorm_bench::schedule_fresh;
use rstorm_core::RStormScheduler;
use rstorm_sim::{FaultPlan, ReferenceSimulation, SimConfig, Simulation};
use rstorm_workloads::cases::{fig8_cases, yahoo_cases, WorkloadCase};
use std::sync::Arc;
use std::time::Duration;

const MAX_REPLAYS: u32 = 8;
const CRASH_AT_MS: f64 = 20_000.0;
const RECOVER_AT_MS: f64 = 35_000.0;

struct CaseResult {
    name: String,
    tasks: u32,
    nodes: u32,
    sim_ms: f64,
    max_replays: u32,
    roots_emitted: u64,
    roots_replayed: u64,
    tuples_quarantined: u64,
    zero_loss_ratio: f64,
    fast_ns: u64,
    reference_ns: u64,
}

fn run_case(case: &WorkloadCase, budget: Duration) -> CaseResult {
    let cluster = Arc::new(case.cluster.clone());
    let assignment = schedule_fresh(&RStormScheduler::new(), &case.topology, &cluster);
    let config = SimConfig::quick();

    // Parity gate: replay disabled + no faults must be bit-free.
    let mut faultless = Simulation::new(Arc::clone(&cluster), config.clone());
    faultless.add_topology(&case.topology, &assignment);
    faultless.set_fault_plan(FaultPlan::new());
    let mut reference = ReferenceSimulation::new(Arc::clone(&cluster), config.clone());
    reference.add_topology(&case.topology, &assignment);
    assert_eq!(
        faultless.run(),
        reference.run(),
        "{}: replay-disabled run diverges from the reference engine",
        case.name
    );

    // The survivable outage: crash the node hosting tasks a third of the
    // way in, heal it 15 s later — inside the 30 s tuple timeout, so one
    // replay per interrupted root suffices.
    let victim = assignment.iter().next().unwrap().1.node.as_str().to_owned();
    let plan = FaultPlan::new()
        .crash_node(CRASH_AT_MS, &victim)
        .recover_node(RECOVER_AT_MS, &victim);
    let replay_config = config.clone().with_max_replays(MAX_REPLAYS);

    let mut sim = Simulation::new(Arc::clone(&cluster), replay_config.clone());
    sim.add_topology(&case.topology, &assignment);
    sim.set_fault_plan(plan.clone());
    let report = sim.run();
    let totals = &report.totals;

    // Zero-loss gate: a survivable fault must quarantine nothing, and
    // every settled root must have acked.
    assert!(
        totals.roots_replayed > 0,
        "{}: the outage scenario exercised no replays",
        case.name
    );
    assert_eq!(
        report.tuples_quarantined(),
        0,
        "{}: survivable fault quarantined tuples",
        case.name
    );
    let zero_loss_ratio = report.zero_loss_ratio();
    assert!(
        zero_loss_ratio == 1.0,
        "{}: zero-loss ratio {zero_loss_ratio} != 1.0",
        case.name
    );

    let fast_ns = median_ns(
        || {
            let mut sim = Simulation::new(Arc::clone(&cluster), replay_config.clone());
            sim.add_topology(&case.topology, &assignment);
            sim.set_fault_plan(plan.clone());
            sim
        },
        |sim| {
            std::hint::black_box(sim.run());
        },
        budget,
    );
    let reference_ns = median_ns(
        || {
            let mut sim = ReferenceSimulation::new(Arc::clone(&cluster), config.clone());
            sim.add_topology(&case.topology, &assignment);
            sim
        },
        |sim| {
            std::hint::black_box(sim.run());
        },
        budget,
    );

    CaseResult {
        name: case.name.to_string(),
        tasks: case.topology.task_set().len() as u32,
        nodes: cluster.nodes().len() as u32,
        sim_ms: config.sim_time_ms,
        max_replays: MAX_REPLAYS,
        roots_emitted: totals.roots_emitted,
        roots_replayed: totals.roots_replayed,
        tuples_quarantined: totals.tuples_quarantined,
        zero_loss_ratio,
        fast_ns,
        reference_ns,
    }
}

fn json_line(r: &CaseResult) -> String {
    let speedup = r.reference_ns as f64 / r.fast_ns as f64;
    format!(
        "{{\"name\": \"{}\", \"tasks\": {}, \"nodes\": {}, \"sim_ms\": {:.0}, \
         \"max_replays\": {}, \"roots_emitted\": {}, \"roots_replayed\": {}, \
         \"tuples_quarantined\": {}, \"zero_loss_ratio\": {:.3}, \
         \"fast_ns\": {}, \"reference_ns\": {}, \"speedup_vs_reference\": {speedup:.2}}}",
        r.name,
        r.tasks,
        r.nodes,
        r.sim_ms,
        r.max_replays,
        r.roots_emitted,
        r.roots_replayed,
        r.tuples_quarantined,
        r.zero_loss_ratio,
        r.fast_ns,
        r.reference_ns
    )
}

fn main() {
    let budget = Duration::from_millis(900);
    let mut report = BenchReport::new("spout replay under crash-then-recover (quick sim)", "ns");

    let mut results = Vec::new();
    let linear = fig8_cases()
        .into_iter()
        .find(|c| c.name == "linear_net")
        .expect("linear_net case exists");
    results.push(run_case(&linear, budget));
    let yahoo = yahoo_cases();
    let page_load = yahoo
        .iter()
        .find(|c| c.name == "page_load")
        .expect("page_load case exists");
    results.push(run_case(page_load, budget));

    println!(
        "{:<12} {:>6} {:>6} {:>9} {:>9} {:>11} {:>9} {:>9} {:>12} {:>9}",
        "case",
        "tasks",
        "nodes",
        "emitted",
        "replayed",
        "quarantine",
        "zeroloss",
        "fast",
        "reference",
        "speedup"
    );
    for r in &results {
        println!(
            "{:<12} {:>6} {:>6} {:>9} {:>9} {:>11} {:>9.3} {:>6.2}ms {:>9.2}ms {:>8.2}x",
            r.name,
            r.tasks,
            r.nodes,
            r.roots_emitted,
            r.roots_replayed,
            r.tuples_quarantined,
            r.zero_loss_ratio,
            r.fast_ns as f64 / 1e6,
            r.reference_ns as f64 / 1e6,
            r.reference_ns as f64 / r.fast_ns as f64,
        );
    }

    for r in &results {
        report.push_case(json_line(r));
    }
    report.write("BENCH_replay.json");
}
