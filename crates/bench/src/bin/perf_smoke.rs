//! Quick scheduling-performance smoke test (< 30 s end to end).
//!
//! Where the criterion benches (`cargo bench -p rstorm-bench`) produce
//! statistically careful numbers, this binary answers one question fast:
//! how much quicker is the indexed/undo-log `RStormScheduler` than the
//! scan/clone `ReferenceRStormScheduler` it is bit-for-bit equivalent to?
//! It times the same four topology/cluster sizes as the criterion
//! `schedule` group plus the reschedule-after-node-failure scenario,
//! reports median wall time per schedule, and writes the results to
//! `BENCH_sched.json` in the current directory.
//!
//! Run with `cargo run --release -p rstorm-bench --bin perf_smoke`.

use rstorm_cluster::{Cluster, ClusterBuilder, ResourceCapacity};
use rstorm_core::schedulers::EvenScheduler;
use rstorm_core::{GlobalState, RStormScheduler, ReferenceRStormScheduler, Scheduler};
use rstorm_topology::{Topology, TopologyBuilder};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// A linear topology with `stages` components of `parallelism` tasks
/// (matching the criterion bench's workload).
fn chain(stages: u32, parallelism: u32) -> Topology {
    let mut b = TopologyBuilder::new(format!("chain-{stages}x{parallelism}"));
    b.set_spout("c0", parallelism)
        .set_cpu_load(10.0)
        .set_memory_load(64.0);
    for i in 1..stages {
        b.set_bolt(format!("c{i}"), parallelism)
            .shuffle_grouping(format!("c{}", i - 1))
            .set_cpu_load(10.0)
            .set_memory_load(64.0);
    }
    b.build().expect("valid")
}

fn cluster(racks: u32, nodes_per_rack: u32) -> Cluster {
    ClusterBuilder::new()
        .homogeneous_racks(
            racks,
            nodes_per_rack,
            ResourceCapacity::for_machine(16, 65536.0),
            4,
        )
        .build()
        .expect("valid")
}

/// Median wall time of `timed`, with per-sample state built by `setup`
/// outside the timed region. Runs at least `MIN_ITERS` samples and keeps
/// sampling until `budget` is spent (whichever is later), capped at
/// `MAX_ITERS`.
fn median_ns<T>(mut setup: impl FnMut() -> T, mut timed: impl FnMut(T), budget: Duration) -> u64 {
    const MIN_ITERS: usize = 3;
    const MAX_ITERS: usize = 200;
    // One untimed warmup to populate allocator caches and branch
    // predictors.
    timed(setup());
    let mut samples = Vec::new();
    let started = Instant::now();
    while samples.len() < MAX_ITERS && (samples.len() < MIN_ITERS || started.elapsed() < budget) {
        let input = setup();
        let t0 = Instant::now();
        timed(input);
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct CaseResult {
    name: String,
    tasks: u32,
    nodes: u32,
    rstorm_ns: u64,
    reference_ns: u64,
    even_ns: u64,
}

fn time_schedulers(name: &str, topology: &Topology, cl: &Cluster, budget: Duration) -> CaseResult {
    let tasks = topology.task_set().len() as u32;
    let nodes = cl.nodes().len() as u32;
    let rstorm_ns = median_ns(
        || GlobalState::new(cl),
        |mut state| {
            RStormScheduler::new()
                .schedule(topology, cl, &mut state)
                .expect("feasible");
        },
        budget,
    );
    let reference_ns = median_ns(
        || GlobalState::new(cl),
        |mut state| {
            ReferenceRStormScheduler::new()
                .schedule(topology, cl, &mut state)
                .expect("feasible");
        },
        budget,
    );
    let even_ns = median_ns(
        || GlobalState::new(cl),
        |mut state| {
            EvenScheduler::new()
                .schedule(topology, cl, &mut state)
                .expect("feasible");
        },
        budget,
    );
    CaseResult {
        name: name.to_string(),
        tasks,
        nodes,
        rstorm_ns,
        reference_ns,
        even_ns,
    }
}

/// The operationally critical path: a node dies, its topology must be
/// released and replaced on the survivors.
fn time_reschedule(budget: Duration) -> CaseResult {
    let topology = chain(5, 40);
    let base = cluster(2, 12);
    let nodes = base.nodes().len() as u32;
    let tasks = topology.task_set().len() as u32;
    let reschedule = |scheduler: &dyn Scheduler| {
        let mut killed = base.clone();
        let mut state = GlobalState::new(&killed);
        scheduler
            .schedule(&topology, &killed, &mut state)
            .expect("feasible");
        killed.kill_node("rack-0-node-0");
        (killed, state)
    };
    let run = |scheduler: &dyn Scheduler, (cl, mut state): (Cluster, GlobalState)| {
        for t in state.handle_node_failure("rack-0-node-0") {
            state.release_topology(t.as_str());
        }
        scheduler
            .schedule(&topology, &cl, &mut state)
            .expect("survivors suffice");
    };
    let fast = RStormScheduler::new();
    let reference = ReferenceRStormScheduler::new();
    let rstorm_ns = median_ns(|| reschedule(&fast), |input| run(&fast, input), budget);
    let reference_ns = median_ns(
        || reschedule(&reference),
        |input| run(&reference, input),
        budget,
    );
    CaseResult {
        name: "reschedule_after_node_failure".to_string(),
        tasks,
        nodes,
        rstorm_ns,
        reference_ns,
        even_ns: 0,
    }
}

fn write_json(results: &[CaseResult]) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"scheduling latency (median wall time per schedule)\",\n  \"unit\": \"ns\",\n  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        let speedup = r.reference_ns as f64 / r.rstorm_ns as f64;
        write!(
            out,
            "    {{\"name\": \"{}\", \"tasks\": {}, \"nodes\": {}, \
             \"rstorm_ns\": {}, \"rstorm_reference_ns\": {}, ",
            r.name, r.tasks, r.nodes, r.rstorm_ns, r.reference_ns
        )
        .unwrap();
        if r.even_ns > 0 {
            write!(out, "\"even_ns\": {}, ", r.even_ns).unwrap();
        }
        write!(out, "\"speedup_vs_reference\": {speedup:.2}}}").unwrap();
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    // Per-scheduler-per-case sampling budget. 5 cases × up to 3 timers
    // each keeps the whole run comfortably under 30 s even when the
    // reference scheduler needs ~1 s per 10k-task schedule.
    let budget = Duration::from_millis(800);
    let started = Instant::now();

    let mut results = Vec::new();
    for (stages, parallelism, racks, nodes) in [
        (4u32, 10u32, 2u32, 6u32),
        (5, 40, 2, 12),
        (10, 100, 4, 16),
        (20, 500, 8, 32),
    ] {
        let topology = chain(stages, parallelism);
        let cl = cluster(racks, nodes);
        let tasks = stages * parallelism;
        let name = format!("schedule/{tasks}t_{}n", racks * nodes);
        results.push(time_schedulers(&name, &topology, &cl, budget));
    }
    results.push(time_reschedule(budget));

    println!(
        "{:<32} {:>8} {:>6} {:>14} {:>14} {:>12} {:>9}",
        "case", "tasks", "nodes", "rstorm", "reference", "even", "speedup"
    );
    for r in &results {
        let even = if r.even_ns > 0 {
            format!("{:>9.3} ms", r.even_ns as f64 / 1e6)
        } else {
            format!("{:>12}", "-")
        };
        println!(
            "{:<32} {:>8} {:>6} {:>11.3} ms {:>11.3} ms {} {:>8.2}x",
            r.name,
            r.tasks,
            r.nodes,
            r.rstorm_ns as f64 / 1e6,
            r.reference_ns as f64 / 1e6,
            even,
            r.reference_ns as f64 / r.rstorm_ns as f64,
        );
    }

    let json = write_json(&results);
    std::fs::write("BENCH_sched.json", &json).expect("write BENCH_sched.json");
    println!(
        "\nwrote BENCH_sched.json ({} cases) in {:.1} s",
        results.len(),
        started.elapsed().as_secs_f64()
    );
}
