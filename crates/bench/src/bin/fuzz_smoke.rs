//! Invariant-directed chaos-fuzzer smoke test.
//!
//! Runs two fixed-seed campaigns over the split workload (two
//! components at 1.4 GB each on 2 GB nodes, so the tuple path always
//! crosses nodes and every fault atom can disturb it) and writes
//! `BENCH_fuzz.json` in the current directory:
//!
//! * **Clean campaign** — the production engine, generous replay
//!   budget. Gates, before anything is written: zero oracle violations,
//!   and a byte-identical campaign log on 1 worker vs `min(8, cores)`
//!   workers (worker count must never leak into fuzz results).
//! * **Planted campaign** — `planted_quarantine_bug` breaks the drain
//!   invariant on the first quarantine, with a replay budget tight
//!   enough that generated plans can reach it. Gates: the fuzzer finds
//!   the planted violation within the smoke budget, shrinks it to at
//!   most [`MAX_SHRUNK_EVENTS`] events, and the shrunk plan still trips
//!   the same oracle.
//!
//! Both case lines carry `fuzz_violations` — the count of *unexpected*
//! oracle violations (any violation on the clean campaign; any
//! non-planted oracle on the planted campaign) — which `bench_guard`
//! pins at exactly 0 with no environment-variable relaxation.
//!
//! Run with `cargo run --release -p rstorm-bench --bin fuzz_smoke`.

use rstorm_bench::harness::BenchReport;
use rstorm_cluster::{Cluster, ClusterBuilder, ResourceCapacity};
use rstorm_core::{schedulers, RecoveryConfig};
use rstorm_sim::{check_fault_plan, run_fuzz_campaign, FuzzConfig, OracleKind, SimConfig};
use rstorm_topology::{ExecutionProfile, Topology, TopologyBuilder};
use std::sync::Arc;
use std::time::Instant;

/// Iterations of the clean campaign.
const CLEAN_ITERATIONS: u32 = 24;
/// Iterations of the planted campaign — enough for the generator to hit
/// a sink-node outage long enough to exhaust the tight replay budget.
const PLANTED_ITERATIONS: u32 = 12;
/// The planted reproducer must shrink to at most this many events.
const MAX_SHRUNK_EVENTS: usize = 6;

/// Two racks of two Emulab-profile nodes: enough topology for rack
/// partitions and crash bursts to differ, small enough to stay fast.
fn cluster() -> Arc<Cluster> {
    Arc::new(
        ClusterBuilder::new()
            .homogeneous_racks(2, 2, ResourceCapacity::emulab_node(), 4)
            .build()
            .expect("2x2 emulab cluster builds"),
    )
}

/// A topology whose two components cannot colocate (1.4 GB each on 2 GB
/// nodes): the spout-to-sink path always crosses nodes, so node faults
/// genuinely disturb the data plane.
fn split_topology() -> Topology {
    let mut b = TopologyBuilder::new("fuzz-smoke");
    b.set_spout("src", 1)
        .set_profile(ExecutionProfile::network_bound(100))
        .set_cpu_load(20.0)
        .set_memory_load(1_400.0);
    b.set_bolt("sink", 1)
        .shuffle_grouping("src")
        .set_profile(ExecutionProfile::network_bound(100).into_sink())
        .set_cpu_load(20.0)
        .set_memory_load(1_400.0);
    b.build().expect("split topology builds")
}

/// The clean campaign: 30 s horizon, replay budget far past what any
/// generated outage can consume, all oracles armed.
fn clean_cfg() -> FuzzConfig {
    FuzzConfig {
        iterations: CLEAN_ITERATIONS,
        seed: 42,
        max_atoms: 3,
        sim: SimConfig::quick()
            .with_sim_time_ms(30_000.0)
            .with_max_replays(8),
        recovery: RecoveryConfig::default(),
    }
}

/// The planted campaign: a tight replay budget and short tuple timeout
/// make quarantine reachable, and the planted hook breaks the drain
/// invariant on the first quarantine.
fn planted_cfg() -> FuzzConfig {
    let mut sim = SimConfig::quick()
        .with_sim_time_ms(30_000.0)
        .with_max_replays(1)
        .with_planted_quarantine_bug(true);
    sim.tuple_timeout_ms = 3_000.0;
    FuzzConfig {
        iterations: PLANTED_ITERATIONS,
        seed: 42,
        max_atoms: 3,
        sim,
        recovery: RecoveryConfig::default(),
    }
}

/// Workers on the parallel side: all cores, capped at 8 like the other
/// smoke pools.
fn parallel_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

fn main() {
    let mut report = BenchReport::new("Invariant-directed chaos fuzzer", "ns");
    let cluster = cluster();
    let topology = split_topology();
    let scheduler = schedulers::by_name("rstorm").expect("rstorm scheduler exists");
    let workers = parallel_workers();

    // Clean campaign: no oracle may trip, and the campaign log must be
    // byte-identical whatever the worker count.
    let cfg = clean_cfg();
    let t0 = Instant::now();
    let clean = run_fuzz_campaign(&cluster, &topology, &*scheduler, &cfg, workers);
    let clean_ns = t0.elapsed().as_nanos() as u64;
    let serial = run_fuzz_campaign(&cluster, &topology, &*scheduler, &cfg, 1);
    assert_eq!(
        clean.campaign_log(),
        serial.campaign_log(),
        "fuzz campaign log differs between 1 and {workers} workers"
    );
    assert!(
        clean.is_clean(),
        "clean campaign tripped oracles:\n{}",
        clean.campaign_log()
    );

    // Planted campaign: the drain-invariant bug must be found and must
    // shrink to a small reproducer that still trips the same oracle.
    let planted_oracle = OracleKind::Invariant("drain_imbalance".to_owned());
    let cfg = planted_cfg();
    let t0 = Instant::now();
    let planted = run_fuzz_campaign(&cluster, &topology, &*scheduler, &cfg, workers);
    let planted_ns = t0.elapsed().as_nanos() as u64;
    let found: Vec<_> = planted
        .reproducers
        .iter()
        .filter(|r| r.oracle == planted_oracle)
        .collect();
    assert!(
        !found.is_empty(),
        "planted drain-invariant bug not found in {PLANTED_ITERATIONS} iterations:\n{}",
        planted.campaign_log()
    );
    let unexpected = planted
        .reproducers
        .iter()
        .filter(|r| r.oracle != planted_oracle)
        .count();
    let smallest = found
        .iter()
        .min_by_key(|r| r.plan.events().len())
        .expect("found is non-empty");
    assert!(
        smallest.plan.events().len() <= MAX_SHRUNK_EVENTS,
        "shrunk reproducer still has {} events (> {MAX_SHRUNK_EVENTS}):\n{}",
        smallest.plan.events().len(),
        smallest.to_text()
    );
    assert_eq!(
        check_fault_plan(&cluster, &topology, &*scheduler, &cfg, &smallest.plan).as_ref(),
        Some(&planted_oracle),
        "shrunk reproducer no longer trips the planted oracle"
    );

    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>8}",
        "campaign", "iterations", "violations", "wall", "workers"
    );
    println!(
        "{:<14} {:>10} {:>10} {:>9.2} s {:>8}",
        "clean",
        CLEAN_ITERATIONS,
        clean.reproducers.len(),
        clean_ns as f64 / 1e9,
        workers
    );
    println!(
        "{:<14} {:>10} {:>10} {:>9.2} s {:>8}",
        "planted",
        PLANTED_ITERATIONS,
        planted.reproducers.len(),
        planted_ns as f64 / 1e9,
        workers
    );
    println!(
        "planted reproducer: {} -> {} events ({})",
        smallest.original.events().len(),
        smallest.plan.events().len(),
        smallest.oracle
    );

    report.push_case(format!(
        "{{\"name\": \"fuzz/clean\", \"iterations\": {CLEAN_ITERATIONS}, \"seed\": 42, \
         \"workers\": {workers}, \"wall_ns\": {clean_ns}, \"fuzz_violations\": {}}}",
        clean.reproducers.len()
    ));
    report.push_case(format!(
        "{{\"name\": \"fuzz/planted\", \"iterations\": {PLANTED_ITERATIONS}, \"seed\": 42, \
         \"workers\": {workers}, \"wall_ns\": {planted_ns}, \"planted_found\": {}, \
         \"original_events\": {}, \"shrunk_events\": {}, \"fuzz_violations\": {unexpected}}}",
        found.len(),
        smallest.original.events().len(),
        smallest.plan.events().len()
    ));
    report.write("BENCH_fuzz.json");
}
