//! Figure 10: average CPU utilization of the machines used, default Storm
//! vs R-Storm, for the computation-time-bound micro-benchmarks.
//!
//! Paper result (§6.3.2): R-Storm's average CPU utilization is 69%, 91%
//! and 350% higher than default Storm's for the Linear, Diamond and Star
//! topologies respectively, because R-Storm satisfies the same workload
//! with roughly half the machines.

use rstorm_bench::{config_from_args, figure_header, Comparison};
use rstorm_metrics::text_table;
use rstorm_workloads::{clusters, micro};

fn main() {
    let config = config_from_args();
    let cluster = std::sync::Arc::new(clusters::emulab_micro());

    figure_header(
        "Fig 10 (CPU utilization comparison)",
        "R-Storm +69% (Linear), +91% (Diamond), +350% (Star) average CPU utilization",
    );

    let cases = [
        ("linear", micro::linear_cpu_bound(), 69.0),
        ("diamond", micro::diamond_cpu_bound(), 91.0),
        ("star", micro::star_cpu_bound(), 350.0),
    ];

    let mut rows = Vec::new();
    for (name, topology, paper_pct) in cases {
        let cmp = Comparison::run(&topology, &cluster, config.clone());
        let r = cmp.rstorm.mean_used_cpu_utilization.mean * 100.0;
        let d = cmp.default.mean_used_cpu_utilization.mean * 100.0;
        let improvement = if d > 0.0 {
            (r / d - 1.0) * 100.0
        } else {
            f64::INFINITY
        };
        rows.push(vec![
            name.to_owned(),
            format!("{d:.0}% ({} nodes)", cmp.default.used_nodes),
            format!("{r:.0}% ({} nodes)", cmp.rstorm.used_nodes),
            format!("{improvement:+.0}%"),
            format!("{paper_pct:+.0}%"),
        ]);
    }
    println!(
        "{}",
        text_table(
            &[
                "topology",
                "default util",
                "r-storm util",
                "measured",
                "paper"
            ],
            &rows
        )
    );
}
