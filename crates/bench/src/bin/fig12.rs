//! Figure 12: throughput of the Yahoo! production topologies, each run
//! alone on the 12-node cluster.
//!
//! Paper result (§6.4): "the Page Load and Processing Topologies have 50%
//! and 47% better overall throughput, respectively, when scheduled by
//! R-Storm as compared to Storm's default scheduler."

use rstorm_bench::{config_from_args, figure_header, Comparison};
use rstorm_workloads::{clusters, yahoo};

fn main() {
    let config = config_from_args();
    let cluster = std::sync::Arc::new(clusters::emulab_micro());

    let cases = [
        ("Fig 12a (Yahoo PageLoad)", yahoo::page_load(), "+50%"),
        ("Fig 12b (Yahoo Processing)", yahoo::processing(), "+47%"),
    ];

    for (name, topology, paper) in cases {
        figure_header(name, &format!("R-Storm ≈ {paper} throughput vs default"));
        let cmp = Comparison::run(&topology, &cluster, config.clone());
        println!("{}", cmp.timeline_table());
        println!("measured: {}", cmp.summary_line());
        println!();
    }
}
