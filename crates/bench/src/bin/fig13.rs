//! Figure 13: the multi-topology experiment — PageLoad and Processing
//! submitted together to a 24-node, two-rack cluster.
//!
//! Paper result (§6.5): with R-Storm, PageLoad averages 25 496 and
//! Processing 67 115 tuples/10 s; with default Storm, PageLoad drops to
//! 16 695 (−35%) and Processing "grinds to a near halt with an average
//! overall throughput near zero" (10 tuples/sec) — the consequence of
//! over-utilizing machines when scheduling is not resource-aware.

use rstorm_bench::{config_from_args, figure_header, WARMUP_WINDOWS};
use rstorm_core::schedulers::EvenScheduler;
use rstorm_core::{schedule_all, RStormScheduler, Scheduler};
use rstorm_metrics::text_table;
use rstorm_sim::{SimReport, Simulation};
use rstorm_workloads::{clusters, yahoo};

fn run(scheduler: &dyn Scheduler, cluster: &std::sync::Arc<rstorm_cluster::Cluster>) -> SimReport {
    let page_load = yahoo::page_load();
    let processing = yahoo::processing();
    // Processing was submitted first (schedule order matters to the
    // resource-oblivious baseline: later topologies fill in around it).
    let plan = schedule_all(scheduler, &[&processing, &page_load], cluster)
        .unwrap_or_else(|e| panic!("{} failed to schedule: {e}", scheduler.name()));
    // The paper runs this experiment for ~15 minutes; the default
    // scheduler's death spiral needs a few minutes to fully develop.
    let mut config = config_from_args();
    config.sim_time_ms *= 3.0;
    let mut sim = Simulation::new(std::sync::Arc::clone(cluster), config);
    sim.add_topology(&page_load, plan.assignment("page-load").unwrap());
    sim.add_topology(&processing, plan.assignment("processing").unwrap());
    sim.run()
}

fn main() {
    figure_header(
        "Fig 13 (multi-topology, 24 nodes)",
        "R-Storm: PageLoad 25 496, Processing 67 115 tuples/10 s; \
         default: PageLoad 16 695, Processing ~0 (10 tuples/sec)",
    );

    let cluster = std::sync::Arc::new(clusters::emulab_multi());
    let rstorm = run(&RStormScheduler::new(), &cluster);
    let default = run(&EvenScheduler::new(), &cluster);

    let mut rows = Vec::new();
    for topology in ["page-load", "processing"] {
        rows.push(vec![
            topology.to_owned(),
            format!("{:.0}", rstorm.steady_throughput(topology, WARMUP_WINDOWS)),
            format!("{:.0}", default.steady_throughput(topology, WARMUP_WINDOWS)),
        ]);
    }
    println!(
        "{}",
        text_table(
            &["topology", "r-storm (tuples/10s)", "default (tuples/10s)"],
            &rows
        )
    );
    println!();
    println!(
        "timed-out roots: r-storm {} of {}, default {} of {}",
        rstorm.totals.roots_timed_out,
        rstorm.totals.spout_batches,
        default.totals.roots_timed_out,
        default.totals.spout_batches,
    );
}
