//! Quick adaptive-rebalance smoke test.
//!
//! Runs the full profile → detect → migrate pipeline
//! (`rstorm_sim::run_adaptive_rebalance`) on the drifted-declaration
//! workloads, gates on adaptive-plane correctness, and writes the
//! net-throughput comparison to `BENCH_adaptive.json` in the current
//! directory.
//!
//! Gates per case:
//!
//! * **Detection** — the under-declared hot component must be flagged and
//!   at least one node must run saturated.
//! * **Minimality** — the delta scheduler's plan must not move more tasks
//!   than a reschedule-from-scratch of the refined topology would.
//! * **Net win** — the adaptive run must complete strictly more tuples
//!   than the static run over the same horizon, *net* of the per-task
//!   pause/drain/restore cost the migration pays mid-run.
//!
//! `speedup_vs_reference` is `adaptive_net / static_net`, so the shared
//! `bench_guard` threshold (default 1.0) enforces "adaptive at least as
//! good as static on every drifted case".
//!
//! Run with `cargo run --release -p rstorm-bench --bin adaptive_smoke`.

use rstorm_bench::harness::BenchReport;
use rstorm_sim::{run_adaptive_rebalance, AdaptiveConfig};
use rstorm_workloads::cases::{drifted_cases, WorkloadCase};
use std::sync::Arc;

struct CaseResult {
    name: String,
    tasks: u32,
    nodes: u32,
    sim_ms: f64,
    drifted_components: usize,
    plan_moves: usize,
    reschedule_moves: usize,
    static_net: u64,
    adaptive_net: u64,
    rescheduled_net: u64,
}

fn run_case(case: &WorkloadCase) -> CaseResult {
    let cluster = Arc::new(case.cluster.clone());
    let cfg = AdaptiveConfig::quick();
    let out = run_adaptive_rebalance(&cluster, &case.topology, &cfg);

    // Detection gate: the drift these workloads embed must be seen.
    assert!(
        !out.drift.is_clean(),
        "{}: no drift detected on a drifted workload",
        case.name
    );
    assert!(
        !out.drift.saturated_nodes.is_empty(),
        "{}: no node saturated despite the packed hot component ({:?})",
        case.name,
        out.profile_report.node_utilization
    );

    // Minimality gate: the whole point of the delta scheduler.
    assert!(!out.plan.is_empty(), "{}: empty migration plan", case.name);
    assert!(
        out.plan.len() <= out.rescheduled_moves,
        "{}: delta plan moves {} tasks, full reschedule only {}",
        case.name,
        out.plan.len(),
        out.rescheduled_moves
    );

    // Net-win gate: migration must pay for itself inside the horizon.
    assert!(
        out.adaptive_net() > out.static_net(),
        "{}: adaptive {} <= static {} net tuples",
        case.name,
        out.adaptive_net(),
        out.static_net()
    );

    CaseResult {
        name: case.name.to_string(),
        tasks: case.topology.task_set().len() as u32,
        nodes: cluster.nodes().len() as u32,
        sim_ms: cfg.sim.sim_time_ms,
        drifted_components: out.drift.drifted.len(),
        plan_moves: out.plan.len(),
        reschedule_moves: out.rescheduled_moves,
        static_net: out.static_net(),
        adaptive_net: out.adaptive_net(),
        rescheduled_net: out.rescheduled_net(),
    }
}

fn json_line(r: &CaseResult) -> String {
    let speedup = r.adaptive_net as f64 / r.static_net as f64;
    format!(
        "{{\"name\": \"{}\", \"tasks\": {}, \"nodes\": {}, \"sim_ms\": {:.0}, \
         \"drifted_components\": {}, \"plan_moves\": {}, \"reschedule_moves\": {}, \
         \"static_net\": {}, \"adaptive_net\": {}, \"rescheduled_net\": {}, \
         \"speedup_vs_reference\": {speedup:.2}}}",
        r.name,
        r.tasks,
        r.nodes,
        r.sim_ms,
        r.drifted_components,
        r.plan_moves,
        r.reschedule_moves,
        r.static_net,
        r.adaptive_net,
        r.rescheduled_net
    )
}

fn main() {
    let mut report = BenchReport::new(
        "adaptive rebalance vs static placement (quick sim)",
        "tuples",
    );
    let results: Vec<CaseResult> = drifted_cases().iter().map(run_case).collect();

    println!(
        "{:<12} {:>6} {:>6} {:>8} {:>6} {:>8} {:>10} {:>10} {:>12} {:>8}",
        "case",
        "tasks",
        "nodes",
        "drifted",
        "moves",
        "resched",
        "static",
        "adaptive",
        "rescheduled",
        "gain"
    );
    for r in &results {
        println!(
            "{:<12} {:>6} {:>6} {:>8} {:>6} {:>8} {:>10} {:>10} {:>12} {:>7.2}x",
            r.name,
            r.tasks,
            r.nodes,
            r.drifted_components,
            r.plan_moves,
            r.reschedule_moves,
            r.static_net,
            r.adaptive_net,
            r.rescheduled_net,
            r.adaptive_net as f64 / r.static_net as f64,
        );
    }

    for r in &results {
        report.push_case(json_line(r));
    }
    report.write("BENCH_adaptive.json");
}
