//! Figure 9: throughput of the computation-time-bound micro-benchmark
//! topologies (Linear 9a, Diamond 9b, Star 9c).
//!
//! Paper result (§6.3.2): for Linear and Diamond, "the throughput of a
//! scheduling by R-Storm using 6 (resp. 7) machines is similar to that of
//! Storm's default scheduler using 12 machines"; for Star, "even when
//! R-Storm was using half of the machines ... R-Storm still had much
//! higher throughput" because the default schedule over-utilizes one
//! machine and that bottleneck throttles the topology.

use rstorm_bench::{config_from_args, figure_header, Comparison};
use rstorm_workloads::{clusters, micro};

fn main() {
    let config = config_from_args();
    let cluster = std::sync::Arc::new(clusters::emulab_micro());

    let cases = [
        (
            "Fig 9a (Linear, CPU-bound)",
            micro::linear_cpu_bound(),
            "equal throughput on ~half the machines",
        ),
        (
            "Fig 9b (Diamond, CPU-bound)",
            micro::diamond_cpu_bound(),
            "equal throughput on ~half the machines",
        ),
        (
            "Fig 9c (Star, CPU-bound)",
            micro::star_cpu_bound(),
            "R-Storm much higher; default bottlenecked by one machine",
        ),
    ];

    for (name, topology, paper) in cases {
        figure_header(name, paper);
        let cmp = Comparison::run(&topology, &cluster, config.clone());
        println!("{}", cmp.timeline_table());
        println!("measured: {}", cmp.summary_line());
        println!(
            "mean used-machine CPU utilization: r-storm {:.0}% over {} nodes, \
             default {:.0}% over {} nodes",
            cmp.rstorm.mean_used_cpu_utilization.mean * 100.0,
            cmp.rstorm.used_nodes,
            cmp.default.mean_used_cpu_utilization.mean * 100.0,
            cmp.default.used_nodes,
        );
        println!();
    }
}
