//! Benchmark regression guard: fails (exit 1) if any case in the checked
//! `BENCH_*.json` files reports a `speedup_vs_reference` below 1.0 —
//! i.e. if either "fast path" (the indexed scheduler, the dense-id
//! simulator) has regressed to slower than the reference implementation
//! it is supposed to beat.
//!
//! Run after `perf_smoke` and `sim_smoke` have refreshed the files:
//!
//! ```text
//! cargo run --release -p rstorm-bench --bin bench_guard
//! ```
//!
//! Arguments are the files to check; defaults to `BENCH_sched.json` and
//! `BENCH_sim.json` in the current directory. A missing file is an
//! error — the guard must never pass because a smoke run silently
//! produced nothing.

use std::process::ExitCode;

/// One `speedup_vs_reference` reading and the case it belongs to.
#[derive(Debug, PartialEq)]
struct Reading {
    case: String,
    speedup: f64,
}

/// Extracts every `speedup_vs_reference` from a `BENCH_*.json` document,
/// paired with the nearest preceding `"name"` value.
///
/// The bench files are written by our own smoke binaries with one case
/// object per line, so a line-oriented scan is exact for them — and
/// deliberately dependency-free (the workspace vendors no JSON parser).
fn extract_speedups(json: &str) -> Vec<Reading> {
    let mut readings = Vec::new();
    for line in json.lines() {
        let Some(speedup) = field(line, "\"speedup_vs_reference\":") else {
            continue;
        };
        let case = field_str(line, "\"name\":")
            .unwrap_or("<unnamed>")
            .to_owned();
        let speedup = speedup
            .parse::<f64>()
            .unwrap_or_else(|e| panic!("bad speedup_vs_reference {speedup:?}: {e}"));
        readings.push(Reading { case, speedup });
    }
    readings
}

/// The raw token following `key` on `line` (up to `,`, `}` or space).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = &line[line.find(key)? + key.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| c == ',' || c == '}' || c.is_whitespace())
        .unwrap_or(rest.len());
    Some(&rest[..end])
}

/// The quoted string following `key` on `line`.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let token = field(line, key)?;
    token.strip_prefix('"')?.strip_suffix('"')
}

fn check_file(path: &str) -> Result<usize, String> {
    let json = std::fs::read_to_string(path)
        .map_err(|e| format!("{path}: {e} (run the matching smoke binary first)"))?;
    let readings = extract_speedups(&json);
    if readings.is_empty() {
        return Err(format!("{path}: no speedup_vs_reference entries found"));
    }
    let mut failures = 0;
    for r in &readings {
        let verdict = if r.speedup < 1.0 {
            failures += 1;
            "REGRESSION"
        } else {
            "ok"
        };
        println!("{path}: {:<32} {:>6.2}x  {verdict}", r.case, r.speedup);
    }
    if failures > 0 {
        Err(format!(
            "{path}: {failures} case(s) slower than the reference implementation"
        ))
    } else {
        Ok(readings.len())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let files: Vec<&str> = if args.is_empty() {
        vec!["BENCH_sched.json", "BENCH_sim.json"]
    } else {
        args.iter().map(String::as_str).collect()
    };

    let mut errors = Vec::new();
    let mut checked = 0;
    for file in files {
        match check_file(file) {
            Ok(n) => checked += n,
            Err(e) => errors.push(e),
        }
    }
    if errors.is_empty() {
        println!("bench_guard: {checked} case(s) at or above 1.0x — pass");
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("bench_guard: {e}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_named_speedups() {
        let json = r#"{
  "cases": [
    {"name": "a", "fast_ns": 1, "speedup_vs_reference": 2.50},
    {"name": "b", "fast_ns": 2, "speedup_vs_reference": 0.91}
  ]
}"#;
        let readings = extract_speedups(json);
        assert_eq!(
            readings,
            vec![
                Reading {
                    case: "a".into(),
                    speedup: 2.5
                },
                Reading {
                    case: "b".into(),
                    speedup: 0.91
                },
            ]
        );
    }

    #[test]
    fn ignores_lines_without_speedups() {
        let json = "{\n  \"benchmark\": \"x\",\n  \"unit\": \"ns\"\n}\n";
        assert!(extract_speedups(json).is_empty());
    }

    #[test]
    fn real_bench_sched_shape_parses() {
        // The exact line shape perf_smoke writes.
        let line = r#"    {"name": "schedule/40t_12n", "tasks": 40, "nodes": 12, "rstorm_ns": 27598, "rstorm_reference_ns": 48508, "even_ns": 24494, "speedup_vs_reference": 1.76}"#;
        let readings = extract_speedups(line);
        assert_eq!(readings.len(), 1);
        assert_eq!(readings[0].case, "schedule/40t_12n");
        assert!((readings[0].speedup - 1.76).abs() < 1e-9);
    }
}
