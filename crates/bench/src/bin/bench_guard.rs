//! Benchmark regression guard: fails (exit 1) if any case in the checked
//! `BENCH_*.json` files reports a `speedup_vs_reference` below the
//! threshold — i.e. if either "fast path" (the indexed scheduler, the
//! dense-id simulator, the fault-injected simulator) has regressed
//! against the reference implementation it is supposed to beat.
//!
//! The threshold defaults to 1.0 and can be tuned with the
//! `BENCH_GUARD_MIN` environment variable (e.g. `BENCH_GUARD_MIN=1.2`
//! to demand a 20% margin, or `0.9` to tolerate noisy shared runners).
//!
//! Cases that report a `zero_loss_ratio` (the replay smoke and every
//! survivable sweep group) are additionally held to exactly 1.0:
//! guaranteed processing is a correctness property, not a performance
//! number, so no environment variable can relax it. The same goes for
//! `routing_parity` (the scale smoke's churn case): an incrementally
//! patched routing table that is not bit-identical to a full rebuild is
//! a correctness failure, whatever the speedup says. So does
//! `fuzz_violations` (the fuzz smoke's campaign cases), pinned at
//! exactly 0: a fixed-seed fuzz campaign that trips an oracle found a
//! real robustness bug. And `rstorm_beats_even_on_trunk` (the
//! congestion smoke's contention case) is pinned at ≥ 1.0: the fair
//! network plane is deterministic, so proximity packing losing to the
//! spread baseline under trunk saturation is a modeling bug, not
//! measurement noise, and no environment variable can excuse it.
//! `failover_zero_loss` and `reconciliation_convergence` (the control
//! smoke's Nimbus-outage cases) are pinned at exactly 1.0: a journaled
//! failover that loses roots on a survivable plan, or a successor whose
//! reconciled assignment diverges from a from-scratch reschedule, is a
//! control-plane correctness bug, unrelaxable by any environment
//! variable.
//! Sweep groups carry
//! no speedup — only the sweep's `sweep/parallel_speedup` case does,
//! and the shared threshold enforces "parallel at least as fast as
//! serial" on it.
//!
//! A failing or missing file gets **one** re-measure: the guard invokes
//! the matching smoke binary (`perf_smoke`, `sim_smoke`, `chaos_smoke`,
//! `adaptive_smoke`, `replay_smoke`, `sweep_smoke`, `scale_smoke`,
//! `fuzz_smoke`, `congestion_smoke`, `control_smoke`)
//! through `cargo run --release` and re-checks, so a single noisy sample
//! on a busy machine does not fail the build. A second miss is a real
//! regression.
//!
//! Run after the smoke binaries have refreshed the files:
//!
//! ```text
//! cargo run --release -p rstorm-bench --bin bench_guard
//! ```
//!
//! Arguments are the files to check; defaults to `BENCH_sched.json`,
//! `BENCH_sim.json`, `BENCH_chaos.json`, `BENCH_adaptive.json`,
//! `BENCH_replay.json`, `BENCH_sweep.json`, `BENCH_scale.json`,
//! `BENCH_fuzz.json`, `BENCH_network.json` and `BENCH_control.json` in
//! the current directory.
//! A missing file that has no matching smoke binary is an error — the
//! guard must never pass because a smoke run silently produced nothing.

use std::process::{Command, ExitCode};

/// One gated case: its `speedup_vs_reference` (absent on sweep group
/// lines, which are pure correctness gates), its `zero_loss_ratio`
/// (present on replay cases and survivable sweep groups), its
/// `routing_parity` (present on the scale smoke's churn case), its
/// `fuzz_violations` (present on the fuzz smoke's campaign cases), its
/// `rstorm_beats_even_on_trunk` (present on the congestion smoke's
/// contention case), and its `failover_zero_loss` /
/// `reconciliation_convergence` (present on the control smoke's
/// Nimbus-outage cases).
#[derive(Debug, PartialEq)]
struct Reading {
    case: String,
    speedup: Option<f64>,
    zero_loss_ratio: Option<f64>,
    routing_parity: Option<f64>,
    fuzz_violations: Option<f64>,
    trunk_win: Option<f64>,
    failover_zero_loss: Option<f64>,
    reconciliation_convergence: Option<f64>,
}

/// Extracts every gated case from a `BENCH_*.json` document: any line
/// carrying a `speedup_vs_reference` and/or a `zero_loss_ratio`, paired
/// with the line's `"name"` value.
///
/// The bench files are written by our own smoke binaries with one case
/// object per line, so a line-oriented scan is exact for them — and
/// deliberately dependency-free (the workspace vendors no JSON parser).
fn extract_speedups(json: &str) -> Vec<Reading> {
    let mut readings = Vec::new();
    for line in json.lines() {
        let speedup = field(line, "\"speedup_vs_reference\":").map(|raw| {
            raw.parse::<f64>()
                .unwrap_or_else(|e| panic!("bad speedup_vs_reference {raw:?}: {e}"))
        });
        let zero_loss_ratio = field(line, "\"zero_loss_ratio\":").map(|raw| {
            raw.parse::<f64>()
                .unwrap_or_else(|e| panic!("bad zero_loss_ratio {raw:?}: {e}"))
        });
        let routing_parity = field(line, "\"routing_parity\":").map(|raw| {
            raw.parse::<f64>()
                .unwrap_or_else(|e| panic!("bad routing_parity {raw:?}: {e}"))
        });
        let fuzz_violations = field(line, "\"fuzz_violations\":").map(|raw| {
            raw.parse::<f64>()
                .unwrap_or_else(|e| panic!("bad fuzz_violations {raw:?}: {e}"))
        });
        let trunk_win = field(line, "\"rstorm_beats_even_on_trunk\":").map(|raw| {
            raw.parse::<f64>()
                .unwrap_or_else(|e| panic!("bad rstorm_beats_even_on_trunk {raw:?}: {e}"))
        });
        let failover_zero_loss = field(line, "\"failover_zero_loss\":").map(|raw| {
            raw.parse::<f64>()
                .unwrap_or_else(|e| panic!("bad failover_zero_loss {raw:?}: {e}"))
        });
        let reconciliation_convergence =
            field(line, "\"reconciliation_convergence\":").map(|raw| {
                raw.parse::<f64>()
                    .unwrap_or_else(|e| panic!("bad reconciliation_convergence {raw:?}: {e}"))
            });
        if speedup.is_none()
            && zero_loss_ratio.is_none()
            && routing_parity.is_none()
            && fuzz_violations.is_none()
            && trunk_win.is_none()
            && failover_zero_loss.is_none()
            && reconciliation_convergence.is_none()
        {
            continue;
        }
        let case = field_str(line, "\"name\":")
            .unwrap_or("<unnamed>")
            .to_owned();
        readings.push(Reading {
            case,
            speedup,
            zero_loss_ratio,
            routing_parity,
            fuzz_violations,
            trunk_win,
            failover_zero_loss,
            reconciliation_convergence,
        });
    }
    readings
}

/// The raw token following `key` on `line` (up to `,`, `}` or space).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = &line[line.find(key)? + key.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| c == ',' || c == '}' || c.is_whitespace())
        .unwrap_or(rest.len());
    Some(&rest[..end])
}

/// The quoted string following `key` on `line`.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let token = field(line, key)?;
    token.strip_prefix('"')?.strip_suffix('"')
}

/// The minimum acceptable `speedup_vs_reference`, from `BENCH_GUARD_MIN`
/// (default 1.0).
fn threshold() -> f64 {
    match std::env::var("BENCH_GUARD_MIN") {
        Ok(raw) => raw.parse().unwrap_or_else(|e| {
            panic!("BENCH_GUARD_MIN must be a number, got {raw:?}: {e}");
        }),
        Err(_) => 1.0,
    }
}

/// The smoke binary that regenerates `path`, if the guard knows one.
fn smoke_bin(path: &str) -> Option<&'static str> {
    if path.ends_with("BENCH_sched.json") {
        Some("perf_smoke")
    } else if path.ends_with("BENCH_sim.json") {
        Some("sim_smoke")
    } else if path.ends_with("BENCH_chaos.json") {
        Some("chaos_smoke")
    } else if path.ends_with("BENCH_adaptive.json") {
        Some("adaptive_smoke")
    } else if path.ends_with("BENCH_replay.json") {
        Some("replay_smoke")
    } else if path.ends_with("BENCH_sweep.json") {
        Some("sweep_smoke")
    } else if path.ends_with("BENCH_scale.json") {
        Some("scale_smoke")
    } else if path.ends_with("BENCH_fuzz.json") {
        Some("fuzz_smoke")
    } else if path.ends_with("BENCH_network.json") {
        Some("congestion_smoke")
    } else if path.ends_with("BENCH_control.json") {
        Some("control_smoke")
    } else {
        None
    }
}

/// Re-runs the smoke binary that produces `path`. Returns false if the
/// run could not be launched or failed.
fn remeasure(path: &str) -> bool {
    let Some(bin) = smoke_bin(path) else {
        return false;
    };
    eprintln!(
        "bench_guard: re-measuring {path} via `cargo run --release -p rstorm-bench --bin {bin}`"
    );
    Command::new(env!("CARGO"))
        .args(["run", "--release", "-p", "rstorm-bench", "--bin", bin])
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

fn check_file(path: &str, min: f64) -> Result<usize, String> {
    let json = std::fs::read_to_string(path)
        .map_err(|e| format!("{path}: {e} (run the matching smoke binary first)"))?;
    let readings = extract_speedups(&json);
    if readings.is_empty() {
        return Err(format!("{path}: no speedup_vs_reference entries found"));
    }
    let mut failures = 0;
    for r in &readings {
        // zero_loss_ratio and routing_parity are correctness gates,
        // pinned at exactly 1.0 regardless of BENCH_GUARD_MIN.
        let lossy = r.zero_loss_ratio.is_some_and(|z| z != 1.0);
        let unparity = r.routing_parity.is_some_and(|p| p != 1.0);
        let fuzzed = r.fuzz_violations.is_some_and(|v| v != 0.0);
        let congested = r.trunk_win.is_some_and(|t| t < 1.0);
        let failover_lossy = r.failover_zero_loss.is_some_and(|z| z != 1.0);
        let diverged = r.reconciliation_convergence.is_some_and(|c| c != 1.0);
        let verdict = if lossy {
            failures += 1;
            "TUPLE LOSS"
        } else if unparity {
            failures += 1;
            "PARITY"
        } else if fuzzed {
            failures += 1;
            "ORACLE VIOLATION"
        } else if congested {
            failures += 1;
            "PACKING LOST"
        } else if failover_lossy {
            failures += 1;
            "FAILOVER LOSS"
        } else if diverged {
            failures += 1;
            "RECONCILE DIVERGED"
        } else if r.speedup.is_some_and(|s| s < min) {
            failures += 1;
            "REGRESSION"
        } else {
            "ok"
        };
        let speedup = match r.speedup {
            Some(s) => format!("{s:>6.2}x"),
            None => format!("{:>7}", "-"),
        };
        let mut gates = String::new();
        if let Some(z) = r.zero_loss_ratio {
            gates.push_str(&format!("zero_loss {z:.3}  "));
        }
        if let Some(p) = r.routing_parity {
            gates.push_str(&format!("routing_parity {p:.3}  "));
        }
        if let Some(v) = r.fuzz_violations {
            gates.push_str(&format!("fuzz_violations {v:.0}  "));
        }
        if let Some(t) = r.trunk_win {
            gates.push_str(&format!("trunk_win {t:.2}x  "));
        }
        if let Some(z) = r.failover_zero_loss {
            gates.push_str(&format!("failover_zero_loss {z:.3}  "));
        }
        if let Some(c) = r.reconciliation_convergence {
            gates.push_str(&format!("reconcile {c:.3}  "));
        }
        println!("{path}: {:<40} {speedup}  {gates}{verdict}", r.case);
    }
    if failures > 0 {
        Err(format!(
            "{path}: {failures} case(s) below the {min:.2}x threshold or losing tuples"
        ))
    } else {
        Ok(readings.len())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let files: Vec<&str> = if args.is_empty() {
        vec![
            "BENCH_sched.json",
            "BENCH_sim.json",
            "BENCH_chaos.json",
            "BENCH_adaptive.json",
            "BENCH_replay.json",
            "BENCH_sweep.json",
            "BENCH_scale.json",
            "BENCH_fuzz.json",
            "BENCH_network.json",
            "BENCH_control.json",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let min = threshold();

    let mut errors = Vec::new();
    let mut checked = 0;
    for file in files {
        let result = match check_file(file, min) {
            Ok(n) => Ok(n),
            // One retry: refresh the file with its smoke binary and
            // re-check, so a single noisy sample is not a failure.
            Err(first) if remeasure(file) => {
                check_file(file, min).map_err(|second| format!("{second} (first attempt: {first})"))
            }
            Err(e) => Err(e),
        };
        match result {
            Ok(n) => checked += n,
            Err(e) => errors.push(e),
        }
    }
    if errors.is_empty() {
        println!("bench_guard: {checked} case(s) at or above {min:.2}x — pass");
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("bench_guard: {e}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_named_speedups() {
        let json = r#"{
  "cases": [
    {"name": "a", "fast_ns": 1, "speedup_vs_reference": 2.50},
    {"name": "b", "fast_ns": 2, "speedup_vs_reference": 0.91}
  ]
}"#;
        let readings = extract_speedups(json);
        assert_eq!(
            readings,
            vec![
                Reading {
                    case: "a".into(),
                    speedup: Some(2.5),
                    zero_loss_ratio: None,
                    routing_parity: None,
                    fuzz_violations: None,
                    trunk_win: None,
                    failover_zero_loss: None,
                    reconciliation_convergence: None
                },
                Reading {
                    case: "b".into(),
                    speedup: Some(0.91),
                    zero_loss_ratio: None,
                    routing_parity: None,
                    fuzz_violations: None,
                    trunk_win: None,
                    failover_zero_loss: None,
                    reconciliation_convergence: None
                },
            ]
        );
    }

    #[test]
    fn ignores_lines_without_speedups() {
        let json = "{\n  \"benchmark\": \"x\",\n  \"unit\": \"ns\"\n}\n";
        assert!(extract_speedups(json).is_empty());
    }

    #[test]
    fn real_bench_sched_shape_parses() {
        // The exact line shape perf_smoke writes.
        let line = r#"    {"name": "schedule/40t_12n", "tasks": 40, "nodes": 12, "rstorm_ns": 27598, "rstorm_reference_ns": 48508, "even_ns": 24494, "speedup_vs_reference": 1.76}"#;
        let readings = extract_speedups(line);
        assert_eq!(readings.len(), 1);
        assert_eq!(readings[0].case, "schedule/40t_12n");
        assert!((readings[0].speedup.unwrap() - 1.76).abs() < 1e-9);
    }

    #[test]
    fn real_bench_chaos_shape_parses() {
        // The exact line shape chaos_smoke writes.
        let line = r#"    {"name": "page_load", "tasks": 16, "nodes": 24, "sim_ms": 60000, "crash_at_ms": 20000, "time_to_detect_ms": 2000, "time_to_recover_ms": 2000, "tuples_lost": 50, "throughput_dip_depth": 0.679, "reschedule_attempts": 1, "fast_ns": 51740000, "reference_ns": 298390000, "speedup_vs_reference": 5.77}"#;
        let readings = extract_speedups(line);
        assert_eq!(readings.len(), 1);
        assert_eq!(readings[0].case, "page_load");
        assert!((readings[0].speedup.unwrap() - 5.77).abs() < 1e-9);
    }

    #[test]
    fn real_bench_replay_shape_parses() {
        // The exact line shape replay_smoke writes.
        let line = r#"    {"name": "page_load", "tasks": 16, "nodes": 24, "sim_ms": 60000, "max_replays": 8, "roots_emitted": 39968, "roots_replayed": 5, "tuples_quarantined": 0, "zero_loss_ratio": 1.000, "fast_ns": 46880000, "reference_ns": 282080000, "speedup_vs_reference": 6.02}"#;
        let readings = extract_speedups(line);
        assert_eq!(readings.len(), 1);
        assert_eq!(readings[0].case, "page_load");
        assert!((readings[0].speedup.unwrap() - 6.02).abs() < 1e-9);
        assert_eq!(readings[0].zero_loss_ratio, Some(1.0));
    }

    #[test]
    fn real_bench_sweep_shapes_parse() {
        // The exact line shapes sweep_smoke writes: one speedup case,
        // then one correctness-only line per group (no speedup, and
        // `zero_loss_ratio` only on survivable groups).
        let json = r#"    {"name": "sweep/parallel_speedup", "jobs": 64, "workers": 8, "serial_ns": 8000000000, "parallel_ns": 1100000000, "speedup_vs_reference": 7.27},
    {"name": "linear_net/rstorm/crash_recover", "seeds": 8, "survivable": true, "net_mean": 1234.5, "net_stdev": 6.7, "detect_p50_ms": 2000.0, "detect_p90_ms": 2000.0, "detect_p99_ms": 2000.0, "recover_p50_ms": 2000.0, "recover_p90_ms": 2000.0, "recover_p99_ms": 2000.0, "lost_hist": [0, 8, 0, 0, 0, 0, 0, 0], "zero_loss_ratio": 1.0},
    {"name": "linear_net/rstorm/crash_lasting", "seeds": 8, "survivable": false, "net_mean": 900.0, "net_stdev": 12.0, "detect_p50_ms": 2000.0, "detect_p90_ms": 2000.0, "detect_p99_ms": 2000.0, "recover_p50_ms": -1.0, "recover_p90_ms": -1.0, "recover_p99_ms": -1.0, "lost_hist": [0, 0, 8, 0, 0, 0, 0, 0]}"#;
        let readings = extract_speedups(json);
        assert_eq!(readings.len(), 2, "the unsurvivable group line is ungated");
        assert_eq!(
            readings[0],
            Reading {
                case: "sweep/parallel_speedup".into(),
                speedup: Some(7.27),
                zero_loss_ratio: None,
                routing_parity: None,
                fuzz_violations: None,
                trunk_win: None,
                failover_zero_loss: None,
                reconciliation_convergence: None
            }
        );
        assert_eq!(
            readings[1],
            Reading {
                case: "linear_net/rstorm/crash_recover".into(),
                speedup: None,
                zero_loss_ratio: Some(1.0),
                routing_parity: None,
                fuzz_violations: None,
                trunk_win: None,
                failover_zero_loss: None,
                reconciliation_convergence: None
            }
        );
    }

    #[test]
    fn real_bench_scale_shapes_parse() {
        // The exact line shapes scale_smoke writes: the base case gated
        // on speedup only, the churn case on speedup + routing parity.
        let json = r#"    {"name": "scale/base", "tasks": 10000, "nodes": 1000, "sim_ms": 60000, "events": 121100, "fast_ns": 36640000, "reference_ns": 57310000, "speedup_vs_reference": 1.56},
    {"name": "scale/churn", "tasks": 10000, "nodes": 1000, "sim_ms": 60000, "migrations": 800, "patched_ns": 40750000, "full_ns": 960080000, "routing_parity": 1.000, "speedup_vs_reference": 23.56}"#;
        let readings = extract_speedups(json);
        assert_eq!(readings.len(), 2);
        assert_eq!(
            readings[0],
            Reading {
                case: "scale/base".into(),
                speedup: Some(1.56),
                zero_loss_ratio: None,
                routing_parity: None,
                fuzz_violations: None,
                trunk_win: None,
                failover_zero_loss: None,
                reconciliation_convergence: None
            }
        );
        assert_eq!(
            readings[1],
            Reading {
                case: "scale/churn".into(),
                speedup: Some(23.56),
                zero_loss_ratio: None,
                routing_parity: Some(1.0),
                fuzz_violations: None,
                trunk_win: None,
                failover_zero_loss: None,
                reconciliation_convergence: None
            }
        );
    }

    #[test]
    fn broken_routing_parity_fails_even_when_fast() {
        let readings = extract_speedups(
            r#"    {"name": "scale/churn", "routing_parity": 0.000, "speedup_vs_reference": 99.0}"#,
        );
        assert_eq!(readings[0].routing_parity, Some(0.0));
        // check_file's gate: parity != 1.0 counts as a failure; pin the
        // predicate the gate uses.
        assert!(readings[0].routing_parity.is_some_and(|p| p != 1.0));
    }

    #[test]
    fn real_bench_network_shapes_parse() {
        // The exact line shapes congestion_smoke writes: the contention
        // case gated on the packing-wins ratio (no speedup), the legacy
        // case on speedup only.
        let json = r#"    {"name": "network/trunk_contention", "tasks": 24, "nodes": 12, "sim_ms": 60000, "rstorm_net": 390180.0, "even_net": 232310.0, "rstorm_trunk_mb": 0.0, "even_trunk_mb": 1670.9, "even_trunk_saturated_windows": 6, "even_trunk_peak_utilization": 0.990, "rstorm_beats_even_on_trunk": 1.68},
    {"name": "network/legacy_engine", "tasks": 24, "nodes": 12, "sim_ms": 60000, "fast_ns": 218600000, "reference_ns": 661200000, "speedup_vs_reference": 3.02}"#;
        let readings = extract_speedups(json);
        assert_eq!(readings.len(), 2);
        assert_eq!(
            readings[0],
            Reading {
                case: "network/trunk_contention".into(),
                speedup: None,
                zero_loss_ratio: None,
                routing_parity: None,
                fuzz_violations: None,
                trunk_win: Some(1.68),
                failover_zero_loss: None,
                reconciliation_convergence: None
            }
        );
        assert_eq!(
            readings[1],
            Reading {
                case: "network/legacy_engine".into(),
                speedup: Some(3.02),
                zero_loss_ratio: None,
                routing_parity: None,
                fuzz_violations: None,
                trunk_win: None,
                failover_zero_loss: None,
                reconciliation_convergence: None
            }
        );
    }

    #[test]
    fn losing_to_even_on_the_trunk_fails_even_when_fast() {
        let readings = extract_speedups(
            r#"    {"name": "network/trunk_contention", "rstorm_beats_even_on_trunk": 0.97}"#,
        );
        assert_eq!(readings[0].trunk_win, Some(0.97));
        // check_file's gate: a ratio below 1.0 counts as a failure; pin
        // the predicate the gate uses.
        assert!(readings[0].trunk_win.is_some_and(|t| t < 1.0));
    }

    #[test]
    fn every_default_file_has_a_smoke_binary() {
        for file in [
            "BENCH_sched.json",
            "BENCH_sim.json",
            "BENCH_chaos.json",
            "BENCH_adaptive.json",
            "BENCH_replay.json",
            "BENCH_sweep.json",
            "BENCH_scale.json",
            "BENCH_fuzz.json",
            "BENCH_network.json",
            "BENCH_control.json",
        ] {
            assert!(smoke_bin(file).is_some(), "{file} has no re-measure path");
        }
        assert_eq!(smoke_bin("BENCH_other.json"), None);
    }

    #[test]
    fn real_bench_control_shapes_parse() {
        // The exact line shapes control_smoke writes: the failover case
        // gated on the journaled zero-loss pin, the replay case on
        // reconciliation convergence. Neither carries a speedup.
        let json = r#"    {"name": "control/failover", "wall_ns": 121451108, "time_to_reassume_ms": 10000.0, "journaled_zero_loss": 1.0, "cold_zero_loss": 0.998668326819232, "failover_zero_loss": 1.0},
    {"name": "control/replay", "wall_ns": 69087966, "time_to_reassume_ms": 8000.0, "decisions_replayed": 3, "reconciliation_convergence": 1.0}"#;
        let readings = extract_speedups(json);
        assert_eq!(readings.len(), 2);
        assert_eq!(
            readings[0],
            Reading {
                case: "control/failover".into(),
                speedup: None,
                zero_loss_ratio: None,
                routing_parity: None,
                fuzz_violations: None,
                trunk_win: None,
                failover_zero_loss: Some(1.0),
                reconciliation_convergence: None
            }
        );
        assert_eq!(
            readings[1],
            Reading {
                case: "control/replay".into(),
                speedup: None,
                zero_loss_ratio: None,
                routing_parity: None,
                fuzz_violations: None,
                trunk_win: None,
                failover_zero_loss: None,
                reconciliation_convergence: Some(1.0)
            }
        );
    }

    #[test]
    fn lossy_failover_fails_even_without_a_speedup() {
        // check_file's gates: both control pins demand exactly 1.0; pin
        // the predicates the gates use.
        let readings =
            extract_speedups(r#"    {"name": "control/failover", "failover_zero_loss": 0.998}"#);
        assert_eq!(readings[0].failover_zero_loss, Some(0.998));
        assert!(readings[0].failover_zero_loss.is_some_and(|z| z != 1.0));
        let readings = extract_speedups(
            r#"    {"name": "control/replay", "reconciliation_convergence": 0.5}"#,
        );
        assert_eq!(readings[0].reconciliation_convergence, Some(0.5));
        assert!(readings[0]
            .reconciliation_convergence
            .is_some_and(|c| c != 1.0));
    }
}
