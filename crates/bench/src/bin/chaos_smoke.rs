//! Quick chaos-harness smoke test.
//!
//! Runs one crash-then-recover scenario (`rstorm_sim::run_crash_recover`)
//! on a fig8-scale micro case (Linear, network-bound) and the Yahoo
//! PageLoad layout, gates on fault-engine correctness, and writes the
//! recovery metrics plus wall-time numbers to `BENCH_chaos.json` in the
//! current directory.
//!
//! Two gates run per case before anything is timed:
//!
//! * **Parity** — a fast run with an *empty* [`FaultPlan`] must be
//!   bit-identical to the fault-free `ReferenceSimulation` (the fault
//!   hooks must cost nothing when unused, in bits as well as time).
//! * **Recovery** — the scenario must detect the crash and fully re-place
//!   the topology, with a clean verified plan.
//!
//! The timed comparison pits the fault-injected fast run against the
//! fault-free reference run: the reference engine models no faults, so
//! this measures what the outage scenario costs relative to the baseline
//! engine on the same workload.
//!
//! Run with `cargo run --release -p rstorm-bench --bin chaos_smoke`.

use rstorm_bench::harness::{median_ns, BenchReport};
use rstorm_bench::schedule_fresh;
use rstorm_core::{verify_plan, RStormScheduler, RecoveryConfig};
use rstorm_sim::{
    run_crash_recover, ChaosConfig, FaultPlan, ReferenceSimulation, SimConfig, Simulation,
};
use rstorm_workloads::cases::{fig8_cases, yahoo_cases, WorkloadCase};
use std::sync::Arc;
use std::time::Duration;

struct CaseResult {
    name: String,
    tasks: u32,
    nodes: u32,
    sim_ms: f64,
    crash_at_ms: f64,
    time_to_detect_ms: f64,
    time_to_recover_ms: f64,
    tuples_lost: u64,
    throughput_dip_depth: f64,
    reschedule_attempts: u64,
    fast_ns: u64,
    reference_ns: u64,
}

fn run_case(case: &WorkloadCase, budget: Duration) -> CaseResult {
    let cluster = Arc::new(case.cluster.clone());
    let assignment = schedule_fresh(&RStormScheduler::new(), &case.topology, &cluster);
    let config = SimConfig::quick();

    // Parity gate: unused fault hooks must be bit-free.
    let mut faultless = Simulation::new(Arc::clone(&cluster), config.clone());
    faultless.add_topology(&case.topology, &assignment);
    faultless.set_fault_plan(FaultPlan::new());
    let mut reference = ReferenceSimulation::new(Arc::clone(&cluster), config.clone());
    reference.add_topology(&case.topology, &assignment);
    assert_eq!(
        faultless.run(),
        reference.run(),
        "{}: empty fault plan diverges from the reference engine",
        case.name
    );

    // The scenario: crash the node hosting tasks a third of the way in,
    // heal it 15 s later.
    let victim = {
        let host = assignment.iter().next().unwrap().1.node.as_str().to_owned();
        host
    };
    let mut cfg = ChaosConfig::new(victim, 20_000.0, 35_000.0);
    cfg.sim = config.clone();
    cfg.recovery = RecoveryConfig::default();
    let out = run_crash_recover(&cluster, &case.topology, &cfg);

    // Recovery gate: detected, fully re-placed, clean plan.
    let obs = out.observations;
    assert!(
        obs.time_to_detect_ms > 0.0,
        "{}: crash undetected",
        case.name
    );
    assert!(
        obs.time_to_recover_ms >= obs.time_to_detect_ms,
        "{}: not fully recovered ({obs:?})",
        case.name
    );
    let violations = verify_plan(&out.plan, &[&case.topology], &cluster);
    assert!(violations.is_empty(), "{}: {violations:?}", case.name);

    let fast_ns = median_ns(
        || {
            let mut sim = Simulation::new(Arc::clone(&cluster), config.clone());
            sim.add_topology(&case.topology, &assignment);
            sim.set_fault_plan(sim_plan(&cfg, obs.time_to_detect_ms));
            sim
        },
        |sim| {
            std::hint::black_box(sim.run());
        },
        budget,
    );
    let reference_ns = median_ns(
        || {
            let mut sim = ReferenceSimulation::new(Arc::clone(&cluster), config.clone());
            sim.add_topology(&case.topology, &assignment);
            sim
        },
        |sim| {
            std::hint::black_box(sim.run());
        },
        budget,
    );

    CaseResult {
        name: case.name.to_string(),
        tasks: case.topology.task_set().len() as u32,
        nodes: cluster.nodes().len() as u32,
        sim_ms: config.sim_time_ms,
        crash_at_ms: obs.crash_at_ms,
        time_to_detect_ms: obs.time_to_detect_ms,
        time_to_recover_ms: obs.time_to_recover_ms,
        tuples_lost: obs.tuples_lost,
        throughput_dip_depth: obs.throughput_dip_depth,
        reschedule_attempts: obs.reschedule_attempts,
        fast_ns,
        reference_ns,
    }
}

/// The data-plane fault plan of the scenario, for re-timing: crash at the
/// configured time, workers back once the control plane re-placed.
fn sim_plan(cfg: &ChaosConfig, time_to_detect_ms: f64) -> FaultPlan {
    let mut plan = FaultPlan::new().crash_node(cfg.crash_at_ms, &cfg.victim);
    let resched_at = cfg.crash_at_ms + time_to_detect_ms;
    if resched_at > cfg.crash_at_ms {
        plan = plan.recover_node(resched_at, &cfg.victim);
    }
    plan
}

fn json_line(r: &CaseResult) -> String {
    let speedup = r.reference_ns as f64 / r.fast_ns as f64;
    format!(
        "{{\"name\": \"{}\", \"tasks\": {}, \"nodes\": {}, \"sim_ms\": {:.0}, \
         \"crash_at_ms\": {:.0}, \"time_to_detect_ms\": {:.0}, \
         \"time_to_recover_ms\": {:.0}, \"tuples_lost\": {}, \
         \"throughput_dip_depth\": {:.3}, \"reschedule_attempts\": {}, \
         \"fast_ns\": {}, \"reference_ns\": {}, \"speedup_vs_reference\": {speedup:.2}}}",
        r.name,
        r.tasks,
        r.nodes,
        r.sim_ms,
        r.crash_at_ms,
        r.time_to_detect_ms,
        r.time_to_recover_ms,
        r.tuples_lost,
        r.throughput_dip_depth,
        r.reschedule_attempts,
        r.fast_ns,
        r.reference_ns
    )
}

fn main() {
    let budget = Duration::from_millis(900);
    let mut report = BenchReport::new("crash-then-recover chaos scenario (quick sim)", "ns");

    let mut results = Vec::new();
    let linear = fig8_cases()
        .into_iter()
        .find(|c| c.name == "linear_net")
        .expect("linear_net case exists");
    results.push(run_case(&linear, budget));
    let yahoo = yahoo_cases();
    let page_load = yahoo
        .iter()
        .find(|c| c.name == "page_load")
        .expect("page_load case exists");
    results.push(run_case(page_load, budget));

    println!(
        "{:<12} {:>6} {:>6} {:>9} {:>9} {:>10} {:>7} {:>6} {:>9} {:>12} {:>9}",
        "case",
        "tasks",
        "nodes",
        "detect",
        "recover",
        "lost",
        "dip",
        "tries",
        "fast",
        "reference",
        "speedup"
    );
    for r in &results {
        println!(
            "{:<12} {:>6} {:>6} {:>7.0}ms {:>7.0}ms {:>10} {:>7.3} {:>6} {:>6.2}ms {:>9.2}ms {:>8.2}x",
            r.name,
            r.tasks,
            r.nodes,
            r.time_to_detect_ms,
            r.time_to_recover_ms,
            r.tuples_lost,
            r.throughput_dip_depth,
            r.reschedule_attempts,
            r.fast_ns as f64 / 1e6,
            r.reference_ns as f64 / 1e6,
            r.reference_ns as f64 / r.fast_ns as f64,
        );
    }

    for r in &results {
        report.push_case(json_line(r));
    }
    report.write("BENCH_chaos.json");
}
