//! Shared plumbing of the smoke benchmark binaries.
//!
//! Every smoke bin used to reimplement the same three pieces: a
//! median-of-samples wall timer, the `BENCH_*.json` writer and the
//! "wrote ... in ... s" footer. They live here once; each bin keeps only
//! its scenario, its gates and its case-line schema.
//!
//! The JSON layout is load-bearing: `bench_guard` scans the files
//! line-by-line (the workspace vendors no JSON parser), so the report is
//! one header, one pretty-printed case object per line and one footer —
//! [`BenchReport::to_json`] preserves that byte layout exactly.

use std::time::{Duration, Instant};

/// Median wall time of `timed`, with per-sample state built by `setup`
/// outside the timed region. One untimed warmup populates allocator
/// caches and branch predictors, then at least `MIN_ITERS` samples are
/// taken and sampling continues until `budget` is spent (whichever is
/// later), capped at `MAX_ITERS`.
pub fn median_ns<T>(
    mut setup: impl FnMut() -> T,
    mut timed: impl FnMut(T),
    budget: Duration,
) -> u64 {
    const MIN_ITERS: usize = 3;
    const MAX_ITERS: usize = 50;
    timed(setup());
    let mut samples = Vec::new();
    let started = Instant::now();
    while samples.len() < MAX_ITERS && (samples.len() < MIN_ITERS || started.elapsed() < budget) {
        let input = setup();
        let t0 = Instant::now();
        timed(input);
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// A `BENCH_*.json` report under construction: a benchmark title, a unit
/// and one pre-rendered JSON object line per case.
#[derive(Debug)]
pub struct BenchReport {
    benchmark: String,
    unit: String,
    cases: Vec<String>,
    started: Instant,
}

impl BenchReport {
    /// Starts a report (and the wall clock the footer reports).
    pub fn new(benchmark: impl Into<String>, unit: impl Into<String>) -> Self {
        Self {
            benchmark: benchmark.into(),
            unit: unit.into(),
            cases: Vec::new(),
            started: Instant::now(),
        }
    }

    /// Appends one case, already rendered as a single-line JSON object
    /// (`{"name": ..., ...}`).
    pub fn push_case(&mut self, line: String) {
        debug_assert!(
            line.starts_with('{') && line.ends_with('}') && !line.contains('\n'),
            "a case must be a one-line JSON object, got: {line}"
        );
        self.cases.push(line);
    }

    /// Number of cases pushed so far.
    pub fn len(&self) -> usize {
        self.cases.len()
    }

    /// True before the first case is pushed.
    pub fn is_empty(&self) -> bool {
        self.cases.is_empty()
    }

    /// Renders the report in the layout `bench_guard` scans: header,
    /// one indented case object per line, footer.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"benchmark\": \"{}\",\n  \"unit\": \"{}\",\n  \"cases\": [\n",
            self.benchmark, self.unit
        );
        for (i, line) in self.cases.iter().enumerate() {
            out.push_str("    ");
            out.push_str(line);
            out.push_str(if i + 1 < self.cases.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the report to `path` and prints the standard
    /// `wrote <path> (<n> cases) in <t> s` footer.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn write(&self, path: &str) {
        std::fs::write(path, self.to_json()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!(
            "\nwrote {path} ({} cases) in {:.1} s",
            self.cases.len(),
            self.started.elapsed().as_secs_f64()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_order_insensitive_and_warms_up() {
        let mut calls = 0u32;
        let ns = median_ns(
            || {
                calls += 1;
            },
            |()| std::hint::black_box(()),
            Duration::ZERO,
        );
        // Warmup + MIN_ITERS samples; the median of real timings is
        // positive on any clock with ns resolution (0 allowed on coarse
        // clocks, so only sanity-check the shape).
        assert_eq!(calls, 4, "one warmup plus three samples at zero budget");
        let _ = ns;
    }

    #[test]
    fn report_layout_matches_the_guard_contract() {
        let mut report = BenchReport::new("demo bench", "ns");
        assert!(report.is_empty());
        report.push_case("{\"name\": \"a\", \"speedup_vs_reference\": 2.00}".to_owned());
        report.push_case("{\"name\": \"b\", \"speedup_vs_reference\": 1.50}".to_owned());
        assert_eq!(report.len(), 2);
        assert_eq!(
            report.to_json(),
            "{\n  \"benchmark\": \"demo bench\",\n  \"unit\": \"ns\",\n  \"cases\": [\n    \
             {\"name\": \"a\", \"speedup_vs_reference\": 2.00},\n    \
             {\"name\": \"b\", \"speedup_vs_reference\": 1.50}\n  ]\n}\n"
        );
    }
}
