//! # rstorm-bench
//!
//! The experiment harness that regenerates every figure of the R-Storm
//! paper's evaluation (§6). Each figure has a binary:
//!
//! | binary | paper figure | experiment |
//! |---|---|---|
//! | `fig8` | Fig 8a–c | network-bound Linear/Diamond/Star throughput |
//! | `fig9` | Fig 9a–c | CPU-bound Linear/Diamond/Star throughput |
//! | `fig10` | Fig 10 | average CPU utilization comparison |
//! | `fig12` | Fig 12a–b | Yahoo PageLoad / Processing throughput |
//! | `fig13` | Fig 13 | multi-topology throughput on 24 nodes |
//! | `ablation` | (ours) | task-ordering / distance-term ablations |
//!
//! Run e.g. `cargo run --release -p rstorm-bench --bin fig8`. Every binary
//! accepts `--quick` for a shortened simulation (CI-friendly) and prints
//! the same series the paper plots plus a paper-vs-measured summary line.
//! Criterion benches (`cargo bench -p rstorm-bench`) cover scheduling
//! latency (§3's "snappy" requirement) and simulator event throughput.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod harness;

use rstorm_cluster::Cluster;
use rstorm_core::schedulers::EvenScheduler;
use rstorm_core::{GlobalState, RStormScheduler, Scheduler};
use rstorm_metrics::text_table;
use rstorm_sim::{SimConfig, SimReport, Simulation};
use rstorm_topology::Topology;
use std::sync::Arc;

/// The paper runs each experiment for ~15 minutes; five simulated minutes
/// is comfortably past convergence for every workload here.
pub const FULL_SIM_MS: f64 = 300_000.0;
/// `--quick` simulation length.
pub const QUICK_SIM_MS: f64 = 90_000.0;
/// Warm-up windows to skip when averaging steady-state throughput.
pub const WARMUP_WINDOWS: usize = 2;

/// Returns the simulation config selected by the CLI args (`--quick`
/// shortens the run; `--seed N` replaces the default seed).
pub fn config_from_args() -> SimConfig {
    let args: Vec<String> = std::env::args().collect();
    let mut config = SimConfig::default().with_sim_time_ms(FULL_SIM_MS);
    if args.iter().any(|a| a == "--quick") {
        config = config.with_sim_time_ms(QUICK_SIM_MS);
    }
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        if let Some(seed) = args.get(pos + 1).and_then(|s| s.parse().ok()) {
            config = config.with_seed(seed);
        }
    }
    config
}

/// Schedules `topology` with `scheduler` on a fresh state and simulates
/// it alone on `cluster`. The cluster is shared via `Arc` — harness loops
/// that simulate many schedules never deep-copy it.
///
/// # Panics
///
/// Panics if scheduling fails — the bundled workloads are all feasible.
pub fn simulate_single(
    scheduler: &dyn Scheduler,
    topology: &Topology,
    cluster: &Arc<Cluster>,
    config: SimConfig,
) -> SimReport {
    let mut sim = Simulation::new(Arc::clone(cluster), config);
    sim.add_topology(topology, &schedule_fresh(scheduler, topology, cluster));
    sim.run()
}

/// Schedules `topology` with `scheduler` on a fresh [`GlobalState`].
///
/// # Panics
///
/// Panics if scheduling fails — the bundled workloads are all feasible.
pub fn schedule_fresh(
    scheduler: &dyn Scheduler,
    topology: &Topology,
    cluster: &Cluster,
) -> rstorm_core::Assignment {
    let mut state = GlobalState::new(cluster);
    scheduler
        .schedule(topology, cluster, &mut state)
        .unwrap_or_else(|e| {
            panic!(
                "{} cannot schedule {}: {e}",
                scheduler.name(),
                topology.id()
            )
        })
}

/// R-Storm vs default-Storm runs of the same topology on the same cluster.
#[derive(Debug)]
pub struct Comparison {
    /// Simulation of the R-Storm schedule.
    pub rstorm: SimReport,
    /// Simulation of the default (even) schedule.
    pub default: SimReport,
    /// The compared topology's id.
    pub topology: String,
}

impl Comparison {
    /// Runs both schedulers on `topology`.
    pub fn run(topology: &Topology, cluster: &Arc<Cluster>, config: SimConfig) -> Self {
        let rstorm = simulate_single(&RStormScheduler::new(), topology, cluster, config.clone());
        let default = simulate_single(&EvenScheduler::new(), topology, cluster, config);
        Self {
            rstorm,
            default,
            topology: topology.id().as_str().to_owned(),
        }
    }

    /// Steady-state mean throughput under R-Storm (tuples per window).
    pub fn rstorm_throughput(&self) -> f64 {
        self.rstorm
            .steady_throughput(&self.topology, WARMUP_WINDOWS)
    }

    /// Steady-state mean throughput under the default scheduler.
    pub fn default_throughput(&self) -> f64 {
        self.default
            .steady_throughput(&self.topology, WARMUP_WINDOWS)
    }

    /// Relative throughput improvement of R-Storm, as a percentage
    /// (+50.0 means 50% higher); infinite if the default collapsed to
    /// zero.
    pub fn improvement_pct(&self) -> f64 {
        let d = self.default_throughput();
        if d == 0.0 {
            f64::INFINITY
        } else {
            (self.rstorm_throughput() / d - 1.0) * 100.0
        }
    }

    /// Renders the per-window timeline table the paper's figures plot
    /// (time on the x axis, tuples/10 s per scheduler on the y axis).
    pub fn timeline_table(&self) -> String {
        let r = &self.rstorm.throughput[&self.topology].windows;
        let d = &self.default.throughput[&self.topology].windows;
        let window_s = self.rstorm.throughput[&self.topology].window_ms / 1000.0;
        let rows: Vec<Vec<String>> = r
            .iter()
            .zip(d)
            .enumerate()
            .map(|(i, (rv, dv))| {
                vec![
                    format!("{:.0}", (i + 1) as f64 * window_s),
                    format!("{rv:.0}"),
                    format!("{dv:.0}"),
                ]
            })
            .collect();
        text_table(
            &["t (s)", "r-storm (tuples/10s)", "default (tuples/10s)"],
            &rows,
        )
    }

    /// One-line summary: throughputs, improvement, machines used.
    pub fn summary_line(&self) -> String {
        format!(
            "{}: r-storm {:.0} vs default {:.0} tuples/10s ({:+.0}%), \
             machines {} vs {}, mean latency {:.1} vs {:.1} ms",
            self.topology,
            self.rstorm_throughput(),
            self.default_throughput(),
            self.improvement_pct(),
            self.rstorm.used_nodes_by_topology[&self.topology],
            self.default.used_nodes_by_topology[&self.topology],
            self.rstorm.latency_ms.mean,
            self.default.latency_ms.mean,
        )
    }
}

/// Prints the standard figure header.
pub fn figure_header(figure: &str, claim: &str) {
    println!("==================================================================");
    println!("{figure}");
    println!("paper: {claim}");
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstorm_workloads::{clusters, micro};

    #[test]
    fn comparison_runs_and_reports() {
        let cluster = Arc::new(clusters::emulab_micro());
        let t = micro::linear_network_bound();
        let c = Comparison::run(
            &t,
            &cluster,
            SimConfig::default().with_sim_time_ms(40_000.0),
        );
        assert!(c.rstorm_throughput() > 0.0);
        assert!(c.default_throughput() > 0.0);
        let table = c.timeline_table();
        assert!(table.contains("r-storm"));
        assert!(c.summary_line().contains("linear-net"));
    }
}
