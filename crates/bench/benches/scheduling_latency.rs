//! Scheduling-latency benchmarks (experiment E6 in DESIGN.md).
//!
//! The paper's §3 argues that exact knapsack solvers are ruled out because
//! "scheduling decisions need to be made in a snappy manner" — if
//! executors are not rescheduled quickly after a failure, whole topologies
//! stall. These benchmarks quantify how snappy the greedy heuristic is:
//! R-Storm vs the even scheduler across topology and cluster sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rstorm_cluster::{Cluster, ClusterBuilder, ResourceCapacity};
use rstorm_core::schedulers::EvenScheduler;
use rstorm_core::{GlobalState, RStormScheduler, ReferenceRStormScheduler, Scheduler};
use rstorm_topology::{Topology, TopologyBuilder};

/// A linear topology with `stages` components of `parallelism` tasks.
fn chain(stages: u32, parallelism: u32) -> Topology {
    let mut b = TopologyBuilder::new(format!("chain-{stages}x{parallelism}"));
    b.set_spout("c0", parallelism)
        .set_cpu_load(10.0)
        .set_memory_load(64.0);
    for i in 1..stages {
        b.set_bolt(format!("c{i}"), parallelism)
            .shuffle_grouping(format!("c{}", i - 1))
            .set_cpu_load(10.0)
            .set_memory_load(64.0);
    }
    b.build().expect("valid")
}

fn cluster(racks: u32, nodes_per_rack: u32) -> Cluster {
    ClusterBuilder::new()
        .homogeneous_racks(
            racks,
            nodes_per_rack,
            ResourceCapacity::for_machine(16, 65536.0),
            4,
        )
        .build()
        .expect("valid")
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule");
    for (tasks, stages, parallelism, racks, nodes) in [
        (40u32, 4u32, 10u32, 2u32, 6u32),
        (200, 5, 40, 2, 12),
        (1000, 10, 100, 4, 16),
        (10_000, 20, 500, 8, 32),
    ] {
        let topology = chain(stages, parallelism);
        let cl = cluster(racks, nodes);
        group.bench_with_input(
            BenchmarkId::new("rstorm", tasks),
            &(&topology, &cl),
            |b, (t, cl)| {
                b.iter(|| {
                    let mut state = GlobalState::new(cl);
                    RStormScheduler::new().schedule(t, cl, &mut state).unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rstorm-reference", tasks),
            &(&topology, &cl),
            |b, (t, cl)| {
                b.iter(|| {
                    let mut state = GlobalState::new(cl);
                    ReferenceRStormScheduler::new()
                        .schedule(t, cl, &mut state)
                        .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("even", tasks),
            &(&topology, &cl),
            |b, (t, cl)| {
                b.iter(|| {
                    let mut state = GlobalState::new(cl);
                    EvenScheduler::new().schedule(t, cl, &mut state).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_reschedule_after_failure(c: &mut Criterion) {
    // The latency that matters operationally: a node dies and the
    // affected topology must be placed again on the survivors.
    let topology = chain(5, 40);
    let cl = cluster(2, 12);
    c.bench_function("reschedule_after_node_failure", |b| {
        b.iter_batched(
            || {
                let mut cl = cl.clone();
                let mut state = GlobalState::new(&cl);
                RStormScheduler::new()
                    .schedule(&topology, &cl, &mut state)
                    .unwrap();
                cl.kill_node("rack-0-node-0");
                (cl, state)
            },
            |(cl, mut state)| {
                for t in state.handle_node_failure("rack-0-node-0") {
                    state.release_topology(t.as_str());
                }
                RStormScheduler::new()
                    .schedule(&topology, &cl, &mut state)
                    .unwrap()
            },
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("reschedule_after_node_failure/reference", |b| {
        b.iter_batched(
            || {
                let mut cl = cl.clone();
                let mut state = GlobalState::new(&cl);
                ReferenceRStormScheduler::new()
                    .schedule(&topology, &cl, &mut state)
                    .unwrap();
                cl.kill_node("rack-0-node-0");
                (cl, state)
            },
            |(cl, mut state)| {
                for t in state.handle_node_failure("rack-0-node-0") {
                    state.release_topology(t.as_str());
                }
                ReferenceRStormScheduler::new()
                    .schedule(&topology, &cl, &mut state)
                    .unwrap()
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_schedulers, bench_reschedule_after_failure);
criterion_main!(benches);
