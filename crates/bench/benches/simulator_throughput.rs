//! Simulator event-throughput benchmarks: how much simulated time per
//! wall-clock second the discrete-event engine delivers on the standard
//! workloads. Useful for keeping the figure harness fast as the engine
//! evolves.
//!
//! Every workload is measured twice — once on the fast engine
//! (`Simulation`: dense ids, slab-pooled tuple trees, precomputed
//! routing) and once on the string-keyed `ReferenceSimulation` it is
//! bit-for-bit equivalent to — so the fast path's margin is tracked by
//! the same harness that tracks its absolute cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rstorm_core::{GlobalState, RStormScheduler, Scheduler};
use rstorm_sim::{ReferenceSimulation, SimConfig, Simulation};
use rstorm_topology::Topology;
use rstorm_workloads::{clusters, micro, yahoo};
use std::sync::Arc;

fn bench_simulation(c: &mut Criterion) {
    let cluster = Arc::new(clusters::emulab_micro());
    let mut group = c.benchmark_group("simulate_10s");
    group.sample_size(10);

    let cases: Vec<(&str, Topology)> = vec![
        ("linear-net", micro::linear_network_bound()),
        ("linear-cpu", micro::linear_cpu_bound()),
        ("page-load", yahoo::page_load()),
        ("processing", yahoo::processing()),
    ];

    for (name, topology) in cases {
        let mut state = GlobalState::new(&cluster);
        let assignment = RStormScheduler::new()
            .schedule(&topology, &cluster, &mut state)
            .expect("bundled workloads are feasible");
        let input = (topology, assignment);
        group.bench_with_input(
            BenchmarkId::new("fast", name),
            &input,
            |b, (topology, assignment)| {
                b.iter(|| {
                    let config = SimConfig::default().with_sim_time_ms(10_000.0);
                    let mut sim = Simulation::new(Arc::clone(&cluster), config);
                    sim.add_topology(topology, assignment);
                    sim.run()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reference", name),
            &input,
            |b, (topology, assignment)| {
                b.iter(|| {
                    let config = SimConfig::default().with_sim_time_ms(10_000.0);
                    let mut sim = ReferenceSimulation::new(Arc::clone(&cluster), config);
                    sim.add_topology(topology, assignment);
                    sim.run()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
