//! Simulator event-throughput benchmarks: how much simulated time per
//! wall-clock second the discrete-event engine delivers on the standard
//! workloads. Useful for keeping the figure harness fast as the engine
//! evolves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rstorm_core::{GlobalState, RStormScheduler, Scheduler};
use rstorm_sim::{SimConfig, Simulation};
use rstorm_topology::Topology;
use rstorm_workloads::{clusters, micro, yahoo};

fn bench_simulation(c: &mut Criterion) {
    let cluster = clusters::emulab_micro();
    let mut group = c.benchmark_group("simulate_10s");
    group.sample_size(10);

    let cases: Vec<(&str, Topology)> = vec![
        ("linear-net", micro::linear_network_bound()),
        ("linear-cpu", micro::linear_cpu_bound()),
        ("page-load", yahoo::page_load()),
        ("processing", yahoo::processing()),
    ];

    for (name, topology) in cases {
        let mut state = GlobalState::new(&cluster);
        let assignment = RStormScheduler::new()
            .schedule(&topology, &cluster, &mut state)
            .expect("bundled workloads are feasible");
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(topology, assignment),
            |b, (topology, assignment)| {
                b.iter(|| {
                    let config = SimConfig::default().with_sim_time_ms(10_000.0);
                    let mut sim = Simulation::new(cluster.clone(), config);
                    sim.add_topology(topology, assignment);
                    sim.run()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
