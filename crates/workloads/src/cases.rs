//! Named (topology, cluster) benchmark cases, shared by the sim
//! benchmark harnesses, the parity tests and the criterion benches so
//! they all measure the same workloads.

use crate::{clusters, drifted, micro, yahoo};
use rstorm_cluster::Cluster;
use rstorm_topology::Topology;

/// A named benchmark case: one topology on one cluster preset.
#[derive(Debug)]
pub struct WorkloadCase {
    /// Stable case name (used as the JSON key in `BENCH_sim.json`).
    pub name: &'static str,
    /// The workload topology.
    pub topology: Topology,
    /// The cluster it runs on.
    pub cluster: Cluster,
}

/// The fig8-scale micro-benchmark cases: the paper's Linear, Diamond and
/// Star topologies in the network-bound configuration on the two-rack
/// Emulab micro cluster.
pub fn fig8_cases() -> Vec<WorkloadCase> {
    vec![
        WorkloadCase {
            name: "linear_net",
            topology: micro::linear_network_bound(),
            cluster: clusters::emulab_micro(),
        },
        WorkloadCase {
            name: "diamond_net",
            topology: micro::diamond_network_bound(),
            cluster: clusters::emulab_micro(),
        },
        WorkloadCase {
            name: "star_net",
            topology: micro::star_network_bound(),
            cluster: clusters::emulab_micro(),
        },
    ]
}

/// The Yahoo production-layout cases (Figure 11) on the larger multi
/// cluster.
pub fn yahoo_cases() -> Vec<WorkloadCase> {
    vec![
        WorkloadCase {
            name: "page_load",
            topology: yahoo::page_load(),
            cluster: clusters::emulab_multi(),
        },
        WorkloadCase {
            name: "processing",
            topology: yahoo::processing(),
            cluster: clusters::emulab_multi(),
        },
    ]
}

/// The drifted-declaration cases exercised by the adaptive rebalance
/// plane (and its `adaptive_smoke` benchmark) on the micro cluster.
pub fn drifted_cases() -> Vec<WorkloadCase> {
    vec![
        WorkloadCase {
            name: "drift_linear",
            topology: drifted::under_declared_linear(),
            cluster: clusters::emulab_micro(),
        },
        WorkloadCase {
            name: "drift_star",
            topology: drifted::under_declared_star(),
            cluster: clusters::emulab_micro(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_names_are_unique_and_topologies_valid() {
        let mut names = std::collections::BTreeSet::new();
        for case in fig8_cases()
            .into_iter()
            .chain(yahoo_cases())
            .chain(drifted_cases())
        {
            assert!(names.insert(case.name), "duplicate case {}", case.name);
            assert!(!case.topology.task_set().tasks().is_empty());
            assert!(!case.cluster.nodes().is_empty());
        }
        assert_eq!(names.len(), 7);
    }
}
