//! Drifted workloads: topologies whose declared resource profiles are
//! deliberately wrong.
//!
//! R-Storm schedules from *declared* loads (the user's profiling hints,
//! §4.1 of the paper). When a component's real cost diverges from its
//! hint — stale profiling, data-dependent work, a code change nobody
//! re-measured — the scheduler packs by fiction: a bolt declaring 5 CPU
//! points while burning most of a core gets colocated with its whole
//! neighbourhood, and the hosting node saturates while the rest of the
//! cluster idles.
//!
//! These workloads reproduce that failure mode on the micro cluster.
//! Each *under-declares* one hot component so the R-Storm placement —
//! correct for the declarations — is wrong for the actual behaviour.
//! They are the test cases of the adaptive rebalance plane: profiling
//! detects the drift, the delta scheduler sheds the hot node with
//! minimal moves, and net throughput (migration cost included) must beat
//! the static placement.

use rstorm_topology::{ExecutionProfile, Topology, TopologyBuilder};

/// Tuple payload of the drifted workloads (small records; the failure
/// mode is CPU, not network).
pub const DRIFT_TUPLE_BYTES: u32 = 120;

/// Actual per-tuple cost of the under-declared hot bolts, in ms.
pub const HOT_WORK_MS: f64 = 8.0;

/// The CPU points the hot bolts *declare* — the stale fiction R-Storm
/// schedules by. Low enough that a whole pipeline packs onto one worker.
pub const HOT_DECLARED_POINTS: f64 = 5.0;

/// Linear pipeline with an under-declared middle stage:
/// `feed → crunch → sink` where every `crunch` task declares
/// [`HOT_DECLARED_POINTS`] but costs [`HOT_WORK_MS`] per tuple.
///
/// Declared demand (70 points) fits one Emulab worker, so R-Storm packs
/// all ten tasks onto a single core and the crunch stage saturates it.
pub fn under_declared_linear() -> Topology {
    let mut b = TopologyBuilder::new("drift-linear");
    b.set_spout("feed", 2)
        .set_profile(ExecutionProfile::new(0.2, 1.0, DRIFT_TUPLE_BYTES))
        .set_cpu_load(10.0)
        .set_memory_load(128.0);
    b.set_bolt("crunch", 6)
        .shuffle_grouping("feed")
        .set_profile(ExecutionProfile::new(HOT_WORK_MS, 1.0, DRIFT_TUPLE_BYTES))
        .set_cpu_load(HOT_DECLARED_POINTS)
        .set_memory_load(128.0);
    b.set_bolt("sink", 2)
        .shuffle_grouping("crunch")
        .set_profile(ExecutionProfile::new(0.2, 0.0, DRIFT_TUPLE_BYTES).into_sink())
        .set_cpu_load(10.0)
        .set_memory_load(128.0);
    b.build().expect("static workload is valid")
}

/// Star with an under-declared hub: two light spouts feed a `center`
/// whose tasks declare [`HOT_DECLARED_POINTS`] but cost half of
/// [`HOT_WORK_MS`] per tuple, fanning out to two sinks.
///
/// Declared demand (80 points) again fits one worker; the hub's real
/// appetite saturates it while eleven machines idle.
pub fn under_declared_star() -> Topology {
    let mut b = TopologyBuilder::new("drift-star");
    for s in ["feed-1", "feed-2"] {
        b.set_spout(s, 1)
            .set_profile(ExecutionProfile::new(0.2, 1.0, DRIFT_TUPLE_BYTES))
            .set_cpu_load(10.0)
            .set_memory_load(128.0);
    }
    b.set_bolt("center", 8)
        .shuffle_grouping("feed-1")
        .shuffle_grouping("feed-2")
        .set_profile(ExecutionProfile::new(
            HOT_WORK_MS / 2.0,
            1.0,
            DRIFT_TUPLE_BYTES,
        ))
        .set_cpu_load(HOT_DECLARED_POINTS)
        .set_memory_load(128.0);
    for k in ["sink-1", "sink-2"] {
        b.set_bolt(k, 1)
            .shuffle_grouping("center")
            .set_profile(ExecutionProfile::new(0.2, 0.0, DRIFT_TUPLE_BYTES).into_sink())
            .set_cpu_load(10.0)
            .set_memory_load(128.0);
    }
    b.build().expect("static workload is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clusters::emulab_micro;
    use rstorm_core::{GlobalState, RStormScheduler, Scheduler};

    fn all() -> Vec<Topology> {
        vec![under_declared_linear(), under_declared_star()]
    }

    #[test]
    fn declarations_are_fiction() {
        // The point of the family: each hot component's work-implied
        // steady load is far above its declaration (the drift detector's
        // default thresholds would flag a fraction of this gap).
        for (t, hot) in [
            (under_declared_linear(), "crunch"),
            (under_declared_star(), "center"),
        ] {
            let c = t.component(hot).unwrap();
            assert_eq!(c.resources().cpu_points, HOT_DECLARED_POINTS);
            // At even 50 tuples/s per task, the implied load is already
            // multiples of the declaration.
            let implied = c.profile().work_ms_per_tuple * 50.0 / 10.0; // points
            assert!(
                implied > 2.0 * HOT_DECLARED_POINTS,
                "{}/{hot}: implied {implied} points vs declared {HOT_DECLARED_POINTS}",
                t.id()
            );
        }
    }

    #[test]
    fn rstorm_packs_each_pipeline_onto_one_worker() {
        // The declared totals fit a single Emulab core, so R-Storm's
        // min-distance packing concentrates the whole pipeline — the
        // saturation the adaptive plane must later undo.
        let cluster = emulab_micro();
        for t in all() {
            assert!(t.total_resources().cpu_points <= 100.0);
            let mut state = GlobalState::new(&cluster);
            let a = RStormScheduler::new()
                .schedule(&t, &cluster, &mut state)
                .unwrap();
            assert_eq!(a.used_nodes().len(), 1, "{} should colocate", t.id());
        }
    }

    #[test]
    fn variants_are_valid_and_distinct() {
        let mut names = std::collections::BTreeSet::new();
        for t in all() {
            assert!(names.insert(t.id().to_string()));
            assert!(t.sinks().count() >= 1);
            for s in t.sinks() {
                assert!(s.profile().is_sink(), "{}/{}", t.id(), s.id());
            }
        }
    }
}
