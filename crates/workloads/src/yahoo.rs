//! The Yahoo! production topologies of Figure 11, "used by Yahoo! for
//! processing event-level data from their advertising platforms to allow
//! for near real-time analytical reporting" (§6.4).
//!
//! The paper publishes the component layouts (Fig 11a/11b) but not the
//! per-component costs, so the runtime profiles are reconstructions with
//! deliberately different characters:
//!
//! * **PageLoad** is the shallow, *light* pipeline: page-view beacons
//!   arrive at the frontends' production rate and every bolt does little
//!   per-event work. Its throughput is governed by end-to-end latency
//!   (a small `max.spout.pending` window), so it degrades gracefully
//!   under interference.
//! * **Processing** is the deep, *heavy* pipeline: a rate-limited event
//!   feed (the upstream pipeline produces at its own pace) through five
//!   bolt stages whose tasks each need most of a core. Its tasks only
//!   keep up when they actually receive the CPU they asked for; starved
//!   ones fall behind their fixed-rate input, blow the 30-second tuple
//!   timeout and stall the topology — which is exactly how the paper
//!   describes the default schedule killing it (§6.5).

use rstorm_topology::{ExecutionProfile, Topology, TopologyBuilder};

/// Tuple size of the page-view beacon records (bytes).
pub const BEACON_BYTES: u32 = 300;
/// Tuple size of the advertising event records (bytes).
pub const EVENT_BYTES: u32 = 600;
/// Per-task arrival rate of the PageLoad topology's beacon feed
/// (tuples per second per spout task).
pub const PAGE_LOAD_FEED_RATE: f64 = 7_000.0;
/// Per-task arrival rate of the Processing topology's event feed
/// (tuples per second per spout task).
pub const PROCESSING_FEED_RATE: f64 = 1_875.0;

/// The PageLoad topology (Fig 11a): parse page-load beacons, enrich them
/// and maintain per-key counts for the reporting store.
///
/// `beacon-spout → parse → {geo-enrich, count(fields)} → report-sink`
pub fn page_load() -> Topology {
    let mut b = TopologyBuilder::new("page-load");
    // One worker per machine of the large evaluation cluster.
    b.set_num_workers(24);
    // Latency-governed throughput: a tight backpressure window.
    b.set_max_spout_pending(4);
    // 2 × 7000 = 14 000 beacons/s offered load; the tight pending window
    // means the topology only sustains it when end-to-end latency is low.
    b.set_spout("beacon-spout", 2)
        .set_profile(
            ExecutionProfile::new(0.1, 1.0, BEACON_BYTES).with_max_rate(PAGE_LOAD_FEED_RATE),
        )
        .set_cpu_load(70.0)
        .set_memory_load(512.0);
    // Light stateless stages up front...
    // 14 000/s over 4 tasks at 0.03 ms ≈ 11% core.
    b.set_bolt("parse", 4)
        .shuffle_grouping("beacon-spout")
        .set_profile(ExecutionProfile::new(0.03, 1.0, BEACON_BYTES))
        .set_cpu_load(15.0)
        .set_memory_load(384.0);
    // 14 000/s over 3 tasks at 0.04 ms ≈ 19% core. Local-or-shuffle:
    // production topologies keep enrichment next to parsing when the
    // scheduler colocates them — which R-Storm does.
    b.set_bolt("geo-enrich", 3)
        .local_or_shuffle_grouping("parse")
        .set_profile(ExecutionProfile::new(0.04, 1.0, BEACON_BYTES))
        .set_cpu_load(25.0)
        .set_memory_load(384.0);
    // ...and heavier stateful aggregation / report writing at the tail.
    b.set_bolt("count", 3)
        .fields_grouping("parse", ["page"])
        .set_profile(ExecutionProfile::new(0.085, 1.0, BEACON_BYTES))
        .set_cpu_load(45.0)
        .set_memory_load(384.0);
    b.set_bolt("report-sink", 4)
        .local_or_shuffle_grouping("geo-enrich")
        .shuffle_grouping("count")
        .set_profile(ExecutionProfile::new(0.055, 0.0, BEACON_BYTES))
        .set_cpu_load(45.0)
        .set_memory_load(384.0);
    b.build().expect("static workload is valid")
}

/// The Processing topology (Fig 11b): the deeper, heavier event pipeline
/// — decode, filter, transform, aggregate, persist.
///
/// `event-spout → decode → filter → transform → aggregate(fields) →
/// db-writer`
pub fn processing() -> Topology {
    let mut b = TopologyBuilder::new("processing");
    // One worker per machine of the large evaluation cluster.
    b.set_num_workers(24);
    // `topology.max.spout.pending` is UNSET — Storm's default — so the
    // fixed-rate feed keeps pressing regardless of downstream congestion.
    // With an overloaded stage this is the classic death spiral: queues
    // grow without bound, every tuple blows the 30 s timeout, and
    // goodput collapses to (nearly) nothing. An effectively infinite
    // window models that.
    b.set_max_spout_pending(u32::MAX);
    // The bolts are declared before the spout (the graph allows forward
    // references, and Storm's round-robin placement follows declaration
    // order).
    //
    // 3750/s over 2 tasks at 0.48 ms ≈ 90% core each: these stages only
    // keep up with the feed when they truly get a core to themselves.
    for (name, from) in [
        ("decode", "event-spout"),
        ("filter", "decode"),
        ("transform", "filter"),
    ] {
        b.set_bolt(name, 2)
            .shuffle_grouping(from)
            .set_profile(ExecutionProfile::new(0.48, 1.0, EVENT_BYTES))
            .set_cpu_load(90.0)
            .set_memory_load(384.0);
    }
    // 3750/s over 2 tasks at 0.37 ms ≈ 69% core each.
    b.set_bolt("aggregate", 2)
        .fields_grouping("transform", ["campaign"])
        .set_profile(ExecutionProfile::new(0.37, 1.0, EVENT_BYTES))
        .set_cpu_load(70.0)
        .set_memory_load(384.0);
    b.set_bolt("db-writer", 3)
        .shuffle_grouping("aggregate")
        .set_profile(ExecutionProfile::new(0.37, 0.0, EVENT_BYTES))
        .set_cpu_load(50.0)
        .set_memory_load(384.0);
    // Fixed-rate event feed: 2 × 1875 = 3750 tuples/s offered load, at
    // 0.48 ms/tuple the spout task itself runs at ~90% of a core.
    b.set_spout("event-spout", 2)
        .set_profile(
            ExecutionProfile::new(0.48, 1.0, EVENT_BYTES).with_max_rate(PROCESSING_FEED_RATE),
        )
        .set_cpu_load(90.0)
        .set_memory_load(512.0);
    b.build().expect("static workload is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clusters::{emulab_micro, emulab_multi};
    use rstorm_core::{schedule_all, GlobalState, RStormScheduler, Scheduler};

    #[test]
    fn layouts_match_figure_11() {
        let pl = page_load();
        assert_eq!(pl.components().len(), 5);
        assert_eq!(pl.sinks().count(), 1);
        assert!(!pl.has_cycle());

        let pr = processing();
        assert_eq!(pr.components().len(), 6);
        assert_eq!(pr.sinks().count(), 1);
        assert!(!pr.has_cycle());
        // Processing is the deeper pipeline.
        assert!(pr.components().len() > pl.components().len());
    }

    #[test]
    fn characters_differ() {
        // PageLoad: flat-out light tasks; Processing: rate-limited heavy
        // tasks — the asymmetry behind the §6.5 result.
        let pl = page_load();
        assert!(pl
            .spouts()
            .all(|s| s.profile().max_rate_tuples_per_sec.is_some()));
        let pr = processing();
        assert!(pr
            .spouts()
            .all(|s| s.profile().max_rate_tuples_per_sec.is_some()));
        let pl_max_bolt_work = pl
            .bolts()
            .map(|c| c.profile().work_ms_per_tuple)
            .fold(0.0, f64::max);
        let pr_min_bolt_work = pr
            .bolts()
            .map(|c| c.profile().work_ms_per_tuple)
            .fold(f64::INFINITY, f64::min);
        assert!(pr_min_bolt_work > 3.0 * pl_max_bolt_work);
        assert_eq!(pl.max_spout_pending(), Some(4));
        assert_eq!(pr.max_spout_pending(), Some(u32::MAX), "unbounded");
    }

    #[test]
    fn each_schedules_alone_on_the_micro_cluster() {
        let cluster = emulab_micro();
        for t in [page_load(), processing()] {
            let mut state = GlobalState::new(&cluster);
            RStormScheduler::new()
                .schedule(&t, &cluster, &mut state)
                .unwrap_or_else(|e| panic!("{} unschedulable: {e}", t.id()));
        }
    }

    #[test]
    fn both_schedule_together_on_the_multi_cluster() {
        let cluster = emulab_multi();
        let pl = page_load();
        let pr = processing();
        let plan = schedule_all(&RStormScheduler::new(), &[&pl, &pr], &cluster).unwrap();
        assert_eq!(plan.len(), 2);
    }
}
