//! Emulab-like cluster presets (§6.1 of the paper).

use rstorm_cluster::{Cluster, ClusterBuilder, NetworkCosts, ResourceCapacity};

/// Worker slots per supervisor (Storm's usual four-port default).
pub const SLOTS_PER_NODE: u16 = 4;

/// Rack trunk of the oversubscribed preset, in Mbps: six 100 Mbps NICs
/// share a 150 Mbps uplink — a 4:1 oversubscription ratio, at the tame
/// end of real datacenter fabrics.
pub const OVERSUBSCRIBED_TRUNK_MBPS: f64 = 150.0;

/// The single-topology evaluation cluster: 12 workers in two racks of six
/// (plus, in the paper, a 13th master node which takes no tasks and is
/// therefore not modeled). Each worker: one 3 GHz core (100 CPU points),
/// 2 GB RAM, 100 Mbps NIC.
pub fn emulab_micro() -> Cluster {
    ClusterBuilder::new()
        .homogeneous_racks(2, 6, ResourceCapacity::emulab_node(), SLOTS_PER_NODE)
        .build()
        .expect("static preset is valid")
}

/// The evaluation cluster with an oversubscribed fabric: the same two
/// racks of six Emulab workers, but the rack trunks carry only
/// [`OVERSUBSCRIBED_TRUNK_MBPS`] toward the core. On the fair-share
/// network plane this makes rack-crossing placements pay for trunk
/// contention — the regime where proximity packing visibly wins — so
/// the congestion benchmarks and sweeps run here.
pub fn emulab_oversubscribed() -> Cluster {
    let mut costs = NetworkCosts::emulab();
    costs.inter_rack_bandwidth_mbps = OVERSUBSCRIBED_TRUNK_MBPS;
    ClusterBuilder::new()
        .network_costs(costs)
        .homogeneous_racks(2, 6, ResourceCapacity::emulab_node(), SLOTS_PER_NODE)
        .build()
        .expect("static preset is valid")
}

/// The multi-topology evaluation cluster (§6.5): 24 workers in two racks
/// of twelve.
pub fn emulab_multi() -> Cluster {
    ClusterBuilder::new()
        .homogeneous_racks(2, 12, ResourceCapacity::emulab_node(), SLOTS_PER_NODE)
        .build()
        .expect("static preset is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_preset_matches_paper() {
        let c = emulab_micro();
        assert_eq!(c.nodes().len(), 12);
        assert_eq!(c.racks().len(), 2);
        assert_eq!(c.rack_nodes("rack-0").len(), 6);
        let cap = c.nodes()[0].capacity();
        assert_eq!(cap.cpu_points, 100.0);
        assert_eq!(cap.memory_mb, 2048.0);
        assert_eq!(c.costs().latency_inter_rack_ms * 2.0, 4.0, "4 ms RTT");
        assert_eq!(c.costs().node_bandwidth_mbps, 100.0);
    }

    #[test]
    fn oversubscribed_preset_only_changes_the_trunk() {
        let c = emulab_oversubscribed();
        let base = emulab_micro();
        assert_eq!(c.nodes().len(), base.nodes().len());
        assert_eq!(c.racks().len(), base.racks().len());
        assert_eq!(
            c.costs().node_bandwidth_mbps,
            base.costs().node_bandwidth_mbps
        );
        assert_eq!(
            c.costs().inter_rack_bandwidth_mbps,
            OVERSUBSCRIBED_TRUNK_MBPS
        );
        assert!(
            c.costs().inter_rack_bandwidth_mbps < 6.0 * c.costs().node_bandwidth_mbps,
            "the trunk must be oversubscribed"
        );
    }

    #[test]
    fn multi_preset_is_double() {
        let c = emulab_multi();
        assert_eq!(c.nodes().len(), 24);
        assert_eq!(c.racks().len(), 2);
    }
}
