//! # rstorm-workloads
//!
//! The benchmark workloads of the R-Storm paper, reconstructed:
//!
//! * [`micro`] — the Linear, Diamond and Star micro-benchmark topologies
//!   of Figure 7, each in the *network-bound* (§6.3.1) and
//!   *computation-time-bound* (§6.3.2) configurations.
//! * [`yahoo`] — the PageLoad and Processing topologies modeled after the
//!   production layouts of Figure 11 (event-level advertising data
//!   pipelines for near-real-time analytical reporting).
//! * [`drifted`] — topologies whose declared profiles are deliberately
//!   wrong, the test cases of the adaptive rebalance plane.
//! * [`clusters`] — the Emulab cluster presets of §6.1: two racks
//!   ("VLANs") of six or twelve single-core 2 GB workers on 100 Mbps
//!   NICs with a 4 ms inter-rack RTT.
//! * [`sweep`] — the quick/full scenario-grid presets of the Monte-Carlo
//!   sweep fleet (`rstorm sweep`).
//! * [`scale`] — the 10k-task / 1k-node stress case plus its
//!   migration-churn variant (`rstorm scale`, `BENCH_scale.json`);
//!   sized to expose asymptotic engine costs, not to mirror the paper.
//!
//! Component execution profiles (per-tuple CPU cost, fan-out, tuple size)
//! and resource hints are calibrated so that the simulated experiments
//! reproduce the *shape* of the paper's results; the exact constants are
//! documented per workload and recorded in EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod cases;
pub mod clusters;
pub mod drifted;
pub mod micro;
pub mod scale;
pub mod sweep;
pub mod yahoo;
