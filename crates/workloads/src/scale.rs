//! The scale plane: a 10k-task / 1k-node stress case for the engine.
//!
//! The paper's workloads top out at a few dozen tasks on 24 workers —
//! big enough to reproduce Figures 7–11, far too small to expose
//! asymptotic costs in the engine itself. This module provides the
//! long-promised scale case (ROADMAP item 4): a [`scale_topology`] /
//! [`scale_cluster`] pair sized at [`SCALE_TASKS`] tasks on
//! [`SCALE_NODES`] nodes over a [`SCALE_HORIZON_MS`] horizon, plus a
//! *migration-churn* variant ([`churn_plans`]) that drives repeated
//! [`DeltaScheduler`] migrations through a run — the scenario where the
//! O(tasks²) full routing rebuild used to dominate and the incremental
//! patch path (`SimConfig::incremental_routing`) now pays off.
//!
//! The topology is a chain of roughly √tasks components of parallelism
//! √tasks each: total routes grow as tasks^1.5 (≈ 1M for the 10k case)
//! instead of tasks² (100M), which keeps the case runnable in CI while
//! still dwarfing every other workload by two orders of magnitude.
//! Spouts are rate-limited to one tuple per second per task so that
//! event-processing cost stays small relative to the migration
//! bookkeeping the churn case is designed to measure.

use rstorm_cluster::{Cluster, ClusterBuilder, NodeId, ResourceCapacity};
use rstorm_core::{
    Assignment, ComponentDrift, DeltaScheduler, DriftReport, GlobalState, MigrationPlan,
    ProfileRefiner, RStormScheduler, Scheduler,
};
use rstorm_sim::Simulation;
use rstorm_topology::{ExecutionProfile, Topology, TopologyBuilder};
use std::collections::BTreeSet;

use crate::clusters::SLOTS_PER_NODE;

/// Tasks in the full-size scale topology.
pub const SCALE_TASKS: u32 = 10_000;

/// Nodes in the full-size scale cluster.
pub const SCALE_NODES: u32 = 1_000;

/// Simulated horizon of the full-size scale run: the paper's ~10-minute
/// experiment window.
pub const SCALE_HORIZON_MS: f64 = 600_000.0;

/// Migration rounds of the full-size churn variant.
pub const SCALE_CHURN_ROUNDS: u32 = 100;

/// Declared CPU points per scale task (an eighth of an Emulab core, so
/// ~12 tasks pack per node and the initial schedule leaves free nodes
/// for churn to migrate into).
const TASK_CPU_POINTS: f64 = 8.0;

/// Declared memory per scale task in MB (never the binding constraint).
const TASK_MEMORY_MB: f64 = 48.0;

/// The factor by which churn rounds pretend every component
/// under-declared its CPU — large enough that a "saturated" node always
/// sheds most of its tasks.
const CHURN_DRIFT_RATIO: f64 = 3.0;

/// Builds the scale topology: a chain `c0 → c1 → … → c{n-1}` of
/// shuffle-grouped components with parallelism ≈ √`tasks` each, exactly
/// `tasks` tasks in total (the last component absorbs the remainder).
/// `c0` is a rate-limited spout, the last component a sink.
///
/// # Panics
///
/// Panics if `tasks < 2` (a chain needs a spout and a sink).
pub fn scale_topology(tasks: u32) -> Topology {
    assert!(
        tasks >= 2,
        "a scale chain needs at least 2 tasks, got {tasks}"
    );
    let parallelism = (f64::from(tasks).sqrt() as u32).max(1);
    let components = tasks.div_ceil(parallelism).max(2);
    // The first components-1 carry `parallelism` tasks each; the last
    // absorbs the remainder (in 1..=parallelism by construction).
    let last = tasks - parallelism * (components - 1);
    let mut b = TopologyBuilder::new("scale");
    b.set_spout("c0", parallelism)
        .set_profile(ExecutionProfile::new(0.05, 1.0, 100).with_max_rate(1.0))
        .set_cpu_load(TASK_CPU_POINTS)
        .set_memory_load(TASK_MEMORY_MB);
    for i in 1..components - 1 {
        b.set_bolt(format!("c{i}"), parallelism)
            .shuffle_grouping(format!("c{}", i - 1))
            .set_profile(ExecutionProfile::new(0.05, 1.0, 100))
            .set_cpu_load(TASK_CPU_POINTS)
            .set_memory_load(TASK_MEMORY_MB);
    }
    b.set_bolt(format!("c{}", components - 1), last)
        .shuffle_grouping(format!("c{}", components - 2))
        .set_profile(ExecutionProfile::new(0.05, 1.0, 100).into_sink())
        .set_cpu_load(TASK_CPU_POINTS)
        .set_memory_load(TASK_MEMORY_MB);
    b.build().expect("scale chain is structurally valid")
}

/// Builds the scale cluster: `nodes` Emulab-class workers in racks of at
/// most 50 (rounded up to full racks, so the result may hold slightly
/// more than `nodes` nodes when 50 does not divide it).
///
/// # Panics
///
/// Panics if `nodes == 0`.
pub fn scale_cluster(nodes: u32) -> Cluster {
    assert!(nodes > 0, "a cluster needs at least one node");
    let racks = nodes.div_ceil(50);
    let per_rack = nodes.div_ceil(racks);
    ClusterBuilder::new()
        .homogeneous_racks(
            racks,
            per_rack,
            ResourceCapacity::emulab_node(),
            SLOTS_PER_NODE,
        )
        .build()
        .expect("scale preset is valid")
}

/// Schedules `topology` on `cluster` and plays `rounds` of synthetic
/// drift through the [`DeltaScheduler`]: every round pretends all
/// components under-declared CPU by [`CHURN_DRIFT_RATIO`] and marks one
/// initially-used node (cycling in name order) saturated, so the delta
/// scheduler sheds most of that node's tasks onto nodes with headroom.
/// Plans compose — each round plans against the state the previous
/// round committed — and empty rounds (a node already shed dry, or no
/// target with headroom left) are dropped. Fully deterministic.
///
/// Returns the initial assignment and the non-empty migration plans in
/// round order.
///
/// # Panics
///
/// Panics if the initial schedule fails (the scale presets always fit).
pub fn churn_plans(
    topology: &Topology,
    cluster: &Cluster,
    rounds: u32,
) -> (Assignment, Vec<MigrationPlan>) {
    let mut state = GlobalState::new(cluster);
    let assignment = RStormScheduler::new()
        .schedule(topology, cluster, &mut state)
        .expect("the scale topology fits its cluster");

    // Alpha 1.0: the refined profile IS the synthetic observation.
    let mut refiner = ProfileRefiner::new(1.0);
    let tname = topology.id().as_str().to_owned();
    let mut drifted: Vec<ComponentDrift> = Vec::new();
    for component in topology.components() {
        let declared = component.resources().cpu_points;
        let observed = declared * CHURN_DRIFT_RATIO;
        refiner.observe(&tname, component.id().as_str(), declared, observed);
        drifted.push(ComponentDrift {
            component: component.id().as_str().to_owned(),
            declared_cpu_points: declared,
            observed_cpu_points: observed,
            ratio: CHURN_DRIFT_RATIO,
        });
    }
    drifted.sort_by(|a, b| a.component.cmp(&b.component));

    let used: Vec<NodeId> = assignment.used_nodes().into_iter().collect();
    assert!(!used.is_empty(), "a scheduled topology uses nodes");

    let mut plans = Vec::new();
    for round in 0..rounds {
        let hot = used[round as usize % used.len()].clone();
        let drift = DriftReport {
            topology: topology.id().clone(),
            drifted: drifted.clone(),
            saturated_nodes: vec![hot],
            starved_nodes: Vec::new(),
            congested_racks: Vec::new(),
        };
        let plan = DeltaScheduler::new()
            .plan(
                topology,
                cluster,
                &mut state,
                &drift,
                &refiner,
                &BTreeSet::new(),
            )
            .expect("the topology was just scheduled");
        if !plan.is_empty() {
            plans.push(plan);
        }
    }
    (assignment, plans)
}

/// Schedules `plans` onto `sim` evenly spread across the middle 80% of
/// `horizon_ms` (round k cuts over at `0.1·horizon + k·interval`), each
/// with a 200 ms per-task pause — the standard churn timeline shared by
/// the bench bin, the CLI and the determinism tests.
pub fn schedule_churn(sim: &mut Simulation, plans: &[MigrationPlan], horizon_ms: f64) {
    if plans.is_empty() {
        return;
    }
    let interval = horizon_ms * 0.8 / plans.len() as f64;
    for (k, plan) in plans.iter().enumerate() {
        sim.schedule_migration(plan, horizon_ms * 0.1 + k as f64 * interval, 200.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstorm_sim::SimConfig;

    /// Test-sized parameters: the same shape as the 10k case, two orders
    /// of magnitude smaller.
    const T: u32 = 200;
    const N: u32 = 20;
    const HORIZON: f64 = 10_000.0;

    #[test]
    fn topology_has_exactly_the_requested_tasks() {
        for tasks in [2, 3, 7, 50, 200, 1000] {
            let t = scale_topology(tasks);
            assert_eq!(t.total_tasks(), tasks, "tasks={tasks}");
        }
        let full = scale_topology(SCALE_TASKS);
        assert_eq!(full.total_tasks(), SCALE_TASKS);
        // √10000 = 100 → a 100-wide chain ~100 components deep.
        assert_eq!(full.components().len(), 100);
    }

    #[test]
    fn cluster_rounds_up_to_full_racks() {
        let c = scale_cluster(N);
        assert_eq!(c.nodes().len(), N as usize);
        assert_eq!(c.racks().len(), 1);
        let big = scale_cluster(120);
        assert_eq!(big.racks().len(), 3);
        assert_eq!(big.nodes().len(), 120);
    }

    #[test]
    fn scale_case_schedules_and_runs() {
        let t = scale_topology(T);
        let c = scale_cluster(N);
        let mut state = GlobalState::new(&c);
        let a = RStormScheduler::new().schedule(&t, &c, &mut state).unwrap();
        assert_eq!(a.len() as u32, T);
        let mut sim = Simulation::new(c, SimConfig::default().with_sim_time_ms(HORIZON));
        sim.add_topology(&t, &a);
        let report = sim.run();
        assert!(report.totals.tuples_completed > 0, "the chain flows");
    }

    #[test]
    fn churn_produces_composing_plans() {
        let t = scale_topology(T);
        let c = scale_cluster(N);
        let (assignment, plans) = churn_plans(&t, &c, 10);
        assert!(!plans.is_empty(), "synthetic drift must trigger moves");
        let moves: usize = plans.iter().map(MigrationPlan::len).sum();
        assert!(moves >= 10, "expected sustained churn, got {moves} moves");
        // Plans compose: every move starts from where the task actually
        // is at that point in the sequence.
        let mut where_is: std::collections::BTreeMap<_, _> = assignment
            .iter()
            .map(|(task, slot)| (task, slot.node.clone()))
            .collect();
        for plan in &plans {
            for m in &plan.moves {
                assert_eq!(where_is.get(&m.task), Some(&m.from), "stale source");
                where_is.insert(m.task, m.to.clone());
            }
        }
    }

    /// The sweep-style determinism pin on the churn case: the whole
    /// scenario — plans included — replayed from scratch is
    /// bit-identical, and the incremental-routing patch path produces
    /// exactly the same run as a full rebuild per migration.
    #[test]
    fn churn_case_is_deterministic_and_patch_parity_holds() {
        let run = |incremental: bool| {
            let t = scale_topology(T);
            let c = scale_cluster(N);
            let (a, plans) = churn_plans(&t, &c, 10);
            let config = SimConfig::default()
                .with_sim_time_ms(HORIZON)
                .with_incremental_routing(incremental);
            let mut sim = Simulation::new(c, config);
            sim.add_topology(&t, &a);
            schedule_churn(&mut sim, &plans, HORIZON);
            sim.run()
        };
        let first = run(true);
        let second = run(true);
        assert_eq!(first, second, "churn run must be reproducible");
        assert_eq!(first.debug.events, second.debug.events);
        let full = run(false);
        assert_eq!(first, full, "patch path must match full rebuilds");
        assert_eq!(first.debug.events, full.debug.events);
    }
}
