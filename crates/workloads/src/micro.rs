//! The micro-benchmark topologies of Figure 7: Linear, Diamond, Star.
//!
//! Each comes in two configurations matching §6.3:
//!
//! * **network-bound** — "very little processing at each component", fat
//!   tuples, so throughput is limited by where tuples travel;
//! * **computation-time-bound** — "a significant amount of arbitrary
//!   processing", small tuples, so throughput is limited by CPU headroom.
//!
//! CPU hints follow the paper's point system (100 = one core) and are set
//! to each task's expected steady-state usage, which is what a user
//! profiling their components would supply to R-Storm.

use rstorm_topology::{ExecutionProfile, Topology, TopologyBuilder};

/// Tuple payload of the network-bound Linear variant (fat records).
pub const LINEAR_NET_TUPLE_BYTES: u32 = 400;
/// Tuple payload of the network-bound Diamond variant.
pub const DIAMOND_NET_TUPLE_BYTES: u32 = 200;
/// Tuple payload of the network-bound Star variant (small events).
pub const STAR_NET_TUPLE_BYTES: u32 = 100;
/// Tuple payload for the CPU-bound variants (small tuples).
pub const CPU_TUPLE_BYTES: u32 = 100;
/// Per-tuple cost of a "very little processing" component, in ms
/// (framework overhead only).
pub const NET_WORK_MS: f64 = 0.01;

fn net_profile(tuple_bytes: u32) -> ExecutionProfile {
    ExecutionProfile::new(NET_WORK_MS, 1.0, tuple_bytes)
}

/// Linear topology (Fig 7a): a four-stage chain
/// `spout → bolt-1 → bolt-2 → sink`, network-bound.
///
/// Parallelism 6 per component (24 tasks). With 25-point CPU hints the
/// whole chain fits one rack under R-Storm, while the default scheduler
/// spreads it across both racks and pays the inter-rack uplink.
pub fn linear_network_bound() -> Topology {
    let mut b = TopologyBuilder::new("linear-net");
    b.set_num_workers(12);
    // Network-bound runs are in-flight-limited: a modest backpressure
    // window keeps throughput governed by end-to-end tuple latency.
    b.set_max_spout_pending(4);
    b.set_spout("spout", 6)
        .set_profile(net_profile(LINEAR_NET_TUPLE_BYTES))
        .set_cpu_load(15.0)
        .set_memory_load(128.0);
    for (i, name) in ["bolt-1", "bolt-2", "sink"].iter().enumerate() {
        let from = if i == 0 {
            "spout".to_owned()
        } else {
            format!("bolt-{i}")
        };
        let profile = if *name == "sink" {
            net_profile(LINEAR_NET_TUPLE_BYTES).into_sink()
        } else {
            net_profile(LINEAR_NET_TUPLE_BYTES)
        };
        b.set_bolt(*name, 6)
            .shuffle_grouping(from)
            .set_profile(profile)
            .set_cpu_load(15.0)
            .set_memory_load(128.0);
    }
    b.build().expect("static workload is valid")
}

/// Diamond topology (Fig 7b): `spout → {mid-1, mid-2, mid-3} → sink`,
/// network-bound. The spout's stream is consumed by all three middle
/// bolts (3× egress fan-out) and the sink joins all three.
pub fn diamond_network_bound() -> Topology {
    let mut b = TopologyBuilder::new("diamond-net");
    b.set_num_workers(12);
    b.set_max_spout_pending(4);
    b.set_spout("spout", 4)
        .set_profile(net_profile(DIAMOND_NET_TUPLE_BYTES))
        .set_cpu_load(15.0)
        .set_memory_load(128.0);
    // Each middle bolt consumes the full spout stream: per-task rate
    // equals the spout's, so the hint matches.
    for i in 1..=3 {
        b.set_bolt(format!("mid-{i}"), 4)
            .shuffle_grouping("spout")
            .set_profile(net_profile(DIAMOND_NET_TUPLE_BYTES))
            .set_cpu_load(15.0)
            .set_memory_load(128.0);
    }
    // The sink joins all three branches: 3× the stream over 6 tasks =
    // twice the per-task rate of the spout.
    let mut sink = b.set_bolt("sink", 6);
    for i in 1..=3 {
        sink.shuffle_grouping(format!("mid-{i}"));
    }
    sink.set_profile(net_profile(DIAMOND_NET_TUPLE_BYTES).into_sink())
        .set_cpu_load(30.0)
        .set_memory_load(128.0);
    b.build().expect("static workload is valid")
}

/// Star topology (Fig 7c): two spouts feeding a central bolt which feeds
/// two sinks, network-bound. The hub concentrates traffic, so placement
/// of the center relative to its peers dominates throughput.
pub fn star_network_bound() -> Topology {
    let mut b = TopologyBuilder::new("star-net");
    b.set_num_workers(12);
    // The star hub pipelines less, so it runs with a smaller window.
    b.set_max_spout_pending(2);
    for s in ["spout-1", "spout-2"] {
        b.set_spout(s, 4)
            .set_profile(net_profile(STAR_NET_TUPLE_BYTES))
            .set_cpu_load(15.0)
            .set_memory_load(128.0);
    }
    // The hub: both spout streams over 8 tasks = the spouts' per-task
    // rate.
    b.set_bolt("center", 8)
        .shuffle_grouping("spout-1")
        .shuffle_grouping("spout-2")
        .set_profile(net_profile(STAR_NET_TUPLE_BYTES))
        .set_cpu_load(15.0)
        .set_memory_load(128.0);
    // Each sink consumes the full hub output over 4 tasks = twice the
    // per-task rate.
    for k in ["sink-1", "sink-2"] {
        b.set_bolt(k, 4)
            .shuffle_grouping("center")
            .set_profile(net_profile(STAR_NET_TUPLE_BYTES).into_sink())
            .set_cpu_load(30.0)
            .set_memory_load(128.0);
    }
    b.build().expect("static workload is valid")
}

/// Linear topology, computation-time-bound (§6.3.2).
///
/// Two full-core spouts drive three bolt stages whose tasks run at ~50%
/// of a core. Total demand ≈ 650 points, so R-Storm satisfies it with
/// roughly half the cluster while the default scheduler spreads the 11
/// tasks over 11 machines.
pub fn linear_cpu_bound() -> Topology {
    let mut b = TopologyBuilder::new("linear-cpu");
    b.set_num_workers(12);
    b.set_spout("spout", 2)
        .set_profile(ExecutionProfile::new(1.0, 1.0, CPU_TUPLE_BYTES))
        .set_cpu_load(100.0)
        .set_memory_load(256.0);
    for (i, name) in ["bolt-1", "bolt-2", "sink"].iter().enumerate() {
        let from = if i == 0 {
            "spout".to_owned()
        } else {
            format!("bolt-{i}")
        };
        // Input 2000 tuples/s over 3 tasks at 0.75 ms/tuple = 50% core.
        let mut profile = ExecutionProfile::new(0.75, 1.0, CPU_TUPLE_BYTES);
        if *name == "sink" {
            profile = profile.into_sink();
        }
        b.set_bolt(*name, 3)
            .shuffle_grouping(from)
            .set_profile(profile)
            .set_cpu_load(50.0)
            .set_memory_load(256.0);
    }
    b.build().expect("static workload is valid")
}

/// Diamond topology, computation-time-bound.
///
/// Each middle bolt consumes the full spout stream; the sink joins all
/// three branches. Total demand ≈ 600 points.
pub fn diamond_cpu_bound() -> Topology {
    let mut b = TopologyBuilder::new("diamond-cpu");
    b.set_num_workers(12);
    b.set_spout("spout", 2)
        .set_profile(ExecutionProfile::new(1.0, 1.0, CPU_TUPLE_BYTES))
        .set_cpu_load(100.0)
        .set_memory_load(256.0);
    for i in 1..=3 {
        // 2000 tuples/s over 2 tasks at 0.4 ms = 40% core.
        b.set_bolt(format!("mid-{i}"), 2)
            .shuffle_grouping("spout")
            .set_profile(ExecutionProfile::new(0.4, 1.0, CPU_TUPLE_BYTES))
            .set_cpu_load(40.0)
            .set_memory_load(256.0);
    }
    let mut sink = b.set_bolt("sink", 4);
    for i in 1..=3 {
        sink.shuffle_grouping(format!("mid-{i}"));
    }
    // 6000 tuples/s over 4 tasks at 0.25 ms = 37.5% core.
    sink.set_profile(ExecutionProfile::new(0.25, 0.0, CPU_TUPLE_BYTES))
        .set_cpu_load(40.0)
        .set_memory_load(256.0);
    b.build().expect("static workload is valid")
}

/// Star topology, computation-time-bound — the workload where the default
/// scheduler "creates a scheduling in which one of the machines gets over
/// utilized ... and creates a bottleneck that throttles the overall
/// throughput" (§6.3.2).
///
/// Two full-core spouts feed a 12-task central bolt. The default
/// round-robin wraps the last two center tasks onto the spout machines
/// (14 tasks before the sinks, 12 machines), over-committing them: the
/// spouts slow down and the starved center tasks blow the tuple timeout
/// for every root routed their way, throttling the whole topology.
/// R-Storm gives the spouts dedicated machines and packs the light
/// center/sink tasks tightly — about half the machines, all of them busy.
pub fn star_cpu_bound() -> Topology {
    let mut b = TopologyBuilder::new("star-cpu");
    b.set_num_workers(12);
    for s in ["spout-1", "spout-2"] {
        b.set_spout(s, 1)
            .set_profile(ExecutionProfile::new(1.0, 1.0, CPU_TUPLE_BYTES))
            .set_cpu_load(100.0)
            .set_memory_load(256.0);
    }
    // 2000 tuples/s over 12 tasks at 2.7 ms ≈ 45% core each.
    b.set_bolt("center", 12)
        .shuffle_grouping("spout-1")
        .shuffle_grouping("spout-2")
        .set_profile(ExecutionProfile::new(2.7, 1.0, CPU_TUPLE_BYTES))
        .set_cpu_load(45.0)
        .set_memory_load(256.0);
    for k in ["sink-1", "sink-2"] {
        // 2000 tuples/s over 2 tasks at 0.15 ms = 15% core.
        b.set_bolt(k, 2)
            .shuffle_grouping("center")
            .set_profile(ExecutionProfile::new(0.15, 0.0, CPU_TUPLE_BYTES))
            .set_cpu_load(15.0)
            .set_memory_load(256.0);
    }
    b.build().expect("static workload is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clusters::emulab_micro;

    fn all() -> Vec<Topology> {
        vec![
            linear_network_bound(),
            diamond_network_bound(),
            star_network_bound(),
            linear_cpu_bound(),
            diamond_cpu_bound(),
            star_cpu_bound(),
        ]
    }

    #[test]
    fn all_variants_are_valid_and_distinctly_named() {
        let names: Vec<String> = all().iter().map(|t| t.id().to_string()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn network_bound_variants_do_little_work() {
        for (t, bytes) in [
            (linear_network_bound(), LINEAR_NET_TUPLE_BYTES),
            (diamond_network_bound(), DIAMOND_NET_TUPLE_BYTES),
            (star_network_bound(), STAR_NET_TUPLE_BYTES),
        ] {
            for c in t.components() {
                assert!(
                    c.profile().work_ms_per_tuple <= NET_WORK_MS,
                    "{}/{} too heavy for a network-bound variant",
                    t.id(),
                    c.id()
                );
                assert_eq!(c.profile().tuple_bytes, bytes);
            }
        }
    }

    #[test]
    fn cpu_bound_variants_do_heavy_work() {
        for t in [linear_cpu_bound(), diamond_cpu_bound(), star_cpu_bound()] {
            let max_work = t
                .components()
                .iter()
                .map(|c| c.profile().work_ms_per_tuple)
                .fold(0.0, f64::max);
            assert!(max_work >= 0.75, "{} is not CPU-heavy", t.id());
        }
    }

    #[test]
    fn cpu_demand_fits_the_micro_cluster() {
        // The CPU-bound variants must be schedulable by R-Storm on the
        // 12-node cluster: total hinted demand within 1200 points and no
        // single task above one node.
        let cap = emulab_micro().total_capacity();
        for t in [linear_cpu_bound(), diamond_cpu_bound(), star_cpu_bound()] {
            let demand = t.total_resources();
            assert!(
                demand.cpu_points <= cap.cpu_points,
                "{}: {} pts exceeds cluster {}",
                t.id(),
                demand.cpu_points,
                cap.cpu_points
            );
            assert!(demand.memory_mb <= cap.memory_mb);
        }
    }

    #[test]
    fn every_variant_schedules_under_rstorm() {
        use rstorm_core::{GlobalState, RStormScheduler, Scheduler};
        let cluster = emulab_micro();
        for t in all() {
            let mut state = GlobalState::new(&cluster);
            let a = RStormScheduler::new()
                .schedule(&t, &cluster, &mut state)
                .unwrap_or_else(|e| panic!("{} unschedulable: {e}", t.id()));
            assert_eq!(a.len() as u32, t.total_tasks());
        }
    }

    #[test]
    fn star_center_wraps_under_round_robin() {
        // The overload story needs the default round-robin to wrap the
        // last center tasks onto the spout machines of a 12-node cluster.
        let t = star_cpu_bound();
        let tasks_before_sinks: u32 = t.spouts().map(|c| c.parallelism()).sum::<u32>()
            + t.component("center").unwrap().parallelism();
        assert!(tasks_before_sinks > 12);
    }

    #[test]
    fn sinks_are_sinks() {
        for t in all() {
            assert!(t.sinks().count() >= 1, "{} needs an output bolt", t.id());
            for s in t.sinks() {
                assert!(s.profile().is_sink(), "{}/{}", t.id(), s.id());
            }
        }
    }
}
