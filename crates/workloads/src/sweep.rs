//! The scenario-grid presets of the Monte-Carlo sweep fleet
//! (`rstorm sweep --grid quick|full`).
//!
//! Both grids crash the victim at t=20 s — after warm-up, with plenty of
//! horizon left — matching the chaos and replay smoke scenarios so sweep
//! distributions are directly comparable to the existing point estimates.
//! Replay budgets are generous (`max_replays = 8`): on the survivable
//! scenarios a root would need more than eight failures to be
//! quarantined, which the crash/heal timing cannot produce, so
//! `zero_loss_ratio == 1.0` is a hard correctness gate on every
//! survivable group (and `bench_guard` pins it).

use crate::{cases, clusters, micro, yahoo};
use rstorm_sim::{FaultSpec, SeedRange, SimConfig, SweepCase, SweepGrid};
use std::sync::Arc;

/// Crash time shared by both grids (milliseconds).
const CRASH_AT_MS: f64 = 20_000.0;
/// Heal time of the survivable outage (milliseconds).
const HEAL_AT_MS: f64 = 35_000.0;
/// Replay budget: far above what a single survivable outage can consume.
const MAX_REPLAYS: u32 = 8;

/// The quick grid: 2 cases × 2 schedulers × 2 faults × seeds, 60 s sims.
/// Small enough for CI smoke runs; every fault spec is survivable, so
/// the whole grid is zero-loss-gated.
pub fn quick_grid(seeds: SeedRange) -> SweepGrid {
    SweepGrid {
        cases: vec![
            SweepCase {
                name: "linear_net".to_owned(),
                topology: micro::linear_network_bound(),
                cluster: Arc::new(clusters::emulab_micro()),
            },
            SweepCase {
                name: "page_load".to_owned(),
                topology: yahoo::page_load(),
                cluster: Arc::new(clusters::emulab_multi()),
            },
        ],
        schedulers: vec!["rstorm".to_owned(), "even".to_owned()],
        faults: vec![
            FaultSpec::Healthy,
            FaultSpec::CrashRecover {
                crash_at_ms: CRASH_AT_MS,
                heal_at_ms: HEAL_AT_MS,
            },
        ],
        seeds,
        sim: SimConfig::quick().with_max_replays(MAX_REPLAYS),
    }
}

/// Partition window of the full grid's mixed-fault specs (milliseconds):
/// 15 s of severed inter-rack traffic and silenced heartbeats, well past
/// the detection window, healing with most of the horizon left.
const PARTITION_UNTIL_MS: f64 = 35_000.0;
/// Flap-storm shape of the full grid: three 4 s outages 8 s apart —
/// each long enough to be declared dead, short enough to exercise the
/// recovery plane's trust hysteresis and churn limiter.
const FLAP_DOWN_MS: f64 = 4_000.0;
/// Up time between flap outages (milliseconds).
const FLAP_UP_MS: f64 = 8_000.0;
/// Number of flap cycles.
const FLAPS: u32 = 3;
/// Congestion window end of the full grid (milliseconds): 15 s of
/// background traffic squeezing every link on the fair network plane.
const CONGESTION_UNTIL_MS: f64 = 35_000.0;
/// Congestion severity: capacity shrinks to
/// `100 / (100 + 400) = 20 %` for the window's duration.
const CONGESTION_EXTRA_MS: f64 = 400.0;
/// Nimbus-outage shape of the full grid: the control plane goes dark
/// 2 s before the worker crash and stays down for 10 s, so the crash
/// falls entirely inside the outage and only a journaled successor
/// (the spec runs journal-on) can detect and reschedule it.
const NIMBUS_AT_MS: f64 = 18_000.0;
/// Length of the Nimbus outage (milliseconds).
const NIMBUS_DOWN_MS: f64 = 10_000.0;

/// The full grid: all five benchmark workloads × 3 schedulers × 7 faults
/// × seeds at the paper's 300 s horizon — the production-scale
/// validation sweep. Includes the non-survivable lasting-crash
/// scenario, whose groups are exempt from the zero-loss pin, plus the
/// mixed-fault vocabulary (rack partition, flap storm, background-traffic
/// congestion on the fair network plane, a worker crash masked by a
/// Nimbus outage and healed by journaled failover) of the chaos
/// fuzzer — all survivable, so zero-loss-gated.
pub fn full_grid(seeds: SeedRange) -> SweepGrid {
    let cases = cases::fig8_cases()
        .into_iter()
        .chain(cases::yahoo_cases())
        .map(|c| SweepCase {
            name: c.name.to_owned(),
            topology: c.topology,
            cluster: Arc::new(c.cluster),
        })
        .collect();
    SweepGrid {
        cases,
        schedulers: vec!["rstorm".to_owned(), "even".to_owned(), "offline".to_owned()],
        faults: vec![
            FaultSpec::Healthy,
            FaultSpec::CrashRecover {
                crash_at_ms: CRASH_AT_MS,
                heal_at_ms: HEAL_AT_MS,
            },
            FaultSpec::CrashLasting {
                crash_at_ms: CRASH_AT_MS,
            },
            FaultSpec::Partition {
                at_ms: CRASH_AT_MS,
                until_ms: PARTITION_UNTIL_MS,
            },
            FaultSpec::Flap {
                first_at_ms: CRASH_AT_MS,
                flaps: FLAPS,
                down_ms: FLAP_DOWN_MS,
                up_ms: FLAP_UP_MS,
            },
            FaultSpec::Congestion {
                at_ms: CRASH_AT_MS,
                until_ms: CONGESTION_UNTIL_MS,
                extra_ms: CONGESTION_EXTRA_MS,
            },
            FaultSpec::NimbusOutage {
                crash_at_ms: CRASH_AT_MS,
                heal_at_ms: HEAL_AT_MS,
                nimbus_at_ms: NIMBUS_AT_MS,
                nimbus_down_ms: NIMBUS_DOWN_MS,
            },
        ],
        seeds,
        sim: SimConfig::default().with_max_replays(MAX_REPLAYS),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstorm_core::{schedulers, GlobalState};

    #[test]
    fn quick_grid_is_fully_survivable() {
        let grid = quick_grid(SeedRange::new(0, 4).unwrap());
        assert!(grid.faults.iter().all(FaultSpec::survivable));
        assert_eq!(grid.job_count(), 2 * 2 * 2 * 4);
    }

    #[test]
    fn full_grid_covers_the_mixed_fault_vocabulary() {
        let grid = full_grid(SeedRange::new(0, 1).unwrap());
        let labels: Vec<&str> = grid.faults.iter().map(FaultSpec::label).collect();
        assert_eq!(
            labels,
            [
                "healthy",
                "crash_recover",
                "crash_lasting",
                "partition",
                "flap",
                "congestion",
                "nimbus_outage"
            ]
        );
        // Everything but the lasting crash is survivable and therefore
        // zero-loss-gated — including both new mixed-fault specs.
        for fault in &grid.faults {
            assert_eq!(
                fault.survivable(),
                fault.label() != "crash_lasting",
                "{}",
                fault.label()
            );
        }
    }

    /// Every (case, scheduler) pair of the full grid must place: a
    /// scheduler that cannot place a grid case would panic a sweep
    /// worker mid-run.
    #[test]
    fn full_grid_pairs_are_schedulable() {
        let grid = full_grid(SeedRange::new(0, 1).unwrap());
        for case in &grid.cases {
            for name in &grid.schedulers {
                let s = schedulers::by_name(name).unwrap();
                let mut state = GlobalState::new(&case.cluster);
                let a = s
                    .schedule(&case.topology, &case.cluster, &mut state)
                    .unwrap_or_else(|e| panic!("{name} cannot place {}: {e}", case.name));
                assert!(a.iter().next().is_some(), "{name}/{}", case.name);
            }
        }
    }
}
