//! The adaptive rebalance plane: closing the loop from observed runtime
//! statistics back into placement.
//!
//! R-Storm schedules once, from the *declared* `setCPULoad` /
//! `setMemoryLoad` hints, and the paper leaves "dynamic resource-aware
//! scheduling" as future work (§8). This module is that future work for
//! our reproduction: the first subsystem where the control plane reacts
//! to the data plane instead of only to crashes.
//!
//! Three cooperating pieces, each usable on its own:
//!
//! * [`ProfileRefiner`] — blends *observed* per-task CPU load (from the
//!   simulator's stats-export hook) with the *declared* load via an
//!   exponentially weighted moving average, yielding a refined
//!   [`ResourceRequest`](rstorm_topology::ResourceRequest) per component.
//! * [`DriftDetector`] — compares refined against declared loads and
//!   flags components whose declaration has drifted beyond a threshold,
//!   plus nodes that run saturated or starved.
//! * [`DeltaScheduler`] — turns a drift report into a **minimal-move**
//!   [`MigrationPlan`] against the live indexed
//!   [`GlobalState`](crate::GlobalState): only tasks of drifted
//!   components on saturated nodes move, only until the node's refined
//!   load fits its capacity, and every move is bookkept atomically
//!   through the existing [`UndoLog`](crate::UndoLog) machinery — a
//!   failed move rolls back bit-exactly, and zero drift yields an empty
//!   plan that leaves the state untouched.
//!
//! The simulator executes the resulting plan with an explicit
//! pause/drain/restore cost per moved task, so rebalance gains are
//! always measured *net* of the disruption they cause.

mod delta;
mod drift;
mod refiner;

pub use delta::{DeltaScheduler, MigrationMove, MigrationPlan};
pub use drift::{ComponentDrift, DriftConfig, DriftDetector, DriftReport};
pub use refiner::ProfileRefiner;
