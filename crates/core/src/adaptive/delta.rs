//! Minimal-move migration planning on the live scheduling state.

use crate::adaptive::drift::DriftReport;
use crate::adaptive::refiner::ProfileRefiner;
use crate::assignment::Assignment;
use crate::error::ScheduleError;
use crate::global_state::{GlobalState, UndoLog};
use rstorm_cluster::{Cluster, NodeId};
use rstorm_topology::{TaskId, Topology, TopologyId};
use std::collections::{BTreeMap, BTreeSet};

/// One task relocation of a migration plan.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationMove {
    /// The relocated task.
    pub task: TaskId,
    /// The component the task instantiates.
    pub component: String,
    /// Where the task ran before the move.
    pub from: NodeId,
    /// Where the task runs after the move.
    pub to: NodeId,
}

/// The delta scheduler's output: which tasks move where, plus the full
/// assignment after applying the moves. An empty plan means the live
/// state was left bit-identical to how it was found.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationPlan {
    /// The rebalanced topology.
    pub topology: TopologyId,
    /// The moves, in planning order.
    pub moves: Vec<MigrationMove>,
    /// The assignment after the moves (identical to the input assignment
    /// when `moves` is empty).
    pub updated: Assignment,
}

impl MigrationPlan {
    /// True when nothing moves.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// Number of task moves.
    pub fn len(&self) -> usize {
        self.moves.len()
    }
}

/// Computes a **minimal-move** migration plan from a drift report,
/// mutating the live [`GlobalState`] bookkeeping as it goes instead of
/// rescheduling the topology from scratch.
///
/// Only tasks of *drifted* components placed on *saturated* nodes are
/// candidates, heaviest (by refined load) first, and a node sheds
/// candidates only until its refined CPU load fits its capacity again —
/// everything else keeps its placement, its routes and its warm state.
/// On nodes whose rack the drift report flags as *congested* (trunk
/// utilization fed from the simulator's fair network plane), tasks with
/// a declared bandwidth demand also become candidates, and the node
/// keeps shedding until at least half its declared bandwidth load has
/// moved off the rack's trunk.
/// Each move is applied through the same [`UndoLog`]-logged reserve
/// machinery the schedulers use: the old node releases the *declared*
/// reservation, the target reserves the *refined* one (hard memory
/// constraint enforced, dead and explicitly forbidden nodes never
/// considered), and a move that cannot complete rolls back bit-exactly
/// and is skipped. A clean drift report therefore yields an empty plan
/// and an untouched state.
#[derive(Debug, Clone, Default)]
pub struct DeltaScheduler;

impl DeltaScheduler {
    /// Creates a delta scheduler.
    pub fn new() -> Self {
        Self
    }

    /// Plans (and bookkeeps) the migration of `topology` on the live
    /// `state`. `forbidden` nodes are never chosen as targets even when
    /// the state still believes they are alive — pass the
    /// [`RecoveryManager::dead_nodes`](crate::RecoveryManager::dead_nodes)
    /// view here so the adaptive plane composes with the crash-recovery
    /// plane instead of racing it.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::NotScheduled`] if the state holds no assignment
    /// for `topology` — the state is left untouched.
    pub fn plan(
        &self,
        topology: &Topology,
        cluster: &Cluster,
        state: &mut GlobalState,
        drift: &DriftReport,
        refiner: &ProfileRefiner,
        forbidden: &BTreeSet<NodeId>,
    ) -> Result<MigrationPlan, ScheduleError> {
        let tid = topology.id().clone();
        let assignment = state
            .plan()
            .assignment(tid.as_str())
            .ok_or_else(|| ScheduleError::NotScheduled(tid.clone()))?
            .clone();
        if drift.is_clean() || drift.saturated_nodes.is_empty() {
            return Ok(MigrationPlan {
                topology: tid,
                moves: Vec::new(),
                updated: assignment,
            });
        }

        let index = state.cluster_index().clone();
        let mut saturated = vec![false; index.len()];
        for node in &drift.saturated_nodes {
            if let Some(i) = index.node_index(node.as_str()) {
                saturated[i as usize] = true;
            }
        }

        let tname = tid.as_str().to_owned();
        let task_set = topology.task_set();
        let refined_cpu_of = |task: TaskId| -> f64 {
            let component = &task_set.task(task).expect("task exists").component;
            let declared = task_set.resources(task).expect("task has resources");
            refiner
                .refined_request(&tname, component.as_str(), declared)
                .cpu_points
        };

        let mut slots: BTreeMap<_, _> = assignment.iter().map(|(t, s)| (t, s.clone())).collect();
        let mut plan_log = UndoLog::new();
        let mut moves: Vec<MigrationMove> = Vec::new();

        for node in &drift.saturated_nodes {
            let Some(i) = index.node_index(node.as_str()) else {
                continue;
            };
            if !state.alive_dense()[i as usize] {
                continue; // crashed since the report: the recovery plane owns it
            }
            let congested = cluster
                .rack_of(node.as_str())
                .is_some_and(|r| drift.congested_racks.iter().any(|c| c == r.as_str()));
            let capacity = index.capacity(i).cpu_points;
            let mut refined_load: f64 = slots
                .iter()
                .filter(|(_, slot)| slot.node == *node)
                .map(|(&task, _)| refined_cpu_of(task))
                .sum();
            let mut bw_load: f64 = slots
                .iter()
                .filter(|(_, slot)| slot.node == *node)
                .map(|(&task, _)| {
                    task_set
                        .resources(task)
                        .expect("task has resources")
                        .bandwidth
                })
                .sum();
            let bw_target = bw_load / 2.0;

            // Candidates: drifted-component tasks on this node — plus, on
            // a congested rack, any task declaring bandwidth demand —
            // heaviest refined load first (ties by task id) so saturation
            // clears in as few moves as possible.
            let mut candidate_set: BTreeSet<TaskId> = drift
                .drifted
                .iter()
                .flat_map(|d| task_set.tasks_of(&d.component))
                .filter(|t| slots.get(t).is_some_and(|slot| slot.node == *node))
                .copied()
                .collect();
            if congested {
                for (&task, slot) in &slots {
                    if slot.node == *node
                        && task_set
                            .resources(task)
                            .expect("task has resources")
                            .bandwidth
                            > 0.0
                    {
                        candidate_set.insert(task);
                    }
                }
            }
            let mut candidates: Vec<(TaskId, f64)> = candidate_set
                .into_iter()
                .map(|t| (t, refined_cpu_of(t)))
                .collect();
            candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));

            for (task, refined_cpu) in candidates {
                if refined_load <= capacity && (!congested || bw_load <= bw_target) {
                    break; // node fits again: minimal moves achieved
                }
                let declared = *task_set.resources(task).expect("task has resources");
                let component = task_set.task(task).expect("task exists").component.clone();
                let refined = refiner.refined_request(&tname, component.as_str(), &declared);
                let Some(target) = pick_target(state, &saturated, forbidden, i, &refined) else {
                    continue;
                };
                let mut step = UndoLog::new();
                if state
                    .unreserve_logged(&tid, node, &declared, &mut step)
                    .is_err()
                {
                    state.rollback(step);
                    continue;
                }
                if state
                    .reserve_logged(&tid, &target, &refined, &mut step)
                    .is_err()
                {
                    state.rollback(step);
                    continue;
                }
                let slot = match state.slot_for_logged(cluster, &tid, &target, &mut step) {
                    Ok(slot) => slot,
                    Err(_) => {
                        state.rollback(step);
                        continue;
                    }
                };
                plan_log.absorb(step);
                slots.insert(task, slot);
                moves.push(MigrationMove {
                    task,
                    component: component.as_str().to_owned(),
                    from: node.clone(),
                    to: target,
                });
                refined_load -= refined_cpu;
                bw_load -= declared.bandwidth;
            }
        }

        if moves.is_empty() {
            debug_assert!(plan_log.is_empty());
            return Ok(MigrationPlan {
                topology: tid,
                moves,
                updated: assignment,
            });
        }
        let updated = Assignment::with_unplaced(tid.clone(), slots, assignment.unplaced().clone());
        state.commit(updated.clone());
        Ok(MigrationPlan {
            topology: tid,
            moves,
            updated,
        })
    }
}

/// The best migration target for one refined request: among alive,
/// non-saturated, non-forbidden nodes (excluding the source) whose
/// remaining memory covers the hard constraint and whose remaining CPU
/// covers the refined demand, the one with the most CPU headroom (first
/// in dense node-id order on ties). `None` when nothing qualifies — the
/// task then stays put rather than trading one hot spot for another.
fn pick_target(
    state: &GlobalState,
    saturated: &[bool],
    forbidden: &BTreeSet<NodeId>,
    from: u32,
    refined: &rstorm_topology::ResourceRequest,
) -> Option<NodeId> {
    let index = state.cluster_index();
    let remaining = state.remaining_dense();
    let alive = state.alive_dense();
    let mut best: Option<(u32, f64)> = None;
    for j in 0..index.len() as u32 {
        if j == from || !alive[j as usize] || saturated[j as usize] {
            continue;
        }
        let r = &remaining[j as usize];
        if r.memory_mb < refined.memory_mb || r.cpu_points < refined.cpu_points {
            continue;
        }
        if forbidden.contains(index.node_id(j)) {
            continue;
        }
        match best {
            Some((_, score)) if r.cpu_points <= score => {}
            _ => best = Some((j, r.cpu_points)),
        }
    }
    best.map(|(j, _)| index.node_id(j).clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::drift::{DriftConfig, DriftDetector};
    use crate::rstorm::RStormScheduler;
    use crate::scheduler::Scheduler;
    use crate::verify::verify_plan;
    use rstorm_cluster::{Cluster, ClusterBuilder, ResourceCapacity};
    use rstorm_topology::TopologyBuilder;

    /// Two racks of three 100-point nodes.
    fn cluster() -> Cluster {
        ClusterBuilder::new()
            .homogeneous_racks(2, 3, ResourceCapacity::emulab_node(), 4)
            .build()
            .unwrap()
    }

    /// A topology whose `worker` bolt declares 10 CPU points per task
    /// but actually burns far more, so R-Storm co-locates all of them.
    fn drifting_topology() -> Topology {
        let mut b = TopologyBuilder::new("t");
        b.set_spout("spout", 1).set_cpu_load(20.0);
        b.set_bolt("worker", 4)
            .shuffle_grouping("spout")
            .set_cpu_load(10.0);
        b.set_bolt("sink", 1).shuffle_grouping("worker");
        b.build().unwrap()
    }

    fn schedule(topology: &Topology, cluster: &Cluster) -> (GlobalState, Assignment) {
        let mut state = GlobalState::new(cluster);
        let assignment = RStormScheduler::new()
            .schedule(topology, cluster, &mut state)
            .unwrap();
        (state, assignment)
    }

    fn drifted_report(
        topology: &Topology,
        assignment: &Assignment,
        observed_cpu: f64,
    ) -> (ProfileRefiner, DriftReport) {
        let mut refiner = ProfileRefiner::new(1.0);
        refiner.observe("t", "worker", 10.0, observed_cpu);
        // The node hosting the workers reports saturated; others idle.
        let hot = assignment.node_of(TaskId(1)).unwrap().clone();
        let utils = vec![(hot.as_str().to_owned(), 1.0)];
        let report = DriftDetector::new(DriftConfig::default()).detect(topology, &refiner, &utils);
        (refiner, report)
    }

    #[test]
    fn saturated_under_declared_tasks_spread_out() {
        let cluster = cluster();
        let topology = drifting_topology();
        let (mut state, assignment) = schedule(&topology, &cluster);
        let hot = assignment.node_of(TaskId(1)).unwrap().clone();
        // All four workers landed together (they fit by declared load).
        assert!((1..=4).all(|i| assignment.node_of(TaskId(i)) == Some(&hot)));

        let (refiner, report) = drifted_report(&topology, &assignment, 60.0);
        let plan = DeltaScheduler::new()
            .plan(
                &topology,
                &cluster,
                &mut state,
                &report,
                &refiner,
                &BTreeSet::new(),
            )
            .unwrap();
        assert!(!plan.is_empty());
        // Refined load on the hot node was 4×60 (+ colocated spout/sink);
        // shedding until it fits 100 points moves 3 workers, not all 4.
        assert_eq!(plan.len(), 3, "minimal moves, not a full reshuffle");
        for m in &plan.moves {
            assert_eq!(m.component, "worker");
            assert_eq!(m.from, hot);
            assert_ne!(m.to, hot);
            assert_eq!(plan.updated.node_of(m.task), Some(&m.to));
        }
        // The committed plan stays verifiable against the cluster.
        assert_eq!(state.plan().assignment("t").unwrap(), &plan.updated);
        assert!(verify_plan(state.plan(), &[&topology], &cluster).is_empty());
    }

    #[test]
    fn clean_report_leaves_state_bit_identical() {
        let cluster = cluster();
        let topology = drifting_topology();
        let (mut state, assignment) = schedule(&topology, &cluster);
        let before = format!("{state:?}");

        let refiner = ProfileRefiner::default();
        let report = DriftDetector::default().detect(&topology, &refiner, &[]);
        assert!(report.is_clean());
        let plan = DeltaScheduler::new()
            .plan(
                &topology,
                &cluster,
                &mut state,
                &report,
                &refiner,
                &BTreeSet::new(),
            )
            .unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.updated, assignment);
        assert_eq!(format!("{state:?}"), before, "empty plan touches nothing");
    }

    #[test]
    fn forbidden_and_dead_nodes_are_never_targets() {
        let cluster = cluster();
        let topology = drifting_topology();
        let (mut state, assignment) = schedule(&topology, &cluster);
        let hot = assignment.node_of(TaskId(1)).unwrap().clone();

        // Kill one node outright and forbid every other candidate except
        // one, so the only legal target is unambiguous.
        let all: Vec<NodeId> = state.cluster_index().node_ids().to_vec();
        let dead = all.iter().find(|n| **n != hot).unwrap().clone();
        state.handle_node_failure(dead.as_str());
        let allowed = all
            .iter()
            .find(|n| **n != hot && **n != dead)
            .unwrap()
            .clone();
        let forbidden: BTreeSet<NodeId> = all
            .iter()
            .filter(|n| **n != hot && **n != dead && **n != allowed)
            .cloned()
            .collect();

        let (refiner, report) = drifted_report(&topology, &assignment, 60.0);
        let plan = DeltaScheduler::new()
            .plan(
                &topology, &cluster, &mut state, &report, &refiner, &forbidden,
            )
            .unwrap();
        assert!(!plan.is_empty());
        for m in &plan.moves {
            assert_ne!(m.to, dead, "dead node must never be a target");
            assert!(!forbidden.contains(&m.to), "forbidden node chosen");
            assert_eq!(m.to, allowed);
        }
    }

    #[test]
    fn congested_rack_sheds_bandwidth_heavy_tasks_to_another_rack() {
        let cluster = cluster();
        // Accurate CPU declarations but heavy bandwidth demand: nothing
        // drifts, only the trunk congests.
        let mut b = TopologyBuilder::new("t");
        b.set_spout("spout", 1).set_cpu_load(10.0);
        b.set_bolt("pump", 4)
            .shuffle_grouping("spout")
            .set_cpu_load(10.0)
            .set_bandwidth_load(50.0);
        b.set_bolt("sink", 1).shuffle_grouping("pump");
        let topology = b.build().unwrap();
        let (mut state, assignment) = schedule(&topology, &cluster);
        let hot = assignment.node_of(TaskId(1)).unwrap().clone();
        let hot_rack = cluster.rack_of(hot.as_str()).unwrap().clone();

        let refiner = ProfileRefiner::default();
        let report = DriftDetector::default().detect_with_network(
            &topology,
            &refiner,
            &[],
            &[(hot_rack.as_str().to_owned(), 0.99)],
            &cluster,
        );
        assert!(report.drifted.is_empty());
        assert_eq!(report.congested_racks, vec![hot_rack.as_str().to_owned()]);

        let plan = DeltaScheduler::new()
            .plan(
                &topology,
                &cluster,
                &mut state,
                &report,
                &refiner,
                &BTreeSet::new(),
            )
            .unwrap();
        assert!(!plan.is_empty(), "congestion alone must trigger relief");
        for m in &plan.moves {
            let to_rack = cluster.rack_of(m.to.as_str()).unwrap();
            assert_ne!(to_rack, &hot_rack, "target must leave the congested rack");
            let bw = topology
                .component(&m.component)
                .unwrap()
                .resources()
                .bandwidth;
            assert!(bw > 0.0, "only bandwidth-demanding tasks shed");
        }
        // At least half the declared bandwidth load left each shedding node.
        let mut shed: BTreeMap<&NodeId, f64> = BTreeMap::new();
        for m in &plan.moves {
            *shed.entry(&m.from).or_default() += 50.0;
        }
        for (node, moved) in shed {
            let before: f64 = assignment
                .iter()
                .filter(|(_, slot)| slot.node == *node)
                .map(|(t, _)| topology.task_set().resources(t).unwrap().bandwidth)
                .sum();
            assert!(
                moved * 2.0 >= before,
                "{node:?} kept over half its bandwidth"
            );
        }
        assert!(verify_plan(state.plan(), &[&topology], &cluster).is_empty());
    }

    #[test]
    fn unscheduled_topology_is_a_typed_error() {
        let cluster = cluster();
        let topology = drifting_topology();
        let mut state = GlobalState::new(&cluster);
        let refiner = ProfileRefiner::default();
        let report = DriftDetector::default().detect(&topology, &refiner, &[]);
        let err = DeltaScheduler::new()
            .plan(
                &topology,
                &cluster,
                &mut state,
                &report,
                &refiner,
                &BTreeSet::new(),
            )
            .unwrap_err();
        assert!(matches!(err, ScheduleError::NotScheduled(t) if t.as_str() == "t"));
    }
}
