//! Detecting when declared resource loads no longer match reality.

use crate::adaptive::refiner::ProfileRefiner;
use rstorm_cluster::NodeId;
use rstorm_topology::{Topology, TopologyId};

/// Thresholds of the drift detector.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftConfig {
    /// Minimum relative divergence `|observed - declared| / max(declared,
    /// 1)` for a component to count as drifted.
    pub ratio_threshold: f64,
    /// Minimum absolute divergence in CPU points, so a 1-point component
    /// observing 2 points does not trip the relative threshold.
    pub min_cpu_points: f64,
    /// A node at or above this mean utilization is *saturated*: its
    /// tasks are CPU-starved and candidates for migration off it.
    pub saturated_utilization: f64,
    /// A used node at or below this mean utilization is *starved*
    /// (packed work it is not receiving): a preferred migration target.
    pub starved_utilization: f64,
    /// A rack whose uplink trunk runs at or above this mean utilization
    /// is *congested*: its nodes are excluded as migration targets and
    /// their bandwidth-heavy tasks become shed candidates (fed from the
    /// simulator's fair-plane telemetry, `SimReport::network`).
    pub congested_trunk_utilization: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            ratio_threshold: 0.5,
            min_cpu_points: 5.0,
            saturated_utilization: 0.9,
            starved_utilization: 0.15,
            congested_trunk_utilization: 0.9,
        }
    }
}

/// One component whose observed load diverged from its declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentDrift {
    /// The drifted component.
    pub component: String,
    /// Per-task CPU points the author declared.
    pub declared_cpu_points: f64,
    /// Per-task CPU points the refiner currently estimates.
    pub observed_cpu_points: f64,
    /// `observed / max(declared, 1)` — above 1 the component was
    /// under-declared, below 1 over-declared.
    pub ratio: f64,
}

/// Everything the detector found in one pass.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// The inspected topology.
    pub topology: TopologyId,
    /// Drifted components, sorted by component name.
    pub drifted: Vec<ComponentDrift>,
    /// Nodes running at or above the saturation threshold, in the input
    /// (name-sorted) order.
    pub saturated_nodes: Vec<NodeId>,
    /// Used nodes running at or below the starvation threshold, in the
    /// input (name-sorted) order.
    pub starved_nodes: Vec<NodeId>,
    /// Racks whose uplink trunk ran at or above the congestion threshold,
    /// in the input order. Empty unless the detector was fed network
    /// telemetry (see [`DriftDetector::detect_with_network`]).
    pub congested_racks: Vec<String>,
}

impl DriftReport {
    /// True when no component drifted and no trunk is congested — the
    /// delta scheduler will produce an empty migration plan for a clean
    /// report.
    pub fn is_clean(&self) -> bool {
        self.drifted.is_empty() && self.congested_racks.is_empty()
    }
}

/// Flags components whose observed load diverged from their declaration
/// and nodes that run saturated or starved, from the same per-node
/// utilization series the simulator's report carries (one source of
/// truth with the paper's Fig. 10 comparison).
#[derive(Debug, Clone, Default)]
pub struct DriftDetector {
    config: DriftConfig,
}

impl DriftDetector {
    /// Creates a detector with the given thresholds.
    pub fn new(config: DriftConfig) -> Self {
        Self { config }
    }

    /// The detector's thresholds.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Compares each component's refined estimate against its declared
    /// load and classifies `node_utilization` (fractions in `[0, 1]`,
    /// as in `SimReport::node_utilization`) into saturated and starved
    /// nodes.
    pub fn detect(
        &self,
        topology: &Topology,
        refiner: &ProfileRefiner,
        node_utilization: &[(String, f64)],
    ) -> DriftReport {
        let tname = topology.id().as_str();
        let mut drifted: Vec<ComponentDrift> = Vec::new();
        for component in topology.components() {
            let declared = component.resources().cpu_points;
            let Some(observed) = refiner.estimate(tname, component.id().as_str()) else {
                continue;
            };
            let divergence = (observed - declared).abs();
            if divergence < self.config.min_cpu_points {
                continue;
            }
            if divergence / declared.max(1.0) <= self.config.ratio_threshold {
                continue;
            }
            drifted.push(ComponentDrift {
                component: component.id().as_str().to_owned(),
                declared_cpu_points: declared,
                observed_cpu_points: observed,
                ratio: observed / declared.max(1.0),
            });
        }
        drifted.sort_by(|a, b| a.component.cmp(&b.component));

        let mut saturated_nodes = Vec::new();
        let mut starved_nodes = Vec::new();
        for (node, util) in node_utilization {
            if *util >= self.config.saturated_utilization {
                saturated_nodes.push(NodeId::new(node.as_str()));
            } else if *util <= self.config.starved_utilization {
                starved_nodes.push(NodeId::new(node.as_str()));
            }
        }

        DriftReport {
            topology: topology.id().clone(),
            drifted,
            saturated_nodes,
            starved_nodes,
            congested_racks: Vec::new(),
        }
    }

    /// [`Self::detect`] plus network awareness: racks whose uplink trunk
    /// utilization (from the simulator's fair-plane telemetry) is at or
    /// above [`DriftConfig::congested_trunk_utilization`] are reported
    /// congested, and every node of a congested rack is marked saturated —
    /// excluding it as a migration target and making its bandwidth-heavy
    /// tasks shed candidates, so the delta scheduler relieves the trunk.
    pub fn detect_with_network(
        &self,
        topology: &Topology,
        refiner: &ProfileRefiner,
        node_utilization: &[(String, f64)],
        trunk_utilization: &[(String, f64)],
        cluster: &rstorm_cluster::Cluster,
    ) -> DriftReport {
        let mut report = self.detect(topology, refiner, node_utilization);
        for (rack, util) in trunk_utilization {
            if *util >= self.config.congested_trunk_utilization {
                report.congested_racks.push(rack.clone());
            }
        }
        if !report.congested_racks.is_empty() {
            for node in cluster.nodes() {
                let Some(rack) = cluster.rack_of(node.id().as_str()) else {
                    continue;
                };
                if report
                    .congested_racks
                    .iter()
                    .any(|r| r.as_str() == rack.as_str())
                {
                    report.saturated_nodes.push(node.id().clone());
                }
            }
            report
                .saturated_nodes
                .sort_by(|a, b| a.as_str().cmp(b.as_str()));
            report.saturated_nodes.dedup();
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstorm_topology::TopologyBuilder;

    fn topology() -> Topology {
        let mut b = TopologyBuilder::new("t");
        b.set_spout("spout", 2).set_cpu_load(50.0);
        b.set_bolt("heavy", 2)
            .shuffle_grouping("spout")
            .set_cpu_load(10.0);
        b.set_bolt("light", 2)
            .shuffle_grouping("heavy")
            .set_cpu_load(10.0);
        b.build().unwrap()
    }

    #[test]
    fn under_declared_component_is_flagged() {
        let topology = topology();
        let mut refiner = ProfileRefiner::new(1.0);
        refiner.observe("t", "heavy", 10.0, 80.0);
        refiner.observe("t", "light", 10.0, 11.0); // within thresholds
        let report = DriftDetector::default().detect(&topology, &refiner, &[]);
        assert!(!report.is_clean());
        assert_eq!(report.drifted.len(), 1);
        let d = &report.drifted[0];
        assert_eq!(d.component, "heavy");
        assert_eq!(d.declared_cpu_points, 10.0);
        assert_eq!(d.observed_cpu_points, 80.0);
        assert_eq!(d.ratio, 8.0);
    }

    #[test]
    fn accurate_declarations_produce_a_clean_report() {
        let topology = topology();
        let mut refiner = ProfileRefiner::default();
        for c in ["spout", "heavy", "light"] {
            let declared = topology.component(c).unwrap().resources().cpu_points;
            refiner.observe("t", c, declared, declared);
        }
        let report = DriftDetector::default().detect(&topology, &refiner, &[]);
        assert!(report.is_clean());
        // Unobserved components never drift either.
        let empty = ProfileRefiner::default();
        assert!(DriftDetector::default()
            .detect(&topology, &empty, &[])
            .is_clean());
    }

    #[test]
    fn node_utilization_classifies_saturated_and_starved() {
        let topology = topology();
        let refiner = ProfileRefiner::default();
        let utils = vec![
            ("n0".to_owned(), 0.97),
            ("n1".to_owned(), 0.5),
            ("n2".to_owned(), 0.05),
        ];
        let report = DriftDetector::default().detect(&topology, &refiner, &utils);
        assert_eq!(report.saturated_nodes, vec![NodeId::new("n0")]);
        assert_eq!(report.starved_nodes, vec![NodeId::new("n2")]);
    }

    #[test]
    fn congested_trunks_saturate_their_racks_nodes() {
        let topology = topology();
        let refiner = ProfileRefiner::default();
        let cluster = rstorm_cluster::ClusterBuilder::new()
            .homogeneous_racks(2, 2, rstorm_cluster::ResourceCapacity::emulab_node(), 2)
            .build()
            .unwrap();
        let trunks = vec![("rack-0".to_owned(), 0.96), ("rack-1".to_owned(), 0.3)];
        let report = DriftDetector::default().detect_with_network(
            &topology,
            &refiner,
            &[],
            &trunks,
            &cluster,
        );
        assert!(!report.is_clean());
        assert_eq!(report.congested_racks, vec!["rack-0".to_owned()]);
        assert_eq!(
            report.saturated_nodes,
            vec![NodeId::new("rack-0-node-0"), NodeId::new("rack-0-node-1"),]
        );
        // Idle trunks leave the report exactly as plain detect() built it.
        let calm = DriftDetector::default().detect_with_network(
            &topology,
            &refiner,
            &[],
            &[("rack-0".to_owned(), 0.2)],
            &cluster,
        );
        assert_eq!(
            calm,
            DriftDetector::default().detect(&topology, &refiner, &[])
        );
    }

    #[test]
    fn congestion_saturation_merges_with_cpu_saturation() {
        let topology = topology();
        let refiner = ProfileRefiner::default();
        let cluster = rstorm_cluster::ClusterBuilder::new()
            .homogeneous_racks(2, 2, rstorm_cluster::ResourceCapacity::emulab_node(), 2)
            .build()
            .unwrap();
        // rack-0-node-1 is already CPU-saturated; congestion on rack-0 must
        // not duplicate it and keeps the list name-sorted.
        let utils = vec![("rack-0-node-1".to_owned(), 0.97)];
        let report = DriftDetector::default().detect_with_network(
            &topology,
            &refiner,
            &utils,
            &[("rack-0".to_owned(), 0.9)],
            &cluster,
        );
        assert_eq!(
            report.saturated_nodes,
            vec![NodeId::new("rack-0-node-0"), NodeId::new("rack-0-node-1"),]
        );
    }

    #[test]
    fn small_absolute_drift_is_ignored() {
        let mut b = TopologyBuilder::new("t");
        b.set_spout("spout", 2).set_cpu_load(50.0);
        b.set_bolt("heavy", 2)
            .shuffle_grouping("spout")
            .set_cpu_load(1.0);
        let topology = b.build().unwrap();
        let mut refiner = ProfileRefiner::new(1.0);
        // 300% relative drift but under the 5-point absolute floor.
        refiner.observe("t", "heavy", 1.0, 4.0);
        let report = DriftDetector::default().detect(&topology, &refiner, &[]);
        assert!(report.is_clean());
    }
}
