//! EWMA blending of observed against declared resource loads.

use rstorm_topology::ResourceRequest;
use std::collections::BTreeMap;

/// Maintains, per `(topology, component)`, an exponentially weighted
/// moving average of the *observed* per-task CPU load, seeded from the
/// *declared* load so an unobserved component is trusted as declared.
///
/// The estimate converges toward what the stats-export hook actually
/// measured while damping single-window noise: with smoothing factor
/// `alpha`, each observation contributes `alpha` of itself and keeps
/// `1 - alpha` of the history (whose oldest term is the declaration).
#[derive(Debug, Clone)]
pub struct ProfileRefiner {
    alpha: f64,
    /// (topology, component) -> blended observed CPU points per task.
    blended: BTreeMap<(String, String), f64>,
}

impl ProfileRefiner {
    /// Default smoothing factor: observations dominate after a few
    /// windows but one outlier window cannot flip the estimate.
    pub const DEFAULT_ALPHA: f64 = 0.5;

    /// Creates a refiner with smoothing factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < alpha <= 1.0`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA smoothing factor must be in (0, 1], got {alpha}"
        );
        Self {
            alpha,
            blended: BTreeMap::new(),
        }
    }

    /// Feeds one observation of a component's per-task CPU load (in the
    /// paper's points; 100 = one core). The first observation blends
    /// against the declared load; later ones against the running
    /// estimate. Returns the updated estimate.
    pub fn observe(
        &mut self,
        topology: &str,
        component: &str,
        declared_cpu_points: f64,
        observed_cpu_points: f64,
    ) -> f64 {
        let key = (topology.to_owned(), component.to_owned());
        let prior = *self.blended.get(&key).unwrap_or(&declared_cpu_points);
        let blended = self.alpha * observed_cpu_points + (1.0 - self.alpha) * prior;
        self.blended.insert(key, blended);
        blended
    }

    /// The current blended estimate of a component's per-task CPU load,
    /// or `None` if the component was never observed.
    pub fn estimate(&self, topology: &str, component: &str) -> Option<f64> {
        self.blended
            .get(&(topology.to_owned(), component.to_owned()))
            .copied()
    }

    /// The declared request with its CPU dimension replaced by the
    /// blended estimate (when one exists). Memory stays declared —
    /// memory is the hard constraint and the simulator does not observe
    /// it — as does bandwidth.
    pub fn refined_request(
        &self,
        topology: &str,
        component: &str,
        declared: &ResourceRequest,
    ) -> ResourceRequest {
        match self.estimate(topology, component) {
            Some(cpu) => ResourceRequest {
                cpu_points: cpu.max(0.0),
                memory_mb: declared.memory_mb,
                bandwidth: declared.bandwidth,
            },
            None => *declared,
        }
    }

    /// Number of `(topology, component)` pairs with an estimate.
    pub fn len(&self) -> usize {
        self.blended.len()
    }

    /// True if nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.blended.is_empty()
    }
}

impl Default for ProfileRefiner {
    fn default() -> Self {
        Self::new(Self::DEFAULT_ALPHA)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_blends_against_declaration() {
        let mut r = ProfileRefiner::new(0.5);
        assert!(r.is_empty());
        // Declared 20 points, observed 100: first estimate is halfway.
        assert_eq!(r.observe("t", "bolt", 20.0, 100.0), 60.0);
        // Second identical observation pulls further toward observed.
        assert_eq!(r.observe("t", "bolt", 20.0, 100.0), 80.0);
        assert_eq!(r.estimate("t", "bolt"), Some(80.0));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn refined_request_overrides_only_cpu() {
        let mut r = ProfileRefiner::new(1.0);
        let declared = ResourceRequest::new(10.0, 512.0, 3.0);
        // Unobserved: declared passes through untouched.
        assert_eq!(r.refined_request("t", "bolt", &declared), declared);
        r.observe("t", "bolt", 10.0, 90.0);
        let refined = r.refined_request("t", "bolt", &declared);
        assert_eq!(refined.cpu_points, 90.0);
        assert_eq!(refined.memory_mb, 512.0);
        assert_eq!(refined.bandwidth, 3.0);
    }

    #[test]
    fn accurate_declarations_stay_fixed() {
        let mut r = ProfileRefiner::default();
        for _ in 0..10 {
            r.observe("t", "spout", 50.0, 50.0);
        }
        assert_eq!(r.estimate("t", "spout"), Some(50.0));
    }

    #[test]
    #[should_panic(expected = "smoothing factor")]
    fn zero_alpha_rejected() {
        ProfileRefiner::new(0.0);
    }
}
