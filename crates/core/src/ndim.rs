//! The paper's n-dimensional generalization of the resource model.
//!
//! §4 notes that the 3-dimensional formulation "can easily be generalized
//! to model the resource availability of a node and the resource demand
//! of a specific task as a n-dimensional vector residing in Rⁿ", with a
//! weight per soft constraint so "values can be normalized for comparison,
//! as well as for allowing users to decide which constraints are more
//! valued". This module implements that generalization faithfully:
//!
//! * [`ResourceSpace`] — the schema: named dimensions, each *hard* (must
//!   never be over-committed: memory, GPU memory, disk) or *soft* (may be
//!   overloaded at a performance cost: CPU, disk IOPS, ...), each with a
//!   weight and a normalization scale;
//! * [`ResourceVector`] — a point in that space (a demand or an
//!   availability);
//! * [`ResourceSpace::distance`] — the weighted Euclidean metric of
//!   Algorithm 4 lifted to Rⁿ (the network-distance term stays separate,
//!   exactly as in the 3-D scheduler).
//!
//! The production scheduler ([`crate::RStormScheduler`]) keeps the
//! concrete 3-D fast path; this module is the documented, tested
//! extension point for deployments tracking more resources, and
//! [`ResourceSpace::select_node`] shows the full n-dimensional node
//! selection working end to end.

use std::fmt;

/// Whether over-committing a dimension is fatal or merely slow (§3's
/// hard/soft constraint distinction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintKind {
    /// Must be satisfied in full; a placement may never exceed it.
    Hard,
    /// May be overloaded; the scheduler only minimizes the violation.
    Soft,
}

/// One named resource dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct Dimension {
    /// Human-readable name ("memory_mb", "cpu_points", "gpu_mem_mb", ...).
    pub name: String,
    /// Hard or soft.
    pub kind: ConstraintKind,
    /// Weight in the distance metric (soft dimensions; a hard dimension's
    /// weight also participates, matching Algorithm 4 where the memory
    /// term is part of the distance even though memory is hard).
    pub weight: f64,
    /// Normalization scale: the typical largest value of this dimension
    /// in the cluster, bringing all dimensions to comparable magnitude.
    pub scale: f64,
}

impl Dimension {
    /// Creates a dimension.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or `scale` is not strictly positive.
    pub fn new(name: impl Into<String>, kind: ConstraintKind, weight: f64, scale: f64) -> Self {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weight must be finite and non-negative, got {weight}"
        );
        assert!(
            scale.is_finite() && scale > 0.0,
            "scale must be finite and positive, got {scale}"
        );
        Self {
            name: name.into(),
            kind,
            weight,
            scale,
        }
    }
}

/// The schema of an n-dimensional resource model.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceSpace {
    dimensions: Vec<Dimension>,
}

impl ResourceSpace {
    /// Creates a space from its dimensions.
    ///
    /// # Panics
    ///
    /// Panics if no dimension is given or names repeat.
    pub fn new(dimensions: Vec<Dimension>) -> Self {
        assert!(!dimensions.is_empty(), "a resource space needs dimensions");
        for (i, d) in dimensions.iter().enumerate() {
            assert!(
                !dimensions[..i].iter().any(|e| e.name == d.name),
                "duplicate dimension `{}`",
                d.name
            );
        }
        Self { dimensions }
    }

    /// The paper's 3-dimensional space: memory (hard), CPU and bandwidth
    /// (soft), normalized for an Emulab-like cluster.
    pub fn storm_default() -> Self {
        Self::new(vec![
            Dimension::new("memory_mb", ConstraintKind::Hard, 1.0, 2048.0),
            Dimension::new("cpu_points", ConstraintKind::Soft, 1.0, 100.0),
            Dimension::new("bandwidth", ConstraintKind::Soft, 1.0, 100.0),
        ])
    }

    /// The dimensions, in declaration order.
    pub fn dimensions(&self) -> &[Dimension] {
        &self.dimensions
    }

    /// Number of dimensions (the paper's *n*).
    pub fn len(&self) -> usize {
        self.dimensions.len()
    }

    /// True if the space has no dimensions (never — construction forbids
    /// it — but conventional alongside `len`).
    pub fn is_empty(&self) -> bool {
        self.dimensions.is_empty()
    }

    /// Creates a vector in this space.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the dimension count, or a
    /// value is negative or not finite.
    pub fn vector(&self, values: impl Into<Vec<f64>>) -> ResourceVector {
        let values = values.into();
        assert_eq!(
            values.len(),
            self.dimensions.len(),
            "expected {} values, got {}",
            self.dimensions.len(),
            values.len()
        );
        for (d, v) in self.dimensions.iter().zip(&values) {
            assert!(
                v.is_finite() && *v >= 0.0,
                "dimension `{}` must be finite and non-negative, got {v}",
                d.name
            );
        }
        ResourceVector { values }
    }

    /// True if `available` can hold `demand` without violating any hard
    /// dimension — the generalized `H_θ ≥ H_τ` check of Algorithm 4.
    pub fn satisfies_hard(&self, demand: &ResourceVector, available: &ResourceVector) -> bool {
        self.dimensions
            .iter()
            .zip(demand.values.iter().zip(&available.values))
            .all(|(d, (dv, av))| d.kind != ConstraintKind::Hard || av >= dv)
    }

    /// Algorithm 4's distance lifted to Rⁿ:
    /// `sqrt(Σ_i w_i·((demand_i − available_i)/scale_i)² + w_net·netdist²)`.
    pub fn distance(
        &self,
        demand: &ResourceVector,
        available: &ResourceVector,
        network_distance: f64,
        network_weight: f64,
    ) -> f64 {
        let mut sum = 0.0;
        for (d, (dv, av)) in self
            .dimensions
            .iter()
            .zip(demand.values.iter().zip(&available.values))
        {
            let delta = (dv - av) / d.scale;
            sum += d.weight * delta * delta;
        }
        sum += network_weight * network_distance * network_distance;
        sum.sqrt()
    }

    /// Full n-dimensional node selection: among `nodes` (name,
    /// availability, network distance from the reference node), pick the
    /// one closest to `demand` that satisfies every hard constraint —
    /// preferring, as the production scheduler does, nodes that also
    /// satisfy all soft constraints, and relaxing to soft-violating nodes
    /// only when none exists. Ties break toward the earlier node.
    pub fn select_node<'a>(
        &self,
        demand: &ResourceVector,
        nodes: &'a [(String, ResourceVector, f64)],
        network_weight: f64,
    ) -> Option<&'a str> {
        let mut best: Option<(f64, &str)> = None;
        let mut best_relaxed: Option<(f64, &str)> = None;
        for (name, available, netdist) in nodes {
            if !self.satisfies_hard(demand, available) {
                continue;
            }
            let d = self.distance(demand, available, *netdist, network_weight);
            let soft_ok = self
                .dimensions
                .iter()
                .zip(demand.values.iter().zip(&available.values))
                .all(|(dim, (dv, av))| dim.kind != ConstraintKind::Soft || av >= dv);
            if soft_ok && best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, name));
            }
            if best_relaxed.is_none_or(|(bd, _)| d < bd) {
                best_relaxed = Some((d, name));
            }
        }
        best.or(best_relaxed).map(|(_, n)| n)
    }
}

/// A point in a [`ResourceSpace`]: a task's demand or a node's
/// availability.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceVector {
    values: Vec<f64>,
}

impl ResourceVector {
    /// The raw values, in the space's dimension order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Component-wise subtraction. Saturating/soft-constraint semantics
    /// are the caller's concern; this is plain vector arithmetic.
    pub fn minus(&self, other: &ResourceVector) -> ResourceVector {
        assert_eq!(self.values.len(), other.values.len(), "dimension mismatch");
        ResourceVector {
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}]",
            self.values
                .iter()
                .map(|v| format!("{v:.1}"))
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu_space() -> ResourceSpace {
        // A 4-dimensional deployment: memory and GPU memory hard, CPU and
        // disk IOPS soft.
        ResourceSpace::new(vec![
            Dimension::new("memory_mb", ConstraintKind::Hard, 1.0, 4096.0),
            Dimension::new("gpu_mem_mb", ConstraintKind::Hard, 1.0, 16384.0),
            Dimension::new("cpu_points", ConstraintKind::Soft, 1.0, 400.0),
            Dimension::new("disk_iops", ConstraintKind::Soft, 0.5, 10_000.0),
        ])
    }

    #[test]
    fn storm_default_matches_the_paper() {
        let s = ResourceSpace::storm_default();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.dimensions()[0].kind, ConstraintKind::Hard);
        assert_eq!(s.dimensions()[1].kind, ConstraintKind::Soft);
    }

    #[test]
    fn hard_constraints_checked_per_dimension() {
        let s = gpu_space();
        let demand = s.vector(vec![1024.0, 8192.0, 100.0, 500.0]);
        let fits = s.vector(vec![2048.0, 8192.0, 50.0, 100.0]);
        let no_gpu = s.vector(vec![8192.0, 4096.0, 400.0, 9000.0]);
        assert!(s.satisfies_hard(&demand, &fits), "soft shortfall is fine");
        assert!(!s.satisfies_hard(&demand, &no_gpu), "hard GPU shortfall");
    }

    #[test]
    fn distance_matches_hand_computation() {
        let s = ResourceSpace::new(vec![
            Dimension::new("a", ConstraintKind::Soft, 1.0, 1.0),
            Dimension::new("b", ConstraintKind::Soft, 4.0, 1.0),
        ]);
        let demand = s.vector(vec![2.0, 3.0]);
        let avail = s.vector(vec![1.0, 1.0]);
        // sqrt(1·1² + 4·2² + 1·2²) = sqrt(21)
        let d = s.distance(&demand, &avail, 2.0, 1.0);
        assert!((d - 21.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn select_node_prefers_fit_then_relaxes() {
        let s = gpu_space();
        let demand = s.vector(vec![1024.0, 4096.0, 200.0, 1000.0]);
        let nodes = vec![
            // Violates hard GPU memory: never eligible.
            (
                "no-gpu".to_owned(),
                s.vector(vec![8192.0, 2048.0, 400.0, 9000.0]),
                0.0,
            ),
            // Satisfies everything but is far away.
            (
                "far".to_owned(),
                s.vector(vec![2048.0, 8192.0, 400.0, 5000.0]),
                5.0,
            ),
            // Soft CPU shortfall, but perfectly close.
            (
                "tight".to_owned(),
                s.vector(vec![2048.0, 8192.0, 100.0, 5000.0]),
                0.0,
            ),
        ];
        // First pass prefers the soft-satisfying node despite distance.
        assert_eq!(s.select_node(&demand, &nodes, 1.0), Some("far"));
        // With only soft-violating candidates, selection relaxes.
        let only_tight = &nodes[2..];
        assert_eq!(s.select_node(&demand, only_tight, 1.0), Some("tight"));
        // With only hard-violating candidates, there is no node.
        let only_bad = &nodes[..1];
        assert_eq!(s.select_node(&demand, only_bad, 1.0), None);
    }

    #[test]
    fn vector_arithmetic_and_display() {
        let s = ResourceSpace::storm_default();
        let a = s.vector(vec![1024.0, 50.0, 10.0]);
        let b = s.vector(vec![24.0, 20.0, 10.0]);
        let d = a.minus(&b);
        assert_eq!(d.values(), &[1000.0, 30.0, 0.0]);
        assert_eq!(a.to_string(), "[1024.0, 50.0, 10.0]");
    }

    #[test]
    #[should_panic(expected = "expected 3 values")]
    fn arity_mismatch_rejected() {
        ResourceSpace::storm_default().vector(vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "duplicate dimension")]
    fn duplicate_dimensions_rejected() {
        ResourceSpace::new(vec![
            Dimension::new("x", ConstraintKind::Soft, 1.0, 1.0),
            Dimension::new("x", ConstraintKind::Hard, 1.0, 1.0),
        ]);
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn zero_scale_rejected() {
        Dimension::new("x", ConstraintKind::Soft, 1.0, 0.0);
    }

    #[test]
    fn three_dim_space_agrees_with_the_concrete_metric() {
        // The generalized metric must coincide with the scheduler's
        // concrete 3-D distance for matching weights and scales.
        use crate::resource::{weighted_euclidean, NormalizationContext, SoftConstraintWeights};
        let s = ResourceSpace::new(vec![
            Dimension::new("memory_mb", ConstraintKind::Hard, 1.0, 2048.0),
            Dimension::new("cpu_points", ConstraintKind::Soft, 1.0, 100.0),
        ]);
        let demand = s.vector(vec![512.0, 30.0]);
        let avail = s.vector(vec![1024.0, 80.0]);
        let generalized = s.distance(&demand, &avail, 1.0 / 5.0, 10.0);

        let concrete = weighted_euclidean(
            &SoftConstraintWeights::new(1.0, 1.0, 10.0),
            &NormalizationContext {
                max_memory_mb: 2048.0,
                max_cpu_points: 100.0,
                max_network_distance: 5.0,
            },
            512.0,
            30.0,
            1024.0,
            80.0,
            1.0,
        );
        assert!((generalized - concrete).abs() < 1e-12);
    }
}
