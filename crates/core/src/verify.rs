//! Assignment validation: checks a scheduling plan against the invariants
//! the paper requires (used heavily by tests and property tests).
//!
//! Invariants checked:
//!
//! 1. every task of every topology is placed exactly once (no missing or
//!    phantom tasks) — unless the assignment *explicitly* declares the
//!    task unplaced (degraded mode after a failure; see
//!    [`crate::assignment::Assignment::unplaced`]). A task that is
//!    silently absent — neither placed nor declared — is still a
//!    [`Violation::UnplacedTask`],
//! 2. every slot refers to an existing, alive node and a real port,
//! 3. no node's **memory** (the hard constraint) is over-committed by the
//!    sum of its placed tasks' demands. Degraded assignments get no
//!    exemption here: declared-unplaced tasks reserve nothing, and what
//!    *is* placed must still fit.
//!
//! Note that a valid plan from the resource-oblivious baselines may well
//! violate (3) — that is the paper's point — so verification returns the
//! list of violations rather than panicking.

use crate::assignment::SchedulingPlan;
use rstorm_cluster::Cluster;
use rstorm_topology::{TaskId, Topology, TopologyId};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A violated scheduling invariant.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Violation {
    /// A topology in the plan has no matching `Topology` description.
    UnknownTopology(TopologyId),
    /// A topology was expected in the plan but has no assignment.
    MissingAssignment(TopologyId),
    /// A task of the topology is absent from its assignment.
    UnplacedTask(TopologyId, TaskId),
    /// The assignment mentions a task the topology does not have.
    PhantomTask(TopologyId, TaskId),
    /// A task was placed on a node that does not exist or is dead.
    BadNode(TopologyId, TaskId, String),
    /// A task was placed on a port its node does not offer.
    BadPort(TopologyId, TaskId, String, u16),
    /// A node's memory is over-committed (hard-constraint violation).
    MemoryOvercommit {
        /// The over-committed node.
        node: String,
        /// Total memory demanded by tasks placed there, in MB.
        demanded_mb: f64,
        /// The node's memory capacity in MB.
        capacity_mb: f64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownTopology(t) => write!(f, "plan schedules unknown topology `{t}`"),
            Self::MissingAssignment(t) => write!(f, "topology `{t}` has no assignment"),
            Self::UnplacedTask(t, task) => write!(f, "`{t}`: {task} is not placed"),
            Self::PhantomTask(t, task) => write!(f, "`{t}`: {task} does not exist"),
            Self::BadNode(t, task, node) => {
                write!(f, "`{t}`: {task} placed on missing/dead node `{node}`")
            }
            Self::BadPort(t, task, node, port) => {
                write!(
                    f,
                    "`{t}`: {task} placed on `{node}:{port}` which is not a slot"
                )
            }
            Self::MemoryOvercommit {
                node,
                demanded_mb,
                capacity_mb,
            } => write!(
                f,
                "node `{node}` memory over-committed: {demanded_mb} MB demanded, \
                 {capacity_mb} MB available"
            ),
        }
    }
}

/// Verifies `plan` against the given topologies and cluster, returning
/// every violation found (empty = valid).
pub fn verify_plan(
    plan: &SchedulingPlan,
    topologies: &[&Topology],
    cluster: &Cluster,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let by_id: HashMap<&str, &Topology> =
        topologies.iter().map(|t| (t.id().as_str(), *t)).collect();

    for topology in topologies {
        if plan.assignment(topology.id().as_str()).is_none() {
            violations.push(Violation::MissingAssignment(topology.id().clone()));
        }
    }

    let mut node_memory_demand: BTreeMap<String, f64> = BTreeMap::new();

    for assignment in plan.iter() {
        let tid = assignment.topology().clone();
        let Some(topology) = by_id.get(tid.as_str()) else {
            violations.push(Violation::UnknownTopology(tid));
            continue;
        };
        let task_set = topology.task_set();

        for task in task_set.tasks() {
            if assignment.slot_of(task.id).is_none() && !assignment.unplaced().contains(&task.id) {
                violations.push(Violation::UnplacedTask(tid.clone(), task.id));
            }
        }
        for task_id in assignment.unplaced() {
            if task_set.resources(*task_id).is_none() {
                violations.push(Violation::PhantomTask(tid.clone(), *task_id));
            }
        }

        for (task_id, slot) in assignment.iter() {
            let Some(request) = task_set.resources(task_id) else {
                violations.push(Violation::PhantomTask(tid.clone(), task_id));
                continue;
            };
            let node_name = slot.node.as_str();
            match cluster.node(node_name) {
                Some(node) if cluster.is_alive(node_name) => {
                    if !node.slots().iter().any(|s| s.port == slot.port) {
                        violations.push(Violation::BadPort(
                            tid.clone(),
                            task_id,
                            node_name.to_owned(),
                            slot.port,
                        ));
                    }
                    *node_memory_demand
                        .entry(node_name.to_owned())
                        .or_insert(0.0) += request.memory_mb;
                }
                _ => {
                    violations.push(Violation::BadNode(
                        tid.clone(),
                        task_id,
                        node_name.to_owned(),
                    ));
                }
            }
        }
    }

    for (node, demanded_mb) in node_memory_demand {
        let capacity_mb = cluster
            .node(&node)
            .map(|n| n.capacity().memory_mb)
            .unwrap_or(0.0);
        if demanded_mb > capacity_mb + 1e-9 {
            violations.push(Violation::MemoryOvercommit {
                node,
                demanded_mb,
                capacity_mb,
            });
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::Assignment;
    use crate::global_state::GlobalState;
    use crate::rstorm::RStormScheduler;
    use crate::scheduler::{schedule_all, Scheduler};
    use crate::schedulers::EvenScheduler;
    use rstorm_cluster::{ClusterBuilder, ResourceCapacity, WorkerSlot};
    use rstorm_topology::TopologyBuilder;

    fn cluster() -> Cluster {
        ClusterBuilder::new()
            .homogeneous_racks(2, 3, ResourceCapacity::emulab_node(), 4)
            .build()
            .unwrap()
    }

    fn topology(mem: f64) -> Topology {
        let mut b = TopologyBuilder::new("t");
        b.set_spout("s", 4).set_memory_load(mem);
        b.set_bolt("b", 4)
            .shuffle_grouping("s")
            .set_memory_load(mem);
        b.build().unwrap()
    }

    #[test]
    fn rstorm_plans_are_clean() {
        let c = cluster();
        let t = topology(400.0);
        let plan = schedule_all(&RStormScheduler::new(), &[&t], &c).unwrap();
        assert!(verify_plan(&plan, &[&t], &c).is_empty());
    }

    #[test]
    fn even_scheduler_can_overcommit_memory() {
        // 8 tasks × 1500 MB over 6 × 2048 MB nodes: somebody gets two.
        let c = cluster();
        let t = topology(1500.0);
        let plan = schedule_all(&EvenScheduler::new(), &[&t], &c).unwrap();
        let violations = verify_plan(&plan, &[&t], &c);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::MemoryOvercommit { .. })),
            "expected over-commit, got {violations:?}"
        );
    }

    #[test]
    fn missing_and_phantom_tasks_detected() {
        let c = cluster();
        let t = topology(64.0);
        let mut plan = SchedulingPlan::new();
        let mut m = BTreeMap::new();
        // Place only task 0 plus a task id the topology lacks.
        m.insert(TaskId(0), WorkerSlot::new("rack-0-node-0", 6700));
        m.insert(TaskId(99), WorkerSlot::new("rack-0-node-0", 6700));
        plan.insert(Assignment::new("t", m));
        let violations = verify_plan(&plan, &[&t], &c);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::UnplacedTask(_, TaskId(1)))));
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::PhantomTask(_, TaskId(99)))));
    }

    #[test]
    fn dead_nodes_and_bad_ports_detected() {
        let mut c = cluster();
        let t = topology(64.0);
        let mut state = GlobalState::new(&c);
        let plan = {
            RStormScheduler::new().schedule(&t, &c, &mut state).unwrap();
            state.plan().clone()
        };
        // Kill a node the plan uses.
        let victim = plan
            .assignment("t")
            .unwrap()
            .used_nodes()
            .iter()
            .next()
            .unwrap()
            .clone();
        c.kill_node(victim.as_str());
        let violations = verify_plan(&plan, &[&t], &c);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::BadNode(_, _, _))));

        // Bad port.
        let c = cluster();
        let mut m = BTreeMap::new();
        for task in t.task_set().tasks() {
            m.insert(task.id, WorkerSlot::new("rack-0-node-0", 9999));
        }
        let mut plan = SchedulingPlan::new();
        plan.insert(Assignment::new("t", m));
        let violations = verify_plan(&plan, &[&t], &c);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::BadPort(_, _, _, 9999))));
    }

    #[test]
    fn unknown_and_missing_topologies_detected() {
        let c = cluster();
        let t = topology(64.0);
        let mut plan = SchedulingPlan::new();
        plan.insert(Assignment::new("ghost", BTreeMap::new()));
        let violations = verify_plan(&plan, &[&t], &c);
        assert!(violations.contains(&Violation::UnknownTopology(TopologyId::new("ghost"))));
        assert!(violations.contains(&Violation::MissingAssignment(TopologyId::new("t"))));
    }

    #[test]
    fn declared_unplaced_tasks_are_exempt_but_silent_gaps_are_not() {
        let c = cluster();
        let t = topology(64.0);
        // Place tasks 0-5, declare 6 unplaced, and say nothing about 7:
        // only the silent gap is a violation.
        let mut m = BTreeMap::new();
        for task in t.task_set().tasks().iter().take(6) {
            m.insert(task.id, WorkerSlot::new("rack-0-node-0", 6700));
        }
        let mut unplaced = std::collections::BTreeSet::new();
        unplaced.insert(TaskId(6));
        let mut plan = SchedulingPlan::new();
        plan.insert(Assignment::with_unplaced("t", m, unplaced));
        let violations = verify_plan(&plan, &[&t], &c);
        assert!(
            !violations
                .iter()
                .any(|v| matches!(v, Violation::UnplacedTask(_, TaskId(6)))),
            "declared-unplaced task must be exempt, got {violations:?}"
        );
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::UnplacedTask(_, TaskId(7)))),
            "silently missing task must still be flagged, got {violations:?}"
        );
    }

    #[test]
    fn degraded_assignments_still_face_the_memory_hard_constraint() {
        let c = cluster();
        let t = topology(1500.0); // 8 × 1500 MB on 2048 MB nodes
        let task_set = t.task_set();
        // Cram tasks 0-3 onto one node (6000 MB demanded) and declare the
        // rest unplaced: degraded mode must not excuse the over-commit.
        let mut m = BTreeMap::new();
        let mut unplaced = std::collections::BTreeSet::new();
        for task in task_set.tasks() {
            if task.id.0 < 4 {
                m.insert(task.id, WorkerSlot::new("rack-0-node-0", 6700));
            } else {
                unplaced.insert(task.id);
            }
        }
        let mut plan = SchedulingPlan::new();
        plan.insert(Assignment::with_unplaced("t", m, unplaced));
        let violations = verify_plan(&plan, &[&t], &c);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::MemoryOvercommit { .. })),
            "expected over-commit, got {violations:?}"
        );
        // A declared-unplaced id the topology lacks is a phantom.
        let mut ghost = std::collections::BTreeSet::new();
        ghost.insert(TaskId(99));
        let mut plan = SchedulingPlan::new();
        plan.insert(Assignment::with_unplaced("t", BTreeMap::new(), ghost));
        let violations = verify_plan(&plan, &[&t], &c);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::PhantomTask(_, TaskId(99)))));
    }

    #[test]
    fn violation_display() {
        let v = Violation::MemoryOvercommit {
            node: "n".into(),
            demanded_mb: 3000.0,
            capacity_mb: 2048.0,
        };
        assert!(v.to_string().contains("over-committed"));
    }

    use rstorm_topology::TopologyId;
    use std::collections::BTreeMap;
}
