//! `GlobalState`: scheduling and resource bookkeeping across invocations.
//!
//! Mirrors the paper's module of the same name (§5.1): "stores important
//! state information regarding the scheduling and resource availability of
//! a Storm Cluster ... where each task is placed in the cluster ... all
//! the resource availability information of physical machines and the
//! resource demand information of all tasks." Storm's Nimbus is stateless
//! between scheduler invocations, so this state is owned by the embedding
//! application and passed to every [`crate::Scheduler::schedule`] call.
//!
//! ## Representation
//!
//! Remaining resources live in a dense `Vec` keyed by the cluster's
//! [`ClusterIndex`] node indices (sorted-id order), with a parallel
//! liveness vector. The string-keyed API (`remaining`, `iter_remaining`,
//! `reserve`, ...) is preserved on top and behaves exactly like the
//! previous `BTreeMap` representation: iteration is in node-id order and
//! dead nodes are invisible.
//!
//! Per-rack aggregates (abundance sum, max remaining memory, alive count)
//! are maintained on every mutation so the R-Storm node-selection fast
//! path can pick reference racks and skip memory-infeasible racks without
//! re-scanning every node. Aggregates are *recomputed* over the affected
//! rack in node declaration order — never incrementally adjusted — so
//! they stay bit-identical to a from-scratch scan (incremental float
//! add/subtract would drift).

use crate::assignment::{Assignment, SchedulingPlan};
use crate::error::ScheduleError;
use rstorm_cluster::{Cluster, ClusterIndex, NodeId, WorkerSlot};
use rstorm_topology::{ResourceRequest, Topology, TopologyId};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// A node's remaining (unreserved) resources.
///
/// Soft dimensions (CPU, bandwidth) may go negative when a
/// non-resource-aware scheduler (or an explicitly over-subscribed
/// reservation) overloads a node; memory is the hard dimension and is
/// kept non-negative by the checked reservation path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemainingResources {
    /// Remaining CPU points (may go negative under overload).
    pub cpu_points: f64,
    /// Remaining memory in MB (non-negative on the checked path).
    pub memory_mb: f64,
    /// Remaining bandwidth units (may go negative under overload).
    pub bandwidth: f64,
}

impl RemainingResources {
    fn subtract(&mut self, r: &ResourceRequest) {
        self.cpu_points -= r.cpu_points;
        self.memory_mb -= r.memory_mb;
        self.bandwidth -= r.bandwidth;
    }

    fn add(&mut self, r: &ResourceRequest) {
        self.cpu_points += r.cpu_points;
        self.memory_mb += r.memory_mb;
        self.bandwidth += r.bandwidth;
    }

    /// A "more resources" ordering key used by Algorithm 4's
    /// `findServerRackWithMostResources` / `findNodeWithMostResources`:
    /// the normalized sum of remaining CPU and memory.
    pub fn abundance(&self, max_cpu: f64, max_memory: f64) -> f64 {
        self.cpu_points / max_cpu.max(1e-9) + self.memory_mb / max_memory.max(1e-9)
    }
}

/// A reversible record of the mutations one scheduling attempt made to a
/// [`GlobalState`], so a failed attempt can be rejected in O(tasks placed)
/// instead of cloning the whole state up front (O(cluster) per call).
///
/// Entries store the exact previous values and are replayed in reverse by
/// [`GlobalState::rollback`], restoring the state bit-for-bit — inverse
/// arithmetic (`(x - a) + a`) would not, in floating point.
#[derive(Debug, Default)]
pub struct UndoLog {
    entries: Vec<UndoEntry>,
}

impl UndoLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded mutations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends every entry of `other` (preserving order) so several
    /// per-step logs can be merged into one atomic unit: the delta
    /// scheduler validates each task move against its own small log,
    /// then absorbs it into the plan-wide log that guards the whole
    /// migration.
    pub fn absorb(&mut self, mut other: UndoLog) {
        self.entries.append(&mut other.entries);
    }
}

#[derive(Debug)]
enum UndoEntry {
    /// A node's remaining resources were overwritten.
    Remaining {
        index: u32,
        prev: RemainingResources,
    },
    /// A per-topology reserved total was created or grown.
    ReservedTotal {
        topology: TopologyId,
        node: NodeId,
        prev: Option<ResourceRequest>,
        topology_was_present: bool,
    },
    /// A (topology, node) → port mapping was inserted (never overwritten).
    TopologySlot { topology: TopologyId, node: NodeId },
    /// A slot's occupancy count was bumped.
    SlotOccupancy {
        slot: WorkerSlot,
        prev: Option<usize>,
    },
}

/// Cluster-wide scheduling state shared across scheduler invocations.
#[derive(Debug, Clone)]
pub struct GlobalState {
    /// The immutable layout this state's dense vectors are keyed by.
    index: Arc<ClusterIndex>,
    /// Remaining resources by dense node index (meaningful iff alive).
    dense: Vec<RemainingResources>,
    /// Liveness by dense node index. Nodes dead at snapshot time or
    /// failed via [`GlobalState::handle_node_failure`] are invisible to
    /// the string API, exactly as if they had been removed from a map.
    alive: Vec<bool>,
    /// Per-rack abundance sum over alive members, declaration order.
    rack_abundance: Vec<f64>,
    /// Per-rack max remaining memory over alive members
    /// (`NEG_INFINITY` when the rack has no alive member).
    rack_max_mem: Vec<f64>,
    /// Per-rack alive-member count.
    rack_alive: Vec<u32>,
    plan: SchedulingPlan,
    /// Per-topology, per-node reserved totals, for release on unschedule.
    reserved: HashMap<TopologyId, BTreeMap<NodeId, ResourceRequest>>,
    /// The worker slot each (topology, node) pair packs its tasks into.
    topology_slots: HashMap<(TopologyId, NodeId), u16>,
    /// Number of distinct topologies occupying each slot.
    slot_occupancy: BTreeMap<WorkerSlot, usize>,
}

impl GlobalState {
    /// Snapshots the remaining resources of every *alive* node of
    /// `cluster`, with no topologies scheduled.
    pub fn new(cluster: &Cluster) -> Self {
        let index = cluster.shared_index();
        let n = index.len();
        let mut dense = Vec::with_capacity(n);
        let mut alive = Vec::with_capacity(n);
        for i in 0..n as u32 {
            let cap = index.capacity(i);
            dense.push(RemainingResources {
                cpu_points: cap.cpu_points,
                memory_mb: cap.memory_mb,
                bandwidth: cap.bandwidth,
            });
            alive.push(cluster.is_alive(index.node_id(i).as_str()));
        }
        let racks = index.rack_count();
        let mut state = Self {
            index,
            dense,
            alive,
            rack_abundance: vec![0.0; racks],
            rack_max_mem: vec![f64::NEG_INFINITY; racks],
            rack_alive: vec![0; racks],
            plan: SchedulingPlan::new(),
            reserved: HashMap::new(),
            topology_slots: HashMap::new(),
            slot_occupancy: BTreeMap::new(),
        };
        for rack in 0..racks as u32 {
            state.recompute_rack(rack);
        }
        state
    }

    /// Recomputes one rack's aggregates from scratch, scanning alive
    /// members in declaration order (bit-identical to the scan the
    /// pre-index `find_ref_node` performed per call).
    fn recompute_rack(&mut self, rack: u32) {
        let index = Arc::clone(&self.index);
        let (max_cpu, max_mem) = (index.max_cpu_points(), index.max_memory_mb());
        let mut abundance = 0.0;
        let mut best_mem = f64::NEG_INFINITY;
        let mut alive_count = 0u32;
        for &i in index.rack_members(rack) {
            if !self.alive[i as usize] {
                continue;
            }
            let r = &self.dense[i as usize];
            abundance += r.abundance(max_cpu, max_mem);
            if r.memory_mb > best_mem {
                best_mem = r.memory_mb;
            }
            alive_count += 1;
        }
        self.rack_abundance[rack as usize] = abundance;
        self.rack_max_mem[rack as usize] = best_mem;
        self.rack_alive[rack as usize] = alive_count;
    }

    /// The cluster layout index this state is keyed by. Fast paths that
    /// consume the dense accessors must verify (via [`Arc::ptr_eq`]) that
    /// this is the same index as the cluster they were built against.
    pub fn cluster_index(&self) -> &Arc<ClusterIndex> {
        &self.index
    }

    /// Remaining resources by dense node index; entries of dead nodes are
    /// stale and must be masked with [`GlobalState::alive_dense`].
    pub fn remaining_dense(&self) -> &[RemainingResources] {
        &self.dense
    }

    /// Liveness by dense node index.
    pub fn alive_dense(&self) -> &[bool] {
        &self.alive
    }

    /// Per-rack abundance sums over alive members (see
    /// [`RemainingResources::abundance`], normalized by the index's
    /// capacity maxima).
    pub fn rack_abundances(&self) -> &[f64] {
        &self.rack_abundance
    }

    /// Per-rack max remaining memory over alive members
    /// (`NEG_INFINITY` for racks with no alive member).
    pub fn rack_max_memories(&self) -> &[f64] {
        &self.rack_max_mem
    }

    /// Per-rack alive-member counts.
    pub fn rack_alive_counts(&self) -> &[u32] {
        &self.rack_alive
    }

    /// Remaining resources of a node ([`None`] for unknown/dead nodes).
    pub fn remaining(&self, node: &str) -> Option<&RemainingResources> {
        let i = self.index.node_index(node)?;
        if self.alive[i as usize] {
            Some(&self.dense[i as usize])
        } else {
            None
        }
    }

    /// Iterates `(node, remaining)` in node-id order.
    pub fn iter_remaining(&self) -> impl Iterator<Item = (&NodeId, &RemainingResources)> {
        self.index
            .node_ids()
            .iter()
            .zip(&self.dense)
            .zip(&self.alive)
            .filter(|&(_, &alive)| alive)
            .map(|((id, r), _)| (id, r))
    }

    /// Reserves `request` on `node` for `topology`. Soft dimensions may go
    /// negative; callers enforcing the hard memory constraint must check
    /// [`GlobalState::remaining`] first (the R-Storm node-selection loop
    /// does).
    ///
    /// # Errors
    ///
    /// [`ScheduleError::UnknownNode`] if `node` is unknown or dead — the
    /// state is left untouched.
    pub fn reserve(
        &mut self,
        topology: &TopologyId,
        node: &NodeId,
        request: &ResourceRequest,
    ) -> Result<(), ScheduleError> {
        let mut scratch = UndoLog::new();
        self.reserve_logged(topology, node, request, &mut scratch)
    }

    /// [`GlobalState::reserve`], recording the mutation in `log` so it can
    /// be reverted bit-exactly by [`GlobalState::rollback`].
    ///
    /// # Errors
    ///
    /// [`ScheduleError::UnknownNode`] if `node` is unknown or dead —
    /// neither the state nor `log` is touched, so a partially filled log
    /// still rolls back everything that *did* happen.
    pub fn reserve_logged(
        &mut self,
        topology: &TopologyId,
        node: &NodeId,
        request: &ResourceRequest,
        log: &mut UndoLog,
    ) -> Result<(), ScheduleError> {
        let i = self
            .index
            .node_index(node.as_str())
            .filter(|&i| self.alive[i as usize])
            .ok_or_else(|| ScheduleError::UnknownNode {
                node: node.as_str().to_owned(),
            })?;
        log.entries.push(UndoEntry::Remaining {
            index: i,
            prev: self.dense[i as usize],
        });
        self.dense[i as usize].subtract(request);
        let topology_was_present = self.reserved.contains_key(topology);
        let per_node = self.reserved.entry(topology.clone()).or_default();
        let prev = per_node.get(node).cloned();
        per_node
            .entry(node.clone())
            .or_insert_with(ResourceRequest::zero)
            .add_assign(request);
        log.entries.push(UndoEntry::ReservedTotal {
            topology: topology.clone(),
            node: node.clone(),
            prev,
            topology_was_present,
        });
        let rack = self.index.rack_of(i);
        self.recompute_rack(rack);
        Ok(())
    }

    /// Releases `request` — previously reserved on `node` for `topology`
    /// — back to the node, recording the mutation in `log`. This is the
    /// partial inverse of [`GlobalState::reserve_logged`]: where
    /// [`GlobalState::release_topology`] frees everything a topology
    /// holds, this frees one task's worth, so the delta scheduler can
    /// move a single reservation between nodes without tearing down the
    /// rest of the placement.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::UnknownNode`] if `node` is unknown or dead —
    /// neither the state nor `log` is touched.
    ///
    /// # Panics
    ///
    /// Panics if `topology` has no reservation on `node` (releasing what
    /// was never reserved is a caller bug, not a runtime condition).
    pub fn unreserve_logged(
        &mut self,
        topology: &TopologyId,
        node: &NodeId,
        request: &ResourceRequest,
        log: &mut UndoLog,
    ) -> Result<(), ScheduleError> {
        let i = self
            .index
            .node_index(node.as_str())
            .filter(|&i| self.alive[i as usize])
            .ok_or_else(|| ScheduleError::UnknownNode {
                node: node.as_str().to_owned(),
            })?;
        let per_node = self
            .reserved
            .get_mut(topology)
            .unwrap_or_else(|| panic!("topology `{topology}` has no reservations to release"));
        let prev = per_node
            .get(node)
            .cloned()
            .unwrap_or_else(|| panic!("topology `{topology}` reserved nothing on `{node}`"));
        log.entries.push(UndoEntry::Remaining {
            index: i,
            prev: self.dense[i as usize],
        });
        self.dense[i as usize].add(request);
        // Shrink the reserved total; clamp at zero so a release computed
        // from a refined (observed) profile can never drive the books
        // negative.
        per_node.insert(
            node.clone(),
            ResourceRequest {
                cpu_points: (prev.cpu_points - request.cpu_points).max(0.0),
                memory_mb: (prev.memory_mb - request.memory_mb).max(0.0),
                bandwidth: (prev.bandwidth - request.bandwidth).max(0.0),
            },
        );
        log.entries.push(UndoEntry::ReservedTotal {
            topology: topology.clone(),
            node: node.clone(),
            prev: Some(prev),
            topology_was_present: true,
        });
        let rack = self.index.rack_of(i);
        self.recompute_rack(rack);
        Ok(())
    }

    /// The worker slot tasks of `topology` use on `node`.
    ///
    /// R-Storm packs a topology's tasks on a node into a single worker
    /// process (so colocated tasks communicate intra-process); distinct
    /// topologies prefer distinct slots. The choice is stable for the
    /// lifetime of the assignment.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::UnknownNode`] if `node` is not part of `cluster`.
    pub fn slot_for(
        &mut self,
        cluster: &Cluster,
        topology: &TopologyId,
        node: &NodeId,
    ) -> Result<WorkerSlot, ScheduleError> {
        let mut scratch = UndoLog::new();
        self.slot_for_logged(cluster, topology, node, &mut scratch)
    }

    /// [`GlobalState::slot_for`], recording any new slot bookkeeping in
    /// `log` so it can be reverted by [`GlobalState::rollback`].
    ///
    /// # Errors
    ///
    /// [`ScheduleError::UnknownNode`] if `node` is not part of `cluster` —
    /// neither the state nor `log` is touched.
    pub fn slot_for_logged(
        &mut self,
        cluster: &Cluster,
        topology: &TopologyId,
        node: &NodeId,
        log: &mut UndoLog,
    ) -> Result<WorkerSlot, ScheduleError> {
        if let Some(&port) = self.topology_slots.get(&(topology.clone(), node.clone())) {
            return Ok(WorkerSlot::new(node.clone(), port));
        }
        let slots = cluster
            .node(node.as_str())
            .ok_or_else(|| ScheduleError::UnknownNode {
                node: node.as_str().to_owned(),
            })?
            .slots();
        // Prefer an unoccupied slot; otherwise share the least-occupied.
        let slot = slots
            .iter()
            .min_by_key(|s| self.slot_occupancy.get(*s).copied().unwrap_or(0))
            .expect("nodes always have at least one slot")
            .clone();
        let prev = self.slot_occupancy.get(&slot).copied();
        *self.slot_occupancy.entry(slot.clone()).or_insert(0) += 1;
        self.topology_slots
            .insert((topology.clone(), node.clone()), slot.port);
        log.entries.push(UndoEntry::SlotOccupancy {
            slot: slot.clone(),
            prev,
        });
        log.entries.push(UndoEntry::TopologySlot {
            topology: topology.clone(),
            node: node.clone(),
        });
        Ok(slot)
    }

    /// Reverts every mutation recorded in `log`, newest first, restoring
    /// the state bit-for-bit to what it was when the log was empty.
    pub fn rollback(&mut self, log: UndoLog) {
        let index = Arc::clone(&self.index);
        let mut touched_racks: Vec<u32> = Vec::new();
        for entry in log.entries.into_iter().rev() {
            match entry {
                UndoEntry::Remaining { index: i, prev } => {
                    self.dense[i as usize] = prev;
                    let rack = index.rack_of(i);
                    if !touched_racks.contains(&rack) {
                        touched_racks.push(rack);
                    }
                }
                UndoEntry::ReservedTotal {
                    topology,
                    node,
                    prev,
                    topology_was_present,
                } => {
                    if let Some(per_node) = self.reserved.get_mut(&topology) {
                        match prev {
                            Some(total) => {
                                per_node.insert(node, total);
                            }
                            None => {
                                per_node.remove(&node);
                            }
                        }
                    }
                    if !topology_was_present {
                        self.reserved.remove(&topology);
                    }
                }
                UndoEntry::TopologySlot { topology, node } => {
                    self.topology_slots.remove(&(topology, node));
                }
                UndoEntry::SlotOccupancy { slot, prev } => match prev {
                    Some(count) => {
                        self.slot_occupancy.insert(slot, count);
                    }
                    None => {
                        self.slot_occupancy.remove(&slot);
                    }
                },
            }
        }
        for rack in touched_racks {
            self.recompute_rack(rack);
        }
    }

    /// Increments a slot's occupancy count. Used by schedulers that pick
    /// slots directly (e.g. the even scheduler) instead of via
    /// [`GlobalState::slot_for`].
    pub fn occupy_slot(&mut self, slot: &WorkerSlot) {
        *self.slot_occupancy.entry(slot.clone()).or_insert(0) += 1;
    }

    /// How many occupants a slot currently has.
    pub fn slot_occupancy(&self, slot: &WorkerSlot) -> usize {
        self.slot_occupancy.get(slot).copied().unwrap_or(0)
    }

    /// Records a finished assignment in the plan (the "atomic commit" of
    /// §4.1).
    pub fn commit(&mut self, assignment: Assignment) {
        self.plan.insert(assignment);
    }

    /// True if `topology` currently has an assignment.
    pub fn is_scheduled(&self, topology: &str) -> bool {
        self.plan.assignment(topology).is_some()
    }

    /// The current plan.
    pub fn plan(&self) -> &SchedulingPlan {
        &self.plan
    }

    /// Releases everything reserved by `topology` and removes its
    /// assignment, returning it (used before rescheduling).
    pub fn release_topology(&mut self, topology: &str) -> Option<Assignment> {
        let index = Arc::clone(&self.index);
        let mut touched_racks: Vec<u32> = Vec::new();
        if let Some(per_node) = self.reserved.remove(topology) {
            for (node, total) in per_node {
                if let Some(i) = index.node_index(node.as_str()) {
                    if self.alive[i as usize] {
                        self.dense[i as usize].add(&total);
                        let rack = index.rack_of(i);
                        if !touched_racks.contains(&rack) {
                            touched_racks.push(rack);
                        }
                    }
                }
            }
        }
        for rack in touched_racks {
            self.recompute_rack(rack);
        }
        let keys: Vec<(TopologyId, NodeId)> = self
            .topology_slots
            .keys()
            .filter(|(t, _)| t.as_str() == topology)
            .cloned()
            .collect();
        for key in keys {
            if let Some(port) = self.topology_slots.remove(&key) {
                let slot = WorkerSlot::new(key.1.clone(), port);
                if let Some(count) = self.slot_occupancy.get_mut(&slot) {
                    *count = count.saturating_sub(1);
                }
            }
        }
        self.plan.remove(topology)
    }

    /// Handles a node failure: removes the node from the resource pool and
    /// returns the topologies that had tasks on it (which the caller
    /// should release and reschedule). The paper motivates fast
    /// rescheduling: "if executors are not rescheduled quickly, whole
    /// topologies may be stalled" (§3).
    pub fn handle_node_failure(&mut self, node: &str) -> Vec<TopologyId> {
        if let Some(i) = self.index.node_index(node) {
            if self.alive[i as usize] {
                self.alive[i as usize] = false;
                let rack = self.index.rack_of(i);
                self.recompute_rack(rack);
            }
        }
        self.plan
            .topologies_on_node(node)
            .into_iter()
            .cloned()
            .collect()
    }

    /// Handles a node rejoining the cluster: marks it alive and sets its
    /// remaining resources to full capacity minus whatever reservations
    /// still name it (a topology that was never displaced keeps its claim
    /// across the outage). Returns `true` if the node was known and dead.
    ///
    /// The subtraction walks topologies in id order so the result is
    /// deterministic and — for exactly representable loads — bit-identical
    /// to a state rebuilt from scratch (see [`GlobalState::rebuild`]).
    pub fn handle_node_recovery(&mut self, node: &str) -> bool {
        let Some(i) = self.index.node_index(node) else {
            return false;
        };
        if self.alive[i as usize] {
            return false;
        }
        let cap = self.index.capacity(i);
        let mut remaining = RemainingResources {
            cpu_points: cap.cpu_points,
            memory_mb: cap.memory_mb,
            bandwidth: cap.bandwidth,
        };
        let mut topologies: Vec<&TopologyId> = self.reserved.keys().collect();
        topologies.sort();
        let node_id = NodeId::new(node);
        for topology in topologies {
            if let Some(total) = self.reserved[topology].get(&node_id) {
                remaining.subtract(total);
            }
        }
        self.dense[i as usize] = remaining;
        self.alive[i as usize] = true;
        let rack = self.index.rack_of(i);
        self.recompute_rack(rack);
        true
    }

    /// Reconstructs scheduling state from scratch — what a restarted
    /// Nimbus would do: snapshot the surviving cluster, then replay every
    /// assignment of `plan` (topologies in id order, tasks in task-id
    /// order), reserving each placed task's resources on its node and
    /// re-deriving slot occupancy. Tasks an assignment declares unplaced
    /// are skipped, and reservations on dead nodes are dropped, exactly as
    /// the incremental failure path leaves them.
    ///
    /// The recovery property test pins the incremental path
    /// ([`GlobalState::handle_node_failure`] /
    /// [`GlobalState::handle_node_recovery`]) against this rebuild.
    pub fn rebuild(cluster: &Cluster, topologies: &[&Topology], plan: &SchedulingPlan) -> Self {
        let mut state = Self::new(cluster);
        for assignment in plan.iter() {
            let tid = assignment.topology();
            let Some(topology) = topologies.iter().find(|t| t.id() == tid) else {
                continue;
            };
            let task_set = topology.task_set();
            let mut seen_slots: Vec<WorkerSlot> = Vec::new();
            for (task, slot) in assignment.iter() {
                if let Some(request) = task_set.resources(task) {
                    // Reservations on dead nodes are silently dropped:
                    // the incremental path never restores them either.
                    let _ = state.reserve(tid, &slot.node, request);
                }
                if !seen_slots.contains(slot) {
                    seen_slots.push(slot.clone());
                    state.occupy_slot(slot);
                    state
                        .topology_slots
                        .insert((tid.clone(), slot.node.clone()), slot.port);
                }
            }
            state.commit(assignment.clone());
        }
        state
    }
}

trait AddAssign {
    fn add_assign(&mut self, other: &ResourceRequest);
}

impl AddAssign for ResourceRequest {
    fn add_assign(&mut self, other: &ResourceRequest) {
        *self = self.saturating_add(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstorm_cluster::{ClusterBuilder, ResourceCapacity};
    use rstorm_topology::TaskId;

    fn cluster() -> Cluster {
        ClusterBuilder::new()
            .homogeneous_racks(1, 2, ResourceCapacity::emulab_node(), 2)
            .build()
            .unwrap()
    }

    #[test]
    fn snapshot_matches_capacities() {
        let c = cluster();
        let s = GlobalState::new(&c);
        let r = s.remaining("rack-0-node-0").unwrap();
        assert_eq!(r.cpu_points, 100.0);
        assert_eq!(r.memory_mb, 2048.0);
        assert_eq!(s.iter_remaining().count(), 2);
        assert!(s.remaining("nope").is_none());
    }

    #[test]
    fn dead_nodes_are_not_snapshotted() {
        let mut c = cluster();
        c.kill_node("rack-0-node-1");
        let s = GlobalState::new(&c);
        assert!(s.remaining("rack-0-node-1").is_none());
    }

    #[test]
    fn reserve_and_release_roundtrip() {
        let c = cluster();
        let mut s = GlobalState::new(&c);
        let t = TopologyId::new("t");
        let n = NodeId::new("rack-0-node-0");
        s.reserve(&t, &n, &ResourceRequest::new(60.0, 1024.0, 0.0))
            .unwrap();
        s.reserve(&t, &n, &ResourceRequest::new(60.0, 512.0, 0.0))
            .unwrap();
        let r = s.remaining("rack-0-node-0").unwrap();
        assert_eq!(r.cpu_points, -20.0, "soft dimension may go negative");
        assert_eq!(r.memory_mb, 512.0);

        s.commit(Assignment::new("t", BTreeMap::new()));
        assert!(s.is_scheduled("t"));
        s.release_topology("t");
        assert!(!s.is_scheduled("t"));
        let r = s.remaining("rack-0-node-0").unwrap();
        assert_eq!(r.cpu_points, 100.0);
        assert_eq!(r.memory_mb, 2048.0);
    }

    #[test]
    fn slots_are_stable_and_topology_disjoint() {
        let c = cluster();
        let mut s = GlobalState::new(&c);
        let n = NodeId::new("rack-0-node-0");
        let t1 = TopologyId::new("t1");
        let t2 = TopologyId::new("t2");
        let s1 = s.slot_for(&c, &t1, &n).unwrap();
        let s1_again = s.slot_for(&c, &t1, &n).unwrap();
        assert_eq!(s1, s1_again, "slot choice is stable");
        let s2 = s.slot_for(&c, &t2, &n).unwrap();
        assert_ne!(s1, s2, "second topology gets its own worker");
        // A third topology shares the least-occupied slot (only 2 exist).
        let s3 = s.slot_for(&c, &TopologyId::new("t3"), &n).unwrap();
        assert!(s3 == s1 || s3 == s2);
    }

    #[test]
    fn node_failure_reports_affected_topologies() {
        let c = cluster();
        let mut s = GlobalState::new(&c);
        let mut m = BTreeMap::new();
        m.insert(TaskId(0), WorkerSlot::new("rack-0-node-0", 6700));
        s.commit(Assignment::new("t", m));
        let affected = s.handle_node_failure("rack-0-node-0");
        assert_eq!(affected, vec![TopologyId::new("t")]);
        assert!(s.remaining("rack-0-node-0").is_none());
        // Releasing and rescheduling is the caller's job.
        assert!(s.release_topology("t").is_some());
    }

    #[test]
    fn abundance_orders_nodes() {
        let a = RemainingResources {
            cpu_points: 100.0,
            memory_mb: 2048.0,
            bandwidth: 100.0,
        };
        let b = RemainingResources {
            cpu_points: 50.0,
            memory_mb: 2048.0,
            bandwidth: 100.0,
        };
        assert!(a.abundance(100.0, 2048.0) > b.abundance(100.0, 2048.0));
    }

    #[test]
    fn reserving_on_unknown_node_is_a_typed_error() {
        let c = cluster();
        let mut s = GlobalState::new(&c);
        let before = format!("{s:?}");
        let err = s
            .reserve(
                &TopologyId::new("t"),
                &NodeId::new("ghost"),
                &ResourceRequest::zero(),
            )
            .unwrap_err();
        assert!(matches!(
            &err,
            crate::error::ScheduleError::UnknownNode { node } if node == "ghost"
        ));
        let slot_err = s
            .slot_for(&c, &TopologyId::new("t"), &NodeId::new("ghost"))
            .unwrap_err();
        assert!(matches!(
            slot_err,
            crate::error::ScheduleError::UnknownNode { .. }
        ));
        assert_eq!(format!("{s:?}"), before, "failed lookups leave no trace");
    }

    /// Captures every observable bit of a state for exact comparisons.
    fn fingerprint(s: &GlobalState) -> Vec<(String, [u64; 3])> {
        s.iter_remaining()
            .map(|(n, r)| {
                (
                    n.as_str().to_owned(),
                    [
                        r.cpu_points.to_bits(),
                        r.memory_mb.to_bits(),
                        r.bandwidth.to_bits(),
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn rollback_restores_bit_identical_state() {
        let c = cluster();
        let mut s = GlobalState::new(&c);
        let t0 = TopologyId::new("t0");
        let n0 = NodeId::new("rack-0-node-0");
        // Pre-existing reservations so the log must restore non-trivial
        // previous values, not just remove entries.
        s.reserve(&t0, &n0, &ResourceRequest::new(33.3, 123.4, 0.7))
            .unwrap();
        s.slot_for(&c, &t0, &n0).unwrap();
        let before = format!("{s:?}");
        let before_fp = fingerprint(&s);

        let t1 = TopologyId::new("t1");
        let n1 = NodeId::new("rack-0-node-1");
        let mut log = UndoLog::new();
        s.reserve_logged(&t1, &n0, &ResourceRequest::new(10.1, 20.2, 30.3), &mut log)
            .unwrap();
        s.reserve_logged(&t1, &n1, &ResourceRequest::new(1.0, 2.0, 3.0), &mut log)
            .unwrap();
        s.reserve_logged(&t0, &n0, &ResourceRequest::new(5.5, 6.6, 7.7), &mut log)
            .unwrap();
        s.slot_for_logged(&c, &t1, &n0, &mut log).unwrap();
        s.slot_for_logged(&c, &t1, &n1, &mut log).unwrap();
        assert!(!log.is_empty());
        assert_ne!(fingerprint(&s), before_fp, "mutations took effect");

        s.rollback(log);
        assert_eq!(fingerprint(&s), before_fp, "bits restored exactly");
        assert_eq!(format!("{s:?}"), before, "all bookkeeping restored");
    }

    #[test]
    fn unreserve_moves_one_reservation_and_rolls_back_bit_exactly() {
        let c = cluster();
        let mut s = GlobalState::new(&c);
        let t = TopologyId::new("t");
        let n0 = NodeId::new("rack-0-node-0");
        let n1 = NodeId::new("rack-0-node-1");
        let req = ResourceRequest::new(30.0, 256.0, 1.0);
        s.reserve(&t, &n0, &req).unwrap();
        s.reserve(&t, &n0, &req).unwrap();
        let before = format!("{s:?}");
        let before_fp = fingerprint(&s);

        // Move one of the two reservations to the other node, merging the
        // per-step logs the way the delta scheduler does.
        let mut plan_log = UndoLog::new();
        let mut step = UndoLog::new();
        s.unreserve_logged(&t, &n0, &req, &mut step).unwrap();
        s.reserve_logged(&t, &n1, &req, &mut step).unwrap();
        plan_log.absorb(step);
        assert_eq!(plan_log.len(), 4);
        assert_eq!(s.remaining("rack-0-node-0").unwrap().cpu_points, 70.0);
        assert_eq!(s.remaining("rack-0-node-1").unwrap().cpu_points, 70.0);

        s.rollback(plan_log);
        assert_eq!(fingerprint(&s), before_fp, "bits restored exactly");
        assert_eq!(format!("{s:?}"), before, "all bookkeeping restored");

        // Unknown/dead nodes are typed errors and leave no trace.
        let err = s
            .unreserve_logged(&t, &NodeId::new("ghost"), &req, &mut UndoLog::new())
            .unwrap_err();
        assert!(matches!(err, ScheduleError::UnknownNode { .. }));
        assert_eq!(format!("{s:?}"), before);
    }

    #[test]
    #[should_panic(expected = "reserved nothing")]
    fn unreserve_without_reservation_is_a_caller_bug() {
        let c = cluster();
        let mut s = GlobalState::new(&c);
        let t = TopologyId::new("t");
        s.reserve(
            &t,
            &NodeId::new("rack-0-node-0"),
            &ResourceRequest::new(1.0, 1.0, 0.0),
        )
        .unwrap();
        let _ = s.unreserve_logged(
            &t,
            &NodeId::new("rack-0-node-1"),
            &ResourceRequest::zero(),
            &mut UndoLog::new(),
        );
    }

    #[test]
    fn rack_aggregates_track_mutations() {
        let c = ClusterBuilder::new()
            .homogeneous_racks(2, 2, ResourceCapacity::emulab_node(), 2)
            .build()
            .unwrap();
        let mut s = GlobalState::new(&c);
        let idx = c.index();
        assert_eq!(s.rack_alive_counts(), &[2, 2]);
        assert_eq!(s.rack_max_memories(), &[2048.0, 2048.0]);
        let expected: f64 = (0..2)
            .map(|i| s.remaining_dense()[i].abundance(idx.max_cpu_points(), idx.max_memory_mb()))
            .sum();
        assert_eq!(s.rack_abundances()[0].to_bits(), expected.to_bits());

        let t = TopologyId::new("t");
        s.reserve(
            &t,
            &NodeId::new("rack-0-node-0"),
            &ResourceRequest::new(50.0, 1500.0, 0.0),
        )
        .unwrap();
        assert_eq!(s.rack_max_memories()[0], 2048.0, "node-1 untouched");
        s.reserve(
            &t,
            &NodeId::new("rack-0-node-1"),
            &ResourceRequest::new(0.0, 1000.0, 0.0),
        )
        .unwrap();
        assert_eq!(s.rack_max_memories()[0], 1048.0);
        assert_eq!(s.rack_max_memories()[1], 2048.0, "other rack untouched");

        s.handle_node_failure("rack-0-node-1");
        assert_eq!(s.rack_alive_counts()[0], 1);
        assert_eq!(s.rack_max_memories()[0], 548.0);
        s.handle_node_failure("rack-0-node-0");
        assert_eq!(s.rack_alive_counts()[0], 0);
        assert_eq!(s.rack_max_memories()[0], f64::NEG_INFINITY);
        assert_eq!(s.rack_abundances()[0], 0.0);
    }

    #[test]
    fn recovery_restores_capacity_minus_surviving_reservations() {
        let c = cluster();
        let mut s = GlobalState::new(&c);
        let t = TopologyId::new("t");
        let n = NodeId::new("rack-0-node-0");
        // Integer-valued loads so subtraction order cannot matter.
        s.reserve(&t, &n, &ResourceRequest::new(40.0, 512.0, 0.0))
            .unwrap();
        let mut m = BTreeMap::new();
        m.insert(TaskId(0), WorkerSlot::new("rack-0-node-0", 6700));
        s.commit(Assignment::new("t", m));
        let before = fingerprint(&s);

        assert_eq!(s.handle_node_failure("rack-0-node-0"), vec![t.clone()]);
        assert!(s.remaining("rack-0-node-0").is_none());
        assert!(!s.alive_dense()[0]);

        // Reviving without releasing the topology re-derives remaining
        // capacity from the reservations that are still on the books.
        assert!(s.handle_node_recovery("rack-0-node-0"));
        assert!(s.alive_dense()[0]);
        assert_eq!(fingerprint(&s), before, "crash + recover is a no-op");

        // Idempotence and unknown names.
        assert!(!s.handle_node_recovery("rack-0-node-0"), "already alive");
        assert!(!s.handle_node_recovery("ghost"));
    }

    #[test]
    fn rebuild_matches_incremental_state() {
        let c = cluster();
        let mut s = GlobalState::new(&c);
        let t = TopologyId::new("t");
        let n0 = NodeId::new("rack-0-node-0");
        let mut b = rstorm_topology::TopologyBuilder::new("t");
        b.set_spout("s", 2)
            .set_memory_load(256.0)
            .set_cpu_load(20.0);
        b.set_bolt("b", 2)
            .shuffle_grouping("s")
            .set_memory_load(128.0)
            .set_cpu_load(10.0);
        let topology = b.build().unwrap();
        let task_set = topology.task_set();
        let mut mapping = BTreeMap::new();
        for task in task_set.tasks() {
            let request = task_set.resources(task.id).unwrap();
            s.reserve(&t, &n0, request).unwrap();
            let slot = s.slot_for(&c, &t, &n0).unwrap();
            mapping.insert(task.id, slot);
        }
        s.commit(Assignment::new("t", mapping));

        let rebuilt = GlobalState::rebuild(&c, &[&topology], s.plan());
        assert_eq!(fingerprint(&rebuilt), fingerprint(&s));
        assert_eq!(rebuilt.alive_dense(), s.alive_dense());
        assert_eq!(format!("{:?}", rebuilt.plan()), format!("{:?}", s.plan()));
    }

    #[test]
    fn dense_view_matches_string_api() {
        let mut c = ClusterBuilder::new()
            .homogeneous_racks(2, 3, ResourceCapacity::emulab_node(), 2)
            .build()
            .unwrap();
        c.kill_node("rack-1-node-1");
        let s = GlobalState::new(&c);
        let idx = s.cluster_index();
        assert!(Arc::ptr_eq(idx, &c.shared_index()));
        for i in 0..idx.len() as u32 {
            let id = idx.node_id(i).as_str();
            match s.remaining(id) {
                Some(r) => {
                    assert!(s.alive_dense()[i as usize]);
                    assert_eq!(r, &s.remaining_dense()[i as usize]);
                }
                None => assert!(!s.alive_dense()[i as usize]),
            }
        }
        assert_eq!(s.iter_remaining().count(), 5);
    }
}
