//! `GlobalState`: scheduling and resource bookkeeping across invocations.
//!
//! Mirrors the paper's module of the same name (§5.1): "stores important
//! state information regarding the scheduling and resource availability of
//! a Storm Cluster ... where each task is placed in the cluster ... all
//! the resource availability information of physical machines and the
//! resource demand information of all tasks." Storm's Nimbus is stateless
//! between scheduler invocations, so this state is owned by the embedding
//! application and passed to every [`crate::Scheduler::schedule`] call.

use crate::assignment::{Assignment, SchedulingPlan};
use rstorm_cluster::{Cluster, NodeId, WorkerSlot};
use rstorm_topology::{ResourceRequest, TopologyId};
use std::collections::{BTreeMap, HashMap};

/// A node's remaining (unreserved) resources.
///
/// Soft dimensions (CPU, bandwidth) may go negative when a
/// non-resource-aware scheduler (or an explicitly over-subscribed
/// reservation) overloads a node; memory is the hard dimension and is
/// kept non-negative by the checked reservation path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemainingResources {
    /// Remaining CPU points (may go negative under overload).
    pub cpu_points: f64,
    /// Remaining memory in MB (non-negative on the checked path).
    pub memory_mb: f64,
    /// Remaining bandwidth units (may go negative under overload).
    pub bandwidth: f64,
}

impl RemainingResources {
    fn subtract(&mut self, r: &ResourceRequest) {
        self.cpu_points -= r.cpu_points;
        self.memory_mb -= r.memory_mb;
        self.bandwidth -= r.bandwidth;
    }

    fn add(&mut self, r: &ResourceRequest) {
        self.cpu_points += r.cpu_points;
        self.memory_mb += r.memory_mb;
        self.bandwidth += r.bandwidth;
    }

    /// A "more resources" ordering key used by Algorithm 4's
    /// `findServerRackWithMostResources` / `findNodeWithMostResources`:
    /// the normalized sum of remaining CPU and memory.
    pub fn abundance(&self, max_cpu: f64, max_memory: f64) -> f64 {
        self.cpu_points / max_cpu.max(1e-9) + self.memory_mb / max_memory.max(1e-9)
    }
}

/// Cluster-wide scheduling state shared across scheduler invocations.
#[derive(Debug, Clone)]
pub struct GlobalState {
    remaining: BTreeMap<NodeId, RemainingResources>,
    plan: SchedulingPlan,
    /// Per-topology, per-node reserved totals, for release on unschedule.
    reserved: HashMap<TopologyId, BTreeMap<NodeId, ResourceRequest>>,
    /// The worker slot each (topology, node) pair packs its tasks into.
    topology_slots: HashMap<(TopologyId, NodeId), u16>,
    /// Number of distinct topologies occupying each slot.
    slot_occupancy: BTreeMap<WorkerSlot, usize>,
}

impl GlobalState {
    /// Snapshots the remaining resources of every *alive* node of
    /// `cluster`, with no topologies scheduled.
    pub fn new(cluster: &Cluster) -> Self {
        let remaining = cluster
            .alive_nodes()
            .map(|n| {
                (
                    n.id().clone(),
                    RemainingResources {
                        cpu_points: n.capacity().cpu_points,
                        memory_mb: n.capacity().memory_mb,
                        bandwidth: n.capacity().bandwidth,
                    },
                )
            })
            .collect();
        Self {
            remaining,
            plan: SchedulingPlan::new(),
            reserved: HashMap::new(),
            topology_slots: HashMap::new(),
            slot_occupancy: BTreeMap::new(),
        }
    }

    /// Remaining resources of a node ([`None`] for unknown/dead nodes).
    pub fn remaining(&self, node: &str) -> Option<&RemainingResources> {
        self.remaining.get(node)
    }

    /// Iterates `(node, remaining)` in node-id order.
    pub fn iter_remaining(&self) -> impl Iterator<Item = (&NodeId, &RemainingResources)> {
        self.remaining.iter()
    }

    /// Reserves `request` on `node` for `topology`. Soft dimensions may go
    /// negative; callers enforcing the hard memory constraint must check
    /// [`GlobalState::remaining`] first (the R-Storm node-selection loop
    /// does).
    ///
    /// # Panics
    ///
    /// Panics if `node` is unknown.
    pub fn reserve(&mut self, topology: &TopologyId, node: &NodeId, request: &ResourceRequest) {
        let remaining = self
            .remaining
            .get_mut(node)
            .unwrap_or_else(|| panic!("reserve on unknown node `{node}`"));
        remaining.subtract(request);
        self.reserved
            .entry(topology.clone())
            .or_default()
            .entry(node.clone())
            .or_insert_with(ResourceRequest::zero)
            .add_assign(request);
    }

    /// The worker slot tasks of `topology` use on `node`.
    ///
    /// R-Storm packs a topology's tasks on a node into a single worker
    /// process (so colocated tasks communicate intra-process); distinct
    /// topologies prefer distinct slots. The choice is stable for the
    /// lifetime of the assignment.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of `cluster`.
    pub fn slot_for(
        &mut self,
        cluster: &Cluster,
        topology: &TopologyId,
        node: &NodeId,
    ) -> WorkerSlot {
        if let Some(&port) = self.topology_slots.get(&(topology.clone(), node.clone())) {
            return WorkerSlot::new(node.clone(), port);
        }
        let slots = cluster
            .node(node.as_str())
            .unwrap_or_else(|| panic!("slot_for on unknown node `{node}`"))
            .slots();
        // Prefer an unoccupied slot; otherwise share the least-occupied.
        let slot = slots
            .iter()
            .min_by_key(|s| self.slot_occupancy.get(*s).copied().unwrap_or(0))
            .expect("nodes always have at least one slot")
            .clone();
        *self.slot_occupancy.entry(slot.clone()).or_insert(0) += 1;
        self.topology_slots
            .insert((topology.clone(), node.clone()), slot.port);
        slot
    }

    /// Increments a slot's occupancy count. Used by schedulers that pick
    /// slots directly (e.g. the even scheduler) instead of via
    /// [`GlobalState::slot_for`].
    pub fn occupy_slot(&mut self, slot: &WorkerSlot) {
        *self.slot_occupancy.entry(slot.clone()).or_insert(0) += 1;
    }

    /// How many occupants a slot currently has.
    pub fn slot_occupancy(&self, slot: &WorkerSlot) -> usize {
        self.slot_occupancy.get(slot).copied().unwrap_or(0)
    }

    /// Records a finished assignment in the plan (the "atomic commit" of
    /// §4.1).
    pub fn commit(&mut self, assignment: Assignment) {
        self.plan.insert(assignment);
    }

    /// True if `topology` currently has an assignment.
    pub fn is_scheduled(&self, topology: &str) -> bool {
        self.plan.assignment(topology).is_some()
    }

    /// The current plan.
    pub fn plan(&self) -> &SchedulingPlan {
        &self.plan
    }

    /// Releases everything reserved by `topology` and removes its
    /// assignment, returning it (used before rescheduling).
    pub fn release_topology(&mut self, topology: &str) -> Option<Assignment> {
        if let Some(per_node) = self.reserved.remove(topology) {
            for (node, total) in per_node {
                if let Some(rem) = self.remaining.get_mut(&node) {
                    rem.add(&total);
                }
            }
        }
        let keys: Vec<(TopologyId, NodeId)> = self
            .topology_slots
            .keys()
            .filter(|(t, _)| t.as_str() == topology)
            .cloned()
            .collect();
        for key in keys {
            if let Some(port) = self.topology_slots.remove(&key) {
                let slot = WorkerSlot::new(key.1.clone(), port);
                if let Some(count) = self.slot_occupancy.get_mut(&slot) {
                    *count = count.saturating_sub(1);
                }
            }
        }
        self.plan.remove(topology)
    }

    /// Handles a node failure: removes the node from the resource pool and
    /// returns the topologies that had tasks on it (which the caller
    /// should release and reschedule). The paper motivates fast
    /// rescheduling: "if executors are not rescheduled quickly, whole
    /// topologies may be stalled" (§3).
    pub fn handle_node_failure(&mut self, node: &str) -> Vec<TopologyId> {
        self.remaining.remove(node);
        self.plan
            .topologies_on_node(node)
            .into_iter()
            .cloned()
            .collect()
    }
}

trait AddAssign {
    fn add_assign(&mut self, other: &ResourceRequest);
}

impl AddAssign for ResourceRequest {
    fn add_assign(&mut self, other: &ResourceRequest) {
        *self = self.saturating_add(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstorm_cluster::{ClusterBuilder, ResourceCapacity};
    use rstorm_topology::TaskId;

    fn cluster() -> Cluster {
        ClusterBuilder::new()
            .homogeneous_racks(1, 2, ResourceCapacity::emulab_node(), 2)
            .build()
            .unwrap()
    }

    #[test]
    fn snapshot_matches_capacities() {
        let c = cluster();
        let s = GlobalState::new(&c);
        let r = s.remaining("rack-0-node-0").unwrap();
        assert_eq!(r.cpu_points, 100.0);
        assert_eq!(r.memory_mb, 2048.0);
        assert_eq!(s.iter_remaining().count(), 2);
        assert!(s.remaining("nope").is_none());
    }

    #[test]
    fn dead_nodes_are_not_snapshotted() {
        let mut c = cluster();
        c.kill_node("rack-0-node-1");
        let s = GlobalState::new(&c);
        assert!(s.remaining("rack-0-node-1").is_none());
    }

    #[test]
    fn reserve_and_release_roundtrip() {
        let c = cluster();
        let mut s = GlobalState::new(&c);
        let t = TopologyId::new("t");
        let n = NodeId::new("rack-0-node-0");
        s.reserve(&t, &n, &ResourceRequest::new(60.0, 1024.0, 0.0));
        s.reserve(&t, &n, &ResourceRequest::new(60.0, 512.0, 0.0));
        let r = s.remaining("rack-0-node-0").unwrap();
        assert_eq!(r.cpu_points, -20.0, "soft dimension may go negative");
        assert_eq!(r.memory_mb, 512.0);

        s.commit(Assignment::new("t", BTreeMap::new()));
        assert!(s.is_scheduled("t"));
        s.release_topology("t");
        assert!(!s.is_scheduled("t"));
        let r = s.remaining("rack-0-node-0").unwrap();
        assert_eq!(r.cpu_points, 100.0);
        assert_eq!(r.memory_mb, 2048.0);
    }

    #[test]
    fn slots_are_stable_and_topology_disjoint() {
        let c = cluster();
        let mut s = GlobalState::new(&c);
        let n = NodeId::new("rack-0-node-0");
        let t1 = TopologyId::new("t1");
        let t2 = TopologyId::new("t2");
        let s1 = s.slot_for(&c, &t1, &n);
        let s1_again = s.slot_for(&c, &t1, &n);
        assert_eq!(s1, s1_again, "slot choice is stable");
        let s2 = s.slot_for(&c, &t2, &n);
        assert_ne!(s1, s2, "second topology gets its own worker");
        // A third topology shares the least-occupied slot (only 2 exist).
        let s3 = s.slot_for(&c, &TopologyId::new("t3"), &n);
        assert!(s3 == s1 || s3 == s2);
    }

    #[test]
    fn node_failure_reports_affected_topologies() {
        let c = cluster();
        let mut s = GlobalState::new(&c);
        let mut m = BTreeMap::new();
        m.insert(TaskId(0), WorkerSlot::new("rack-0-node-0", 6700));
        s.commit(Assignment::new("t", m));
        let affected = s.handle_node_failure("rack-0-node-0");
        assert_eq!(affected, vec![TopologyId::new("t")]);
        assert!(s.remaining("rack-0-node-0").is_none());
        // Releasing and rescheduling is the caller's job.
        assert!(s.release_topology("t").is_some());
    }

    #[test]
    fn abundance_orders_nodes() {
        let a = RemainingResources {
            cpu_points: 100.0,
            memory_mb: 2048.0,
            bandwidth: 100.0,
        };
        let b = RemainingResources {
            cpu_points: 50.0,
            memory_mb: 2048.0,
            bandwidth: 100.0,
        };
        assert!(a.abundance(100.0, 2048.0) > b.abundance(100.0, 2048.0));
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn reserving_on_unknown_node_panics() {
        let c = cluster();
        let mut s = GlobalState::new(&c);
        s.reserve(
            &TopologyId::new("t"),
            &NodeId::new("ghost"),
            &ResourceRequest::zero(),
        );
    }
}
