//! Baseline schedulers the paper evaluates R-Storm against.
//!
//! * [`EvenScheduler`] — Storm's default round-robin scheduler, the
//!   baseline in every figure of the evaluation.
//! * [`OfflineLinearizationScheduler`] — an offline comparator in the
//!   style of Aniello et al. (DEBS '13), discussed in §7 of the paper.
//! * [`RandomScheduler`] — uniform random placement, used by the ablation
//!   study as a placement-quality floor.
//! * [`ExhaustiveScheduler`] — exact branch-and-bound for small
//!   instances, quantifying the greedy heuristic's optimality gap (the
//!   solver the paper's §3 rules out for production use).

mod even;
mod exhaustive;
mod offline;
mod random;

pub use even::EvenScheduler;
pub use exhaustive::{placement_cost, ExhaustiveScheduler};
pub use offline::OfflineLinearizationScheduler;
pub use random::RandomScheduler;
