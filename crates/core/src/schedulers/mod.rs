//! Baseline schedulers the paper evaluates R-Storm against.
//!
//! * [`EvenScheduler`] — Storm's default round-robin scheduler, the
//!   baseline in every figure of the evaluation.
//! * [`OfflineLinearizationScheduler`] — an offline comparator in the
//!   style of Aniello et al. (DEBS '13), discussed in §7 of the paper.
//! * [`RandomScheduler`] — uniform random placement, used by the ablation
//!   study as a placement-quality floor.
//! * [`ExhaustiveScheduler`] — exact branch-and-bound for small
//!   instances, quantifying the greedy heuristic's optimality gap (the
//!   solver the paper's §3 rules out for production use).

mod even;
mod exhaustive;
mod offline;
mod random;

pub use even::EvenScheduler;
pub use exhaustive::{placement_cost, ExhaustiveScheduler};
pub use offline::OfflineLinearizationScheduler;
pub use random::RandomScheduler;

use crate::rstorm::RStormScheduler;
use crate::Scheduler;

/// The scheduler names [`by_name`] accepts, one per distinct scheduler
/// (aliases not listed). Stable, so harnesses can enumerate the roster.
pub const NAMES: &[&str] = &["rstorm", "even", "offline", "random", "exhaustive"];

/// Constructs a scheduler from its configuration-file name, or `None`
/// for an unknown name. `"default"` is an alias for `"even"` (Storm's
/// stock round-robin scheduler). Every scheduler returned is `Send +
/// Sync`, so sweep harnesses can resolve names inside worker threads or
/// share one instance across them.
pub fn by_name(name: &str) -> Option<Box<dyn Scheduler + Send + Sync>> {
    match name {
        "rstorm" => Some(Box::new(RStormScheduler::new())),
        "even" | "default" => Some(Box::new(EvenScheduler::new())),
        "offline" => Some(Box::new(OfflineLinearizationScheduler::new())),
        "random" => Some(Box::new(RandomScheduler::default())),
        "exhaustive" => Some(Box::new(ExhaustiveScheduler::new())),
        _ => None,
    }
}

#[cfg(test)]
mod by_name_tests {
    use super::*;

    #[test]
    fn every_roster_name_resolves_to_a_distinct_scheduler() {
        let mut seen = std::collections::BTreeSet::new();
        for &name in NAMES {
            let s = by_name(name).unwrap_or_else(|| panic!("{name} must resolve"));
            assert!(seen.insert(s.name().to_owned()), "duplicate {}", s.name());
        }
        assert_eq!(seen.len(), NAMES.len());
    }

    #[test]
    fn default_is_an_alias_for_even() {
        assert_eq!(by_name("default").unwrap().name(), "default");
        assert_eq!(by_name("even").unwrap().name(), "default");
        assert!(by_name("martian").is_none());
    }
}
