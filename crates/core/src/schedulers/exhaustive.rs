//! An exact branch-and-bound scheduler for small instances.
//!
//! §3 of the paper formulates scheduling as a Quadratic Multiple
//! 3-Dimensional Knapsack Problem and rejects exact solvers because they
//! are "constraining in terms of computational complexity" for a system
//! that must reschedule in seconds. This module implements the exact
//! solver anyway — for *small* instances — so that tests and ablations
//! can measure how close R-Storm's greedy heuristic gets to the optimum,
//! and benchmarks can show how quickly exhaustive search becomes
//! intractable.
//!
//! The objective mirrors the paper's goals: minimize the total expected
//! network distance between communicating tasks plus a penalty for
//! over-committing the soft CPU budget, subject to the hard memory
//! constraint.

use crate::assignment::Assignment;
use crate::error::ScheduleError;
use crate::global_state::GlobalState;
use crate::rstorm::task_selection;
use crate::scheduler::Scheduler;
use rstorm_cluster::Cluster;
use rstorm_topology::{TaskId, Topology, TraversalOrder};
use std::collections::{BTreeMap, HashMap};

/// Penalty, per over-committed CPU point, added to the objective.
const CPU_OVERLOAD_PENALTY_PER_POINT: f64 = 0.1;

/// Exact (branch-and-bound) scheduler for small instances.
#[derive(Debug, Clone, Copy)]
pub struct ExhaustiveScheduler {
    /// Maximum number of tasks the solver accepts before refusing with
    /// [`ScheduleError::InstanceTooLarge`].
    pub max_tasks: usize,
}

impl ExhaustiveScheduler {
    /// Default tractability limit: with pruning, a dozen tasks over a
    /// handful of nodes solves in well under a second.
    pub const DEFAULT_MAX_TASKS: usize = 12;

    /// Creates a solver with the default task limit.
    pub fn new() -> Self {
        Self {
            max_tasks: Self::DEFAULT_MAX_TASKS,
        }
    }

    /// Creates a solver with an explicit task limit.
    pub fn with_max_tasks(max_tasks: usize) -> Self {
        Self { max_tasks }
    }
}

impl Default for ExhaustiveScheduler {
    fn default() -> Self {
        Self::new()
    }
}

/// The placement objective: expected communication distance plus soft
/// CPU-overload penalty. Lower is better. Exposed so tests and ablations
/// can score any scheduler's assignment on the same scale.
pub fn placement_cost(topology: &Topology, cluster: &Cluster, assignment: &Assignment) -> f64 {
    let task_set = topology.task_set();
    let mut cost = 0.0;

    // Communication: for every edge A→B, each task of A sends 1/|B| of
    // its stream to each task of B (shuffle-style expectation).
    for component in topology.components() {
        let producers = task_set.tasks_of(component.id().as_str());
        for (consumer, _) in topology.consumers(component.id().as_str()) {
            let consumers = task_set.tasks_of(consumer.as_str());
            if consumers.is_empty() {
                continue;
            }
            let weight = 1.0 / consumers.len() as f64;
            for &p in producers {
                for &c in consumers {
                    let (np, nc) = (
                        assignment.node_of(p).expect("complete assignment"),
                        assignment.node_of(c).expect("complete assignment"),
                    );
                    cost += weight
                        * cluster
                            .node_distance(np.as_str(), nc.as_str())
                            .expect("assignment nodes are cluster members");
                }
            }
        }
    }

    // Soft CPU overload.
    let mut cpu_demand: HashMap<&str, f64> = HashMap::new();
    for task in task_set.tasks() {
        let node = assignment.node_of(task.id).expect("complete assignment");
        *cpu_demand.entry(node.as_str()).or_insert(0.0) +=
            task_set.resources(task.id).expect("known task").cpu_points;
    }
    for (node, demand) in cpu_demand {
        let capacity = cluster
            .node(node)
            .map(|n| n.capacity().cpu_points)
            .unwrap_or(0.0);
        cost += CPU_OVERLOAD_PENALTY_PER_POINT * (demand - capacity).max(0.0);
    }
    cost
}

struct Search<'a> {
    cluster: &'a Cluster,
    order: Vec<TaskId>,
    task_cpu: Vec<f64>,
    task_mem: Vec<f64>,
    nodes: Vec<String>,
    node_cpu: Vec<f64>,
    node_mem: Vec<f64>,
    /// neighbors[i] = (earlier-placed task position, weight) pairs for the
    /// task at order position i.
    neighbors: Vec<Vec<(usize, f64)>>,
    best_cost: f64,
    best: Option<Vec<usize>>,
}

impl Search<'_> {
    fn dfs(
        &mut self,
        pos: usize,
        placement: &mut Vec<usize>,
        mem_left: &mut [f64],
        cpu_used: &mut [f64],
        cost: f64,
    ) {
        if cost >= self.best_cost {
            return; // Bound: partial cost only ever grows.
        }
        if pos == self.order.len() {
            self.best_cost = cost;
            self.best = Some(placement.clone());
            return;
        }
        for n in 0..self.nodes.len() {
            if mem_left[n] < self.task_mem[pos] {
                continue; // Hard constraint.
            }
            // Incremental cost: edges to already-placed neighbors plus
            // the marginal CPU-overload penalty on node n.
            let mut delta = 0.0;
            for &(other_pos, weight) in &self.neighbors[pos] {
                let other_node = placement[other_pos];
                delta += weight
                    * self
                        .cluster
                        .node_distance(&self.nodes[n], &self.nodes[other_node])
                        .expect("search nodes come from the cluster's own list");
            }
            let before = (cpu_used[n] - self.node_cpu[n]).max(0.0);
            let after = (cpu_used[n] + self.task_cpu[pos] - self.node_cpu[n]).max(0.0);
            delta += CPU_OVERLOAD_PENALTY_PER_POINT * (after - before);

            mem_left[n] -= self.task_mem[pos];
            cpu_used[n] += self.task_cpu[pos];
            placement.push(n);
            self.dfs(pos + 1, placement, mem_left, cpu_used, cost + delta);
            placement.pop();
            cpu_used[n] -= self.task_cpu[pos];
            mem_left[n] += self.task_mem[pos];
        }
    }
}

impl Scheduler for ExhaustiveScheduler {
    fn name(&self) -> &str {
        "exhaustive"
    }

    fn schedule(
        &self,
        topology: &Topology,
        cluster: &Cluster,
        state: &mut GlobalState,
    ) -> Result<Assignment, ScheduleError> {
        if state.is_scheduled(topology.id().as_str()) {
            return Err(ScheduleError::AlreadyScheduled(topology.id().clone()));
        }
        let task_set = topology.task_set();
        if task_set.len() > self.max_tasks {
            return Err(ScheduleError::InstanceTooLarge {
                tasks: task_set.len(),
                limit: self.max_tasks,
            });
        }
        let nodes: Vec<String> = cluster
            .alive_nodes()
            .map(|n| n.id().as_str().to_owned())
            .collect();
        if nodes.is_empty() {
            return Err(ScheduleError::NoAliveNodes);
        }

        // Order tasks as R-Storm does: adjacent components adjacent in
        // the order, which makes the edge-based bound tighten early.
        let order = task_selection::task_ordering(topology, &task_set, TraversalOrder::Bfs);
        let position: HashMap<TaskId, usize> =
            order.iter().enumerate().map(|(i, &t)| (t, i)).collect();

        // Expected-traffic weights between task pairs (see
        // `placement_cost`), folded to (earlier position, weight).
        let mut neighbors: Vec<Vec<(usize, f64)>> = vec![Vec::new(); order.len()];
        for component in topology.components() {
            let producers = task_set.tasks_of(component.id().as_str());
            for (consumer, _) in topology.consumers(component.id().as_str()) {
                let consumers = task_set.tasks_of(consumer.as_str());
                if consumers.is_empty() {
                    continue;
                }
                let weight = 1.0 / consumers.len() as f64;
                for &p in producers {
                    for &c in consumers {
                        let (pp, pc) = (position[&p], position[&c]);
                        let (early, late) = if pp < pc { (pp, pc) } else { (pc, pp) };
                        neighbors[late].push((early, weight));
                    }
                }
            }
        }

        let mut search = Search {
            cluster,
            task_cpu: order
                .iter()
                .map(|t| task_set.resources(*t).expect("known task").cpu_points)
                .collect(),
            task_mem: order
                .iter()
                .map(|t| task_set.resources(*t).expect("known task").memory_mb)
                .collect(),
            node_cpu: nodes
                .iter()
                .map(|n| state.remaining(n).map_or(0.0, |r| r.cpu_points))
                .collect(),
            node_mem: nodes
                .iter()
                .map(|n| state.remaining(n).map_or(0.0, |r| r.memory_mb))
                .collect(),
            nodes,
            order,
            neighbors,
            best_cost: f64::INFINITY,
            best: None,
        };

        let mut mem_left = search.node_mem.clone();
        let mut cpu_used = vec![0.0; search.nodes.len()];
        let mut placement = Vec::with_capacity(search.order.len());
        search.dfs(0, &mut placement, &mut mem_left, &mut cpu_used, 0.0);

        let Some(best) = search.best.take() else {
            let best_available_mb = search.node_mem.iter().copied().fold(0.0, f64::max);
            let (pos, _) = search
                .task_mem
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("at least one task");
            return Err(ScheduleError::InsufficientMemory {
                topology: topology.id().clone(),
                task: search.order[pos],
                needed_mb: search.task_mem[pos],
                best_available_mb,
            });
        };

        let mut slots = BTreeMap::new();
        for (pos, &node_idx) in best.iter().enumerate() {
            let task = search.order[pos];
            let node = rstorm_cluster::NodeId::new(search.nodes[node_idx].clone());
            let request = task_set.resources(task).expect("known task");
            state.reserve(topology.id(), &node, request)?;
            let slot = state.slot_for(cluster, topology.id(), &node)?;
            slots.insert(task, slot);
        }
        let assignment = Assignment::new(topology.id().clone(), slots);
        state.commit(assignment.clone());
        Ok(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rstorm::RStormScheduler;
    use rstorm_cluster::{ClusterBuilder, ResourceCapacity};
    use rstorm_topology::TopologyBuilder;

    fn cluster() -> Cluster {
        ClusterBuilder::new()
            .homogeneous_racks(2, 2, ResourceCapacity::emulab_node(), 4)
            .build()
            .unwrap()
    }

    fn small_chain(parallelism: u32, cpu: f64, mem: f64) -> Topology {
        let mut b = TopologyBuilder::new("small");
        b.set_spout("a", parallelism)
            .set_cpu_load(cpu)
            .set_memory_load(mem);
        b.set_bolt("b", parallelism)
            .shuffle_grouping("a")
            .set_cpu_load(cpu)
            .set_memory_load(mem);
        b.set_bolt("c", parallelism)
            .shuffle_grouping("b")
            .set_cpu_load(cpu)
            .set_memory_load(mem);
        b.build().unwrap()
    }

    #[test]
    fn finds_a_feasible_optimum() {
        let cluster = cluster();
        // 6 × 15 CPU points fit one node: the optimum is full colocation.
        let t = small_chain(2, 15.0, 256.0);
        let mut state = GlobalState::new(&cluster);
        let a = ExhaustiveScheduler::new()
            .schedule(&t, &cluster, &mut state)
            .unwrap();
        assert_eq!(a.len(), 6);
        assert_eq!(a.used_nodes().len(), 1);
        assert_eq!(placement_cost(&t, &cluster, &a), 0.0);
    }

    #[test]
    fn splits_when_cpu_penalty_outweighs_a_hop() {
        let cluster = cluster();
        // 6 × 30 points on one node over-commit CPU by 80 points
        // (penalty 8.0); splitting costs one intra-rack chain cut
        // (cost 2.0) — the optimum uses two machines.
        let t = small_chain(2, 30.0, 256.0);
        let a = ExhaustiveScheduler::new()
            .schedule(&t, &cluster, &mut GlobalState::new(&cluster))
            .unwrap();
        assert_eq!(a.used_nodes().len(), 2);
        let cost = placement_cost(&t, &cluster, &a);
        assert!(cost <= 2.0 + 1e-9, "got {cost}");
    }

    #[test]
    fn respects_hard_memory_constraint() {
        let cluster = cluster();
        // 6 × 900 MB cannot share single 2048 MB nodes more than 2-up.
        let t = small_chain(2, 10.0, 900.0);
        let mut state = GlobalState::new(&cluster);
        let a = ExhaustiveScheduler::new()
            .schedule(&t, &cluster, &mut state)
            .unwrap();
        for node in a.used_nodes() {
            assert!(a.tasks_on_node(node.as_str()).len() <= 2);
        }
    }

    #[test]
    fn rstorm_is_near_optimal_on_small_instances() {
        // The point of the solver: quantify the greedy heuristic's gap.
        let cluster = cluster();
        for (parallelism, cpu, mem) in [
            (2, 30.0, 256.0),
            (3, 40.0, 300.0),
            (2, 60.0, 700.0),
            (4, 25.0, 128.0),
        ] {
            let t = small_chain(parallelism, cpu, mem);
            let optimal = ExhaustiveScheduler::with_max_tasks(12)
                .schedule(&t, &cluster, &mut GlobalState::new(&cluster))
                .unwrap();
            let greedy = RStormScheduler::new()
                .schedule(&t, &cluster, &mut GlobalState::new(&cluster))
                .unwrap();
            let c_opt = placement_cost(&t, &cluster, &optimal);
            let c_greedy = placement_cost(&t, &cluster, &greedy);
            assert!(
                c_greedy <= c_opt * 2.0 + 3.0,
                "p={parallelism} cpu={cpu} mem={mem}: greedy {c_greedy:.2} vs optimal {c_opt:.2}"
            );
            assert!(c_opt <= c_greedy + 1e-9, "optimum must not exceed greedy");
        }
    }

    #[test]
    fn refuses_large_instances() {
        let cluster = cluster();
        let t = small_chain(5, 10.0, 64.0); // 15 tasks > 12
        let err = ExhaustiveScheduler::new()
            .schedule(&t, &cluster, &mut GlobalState::new(&cluster))
            .unwrap_err();
        assert_eq!(
            err,
            ScheduleError::InstanceTooLarge {
                tasks: 15,
                limit: 12
            }
        );
    }

    #[test]
    fn reports_infeasible_memory() {
        let cluster = cluster();
        let t = small_chain(1, 10.0, 4096.0);
        let err = ExhaustiveScheduler::new()
            .schedule(&t, &cluster, &mut GlobalState::new(&cluster))
            .unwrap_err();
        assert!(matches!(err, ScheduleError::InsufficientMemory { .. }));
    }
}
