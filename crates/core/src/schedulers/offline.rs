//! An offline linearization scheduler in the style of Aniello et al.,
//! "Adaptive online scheduling in Storm" (DEBS '13) — the closest related
//! work the paper compares against qualitatively (§7).
//!
//! Their offline scheduler "attempts to derive a linearization of topology
//! components and schedule tasks from those components in a round robin
//! fashion to physical machines", minimizing network distance between
//! communicating components but with **no resource awareness** and a
//! restriction to acyclic topologies. We reproduce that behaviour: tasks
//! are ordered by a component linearization (topological order over the
//! DAG, declaration order as the fallback for cyclic graphs) and dealt out
//! in contiguous runs, one equal-sized chunk per node.

use crate::assignment::Assignment;
use crate::error::ScheduleError;
use crate::global_state::GlobalState;
use crate::rstorm::task_selection;
use crate::scheduler::Scheduler;
use rstorm_cluster::Cluster;
use rstorm_topology::{Topology, TraversalOrder};
use std::collections::BTreeMap;

/// Offline linearization scheduler (Aniello-style comparator).
#[derive(Debug, Clone, Copy, Default)]
pub struct OfflineLinearizationScheduler;

impl OfflineLinearizationScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for OfflineLinearizationScheduler {
    fn name(&self) -> &str {
        "offline-linearization"
    }

    fn schedule(
        &self,
        topology: &Topology,
        cluster: &Cluster,
        state: &mut GlobalState,
    ) -> Result<Assignment, ScheduleError> {
        if state.is_scheduled(topology.id().as_str()) {
            return Err(ScheduleError::AlreadyScheduled(topology.id().clone()));
        }
        let nodes: Vec<_> = cluster.alive_nodes().collect();
        if nodes.is_empty() {
            return Err(ScheduleError::NoAliveNodes);
        }

        let task_set = topology.task_set();
        // BFS is a valid linearization for DAGs and also terminates on
        // cyclic graphs, where the original algorithm does not apply.
        let ordering =
            task_selection::task_ordering(&topology.clone(), &task_set, TraversalOrder::Bfs);

        // Contiguous equal chunks: adjacent tasks in the linearization
        // share a node, so communicating components tend to be colocated.
        let chunk = ordering.len().div_ceil(nodes.len());
        let mut mapping = BTreeMap::new();
        for (i, task_id) in ordering.iter().enumerate() {
            let node = nodes[(i / chunk).min(nodes.len() - 1)];
            let request = task_set
                .resources(*task_id)
                .expect("ordering only contains tasks of this task set");
            state.reserve(topology.id(), node.id(), request)?;
            let slot = state.slot_for(cluster, topology.id(), node.id())?;
            mapping.insert(*task_id, slot);
        }
        let assignment = Assignment::new(topology.id().clone(), mapping);
        state.commit(assignment.clone());
        Ok(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstorm_cluster::{ClusterBuilder, ResourceCapacity};
    use rstorm_topology::TopologyBuilder;

    fn cluster() -> Cluster {
        ClusterBuilder::new()
            .homogeneous_racks(2, 3, ResourceCapacity::emulab_node(), 4)
            .build()
            .unwrap()
    }

    fn linear() -> Topology {
        let mut b = TopologyBuilder::new("lin");
        b.set_spout("a", 4);
        b.set_bolt("b", 4).shuffle_grouping("a");
        b.set_bolt("c", 4).shuffle_grouping("b");
        b.build().unwrap()
    }

    #[test]
    fn all_tasks_placed_in_contiguous_chunks() {
        let c = cluster();
        let t = linear();
        let mut state = GlobalState::new(&c);
        let a = OfflineLinearizationScheduler::new()
            .schedule(&t, &c, &mut state)
            .unwrap();
        assert_eq!(a.len(), 12);
        // 12 tasks over 6 nodes → chunks of 2: every used node has 2.
        for node in a.used_nodes() {
            assert_eq!(a.tasks_on_node(node.as_str()).len(), 2);
        }
    }

    #[test]
    fn ignores_resources() {
        let c = ClusterBuilder::new()
            .add_node("tiny", "r", ResourceCapacity::new(10.0, 64.0, 10.0), 1)
            .build()
            .unwrap();
        let t = linear();
        let mut state = GlobalState::new(&c);
        let a = OfflineLinearizationScheduler::new()
            .schedule(&t, &c, &mut state)
            .unwrap();
        assert_eq!(a.len(), 12, "no feasibility checking");
        assert!(state.remaining("tiny").unwrap().memory_mb < 0.0);
    }

    #[test]
    fn already_scheduled_rejected() {
        let c = cluster();
        let t = linear();
        let mut state = GlobalState::new(&c);
        let s = OfflineLinearizationScheduler::new();
        s.schedule(&t, &c, &mut state).unwrap();
        assert!(matches!(
            s.schedule(&t, &c, &mut state).unwrap_err(),
            ScheduleError::AlreadyScheduled(_)
        ));
    }
}
