//! Storm's default scheduler: resource-oblivious round-robin.
//!
//! "The default round-robin scheduling currently deployed in Storm
//! disregards resource demands and availability" (§1). Tasks are dealt
//! round-robin over worker slots interleaved across nodes, so "tasks from
//! a single bolt or spout will most likely be placed on different physical
//! machines" (§2). Memory demands are *not* checked — over-committing a
//! node is exactly the failure mode the paper attributes to this
//! scheduler.

use crate::assignment::Assignment;
use crate::error::ScheduleError;
use crate::global_state::GlobalState;
use crate::scheduler::Scheduler;
use rstorm_cluster::{Cluster, WorkerSlot};
use rstorm_topology::Topology;
use std::collections::BTreeMap;

/// Storm's default ("even") scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvenScheduler;

impl EvenScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self
    }

    /// Worker slots of all alive nodes, interleaved node-major: the first
    /// slot of every node, then the second slot of every node, and so on —
    /// the order Storm's even scheduler deals executors into.
    fn interleaved_slots(cluster: &Cluster) -> Vec<WorkerSlot> {
        let nodes: Vec<_> = cluster.alive_nodes().collect();
        let max_slots = nodes.iter().map(|n| n.slots().len()).max().unwrap_or(0);
        let mut slots = Vec::new();
        for round in 0..max_slots {
            for node in &nodes {
                if let Some(slot) = node.slots().get(round) {
                    slots.push(slot.clone());
                }
            }
        }
        slots
    }
}

impl Scheduler for EvenScheduler {
    fn name(&self) -> &str {
        "default"
    }

    fn schedule(
        &self,
        topology: &Topology,
        cluster: &Cluster,
        state: &mut GlobalState,
    ) -> Result<Assignment, ScheduleError> {
        if state.is_scheduled(topology.id().as_str()) {
            return Err(ScheduleError::AlreadyScheduled(topology.id().clone()));
        }
        let mut slots = Self::interleaved_slots(cluster);
        if slots.is_empty() {
            return Err(ScheduleError::NoAliveNodes);
        }
        // Start from the least-occupied slots so a second topology
        // continues the round-robin where the first left off, as Storm's
        // slot-sorting does. The sort is stable, preserving the
        // cross-node interleaving within each occupancy class.
        slots.sort_by_key(|s| state.slot_occupancy(s));
        // Storm packs a topology's executors into `topology.workers`
        // worker processes; the default scheduler never uses more slots
        // than that, whatever the executor count.
        if let Some(workers) = topology.num_workers() {
            slots.truncate((workers as usize).max(1));
        }

        // No undo log needed: past this point nothing can fail, so the
        // loop below never has to be rolled back (unlike R-Storm's
        // selection loop, which can hit the hard memory constraint
        // mid-topology).
        let task_set = topology.task_set();
        let mut mapping = BTreeMap::new();
        for (i, task) in task_set.tasks().iter().enumerate() {
            let slot = slots[i % slots.len()].clone();
            let request = task_set
                .resources(task.id)
                .expect("task set provides resources for its own tasks");
            // Resource-oblivious: reserve without any feasibility check.
            // Slots come from the cluster's own alive list, so the
            // reservation only fails on a state keyed to another cluster.
            state.reserve(topology.id(), &slot.node, request)?;
            state.occupy_slot(&slot);
            mapping.insert(task.id, slot);
        }
        let assignment = Assignment::new(topology.id().clone(), mapping);
        state.commit(assignment.clone());
        Ok(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstorm_cluster::{ClusterBuilder, ResourceCapacity};
    use rstorm_topology::{TaskId, TopologyBuilder};

    fn cluster(nodes: u32) -> Cluster {
        ClusterBuilder::new()
            .homogeneous_racks(2, nodes / 2, ResourceCapacity::emulab_node(), 4)
            .build()
            .unwrap()
    }

    fn topology(name: &str, spouts: u32, bolts: u32) -> Topology {
        let mut b = TopologyBuilder::new(name);
        b.set_spout("s", spouts).set_memory_load(512.0);
        b.set_bolt("b", bolts)
            .shuffle_grouping("s")
            .set_memory_load(512.0);
        b.build().unwrap()
    }

    #[test]
    fn consecutive_tasks_land_on_different_nodes() {
        let c = cluster(12);
        let t = topology("t", 6, 6);
        let mut state = GlobalState::new(&c);
        let a = EvenScheduler::new().schedule(&t, &c, &mut state).unwrap();
        assert_eq!(a.len(), 12);
        // Twelve tasks over twelve nodes: every node gets exactly one.
        assert_eq!(a.used_nodes().len(), 12);
        for i in 0..11u32 {
            assert_ne!(
                a.node_of(TaskId(i)).unwrap(),
                a.node_of(TaskId(i + 1)).unwrap(),
                "round-robin must alternate nodes"
            );
        }
    }

    #[test]
    fn wraps_around_when_tasks_exceed_slots() {
        let c = cluster(2); // 2 nodes × 4 slots = 8 slots
        let t = topology("t", 5, 5);
        let mut state = GlobalState::new(&c);
        let a = EvenScheduler::new().schedule(&t, &c, &mut state).unwrap();
        assert_eq!(a.len(), 10);
        assert_eq!(a.used_nodes().len(), 2);
    }

    #[test]
    fn ignores_memory_constraints() {
        // 1 node of 2048 MB; ten 512 MB tasks = 5120 MB demanded.
        let c = ClusterBuilder::new()
            .add_node("only", "r0", ResourceCapacity::emulab_node(), 4)
            .build()
            .unwrap();
        let t = topology("t", 5, 5);
        let mut state = GlobalState::new(&c);
        let a = EvenScheduler::new().schedule(&t, &c, &mut state).unwrap();
        assert_eq!(a.len(), 10, "default Storm schedules regardless");
        assert!(
            state.remaining("only").unwrap().memory_mb < 0.0,
            "node is over-committed — the failure mode the paper describes"
        );
    }

    #[test]
    fn second_topology_continues_round_robin() {
        let c = cluster(4);
        let mut state = GlobalState::new(&c);
        let t1 = topology("t1", 1, 1);
        let t2 = topology("t2", 1, 1);
        let a1 = EvenScheduler::new().schedule(&t1, &c, &mut state).unwrap();
        let a2 = EvenScheduler::new().schedule(&t2, &c, &mut state).unwrap();
        let used1 = a1.used_slots();
        let used2 = a2.used_slots();
        assert!(
            used1.intersection(&used2).count() == 0,
            "with free slots available, topologies do not share workers"
        );
    }

    #[test]
    fn num_workers_limits_slots_used() {
        let c = cluster(12);
        let mut b = TopologyBuilder::new("packed");
        b.set_num_workers(4);
        b.set_spout("s", 6).set_memory_load(128.0);
        b.set_bolt("b", 6)
            .shuffle_grouping("s")
            .set_memory_load(128.0);
        let t = b.build().unwrap();
        let mut state = GlobalState::new(&c);
        let a = EvenScheduler::new().schedule(&t, &c, &mut state).unwrap();
        assert_eq!(a.len(), 12);
        assert_eq!(a.used_slots().len(), 4, "packed into topology.workers");
        assert_eq!(a.used_nodes().len(), 4);
    }

    #[test]
    fn dead_nodes_are_skipped() {
        let mut c = cluster(4);
        c.kill_node("rack-0-node-0");
        let t = topology("t", 3, 3);
        let mut state = GlobalState::new(&c);
        let a = EvenScheduler::new().schedule(&t, &c, &mut state).unwrap();
        assert!(a.used_nodes().iter().all(|n| n.as_str() != "rack-0-node-0"));
    }

    #[test]
    fn empty_cluster_is_an_error() {
        let mut c = cluster(2);
        c.kill_node("rack-0-node-0");
        c.kill_node("rack-1-node-0");
        let t = topology("t", 1, 1);
        let mut state = GlobalState::new(&c);
        assert_eq!(
            EvenScheduler::new()
                .schedule(&t, &c, &mut state)
                .unwrap_err(),
            ScheduleError::NoAliveNodes
        );
    }
}
