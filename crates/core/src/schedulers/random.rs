//! Uniform random placement — the ablation study's placement-quality
//! floor. Deterministic given its seed.

use crate::assignment::Assignment;
use crate::error::ScheduleError;
use crate::global_state::GlobalState;
use crate::scheduler::Scheduler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rstorm_cluster::{Cluster, WorkerSlot};
use rstorm_topology::Topology;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Places every task on a uniformly random worker slot of an alive node.
#[derive(Debug)]
pub struct RandomScheduler {
    rng: Mutex<StdRng>,
}

impl RandomScheduler {
    /// Creates a scheduler seeded with `seed` (same seed → same
    /// placements).
    pub fn seeded(seed: u64) -> Self {
        Self {
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }
}

impl Default for RandomScheduler {
    fn default() -> Self {
        Self::seeded(0)
    }
}

impl Scheduler for RandomScheduler {
    fn name(&self) -> &str {
        "random"
    }

    fn schedule(
        &self,
        topology: &Topology,
        cluster: &Cluster,
        state: &mut GlobalState,
    ) -> Result<Assignment, ScheduleError> {
        if state.is_scheduled(topology.id().as_str()) {
            return Err(ScheduleError::AlreadyScheduled(topology.id().clone()));
        }
        let slots: Vec<WorkerSlot> = cluster.alive_slots().cloned().collect();
        if slots.is_empty() {
            return Err(ScheduleError::NoAliveNodes);
        }
        // Like the even scheduler, nothing past the slot check can fail,
        // so no undo log is needed for atomicity.
        let task_set = topology.task_set();
        let mut rng = self.rng.lock().expect("rng mutex poisoned");
        let mut mapping = BTreeMap::new();
        for task in task_set.tasks() {
            let slot = slots[rng.gen_range(0..slots.len())].clone();
            let request = task_set
                .resources(task.id)
                .expect("task set provides resources for its own tasks");
            state.reserve(topology.id(), &slot.node, request)?;
            state.occupy_slot(&slot);
            mapping.insert(task.id, slot);
        }
        let assignment = Assignment::new(topology.id().clone(), mapping);
        state.commit(assignment.clone());
        Ok(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstorm_cluster::{ClusterBuilder, ResourceCapacity};
    use rstorm_topology::TopologyBuilder;

    fn cluster() -> Cluster {
        ClusterBuilder::new()
            .homogeneous_racks(2, 3, ResourceCapacity::emulab_node(), 4)
            .build()
            .unwrap()
    }

    fn topology() -> Topology {
        let mut b = TopologyBuilder::new("t");
        b.set_spout("s", 8);
        b.set_bolt("b", 8).shuffle_grouping("s");
        b.build().unwrap()
    }

    #[test]
    fn same_seed_same_placement() {
        let c = cluster();
        let t = topology();
        let a1 = RandomScheduler::seeded(7)
            .schedule(&t, &c, &mut GlobalState::new(&c))
            .unwrap();
        let a2 = RandomScheduler::seeded(7)
            .schedule(&t, &c, &mut GlobalState::new(&c))
            .unwrap();
        assert_eq!(a1, a2);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let c = cluster();
        let t = topology();
        let a1 = RandomScheduler::seeded(1)
            .schedule(&t, &c, &mut GlobalState::new(&c))
            .unwrap();
        let a2 = RandomScheduler::seeded(2)
            .schedule(&t, &c, &mut GlobalState::new(&c))
            .unwrap();
        assert_ne!(a1, a2);
    }

    #[test]
    fn places_every_task() {
        let c = cluster();
        let t = topology();
        let a = RandomScheduler::default()
            .schedule(&t, &c, &mut GlobalState::new(&c))
            .unwrap();
        assert_eq!(a.len(), 16);
    }
}
