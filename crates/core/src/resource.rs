//! Resource-space geometry: the weighted Euclidean distance of
//! Algorithm 4 and its normalization.
//!
//! The paper models both a task's demand and a node's availability as
//! vectors in R^n (n = 3 here: memory, CPU, bandwidth-as-network-distance)
//! and selects the node *closest* to the task's demand that violates no
//! hard constraint. Because the raw dimensions have wildly different units
//! (megabytes vs. CPU points vs. hop costs), the paper attaches weights to
//! the soft constraints "so that values can be normalized for comparison,
//! as well as for allowing users to decide which constraints are more
//! valued" (§4). [`NormalizationContext`] captures the per-cluster scale
//! factors; [`SoftConstraintWeights`] captures the user preference.

use rstorm_cluster::Cluster;

/// User-tunable weights for the three terms of the node-selection
/// distance (Algorithm 4's `weight_m`, `weight_c`, `weight_b`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftConstraintWeights {
    /// Weight of the memory-fit term.
    pub memory: f64,
    /// Weight of the CPU-fit term.
    pub cpu: f64,
    /// Weight of the network-distance term.
    pub network: f64,
}

impl SoftConstraintWeights {
    /// Creates a weight triple.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or not finite.
    pub fn new(memory: f64, cpu: f64, network: f64) -> Self {
        for (name, v) in [("memory", memory), ("cpu", cpu), ("network", network)] {
            assert!(
                v.is_finite() && v >= 0.0,
                "weight `{name}` must be finite and non-negative, got {v}"
            );
        }
        Self {
            memory,
            cpu,
            network,
        }
    }

    /// Disables the network-distance term (used by the ablation study to
    /// show colocation is where the network-bound speedups come from).
    pub fn without_network(mut self) -> Self {
        self.network = 0.0;
        self
    }
}

impl Default for SoftConstraintWeights {
    /// Equal weights after normalization. The network term gets a larger
    /// default weight because the paper's first-listed design property is
    /// that communicating tasks are placed close together; resource fit is
    /// the tie-breaker within a network distance class.
    fn default() -> Self {
        Self {
            memory: 1.0,
            cpu: 1.0,
            network: 10.0,
        }
    }
}

/// Per-cluster scale factors that bring the three distance terms into
/// comparable [0, 1] ranges before weighting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalizationContext {
    /// Largest node memory capacity in the cluster (MB).
    pub max_memory_mb: f64,
    /// Largest node CPU capacity in the cluster (points).
    pub max_cpu_points: f64,
    /// Largest possible scheduler network distance (inter-rack).
    pub max_network_distance: f64,
}

impl NormalizationContext {
    /// Derives the normalization scales from a cluster.
    pub fn for_cluster(cluster: &Cluster) -> Self {
        let mut max_memory_mb: f64 = 1.0;
        let mut max_cpu_points: f64 = 1.0;
        for node in cluster.nodes() {
            max_memory_mb = max_memory_mb.max(node.capacity().memory_mb);
            max_cpu_points = max_cpu_points.max(node.capacity().cpu_points);
        }
        let costs = cluster.costs();
        let max_network_distance = costs
            .distance_inter_rack
            .max(costs.distance_same_rack)
            .max(costs.distance_same_node)
            .max(1e-9);
        Self {
            max_memory_mb,
            max_cpu_points,
            max_network_distance,
        }
    }

    /// An identity context (no rescaling) for unit tests and for callers
    /// who pre-normalize their inputs.
    pub fn identity() -> Self {
        Self {
            max_memory_mb: 1.0,
            max_cpu_points: 1.0,
            max_network_distance: 1.0,
        }
    }
}

/// Algorithm 4's `Distance` procedure:
///
/// ```text
/// distance ← weight_m·(m_τ − m_θ)² + weight_c·(c_τ − c_θ)²
///          + weight_b·networkDistance(refNode, θ)²
/// return sqrt(distance)
/// ```
///
/// with each term normalized to [0, 1] by the [`NormalizationContext`]
/// first. `task_*` are the task's demands, `node_*` the node's *remaining*
/// availability, and `network_distance` the scheduler distance from the
/// topology's reference node to the candidate node.
pub fn weighted_euclidean(
    weights: &SoftConstraintWeights,
    norm: &NormalizationContext,
    task_memory_mb: f64,
    task_cpu_points: f64,
    node_memory_mb: f64,
    node_cpu_points: f64,
    network_distance: f64,
) -> f64 {
    let dm = (task_memory_mb - node_memory_mb) / norm.max_memory_mb;
    let dc = (task_cpu_points - node_cpu_points) / norm.max_cpu_points;
    let db = network_distance / norm.max_network_distance;
    (weights.memory * dm * dm + weights.cpu * dc * dc + weights.network * db * db).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstorm_cluster::{ClusterBuilder, ResourceCapacity};

    fn w(m: f64, c: f64, n: f64) -> SoftConstraintWeights {
        SoftConstraintWeights::new(m, c, n)
    }

    #[test]
    fn distance_is_zero_for_perfect_fit_at_ref_node() {
        let d = weighted_euclidean(
            &w(1.0, 1.0, 1.0),
            &NormalizationContext::identity(),
            512.0,
            50.0,
            512.0,
            50.0,
            0.0,
        );
        assert_eq!(d, 0.0);
    }

    #[test]
    fn distance_matches_hand_computation() {
        // Unnormalized: sqrt(1·(2-1)² + 1·(3-1)² + 1·2²) = 3.
        let d = weighted_euclidean(
            &w(1.0, 1.0, 1.0),
            &NormalizationContext::identity(),
            2.0,
            3.0,
            1.0,
            1.0,
            2.0,
        );
        assert!((d - 3.0).abs() < 1e-12);
    }

    #[test]
    fn weights_scale_terms() {
        let base = weighted_euclidean(
            &w(0.0, 0.0, 1.0),
            &NormalizationContext::identity(),
            9.0,
            9.0,
            0.0,
            0.0,
            2.0,
        );
        assert_eq!(base, 2.0, "only the network term remains");
        let boosted = weighted_euclidean(
            &w(0.0, 0.0, 4.0),
            &NormalizationContext::identity(),
            9.0,
            9.0,
            0.0,
            0.0,
            2.0,
        );
        assert_eq!(boosted, 4.0, "weight multiplies the squared term");
    }

    #[test]
    fn symmetric_in_fit_direction() {
        // Over-provisioned and under-provisioned by the same amount are
        // equally distant; hard constraints (checked elsewhere) are what
        // forbid the under-provisioned choice for memory.
        let ctx = NormalizationContext::identity();
        let over = weighted_euclidean(&w(1.0, 1.0, 0.0), &ctx, 1.0, 1.0, 2.0, 1.0, 0.0);
        let under = weighted_euclidean(&w(1.0, 1.0, 0.0), &ctx, 1.0, 1.0, 0.0, 1.0, 0.0);
        assert_eq!(over, under);
    }

    #[test]
    fn normalization_context_from_cluster() {
        let cluster = ClusterBuilder::new()
            .add_node(
                "small",
                "r0",
                ResourceCapacity::new(100.0, 2048.0, 100.0),
                1,
            )
            .add_node("big", "r1", ResourceCapacity::new(400.0, 16384.0, 100.0), 1)
            .build()
            .unwrap();
        let ctx = NormalizationContext::for_cluster(&cluster);
        assert_eq!(ctx.max_memory_mb, 16384.0);
        assert_eq!(ctx.max_cpu_points, 400.0);
        assert_eq!(
            ctx.max_network_distance,
            cluster.costs().distance_inter_rack
        );
    }

    #[test]
    fn normalization_makes_units_comparable() {
        // A 1024 MB memory misfit and a 50-point CPU misfit should
        // contribute comparably once normalized by 2048 MB / 100 points.
        let ctx = NormalizationContext {
            max_memory_mb: 2048.0,
            max_cpu_points: 100.0,
            max_network_distance: 5.0,
        };
        let mem_only = weighted_euclidean(&w(1.0, 0.0, 0.0), &ctx, 1024.0, 0.0, 0.0, 0.0, 0.0);
        let cpu_only = weighted_euclidean(&w(0.0, 1.0, 0.0), &ctx, 0.0, 50.0, 0.0, 0.0, 0.0);
        assert!((mem_only - 0.5).abs() < 1e-12);
        assert!((cpu_only - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "weight `cpu`")]
    fn negative_weight_rejected() {
        SoftConstraintWeights::new(1.0, -1.0, 1.0);
    }

    #[test]
    fn without_network_zeroes_term() {
        let weights = SoftConstraintWeights::default().without_network();
        assert_eq!(weights.network, 0.0);
        let d = weighted_euclidean(
            &weights,
            &NormalizationContext::identity(),
            1.0,
            1.0,
            1.0,
            1.0,
            1000.0,
        );
        assert_eq!(d, 0.0);
    }
}
