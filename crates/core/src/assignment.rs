//! Schedules: the mapping from tasks to worker slots.

use rstorm_cluster::{NodeId, WorkerSlot};
use rstorm_topology::{TaskId, TopologyId};
use std::collections::{BTreeMap, BTreeSet};

/// The schedule of one topology: every task mapped to a worker slot.
///
/// Mirrors Storm's `SchedulerAssignment`. The mapping is normally total
/// over the topology's task set — partial schedules are represented as
/// errors, not as partial assignments, matching the paper's atomic-commit
/// note ("the actual assignment of task to node is done in an atomic
/// fashion after the schedule mapping between all tasks to nodes has been
/// determined", §4.1). The one sanctioned exception is graceful
/// degradation after failures: an assignment may then carry an explicit
/// [`unplaced`](Assignment::unplaced) set declaring which tasks the
/// surviving cluster could not fit. A task missing from the slot map
/// *without* being declared unplaced is still a plan violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    topology: TopologyId,
    slots: BTreeMap<TaskId, WorkerSlot>,
    unplaced: BTreeSet<TaskId>,
}

impl Assignment {
    /// Creates an assignment for `topology` from a complete task→slot map.
    pub fn new(topology: impl Into<TopologyId>, slots: BTreeMap<TaskId, WorkerSlot>) -> Self {
        Self {
            topology: topology.into(),
            slots,
            unplaced: BTreeSet::new(),
        }
    }

    /// Creates a degraded assignment that places only part of the task
    /// set, declaring every task in `unplaced` as deliberately deferred.
    /// Tasks may not appear in both maps.
    ///
    /// # Panics
    ///
    /// Panics if a task is both placed and declared unplaced.
    pub fn with_unplaced(
        topology: impl Into<TopologyId>,
        slots: BTreeMap<TaskId, WorkerSlot>,
        unplaced: BTreeSet<TaskId>,
    ) -> Self {
        assert!(
            unplaced.iter().all(|t| !slots.contains_key(t)),
            "a task cannot be both placed and declared unplaced"
        );
        Self {
            topology: topology.into(),
            slots,
            unplaced,
        }
    }

    /// The topology this assignment schedules.
    pub fn topology(&self) -> &TopologyId {
        &self.topology
    }

    /// Tasks this assignment deliberately left unplaced (graceful
    /// degradation after failures). Empty for a full schedule.
    pub fn unplaced(&self) -> &BTreeSet<TaskId> {
        &self.unplaced
    }

    /// True if any task is declared unplaced.
    pub fn is_degraded(&self) -> bool {
        !self.unplaced.is_empty()
    }

    /// The slot a task was placed on.
    pub fn slot_of(&self, task: TaskId) -> Option<&WorkerSlot> {
        self.slots.get(&task)
    }

    /// The node a task was placed on.
    pub fn node_of(&self, task: TaskId) -> Option<&NodeId> {
        self.slots.get(&task).map(|s| &s.node)
    }

    /// Iterates `(task, slot)` pairs in task order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &WorkerSlot)> {
        self.slots.iter().map(|(t, s)| (*t, s))
    }

    /// Number of scheduled tasks.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no tasks are scheduled.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Tasks placed on `node`, in task order.
    pub fn tasks_on_node(&self, node: &str) -> Vec<TaskId> {
        self.slots
            .iter()
            .filter(|(_, s)| s.node.as_str() == node)
            .map(|(t, _)| *t)
            .collect()
    }

    /// The distinct nodes this assignment uses, sorted.
    pub fn used_nodes(&self) -> BTreeSet<NodeId> {
        self.slots.values().map(|s| s.node.clone()).collect()
    }

    /// The distinct slots this assignment uses, sorted.
    pub fn used_slots(&self) -> BTreeSet<WorkerSlot> {
        self.slots.values().cloned().collect()
    }
}

/// The combined schedules of several topologies sharing one cluster —
/// what Nimbus holds after a scheduling round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedulingPlan {
    assignments: BTreeMap<TopologyId, Assignment>,
}

impl SchedulingPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a topology's assignment.
    pub fn insert(&mut self, assignment: Assignment) -> Option<Assignment> {
        self.assignments
            .insert(assignment.topology().clone(), assignment)
    }

    /// Removes a topology's assignment.
    pub fn remove(&mut self, topology: &str) -> Option<Assignment> {
        self.assignments.remove(topology)
    }

    /// The assignment of one topology.
    pub fn assignment(&self, topology: &str) -> Option<&Assignment> {
        self.assignments.get(topology)
    }

    /// Iterates assignments in topology-id order.
    pub fn iter(&self) -> impl Iterator<Item = &Assignment> {
        self.assignments.values()
    }

    /// Number of scheduled topologies.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True if no topologies are scheduled.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Topologies that have any task on `node` (for failure handling).
    pub fn topologies_on_node(&self, node: &str) -> Vec<&TopologyId> {
        self.assignments
            .values()
            .filter(|a| !a.tasks_on_node(node).is_empty())
            .map(Assignment::topology)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Assignment {
        let mut m = BTreeMap::new();
        m.insert(TaskId(0), WorkerSlot::new("n0", 6700));
        m.insert(TaskId(1), WorkerSlot::new("n0", 6700));
        m.insert(TaskId(2), WorkerSlot::new("n1", 6701));
        Assignment::new("t", m)
    }

    #[test]
    fn lookups() {
        let a = sample();
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert_eq!(a.slot_of(TaskId(2)).unwrap().port, 6701);
        assert_eq!(a.node_of(TaskId(0)).unwrap().as_str(), "n0");
        assert!(a.slot_of(TaskId(9)).is_none());
    }

    #[test]
    fn node_and_slot_aggregations() {
        let a = sample();
        assert_eq!(a.tasks_on_node("n0"), vec![TaskId(0), TaskId(1)]);
        assert_eq!(a.used_nodes().len(), 2);
        assert_eq!(a.used_slots().len(), 2);
    }

    #[test]
    fn plan_insert_and_failure_query() {
        let mut plan = SchedulingPlan::new();
        assert!(plan.is_empty());
        plan.insert(sample());
        assert_eq!(plan.len(), 1);
        assert!(plan.assignment("t").is_some());
        assert_eq!(plan.topologies_on_node("n1").len(), 1);
        assert!(plan.topologies_on_node("n9").is_empty());
        assert!(plan.remove("t").is_some());
        assert!(plan.is_empty());
    }

    #[test]
    fn plan_replaces_same_topology() {
        let mut plan = SchedulingPlan::new();
        plan.insert(sample());
        let replaced = plan.insert(sample());
        assert!(replaced.is_some());
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn degraded_assignment_declares_unplaced_tasks() {
        let mut m = BTreeMap::new();
        m.insert(TaskId(0), WorkerSlot::new("n0", 6700));
        let unplaced: BTreeSet<TaskId> = [TaskId(1), TaskId(2)].into();
        let a = Assignment::with_unplaced("t", m, unplaced);
        assert!(a.is_degraded());
        assert_eq!(a.unplaced().len(), 2);
        assert!(a.unplaced().contains(&TaskId(1)));
        assert!(!sample().is_degraded());
        assert!(sample().unplaced().is_empty());
    }

    #[test]
    #[should_panic(expected = "both placed and declared unplaced")]
    fn overlapping_unplaced_rejected() {
        let mut m = BTreeMap::new();
        m.insert(TaskId(0), WorkerSlot::new("n0", 6700));
        Assignment::with_unplaced("t", m, [TaskId(0)].into());
    }
}
