//! Node selection (Algorithm 4).
//!
//! The first task of a topology anchors the **reference node**: the node
//! with the most remaining resources inside the rack with the most
//! remaining resources. Every task (including the first) is then placed on
//! the node minimizing the weighted Euclidean distance between the task's
//! demand vector and the node's remaining availability vector, with the
//! network-distance-to-refNode as the bandwidth term — "tasks will be
//! patched as tightly on or closely around the Ref Node as resource
//! constraints allow" (§4.2). Nodes whose remaining memory cannot hold the
//! task are excluded (the hard constraint `H_θ > H_τ`).

use crate::global_state::GlobalState;
use crate::resource::{weighted_euclidean, NormalizationContext, SoftConstraintWeights};
use rstorm_cluster::{Cluster, NodeId};
use rstorm_topology::ResourceRequest;

/// Stateful node selector for scheduling one topology.
#[derive(Debug)]
pub struct NodeSelector<'a> {
    cluster: &'a Cluster,
    weights: &'a SoftConstraintWeights,
    norm: NormalizationContext,
    ref_node: Option<NodeId>,
}

impl<'a> NodeSelector<'a> {
    /// Creates a selector for one topology-scheduling pass.
    pub fn new(cluster: &'a Cluster, weights: &'a SoftConstraintWeights) -> Self {
        Self {
            cluster,
            weights,
            norm: NormalizationContext::for_cluster(cluster),
            ref_node: None,
        }
    }

    /// The reference node, once anchored by the first selection.
    pub fn ref_node(&self) -> Option<&NodeId> {
        self.ref_node.as_ref()
    }

    /// Selects the node for a task with demand `request` given current
    /// remaining resources, or `Err(best_available_mb)` if no node
    /// satisfies the hard memory constraint.
    ///
    /// Selection is two-pass, matching the production Resource Aware
    /// Scheduler's behaviour: the first pass only considers nodes whose
    /// remaining *soft* CPU budget also covers the task (so a feasible
    /// cluster is never over-committed); if no such node exists the soft
    /// constraint is relaxed — CPU may then be overloaded, which is what
    /// distinguishes it from the hard memory constraint.
    pub fn select(
        &mut self,
        state: &GlobalState,
        request: &ResourceRequest,
    ) -> Result<NodeId, f64> {
        if self.ref_node.is_none() {
            self.ref_node = self.find_ref_node(state);
        }
        let ref_node = match &self.ref_node {
            Some(n) => n.clone(),
            None => return Err(0.0),
        };

        let mut best: Option<(f64, &NodeId)> = None;
        let mut best_relaxed: Option<(f64, &NodeId)> = None;
        let mut best_available_mb: f64 = 0.0;
        for (node, remaining) in state.iter_remaining() {
            best_available_mb = best_available_mb.max(remaining.memory_mb);
            // Hard constraint: never over-commit memory.
            if remaining.memory_mb < request.memory_mb {
                continue;
            }
            let network_distance = self.cluster.node_distance(ref_node.as_str(), node.as_str());
            let d = weighted_euclidean(
                self.weights,
                &self.norm,
                request.memory_mb,
                request.cpu_points,
                remaining.memory_mb,
                remaining.cpu_points,
                network_distance,
            );
            // Strict `<` plus ordered iteration makes ties deterministic
            // (first node in id order wins).
            if remaining.cpu_points >= request.cpu_points
                && best.is_none_or(|(bd, _)| d < bd)
            {
                best = Some((d, node));
            }
            if best_relaxed.is_none_or(|(bd, _)| d < bd) {
                best_relaxed = Some((d, node));
            }
        }
        match best.or(best_relaxed) {
            Some((_, node)) => Ok(node.clone()),
            None => Err(best_available_mb),
        }
    }

    /// Algorithm 4 lines 6-9: the node with the most resources in the
    /// rack with the most resources.
    fn find_ref_node(&self, state: &GlobalState) -> Option<NodeId> {
        let (max_cpu, max_mem) = (self.norm.max_cpu_points, self.norm.max_memory_mb);
        let mut best_rack: Option<(f64, &str)> = None;
        for rack in self.cluster.racks() {
            let abundance: f64 = self
                .cluster
                .rack_nodes(rack.as_str())
                .iter()
                .filter_map(|n| state.remaining(n.as_str()))
                .map(|r| r.abundance(max_cpu, max_mem))
                .sum();
            let has_alive = self
                .cluster
                .rack_nodes(rack.as_str())
                .iter()
                .any(|n| state.remaining(n.as_str()).is_some());
            if !has_alive {
                continue;
            }
            if best_rack.is_none_or(|(b, _)| abundance > b) {
                best_rack = Some((abundance, rack.as_str()));
            }
        }
        let rack = best_rack?.1;

        let mut best_node: Option<(f64, &NodeId)> = None;
        for node in self.cluster.rack_nodes(rack) {
            let Some(remaining) = state.remaining(node.as_str()) else {
                continue;
            };
            let abundance = remaining.abundance(max_cpu, max_mem);
            if best_node.is_none_or(|(b, _)| abundance > b) {
                best_node = Some((abundance, node));
            }
        }
        best_node.map(|(_, n)| n.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstorm_cluster::{ClusterBuilder, ResourceCapacity};
    use rstorm_topology::TopologyId;

    fn cluster() -> Cluster {
        ClusterBuilder::new()
            .homogeneous_racks(2, 3, ResourceCapacity::emulab_node(), 4)
            .build()
            .unwrap()
    }

    #[test]
    fn ref_node_is_most_abundant_in_most_abundant_rack() {
        let c = cluster();
        let mut state = GlobalState::new(&c);
        // Drain rack-0 a bit so rack-1 is the most abundant.
        state.reserve(
            &TopologyId::new("x"),
            &NodeId::new("rack-0-node-0"),
            &ResourceRequest::new(50.0, 1024.0, 0.0),
        );
        // Drain rack-1-node-0 so node-1 is the most abundant there.
        state.reserve(
            &TopologyId::new("x"),
            &NodeId::new("rack-1-node-0"),
            &ResourceRequest::new(10.0, 128.0, 0.0),
        );
        let weights = SoftConstraintWeights::default();
        let mut sel = NodeSelector::new(&c, &weights);
        let node = sel
            .select(&state, &ResourceRequest::new(10.0, 64.0, 0.0))
            .unwrap();
        assert_eq!(sel.ref_node().unwrap().as_str(), "rack-1-node-1");
        // With plenty of room everywhere, the chosen node is near the ref
        // node (same rack at minimum).
        assert_eq!(c.rack_of(node.as_str()).unwrap().as_str(), "rack-1");
    }

    #[test]
    fn memory_hard_constraint_excludes_full_nodes() {
        let c = cluster();
        let mut state = GlobalState::new(&c);
        // Fill every node except one below the task's demand.
        for node in c.nodes() {
            if node.id().as_str() != "rack-1-node-2" {
                state.reserve(
                    &TopologyId::new("x"),
                    node.id(),
                    &ResourceRequest::new(0.0, 1900.0, 0.0),
                );
            }
        }
        let weights = SoftConstraintWeights::default();
        let mut sel = NodeSelector::new(&c, &weights);
        let node = sel
            .select(&state, &ResourceRequest::new(10.0, 512.0, 0.0))
            .unwrap();
        assert_eq!(node.as_str(), "rack-1-node-2");
    }

    #[test]
    fn reports_best_available_on_failure() {
        let c = cluster();
        let mut state = GlobalState::new(&c);
        for node in c.nodes() {
            state.reserve(
                &TopologyId::new("x"),
                node.id(),
                &ResourceRequest::new(0.0, 1500.0, 0.0),
            );
        }
        let weights = SoftConstraintWeights::default();
        let mut sel = NodeSelector::new(&c, &weights);
        let err = sel
            .select(&state, &ResourceRequest::new(0.0, 1024.0, 0.0))
            .unwrap_err();
        assert_eq!(err, 548.0);
    }

    #[test]
    fn successive_selections_stay_near_ref_node() {
        let c = cluster();
        let mut state = GlobalState::new(&c);
        let weights = SoftConstraintWeights::default();
        let mut sel = NodeSelector::new(&c, &weights);
        let t = TopologyId::new("t");
        let req = ResourceRequest::new(30.0, 256.0, 0.0);
        let mut nodes = Vec::new();
        for _ in 0..6 {
            let n = sel.select(&state, &req).unwrap();
            state.reserve(&t, &n, &req);
            nodes.push(n);
        }
        let ref_rack = c.rack_of(sel.ref_node().unwrap().as_str()).unwrap();
        for n in &nodes {
            assert_eq!(
                c.rack_of(n.as_str()).unwrap(),
                ref_rack,
                "all six light tasks fit within the reference rack"
            );
        }
    }

    #[test]
    fn no_nodes_yields_error() {
        let mut c = cluster();
        for i in 0..3 {
            c.kill_node(&format!("rack-0-node-{i}"));
            c.kill_node(&format!("rack-1-node-{i}"));
        }
        let state = GlobalState::new(&c);
        let weights = SoftConstraintWeights::default();
        let mut sel = NodeSelector::new(&c, &weights);
        assert!(sel.select(&state, &ResourceRequest::zero()).is_err());
    }
}
