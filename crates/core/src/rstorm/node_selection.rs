//! Node selection (Algorithm 4).
//!
//! The first task of a topology anchors the **reference node**: the node
//! with the most remaining resources inside the rack with the most
//! remaining resources. Every task (including the first) is then placed on
//! the node minimizing the weighted Euclidean distance between the task's
//! demand vector and the node's remaining availability vector, with the
//! network-distance-to-refNode as the bandwidth term — "tasks will be
//! patched as tightly on or closely around the Ref Node as resource
//! constraints allow" (§4.2). Nodes whose remaining memory cannot hold the
//! task are excluded (the hard constraint `H_θ > H_τ`).
//!
//! ## Two implementations, one answer
//!
//! Selection has an **indexed** fast path and a **scan** reference path.
//! The fast path works on [`GlobalState`]'s dense vectors keyed by the
//! cluster's [`ClusterIndex`]: reference racks come from maintained
//! per-rack aggregates instead of a full-cluster rescan, the three
//! possible network terms are computed once per call instead of once per
//! candidate, whole racks failing the hard memory constraint are skipped,
//! and no strings are hashed or compared anywhere in the loop. The scan
//! path is the direct transcription of Algorithm 4 over the string API.
//! Both paths are required to produce **byte-identical** results — same
//! floating-point operations in the same order, same id-order tie
//! breaking — which `tests/properties.rs` enforces on randomized inputs.
//! The fast path engages only when the state was built from this
//! cluster's index (checked via [`Arc::ptr_eq`]); otherwise selection
//! silently falls back to the scan.

use crate::global_state::GlobalState;
use crate::resource::{weighted_euclidean, NormalizationContext, SoftConstraintWeights};
use rstorm_cluster::{Cluster, ClusterIndex, NodeId};
use rstorm_topology::ResourceRequest;
use std::sync::Arc;

/// Stateful node selector for scheduling one topology.
#[derive(Debug)]
pub struct NodeSelector<'a> {
    cluster: &'a Cluster,
    index: Arc<ClusterIndex>,
    weights: &'a SoftConstraintWeights,
    norm: NormalizationContext,
    ref_node: Option<NodeId>,
    force_scan: bool,
}

impl<'a> NodeSelector<'a> {
    /// Creates a selector for one topology-scheduling pass.
    pub fn new(cluster: &'a Cluster, weights: &'a SoftConstraintWeights) -> Self {
        Self {
            cluster,
            index: cluster.shared_index(),
            weights,
            norm: NormalizationContext::for_cluster(cluster),
            ref_node: None,
            force_scan: false,
        }
    }

    /// Creates a selector pinned to the scan (reference) path, bypassing
    /// the indexed fast path even when it would apply. Exists so parity
    /// tests and benchmarks can compare the two implementations.
    pub fn new_scan_only(cluster: &'a Cluster, weights: &'a SoftConstraintWeights) -> Self {
        Self {
            force_scan: true,
            ..Self::new(cluster, weights)
        }
    }

    /// The reference node, once anchored by the first selection.
    pub fn ref_node(&self) -> Option<&NodeId> {
        self.ref_node.as_ref()
    }

    /// Selects the node for a task with demand `request` given current
    /// remaining resources, or `Err(best_available_mb)` if no node
    /// satisfies the hard memory constraint.
    ///
    /// Selection is two-pass, matching the production Resource Aware
    /// Scheduler's behaviour: the first pass only considers nodes whose
    /// remaining *soft* CPU budget also covers the task (so a feasible
    /// cluster is never over-committed); if no such node exists the soft
    /// constraint is relaxed — CPU may then be overloaded, which is what
    /// distinguishes it from the hard memory constraint.
    pub fn select(
        &mut self,
        state: &GlobalState,
        request: &ResourceRequest,
    ) -> Result<NodeId, f64> {
        // The dense vectors are only meaningful if the state was built
        // from this cluster's own index; the normalization maxima then
        // agree with the index's by construction.
        let fast = !self.force_scan && Arc::ptr_eq(state.cluster_index(), &self.index);
        if self.ref_node.is_none() {
            self.ref_node = if fast {
                self.find_ref_node_indexed(state)
            } else {
                self.find_ref_node_scan(state)
            };
        }
        let ref_node = match &self.ref_node {
            Some(n) => n.clone(),
            None => return Err(0.0),
        };
        if fast {
            self.select_indexed(state, request, &ref_node)
        } else {
            self.select_scan(state, request, &ref_node)
        }
    }

    /// The indexed fast path: dense scan, precomputed network terms, and
    /// whole-rack skipping. Byte-identical to [`Self::select_scan`].
    fn select_indexed(
        &self,
        state: &GlobalState,
        request: &ResourceRequest,
        ref_node: &NodeId,
    ) -> Result<NodeId, f64> {
        let index = &self.index;
        let ref_idx = index
            .node_index(ref_node.as_str())
            .expect("reference node is part of the layout");
        let ref_rack = index.rack_of(ref_idx);

        // Hard-constraint fail-fast: the scan path's `best_available_mb`
        // is a running max over alive nodes starting at 0.0, which equals
        // this fold over the maintained per-rack maxima (max is
        // associative; NEG_INFINITY rack sentinels lose against 0.0). If
        // any rack can hold the task, the selection below must succeed
        // and `best_available_mb` is never reported.
        let mut best_available_mb: f64 = 0.0;
        for &m in state.rack_max_memories() {
            best_available_mb = best_available_mb.max(m);
        }
        if best_available_mb < request.memory_mb {
            return Err(best_available_mb);
        }

        // The network term only depends on the candidate's relation to
        // the reference node, so its three possible values are computed
        // once — with exactly the scan path's operation order.
        let net_term = |distance: f64| {
            let db = distance / self.norm.max_network_distance;
            self.weights.network * db * db
        };
        let nt_same = net_term(index.distance_same_node());
        let nt_rack = net_term(index.distance_same_rack());
        let nt_inter = net_term(index.distance_inter_rack());

        let dense = state.remaining_dense();
        let alive = state.alive_dense();
        let mut best: Option<(f64, u32)> = None;
        let mut best_relaxed: Option<(f64, u32)> = None;
        let mut consider = |i: u32| {
            let r = &dense[i as usize];
            if !alive[i as usize] || r.memory_mb < request.memory_mb {
                return;
            }
            let nt = if i == ref_idx {
                nt_same
            } else if index.rack_of(i) == ref_rack {
                nt_rack
            } else {
                nt_inter
            };
            let dm = (request.memory_mb - r.memory_mb) / self.norm.max_memory_mb;
            let dc = (request.cpu_points - r.cpu_points) / self.norm.max_cpu_points;
            let d = (self.weights.memory * dm * dm + self.weights.cpu * dc * dc + nt).sqrt();
            // Strict `<` plus dense (= id) iteration order keeps ties
            // deterministic: first node in id order wins, as on the scan
            // path.
            if r.cpu_points >= request.cpu_points && best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, i));
            }
            if best_relaxed.is_none_or(|(bd, _)| d < bd) {
                best_relaxed = Some((d, i));
            }
        };
        match index.rack_ranges() {
            Some(ranges) => {
                // Ranges are sorted by start, so visiting them in order
                // is still a full id-order scan — minus the racks where
                // every node would fail the hard memory check (the scan
                // path `continue`s those nodes before either `best`, so
                // skipping them cannot change the outcome).
                let rack_max = state.rack_max_memories();
                for range in ranges {
                    if rack_max[range.rack as usize] < request.memory_mb {
                        continue;
                    }
                    for i in range.start..range.end {
                        consider(i);
                    }
                }
            }
            None => {
                for i in 0..dense.len() as u32 {
                    consider(i);
                }
            }
        }
        match best.or(best_relaxed) {
            Some((_, i)) => Ok(index.node_id(i).clone()),
            // Unreachable after the fail-fast, but mirror the scan path.
            None => Err(best_available_mb),
        }
    }

    /// The scan (reference) path: Algorithm 4 transcribed directly over
    /// the string-keyed state API.
    fn select_scan(
        &self,
        state: &GlobalState,
        request: &ResourceRequest,
        ref_node: &NodeId,
    ) -> Result<NodeId, f64> {
        let mut best: Option<(f64, &NodeId)> = None;
        let mut best_relaxed: Option<(f64, &NodeId)> = None;
        let mut best_available_mb: f64 = 0.0;
        for (node, remaining) in state.iter_remaining() {
            best_available_mb = best_available_mb.max(remaining.memory_mb);
            // Hard constraint: never over-commit memory.
            if remaining.memory_mb < request.memory_mb {
                continue;
            }
            // A node in scheduler state but absent from the cluster layout
            // can only appear via a foreign-state fallback after layout
            // churn; skip it rather than crash the scheduling loop.
            let Ok(network_distance) = self.cluster.node_distance(ref_node.as_str(), node.as_str())
            else {
                continue;
            };
            let d = weighted_euclidean(
                self.weights,
                &self.norm,
                request.memory_mb,
                request.cpu_points,
                remaining.memory_mb,
                remaining.cpu_points,
                network_distance,
            );
            // Strict `<` plus ordered iteration makes ties deterministic
            // (first node in id order wins).
            if remaining.cpu_points >= request.cpu_points && best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, node));
            }
            if best_relaxed.is_none_or(|(bd, _)| d < bd) {
                best_relaxed = Some((d, node));
            }
        }
        match best.or(best_relaxed) {
            Some((_, node)) => Ok(node.clone()),
            None => Err(best_available_mb),
        }
    }

    /// Algorithm 4 lines 6-9 on the fast path: the rack comes straight
    /// from the maintained per-rack aggregates; only the winning rack's
    /// members are then scanned (in declaration order, like the scan
    /// path).
    fn find_ref_node_indexed(&self, state: &GlobalState) -> Option<NodeId> {
        let abundances = state.rack_abundances();
        let alive_counts = state.rack_alive_counts();
        let mut best_rack: Option<(f64, u32)> = None;
        for rack in 0..self.index.rack_count() as u32 {
            if alive_counts[rack as usize] == 0 {
                continue;
            }
            let abundance = abundances[rack as usize];
            if best_rack.is_none_or(|(b, _)| abundance > b) {
                best_rack = Some((abundance, rack));
            }
        }
        let rack = best_rack?.1;

        let (max_cpu, max_mem) = (self.norm.max_cpu_points, self.norm.max_memory_mb);
        let dense = state.remaining_dense();
        let alive = state.alive_dense();
        let mut best_node: Option<(f64, u32)> = None;
        for &i in self.index.rack_members(rack) {
            if !alive[i as usize] {
                continue;
            }
            let abundance = dense[i as usize].abundance(max_cpu, max_mem);
            if best_node.is_none_or(|(b, _)| abundance > b) {
                best_node = Some((abundance, i));
            }
        }
        best_node.map(|(_, i)| self.index.node_id(i).clone())
    }

    /// Algorithm 4 lines 6-9 on the scan path: the node with the most
    /// resources in the rack with the most resources. One pass per rack
    /// accumulates the abundance sum and liveness together.
    fn find_ref_node_scan(&self, state: &GlobalState) -> Option<NodeId> {
        let (max_cpu, max_mem) = (self.norm.max_cpu_points, self.norm.max_memory_mb);
        let mut best_rack: Option<(f64, &str)> = None;
        for rack in self.cluster.racks() {
            let mut abundance = 0.0;
            let mut has_alive = false;
            for node in self.cluster.rack_nodes(rack.as_str()) {
                if let Some(remaining) = state.remaining(node.as_str()) {
                    abundance += remaining.abundance(max_cpu, max_mem);
                    has_alive = true;
                }
            }
            if !has_alive {
                continue;
            }
            if best_rack.is_none_or(|(b, _)| abundance > b) {
                best_rack = Some((abundance, rack.as_str()));
            }
        }
        let rack = best_rack?.1;

        let mut best_node: Option<(f64, &NodeId)> = None;
        for node in self.cluster.rack_nodes(rack) {
            let Some(remaining) = state.remaining(node.as_str()) else {
                continue;
            };
            let abundance = remaining.abundance(max_cpu, max_mem);
            if best_node.is_none_or(|(b, _)| abundance > b) {
                best_node = Some((abundance, node));
            }
        }
        best_node.map(|(_, n)| n.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstorm_cluster::{ClusterBuilder, ResourceCapacity};
    use rstorm_topology::TopologyId;

    fn cluster() -> Cluster {
        ClusterBuilder::new()
            .homogeneous_racks(2, 3, ResourceCapacity::emulab_node(), 4)
            .build()
            .unwrap()
    }

    #[test]
    fn ref_node_is_most_abundant_in_most_abundant_rack() {
        let c = cluster();
        let mut state = GlobalState::new(&c);
        // Drain rack-0 a bit so rack-1 is the most abundant.
        state
            .reserve(
                &TopologyId::new("x"),
                &NodeId::new("rack-0-node-0"),
                &ResourceRequest::new(50.0, 1024.0, 0.0),
            )
            .unwrap();
        // Drain rack-1-node-0 so node-1 is the most abundant there.
        state
            .reserve(
                &TopologyId::new("x"),
                &NodeId::new("rack-1-node-0"),
                &ResourceRequest::new(10.0, 128.0, 0.0),
            )
            .unwrap();
        let weights = SoftConstraintWeights::default();
        let mut sel = NodeSelector::new(&c, &weights);
        let node = sel
            .select(&state, &ResourceRequest::new(10.0, 64.0, 0.0))
            .unwrap();
        assert_eq!(sel.ref_node().unwrap().as_str(), "rack-1-node-1");
        // With plenty of room everywhere, the chosen node is near the ref
        // node (same rack at minimum).
        assert_eq!(c.rack_of(node.as_str()).unwrap().as_str(), "rack-1");
    }

    #[test]
    fn memory_hard_constraint_excludes_full_nodes() {
        let c = cluster();
        let mut state = GlobalState::new(&c);
        // Fill every node except one below the task's demand.
        for node in c.nodes() {
            if node.id().as_str() != "rack-1-node-2" {
                state
                    .reserve(
                        &TopologyId::new("x"),
                        node.id(),
                        &ResourceRequest::new(0.0, 1900.0, 0.0),
                    )
                    .unwrap();
            }
        }
        let weights = SoftConstraintWeights::default();
        let mut sel = NodeSelector::new(&c, &weights);
        let node = sel
            .select(&state, &ResourceRequest::new(10.0, 512.0, 0.0))
            .unwrap();
        assert_eq!(node.as_str(), "rack-1-node-2");
    }

    #[test]
    fn reports_best_available_on_failure() {
        let c = cluster();
        let mut state = GlobalState::new(&c);
        for node in c.nodes() {
            state
                .reserve(
                    &TopologyId::new("x"),
                    node.id(),
                    &ResourceRequest::new(0.0, 1500.0, 0.0),
                )
                .unwrap();
        }
        let weights = SoftConstraintWeights::default();
        let mut sel = NodeSelector::new(&c, &weights);
        let err = sel
            .select(&state, &ResourceRequest::new(0.0, 1024.0, 0.0))
            .unwrap_err();
        assert_eq!(err, 548.0);
    }

    #[test]
    fn successive_selections_stay_near_ref_node() {
        let c = cluster();
        let mut state = GlobalState::new(&c);
        let weights = SoftConstraintWeights::default();
        let mut sel = NodeSelector::new(&c, &weights);
        let t = TopologyId::new("t");
        let req = ResourceRequest::new(30.0, 256.0, 0.0);
        let mut nodes = Vec::new();
        for _ in 0..6 {
            let n = sel.select(&state, &req).unwrap();
            state.reserve(&t, &n, &req).unwrap();
            nodes.push(n);
        }
        let ref_rack = c.rack_of(sel.ref_node().unwrap().as_str()).unwrap();
        for n in &nodes {
            assert_eq!(
                c.rack_of(n.as_str()).unwrap(),
                ref_rack,
                "all six light tasks fit within the reference rack"
            );
        }
    }

    #[test]
    fn no_nodes_yields_error() {
        let mut c = cluster();
        for i in 0..3 {
            c.kill_node(&format!("rack-0-node-{i}"));
            c.kill_node(&format!("rack-1-node-{i}"));
        }
        let state = GlobalState::new(&c);
        let weights = SoftConstraintWeights::default();
        let mut sel = NodeSelector::new(&c, &weights);
        assert!(sel.select(&state, &ResourceRequest::zero()).is_err());
    }

    /// Drives the indexed and scan paths in lock-step through a sequence
    /// of selections and checks every decision (and error value) matches
    /// to the bit.
    #[test]
    fn indexed_and_scan_paths_agree_exactly() {
        let c = ClusterBuilder::new()
            .add_node("b2", "east", ResourceCapacity::new(200.0, 4096.0, 100.0), 2)
            .add_node("a1", "east", ResourceCapacity::new(100.0, 2048.0, 100.0), 2)
            .add_node("c3", "west", ResourceCapacity::new(300.0, 1024.0, 100.0), 2)
            .add_node("d4", "west", ResourceCapacity::new(50.0, 8192.0, 100.0), 2)
            .build()
            .unwrap();
        let weights = SoftConstraintWeights::default();
        let mut state = GlobalState::new(&c);
        let mut fast = NodeSelector::new(&c, &weights);
        let mut scan = NodeSelector::new_scan_only(&c, &weights);
        let t = TopologyId::new("t");
        let requests = [
            ResourceRequest::new(40.0, 600.0, 10.0),
            ResourceRequest::new(90.0, 1500.0, 0.0),
            ResourceRequest::new(10.0, 100.0, 5.0),
            ResourceRequest::new(120.0, 3000.0, 0.0),
            ResourceRequest::new(1.0, 9000.0, 0.0), // infeasible
        ];
        for request in &requests {
            let from_fast = fast.select(&state, request);
            let from_scan = scan.select(&state, request);
            match (&from_fast, &from_scan) {
                (Ok(a), Ok(b)) => assert_eq!(a, b),
                (Err(a), Err(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                other => panic!("paths diverged: {other:?}"),
            }
            assert_eq!(fast.ref_node(), scan.ref_node());
            if let Ok(node) = from_fast {
                state.reserve(&t, &node, request).unwrap();
            }
        }
    }

    /// The east/west naming above sorts as a1 < b2 < c3 < d4 while the
    /// racks were declared b2-first: member declaration order and sorted
    /// order differ, and in `indexed_and_scan_paths_agree_exactly` the
    /// racks are still contiguous. This case fragments them so the
    /// non-range fallback loop is what must agree.
    #[test]
    fn fragmented_rack_layout_still_agrees() {
        let c = ClusterBuilder::new()
            .add_node("a", "r0", ResourceCapacity::new(100.0, 2048.0, 100.0), 1)
            .add_node("b", "r1", ResourceCapacity::new(150.0, 3000.0, 100.0), 1)
            .add_node("c", "r0", ResourceCapacity::new(120.0, 1024.0, 100.0), 1)
            .add_node("d", "r1", ResourceCapacity::new(80.0, 4096.0, 100.0), 1)
            .build()
            .unwrap();
        assert!(c.index().rack_ranges().is_none(), "layout must fragment");
        let weights = SoftConstraintWeights::default();
        let state = GlobalState::new(&c);
        let request = ResourceRequest::new(60.0, 900.0, 0.0);
        let fast = NodeSelector::new(&c, &weights).select(&state, &request);
        let scan = NodeSelector::new_scan_only(&c, &weights).select(&state, &request);
        assert_eq!(fast.unwrap(), scan.unwrap());
    }

    /// A state built from a *different* cluster (even a structurally
    /// identical one) must not take the fast path — and still work.
    #[test]
    fn foreign_state_falls_back_to_scan() {
        let c1 = cluster();
        let c2 = cluster();
        let state = GlobalState::new(&c2);
        assert!(!Arc::ptr_eq(state.cluster_index(), &c1.shared_index()));
        let weights = SoftConstraintWeights::default();
        let mut sel = NodeSelector::new(&c1, &weights);
        let picked = sel
            .select(&state, &ResourceRequest::new(10.0, 64.0, 0.0))
            .unwrap();
        let expected = NodeSelector::new_scan_only(&c1, &weights)
            .select(&state, &ResourceRequest::new(10.0, 64.0, 0.0))
            .unwrap();
        assert_eq!(picked, expected);
    }
}
