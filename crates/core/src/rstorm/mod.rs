//! The R-Storm resource-aware scheduler (§4 of the paper).
//!
//! Scheduling proceeds in two phases (Algorithm 1):
//!
//! 1. [`task_selection`] produces an ordering of all tasks such that tasks
//!    of adjacent components appear in close succession (Algorithms 2–3).
//! 2. [`node_selection`] greedily maps each task to the node minimizing a
//!    weighted Euclidean distance in resource space, anchored at a
//!    reference node, without violating the hard memory constraint
//!    (Algorithm 4).
//!
//! The assignment is committed atomically: a topology that cannot be fully
//! placed leaves the [`GlobalState`] untouched and yields a
//! [`ScheduleError`]. [`RStormScheduler`] achieves this with an undo log —
//! mutations are applied to the live state and reverted bit-exactly on
//! failure, costing O(tasks placed) on rejection instead of the
//! O(cluster) clone-per-call the scratch-copy approach paid up front.
//! [`ReferenceRStormScheduler`] keeps the scratch-copy approach (and the
//! scan-based node selection) as the executable specification the fast
//! implementation is tested against.

pub mod node_selection;
pub mod task_selection;

use crate::assignment::Assignment;
use crate::error::ScheduleError;
use crate::global_state::{GlobalState, UndoLog};
use crate::resource::SoftConstraintWeights;
use crate::scheduler::Scheduler;
use node_selection::NodeSelector;
use rstorm_cluster::Cluster;
use rstorm_topology::{Topology, TraversalOrder};
use std::collections::BTreeMap;

/// Configuration of the R-Storm scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RStormConfig {
    /// Weights of the distance terms (Algorithm 4).
    pub weights: SoftConstraintWeights,
    /// Component traversal strategy for task selection (the paper uses
    /// BFS; DFS and declaration order exist for the ablation study).
    pub traversal: TraversalOrder,
}

/// The R-Storm scheduler.
///
/// See the [module docs](self) and the crate-level example.
#[derive(Debug, Clone, Default)]
pub struct RStormScheduler {
    config: RStormConfig,
}

impl RStormScheduler {
    /// Creates a scheduler with the default configuration (BFS traversal,
    /// default weights).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scheduler with an explicit configuration.
    pub fn with_config(config: RStormConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &RStormConfig {
        &self.config
    }
}

impl Scheduler for RStormScheduler {
    fn name(&self) -> &str {
        "rstorm"
    }

    fn schedule(
        &self,
        topology: &Topology,
        cluster: &Cluster,
        state: &mut GlobalState,
    ) -> Result<Assignment, ScheduleError> {
        if state.is_scheduled(topology.id().as_str()) {
            return Err(ScheduleError::AlreadyScheduled(topology.id().clone()));
        }
        if state.iter_remaining().next().is_none() {
            return Err(ScheduleError::NoAliveNodes);
        }

        let task_set = topology.task_set();
        let ordering = task_selection::task_ordering(topology, &task_set, self.config.traversal);

        // Mutate the live state, journaling every change so a failed
        // scheduling can be rolled back bit-exactly (atomic commit,
        // §4.1) in O(tasks placed) — no up-front clone of the state.
        let mut log = UndoLog::new();
        let mut selector = NodeSelector::new(cluster, &self.config.weights);
        let mut slots = BTreeMap::new();

        for task_id in ordering {
            let request = *task_set
                .resources(task_id)
                .expect("ordering only contains tasks of this task set");
            let node = match selector.select(state, &request) {
                Ok(node) => node,
                Err(best_available_mb) => {
                    state.rollback(log);
                    return Err(ScheduleError::InsufficientMemory {
                        topology: topology.id().clone(),
                        task: task_id,
                        needed_mb: request.memory_mb,
                        best_available_mb,
                    });
                }
            };
            // Node selection only yields alive cluster members, but the
            // cluster can mutate between selection rounds in recovery
            // scenarios — propagate instead of crashing, undoing every
            // task placed so far (atomicity holds on this path too).
            let reserved = state.reserve_logged(topology.id(), &node, &request, &mut log);
            if let Err(e) = reserved {
                state.rollback(log);
                return Err(e);
            }
            let slot = match state.slot_for_logged(cluster, topology.id(), &node, &mut log) {
                Ok(slot) => slot,
                Err(e) => {
                    state.rollback(log);
                    return Err(e);
                }
            };
            slots.insert(task_id, slot);
        }

        let assignment = Assignment::new(topology.id().clone(), slots);
        state.commit(assignment.clone());
        Ok(assignment)
    }
}

/// The pre-index R-Storm implementation, kept as an executable
/// specification: node selection scans the string-keyed state API and
/// atomicity comes from cloning the whole state up front. Produces
/// byte-identical assignments to [`RStormScheduler`] (enforced by the
/// parity property test) at O(cluster) higher cost per call.
#[derive(Debug, Clone, Default)]
pub struct ReferenceRStormScheduler {
    config: RStormConfig,
}

impl ReferenceRStormScheduler {
    /// Creates a reference scheduler with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a reference scheduler with an explicit configuration.
    pub fn with_config(config: RStormConfig) -> Self {
        Self { config }
    }
}

impl Scheduler for ReferenceRStormScheduler {
    fn name(&self) -> &str {
        "rstorm-reference"
    }

    fn schedule(
        &self,
        topology: &Topology,
        cluster: &Cluster,
        state: &mut GlobalState,
    ) -> Result<Assignment, ScheduleError> {
        if state.is_scheduled(topology.id().as_str()) {
            return Err(ScheduleError::AlreadyScheduled(topology.id().clone()));
        }
        if state.iter_remaining().next().is_none() {
            return Err(ScheduleError::NoAliveNodes);
        }

        let task_set = topology.task_set();
        let ordering = task_selection::task_ordering(topology, &task_set, self.config.traversal);

        // Work on a scratch copy so a failed scheduling leaves `state`
        // untouched (atomic commit, §4.1).
        let mut scratch = state.clone();
        let mut selector = NodeSelector::new_scan_only(cluster, &self.config.weights);
        let mut slots = BTreeMap::new();

        for task_id in ordering {
            let request = *task_set
                .resources(task_id)
                .expect("ordering only contains tasks of this task set");
            let node = selector
                .select(&scratch, &request)
                .map_err(|best_available_mb| ScheduleError::InsufficientMemory {
                    topology: topology.id().clone(),
                    task: task_id,
                    needed_mb: request.memory_mb,
                    best_available_mb,
                })?;
            // The scratch copy is discarded on error, so plain
            // propagation preserves atomicity here.
            scratch.reserve(topology.id(), &node, &request)?;
            let slot = scratch.slot_for(cluster, topology.id(), &node)?;
            slots.insert(task_id, slot);
        }

        let assignment = Assignment::new(topology.id().clone(), slots);
        scratch.commit(assignment.clone());
        *state = scratch;
        Ok(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstorm_cluster::{ClusterBuilder, ResourceCapacity};
    use rstorm_topology::TopologyBuilder;

    fn emulab(racks: u32, nodes: u32) -> Cluster {
        ClusterBuilder::new()
            .homogeneous_racks(racks, nodes, ResourceCapacity::emulab_node(), 4)
            .build()
            .unwrap()
    }

    fn linear(tasks_per_component: u32, cpu: f64, mem: f64) -> Topology {
        let mut b = TopologyBuilder::new("linear");
        b.set_spout("c0", tasks_per_component)
            .set_cpu_load(cpu)
            .set_memory_load(mem);
        for i in 1..4 {
            b.set_bolt(format!("c{i}"), tasks_per_component)
                .shuffle_grouping(format!("c{}", i - 1))
                .set_cpu_load(cpu)
                .set_memory_load(mem);
        }
        b.build().unwrap()
    }

    #[test]
    fn every_task_is_placed() {
        let cluster = emulab(2, 6);
        let t = linear(4, 20.0, 128.0);
        let mut state = GlobalState::new(&cluster);
        let a = RStormScheduler::new()
            .schedule(&t, &cluster, &mut state)
            .unwrap();
        assert_eq!(a.len(), 16);
        assert!(state.is_scheduled("linear"));
    }

    #[test]
    fn colocates_when_resources_allow() {
        // 16 tasks × (20 cpu, 128 MB) fit comfortably on few nodes:
        // R-Storm should use far fewer machines than the cluster offers.
        let cluster = emulab(2, 6);
        let t = linear(4, 20.0, 128.0);
        let mut state = GlobalState::new(&cluster);
        let a = RStormScheduler::new()
            .schedule(&t, &cluster, &mut state)
            .unwrap();
        let used = a.used_nodes().len();
        assert!(used <= 5, "expected tight packing, used {used} of 12 nodes");
        // And everything stays within one rack when it fits there.
        let racks: std::collections::BTreeSet<_> = a
            .used_nodes()
            .iter()
            .map(|n| cluster.rack_of(n.as_str()).unwrap().clone())
            .collect();
        assert_eq!(racks.len(), 1, "single-rack packing expected");
    }

    #[test]
    fn hard_memory_constraint_is_never_violated() {
        let cluster = emulab(2, 6);
        // Each node has 2048 MB; tasks of 700 MB → at most 2 per node.
        let t = linear(3, 10.0, 700.0);
        let mut state = GlobalState::new(&cluster);
        let a = RStormScheduler::new()
            .schedule(&t, &cluster, &mut state)
            .unwrap();
        for node in a.used_nodes() {
            let tasks = a.tasks_on_node(node.as_str());
            assert!(
                tasks.len() <= 2,
                "node {node} got {} × 700 MB tasks into 2048 MB",
                tasks.len()
            );
        }
        // Remaining memory is non-negative everywhere.
        for (_, rem) in state.iter_remaining() {
            assert!(rem.memory_mb >= 0.0);
        }
    }

    #[test]
    fn infeasible_topology_is_rejected_atomically() {
        let cluster = emulab(1, 2);
        // 4096 MB tasks cannot fit on 2048 MB nodes.
        let t = linear(1, 10.0, 4096.0);
        let mut state = GlobalState::new(&cluster);
        let before = state.clone();
        let err = RStormScheduler::new()
            .schedule(&t, &cluster, &mut state)
            .unwrap_err();
        match err {
            ScheduleError::InsufficientMemory {
                needed_mb,
                best_available_mb,
                ..
            } => {
                assert_eq!(needed_mb, 4096.0);
                assert_eq!(best_available_mb, 2048.0);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // State unchanged (atomicity).
        for ((n1, r1), (n2, r2)) in state.iter_remaining().zip(before.iter_remaining()) {
            assert_eq!(n1, n2);
            assert_eq!(r1, r2);
        }
        assert!(!state.is_scheduled("linear"));
    }

    #[test]
    fn rescheduling_same_topology_is_rejected() {
        let cluster = emulab(1, 2);
        let t = linear(1, 10.0, 128.0);
        let mut state = GlobalState::new(&cluster);
        RStormScheduler::new()
            .schedule(&t, &cluster, &mut state)
            .unwrap();
        assert_eq!(
            RStormScheduler::new()
                .schedule(&t, &cluster, &mut state)
                .unwrap_err(),
            ScheduleError::AlreadyScheduled(t.id().clone())
        );
    }

    #[test]
    fn empty_cluster_rejected() {
        let mut cluster = emulab(1, 1);
        cluster.kill_node("rack-0-node-0");
        let t = linear(1, 10.0, 128.0);
        let mut state = GlobalState::new(&cluster);
        assert_eq!(
            RStormScheduler::new()
                .schedule(&t, &cluster, &mut state)
                .unwrap_err(),
            ScheduleError::NoAliveNodes
        );
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let cluster = emulab(2, 6);
        let t = linear(4, 30.0, 256.0);
        let a1 = RStormScheduler::new()
            .schedule(&t, &cluster, &mut GlobalState::new(&cluster))
            .unwrap();
        let a2 = RStormScheduler::new()
            .schedule(&t, &cluster, &mut GlobalState::new(&cluster))
            .unwrap();
        assert_eq!(a1, a2);
    }

    #[test]
    fn reference_scheduler_matches_fast_scheduler() {
        // Same inputs through the undo-log/indexed scheduler and the
        // clone/scan reference must give identical assignments and
        // identical remaining resources, including across successive
        // topologies and an infeasible rejection in the middle.
        let pipeline = |name: &str, cpu: f64, mem: f64| {
            let mut b = TopologyBuilder::new(name);
            b.set_spout("c0", 4).set_cpu_load(cpu).set_memory_load(mem);
            b.set_bolt("c1", 4)
                .shuffle_grouping("c0")
                .set_cpu_load(cpu)
                .set_memory_load(mem);
            b.build().unwrap()
        };
        let cluster = emulab(2, 6);
        let feasible = [pipeline("t0", 20.0, 128.0), pipeline("t1", 40.0, 500.0)];
        let infeasible = linear(2, 10.0, 4096.0);

        let fast = RStormScheduler::new();
        let reference = ReferenceRStormScheduler::new();
        let mut fast_state = GlobalState::new(&cluster);
        let mut ref_state = GlobalState::new(&cluster);

        for t in &feasible {
            let a = fast.schedule(t, &cluster, &mut fast_state).unwrap();
            let b = reference.schedule(t, &cluster, &mut ref_state).unwrap();
            assert_eq!(a, b);
        }
        let ea = fast
            .schedule(&infeasible, &cluster, &mut fast_state)
            .unwrap_err();
        let eb = reference
            .schedule(&infeasible, &cluster, &mut ref_state)
            .unwrap_err();
        assert_eq!(ea, eb);
        for ((n1, r1), (n2, r2)) in fast_state.iter_remaining().zip(ref_state.iter_remaining()) {
            assert_eq!(n1, n2);
            assert_eq!(r1.memory_mb.to_bits(), r2.memory_mb.to_bits());
            assert_eq!(r1.cpu_points.to_bits(), r2.cpu_points.to_bits());
            assert_eq!(r1.bandwidth.to_bits(), r2.bandwidth.to_bits());
        }
    }

    #[test]
    fn second_topology_lands_on_fresh_nodes_when_possible() {
        // Two CPU-hungry topologies, each filling one rack: the second
        // should anchor in the other rack because the first one's rack
        // has fewer remaining resources.
        let hog = |name: &str| {
            let mut b = TopologyBuilder::new(name);
            b.set_spout("s", 3)
                .set_cpu_load(90.0)
                .set_memory_load(256.0);
            b.set_bolt("b", 3)
                .shuffle_grouping("s")
                .set_cpu_load(90.0)
                .set_memory_load(256.0);
            b.build().unwrap()
        };
        let cluster = emulab(2, 6);
        let (t1, t2) = (hog("hog-a"), hog("hog-b"));

        let mut state = GlobalState::new(&cluster);
        let s = RStormScheduler::new();
        let a1 = s.schedule(&t1, &cluster, &mut state).unwrap();
        let a2 = s.schedule(&t2, &cluster, &mut state).unwrap();
        let (used1, used2) = (a1.used_nodes(), a2.used_nodes());
        let overlap: Vec<_> = used1.intersection(&used2).collect();
        assert!(
            overlap.is_empty(),
            "topologies should avoid each other, overlapped on {overlap:?}"
        );
    }
}
