//! Task selection (Algorithm 3).
//!
//! The scheduler first orders *components* by a breadth-first traversal
//! from the spouts (Algorithm 2, implemented in `rstorm-topology`), then
//! builds the *task* ordering by repeatedly taking one task from each
//! component in that order until every task is taken. "Ordering tasks to
//! be scheduled in this fashion will ensure that tasks from adjacent
//! components will be scheduled as close together as possible" (§4.1.1).

use rstorm_topology::{TaskId, TaskSet, Topology, TraversalOrder};
use std::collections::VecDeque;

/// Produces the scheduling order of all tasks of `topology`.
///
/// `traversal` selects the component-ordering strategy; the paper's choice
/// is [`TraversalOrder::Bfs`].
pub fn task_ordering(
    topology: &Topology,
    task_set: &TaskSet,
    traversal: TraversalOrder,
) -> Vec<TaskId> {
    let components = traversal.order(topology);
    let mut queues: Vec<VecDeque<TaskId>> = components
        .iter()
        .map(|c| task_set.tasks_of(c.as_str()).iter().copied().collect())
        .collect();

    let total = task_set.len();
    let mut ordering = Vec::with_capacity(total);
    // Round-robin: one task per component per sweep (Algorithm 3 lines
    // 3-11), so consecutive ordering entries belong to adjacent
    // components.
    while ordering.len() < total {
        let mut progressed = false;
        for queue in &mut queues {
            if let Some(task) = queue.pop_front() {
                ordering.push(task);
                progressed = true;
            }
        }
        assert!(
            progressed,
            "task ordering stalled: task set and topology disagree"
        );
    }
    ordering
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstorm_topology::TopologyBuilder;

    fn linear3() -> Topology {
        let mut b = TopologyBuilder::new("l");
        b.set_spout("a", 2);
        b.set_bolt("b", 2).shuffle_grouping("a");
        b.set_bolt("c", 2).shuffle_grouping("b");
        b.build().unwrap()
    }

    #[test]
    fn round_robin_interleaves_components() {
        let t = linear3();
        let ts = t.task_set();
        let order = task_ordering(&t, &ts, TraversalOrder::Bfs);
        let names: Vec<String> = order
            .iter()
            .map(|id| ts.task(*id).unwrap().component.as_str().to_owned())
            .collect();
        // Sweep 1 takes one task of a, b, c; sweep 2 the remaining ones.
        assert_eq!(names, vec!["a", "b", "c", "a", "b", "c"]);
    }

    #[test]
    fn all_tasks_exactly_once() {
        let t = linear3();
        let ts = t.task_set();
        let order = task_ordering(&t, &ts, TraversalOrder::Bfs);
        assert_eq!(order.len(), ts.len());
        let mut sorted: Vec<u32> = order.iter().map(|t| t.as_u32()).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_parallelism_drains_long_components() {
        let mut b = TopologyBuilder::new("uneven");
        b.set_spout("s", 1);
        b.set_bolt("fat", 4).shuffle_grouping("s");
        let t = b.build().unwrap();
        let ts = t.task_set();
        let order = task_ordering(&t, &ts, TraversalOrder::Bfs);
        let names: Vec<String> = order
            .iter()
            .map(|id| ts.task(*id).unwrap().component.as_str().to_owned())
            .collect();
        assert_eq!(names, vec!["s", "fat", "fat", "fat", "fat"]);
    }

    #[test]
    fn adjacent_components_are_near_in_ordering() {
        // For the paper's diamond: src, left, right, join interleave, so a
        // src task is never more than |components| positions away from a
        // join task within one sweep.
        let mut b = TopologyBuilder::new("diamond");
        b.set_spout("src", 3);
        b.set_bolt("left", 3).shuffle_grouping("src");
        b.set_bolt("right", 3).shuffle_grouping("src");
        b.set_bolt("join", 3)
            .shuffle_grouping("left")
            .shuffle_grouping("right");
        let t = b.build().unwrap();
        let ts = t.task_set();
        let order = task_ordering(&t, &ts, TraversalOrder::Bfs);
        // Sweeps of 4: positions 0..4 are src,left,right,join etc.
        for sweep in 0..3 {
            let window: Vec<String> = order[sweep * 4..(sweep + 1) * 4]
                .iter()
                .map(|id| ts.task(*id).unwrap().component.as_str().to_owned())
                .collect();
            assert_eq!(window, vec!["src", "left", "right", "join"]);
        }
    }

    #[test]
    fn declaration_traversal_is_supported() {
        let t = linear3();
        let ts = t.task_set();
        let order = task_ordering(&t, &ts, TraversalOrder::Declaration);
        assert_eq!(order.len(), 6);
    }
}
