//! # rstorm-core
//!
//! The R-Storm resource-aware scheduler (Peng et al., *R-Storm:
//! Resource-Aware Scheduling in Storm*, Middleware '15) and the baseline
//! schedulers it is evaluated against.
//!
//! The scheduling problem (§3 of the paper) is a Quadratic Multiple
//! 3-Dimensional Knapsack Problem (QM3DKP): place every *task* of a
//! topology onto cluster *nodes* such that
//!
//! * the **hard** constraint (memory) is never violated,
//! * **soft** constraints (CPU, bandwidth) are packed tightly, and
//! * tasks of adjacent components land in close network proximity.
//!
//! R-Storm's heuristic (§4) has two parts, both implemented here:
//!
//! * **Task selection** (Algorithm 3): breadth-first traversal of the
//!   component graph from the spouts, then a round-robin interleaving of
//!   each component's tasks.
//! * **Node selection** (Algorithm 4): the first task anchors a *reference
//!   node* — the node with the most resources in the rack with the most
//!   resources; each subsequent task goes to the node minimizing a
//!   weighted Euclidean distance in resource space, subject to hard
//!   constraints.
//!
//! ## Quick example
//!
//! ```
//! use rstorm_topology::TopologyBuilder;
//! use rstorm_cluster::{ClusterBuilder, ResourceCapacity};
//! use rstorm_core::{RStormScheduler, Scheduler, GlobalState};
//!
//! let mut b = TopologyBuilder::new("demo");
//! b.set_spout("src", 4).set_cpu_load(25.0).set_memory_load(256.0);
//! b.set_bolt("sink", 4).shuffle_grouping("src").set_cpu_load(25.0).set_memory_load(256.0);
//! let topology = b.build().unwrap();
//!
//! let cluster = ClusterBuilder::new()
//!     .homogeneous_racks(2, 6, ResourceCapacity::emulab_node(), 4)
//!     .build()
//!     .unwrap();
//!
//! let scheduler = RStormScheduler::default();
//! let mut state = GlobalState::new(&cluster);
//! let assignment = scheduler.schedule(&topology, &cluster, &mut state).unwrap();
//! assert_eq!(assignment.len(), 8); // every task placed
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod adaptive;
mod assignment;
pub mod control;
mod error;
mod global_state;
pub mod ndim;
pub mod recovery;
mod resource;
pub mod rstorm;
mod scheduler;
pub mod schedulers;
mod verify;

pub use adaptive::{
    ComponentDrift, DeltaScheduler, DriftConfig, DriftDetector, DriftReport, MigrationMove,
    MigrationPlan, ProfileRefiner,
};
pub use assignment::{Assignment, SchedulingPlan};
pub use control::{ControlJournal, ControlRecord, FlapKind, ReplayState};
pub use error::ScheduleError;
pub use global_state::{GlobalState, RemainingResources, UndoLog};
pub use recovery::{RecoveryConfig, RecoveryEvent, RecoveryManager};
pub use resource::{weighted_euclidean, NormalizationContext, SoftConstraintWeights};
pub use rstorm::{RStormConfig, RStormScheduler, ReferenceRStormScheduler};
pub use scheduler::{schedule_all, Scheduler};
pub use verify::{verify_plan, Violation};
