//! The scheduler abstraction — the analog of Storm's `IScheduler`.

use crate::assignment::{Assignment, SchedulingPlan};
use crate::error::ScheduleError;
use crate::global_state::GlobalState;
use rstorm_cluster::Cluster;
use rstorm_topology::Topology;

/// A topology scheduler.
///
/// The analog of Storm's `IScheduler` interface (§5): Nimbus invokes the
/// configured scheduler periodically with the pending topologies and the
/// cluster state. Implementations must be deterministic given the same
/// inputs (the R-Storm and even schedulers are; the random baseline is
/// deterministic given its seed).
pub trait Scheduler {
    /// A short human-readable name (used in reports and config files).
    fn name(&self) -> &str;

    /// Computes a complete assignment for one topology, reserving its
    /// resources in `state`. On success the assignment has also been
    /// committed to `state` (atomically — a failed scheduling must leave
    /// `state` unchanged).
    fn schedule(
        &self,
        topology: &Topology,
        cluster: &Cluster,
        state: &mut GlobalState,
    ) -> Result<Assignment, ScheduleError>;
}

/// Schedules several topologies in submission order against one fresh
/// [`GlobalState`], returning the combined plan. This is the paper's
/// multi-topology experiment path (§6.5): topologies submitted together
/// share the cluster, and each scheduling sees the resources the previous
/// ones consumed.
pub fn schedule_all<S: Scheduler + ?Sized>(
    scheduler: &S,
    topologies: &[&Topology],
    cluster: &Cluster,
) -> Result<SchedulingPlan, ScheduleError> {
    let mut state = GlobalState::new(cluster);
    for topology in topologies {
        scheduler.schedule(topology, cluster, &mut state)?;
    }
    Ok(state.plan().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedulers::EvenScheduler;
    use rstorm_cluster::{ClusterBuilder, ResourceCapacity};
    use rstorm_topology::TopologyBuilder;

    fn topology(name: &str) -> Topology {
        let mut b = TopologyBuilder::new(name);
        b.set_spout("s", 2);
        b.set_bolt("b", 2).shuffle_grouping("s");
        b.build().unwrap()
    }

    #[test]
    fn schedule_all_combines_plans() {
        let cluster = ClusterBuilder::new()
            .homogeneous_racks(1, 3, ResourceCapacity::emulab_node(), 4)
            .build()
            .unwrap();
        let t1 = topology("t1");
        let t2 = topology("t2");
        let plan = schedule_all(&EvenScheduler::new(), &[&t1, &t2], &cluster).unwrap();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.assignment("t1").unwrap().len(), 4);
        assert_eq!(plan.assignment("t2").unwrap().len(), 4);
    }

    #[test]
    fn trait_objects_work() {
        let cluster = ClusterBuilder::new()
            .homogeneous_racks(1, 2, ResourceCapacity::emulab_node(), 4)
            .build()
            .unwrap();
        let t = topology("t");
        let boxed: Box<dyn Scheduler> = Box::new(EvenScheduler::new());
        let plan = schedule_all(boxed.as_ref(), &[&t], &cluster).unwrap();
        assert_eq!(plan.len(), 1);
    }
}
