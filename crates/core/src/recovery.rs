//! The Nimbus-style recovery control loop.
//!
//! Storm's Nimbus daemon detects worker/node failures through missed
//! heartbeats and invokes the configured `IScheduler` to re-place the
//! displaced executors; the paper motivates doing this *quickly* — "if
//! executors are not rescheduled quickly, whole topologies may be
//! stalled" (§3). [`RecoveryManager`] reproduces that loop against this
//! workspace's scheduling core:
//!
//! * **Detection** — callers feed node heartbeats through
//!   [`RecoveryManager::observe_heartbeat`]; a node silent for
//!   `miss_threshold × heartbeat_interval_ms` is declared dead on the
//!   next [`RecoveryManager::tick`], which kills it in the [`Cluster`],
//!   fails it in [`GlobalState`] and releases every displaced topology.
//! * **Rescheduling** — displaced topologies are re-placed through the
//!   live scheduler. An unschedulable topology retries with exponential
//!   backoff plus deterministic seeded jitter, never busy-looping against
//!   a cluster that cannot fit it.
//! * **Graceful degradation** — when the full topology does not fit the
//!   survivors, the manager places a best-effort subset instead of
//!   failing: components are considered in BFS order and a component is
//!   only placed when all its upstream components were placed (a bolt
//!   without its upstream would never see a tuple), each component
//!   placed atomically via an [`UndoLog`] so the hard memory constraint
//!   is never violated by a partial component. The resulting
//!   [`Assignment`] declares the remainder
//!   [`unplaced`](Assignment::unplaced) — an explicit, verifiable
//!   deficit rather than a silent gap — and the manager keeps retrying
//!   (with backoff) to upgrade it to a full placement, e.g. once the
//!   node recovers and capacity returns.

use crate::assignment::Assignment;
use crate::control::{ControlJournal, ControlRecord, FlapKind};
use crate::global_state::{GlobalState, UndoLog};
use crate::resource::SoftConstraintWeights;
use crate::rstorm::node_selection::NodeSelector;
use crate::scheduler::Scheduler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rstorm_cluster::{Cluster, WorkerSlot};
use rstorm_topology::{bfs_component_order, TaskId, Topology, TopologyId};
use std::collections::{BTreeMap, BTreeSet};

/// Tuning knobs of the recovery loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryConfig {
    /// Expected gap between two heartbeats of a healthy node.
    pub heartbeat_interval_ms: f64,
    /// Consecutive missed heartbeats before a node is declared dead
    /// (Storm's `nimbus.task.timeout` analog).
    pub miss_threshold: u32,
    /// First retry delay after an unschedulable reschedule attempt.
    pub backoff_base_ms: f64,
    /// Ceiling of the exponential backoff.
    pub backoff_max_ms: f64,
    /// Seed of the deterministic jitter added to each backoff delay.
    pub jitter_seed: u64,
    /// Consecutive heartbeats a declared-dead node must deliver before it
    /// is trusted and readmitted — the "M beats to trust" half of the
    /// suspicion hysteresis (`miss_threshold` is the "K misses to
    /// declare" half). A single missed beat resets the count. The default
    /// of 1 readmits on the first returning beat, the pre-hysteresis
    /// behavior.
    pub trust_threshold: u32,
    /// Minimum interval between two full reschedules of the same
    /// topology. A reschedule falling due earlier is deferred (and
    /// counted in [`RecoveryManager::suppressed_flaps`]) so a flapping
    /// node cannot thrash the scheduler. The default of 0 disables the
    /// limiter.
    pub min_reschedule_interval_ms: f64,
    /// Attach a [`ControlJournal`] and append every control decision to
    /// it before acting — the durable state a successor replays after a
    /// Nimbus outage ([`RecoveryManager::reassume`]). Journaling is
    /// strictly passive: it never changes what the live manager
    /// decides, so the default of `false` (no journal) is behaviorally
    /// identical, not just bit-identical.
    pub journal: bool,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            heartbeat_interval_ms: 1_000.0,
            miss_threshold: 3,
            backoff_base_ms: 500.0,
            backoff_max_ms: 30_000.0,
            jitter_seed: 42,
            trust_threshold: 1,
            min_reschedule_interval_ms: 0.0,
            journal: false,
        }
    }
}

impl RecoveryConfig {
    /// The silence that declares a node dead:
    /// `miss_threshold × heartbeat_interval_ms`. The detector uses this
    /// exact expression, so oracles built on it cannot drift from it.
    pub fn detection_window_ms(&self) -> f64 {
        self.heartbeat_interval_ms * f64::from(self.miss_threshold)
    }

    /// The outage length beyond which a missing dead declaration is a
    /// detection-liveness bug: the detection window plus
    /// [`RecoveryManager::DETECTION_SLACK_INTERVALS`] intervals of
    /// slack for tick alignment.
    pub fn detection_slack_ms(&self) -> f64 {
        f64::from(self.miss_threshold + RecoveryManager::DETECTION_SLACK_INTERVALS)
            * self.heartbeat_interval_ms
    }
}

/// What a [`RecoveryManager::tick`] did, in occurrence order.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryEvent {
    /// A node exceeded the heartbeat-miss threshold and was removed from
    /// the schedulable pool.
    NodeDeclaredDead {
        /// The failed node.
        node: String,
        /// Tick time of the declaration.
        at_ms: f64,
        /// Time since the node's last heartbeat.
        time_to_detect_ms: f64,
        /// Topologies that had tasks on the node, now awaiting
        /// rescheduling.
        displaced: Vec<TopologyId>,
    },
    /// A declared-dead node heartbeated again and rejoined the pool.
    NodeRecovered {
        /// The recovered node.
        node: String,
        /// Tick time of the recovery.
        at_ms: f64,
    },
    /// A displaced topology was re-placed (fully if `unplaced == 0`,
    /// degraded otherwise; a degraded topology stays queued for an
    /// upgrade retry).
    TopologyRescheduled {
        /// The re-placed topology.
        topology: TopologyId,
        /// Tick time of the placement.
        at_ms: f64,
        /// Reschedule attempts this topology has consumed so far.
        attempts: u32,
        /// Tasks the surviving cluster could not fit (0 = full).
        unplaced: usize,
    },
    /// Not even a degraded placement fit; the retry was pushed back with
    /// exponential backoff.
    RescheduleDeferred {
        /// The still-unplaced topology.
        topology: TopologyId,
        /// Tick time of the attempt.
        at_ms: f64,
        /// Reschedule attempts this topology has consumed so far.
        attempts: u32,
        /// When the next attempt becomes due.
        retry_at_ms: f64,
    },
}

#[derive(Debug, Clone, Copy)]
struct Retry {
    attempts: u32,
    next_try_ms: f64,
}

/// Heartbeat-driven failure detector and rescheduling loop. See the
/// module docs.
#[derive(Debug)]
pub struct RecoveryManager {
    config: RecoveryConfig,
    last_heartbeat: BTreeMap<String, f64>,
    declared_dead: BTreeSet<String>,
    /// Consecutive beats each declared-dead node has delivered since its
    /// last miss — the trust-hysteresis counter. Entries exist only for
    /// dead nodes and are dropped on readmission.
    consecutive_beats: BTreeMap<String, u32>,
    pending: BTreeMap<TopologyId, Retry>,
    /// When each topology was last actually handed to the scheduler, for
    /// the churn limiter.
    last_reschedule_ms: BTreeMap<TopologyId, f64>,
    rng: StdRng,
    total_reschedule_attempts: u64,
    suppressed_readmissions: u64,
    suppressed_reschedules: u64,
    journal: Option<ControlJournal>,
}

impl RecoveryManager {
    /// Extra heartbeat intervals of slack granted on top of the
    /// detection window before a missing dead declaration counts as a
    /// liveness bug: one interval for tick alignment of the last beat,
    /// one for the declaration tick itself. Shared by the detector
    /// ([`RecoveryConfig::detection_slack_ms`]) and the fuzz oracle so
    /// the two cannot drift apart.
    pub const DETECTION_SLACK_INTERVALS: u32 = 2;

    /// Creates a manager with no heartbeat history.
    pub fn new(config: RecoveryConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.jitter_seed);
        let journal = config.journal.then(ControlJournal::new);
        Self {
            config,
            last_heartbeat: BTreeMap::new(),
            declared_dead: BTreeSet::new(),
            consecutive_beats: BTreeMap::new(),
            pending: BTreeMap::new(),
            last_reschedule_ms: BTreeMap::new(),
            rng,
            total_reschedule_attempts: 0,
            suppressed_readmissions: 0,
            suppressed_reschedules: 0,
            journal,
        }
    }

    /// A successor taking over at `now_ms` after the predecessor
    /// crashed — the Nimbus failover path.
    ///
    /// With a journal, the successor replays it (idempotency keys
    /// applied at most once) and **reconciles** against the live
    /// cluster:
    ///
    /// * assignments already committed to [`GlobalState`] are adopted
    ///   as-is — no from-scratch reschedule of healthy topologies;
    /// * every journal-known-alive node in `roster` is seeded with a
    ///   handoff heartbeat one interval old, so a node that died while
    ///   the control plane was down (state diverged from the journal's
    ///   belief) is re-declared dead within the ordinary detection
    ///   window instead of never;
    /// * pending retries resume with their journaled attempt counts, so
    ///   exponential backoff continues rather than restarting, and
    ///   deadlines that expired during the outage become due at the
    ///   first tick.
    ///
    /// Without a journal the successor is cold: no roster, no dead set,
    /// no pending queue. It learns only from post-failover heartbeats,
    /// so a node that went silent during the outage is never observed
    /// and never declared — the blind spot the journal exists to close.
    ///
    /// Returns the successor and the number of journal decisions
    /// replayed.
    pub fn reassume(
        config: RecoveryConfig,
        journal: Option<ControlJournal>,
        now_ms: f64,
        roster: &[String],
    ) -> (Self, u64) {
        let mut successor = Self::new(config);
        let Some(journal) = journal else {
            return (successor, 0);
        };
        let replayed = journal.replay();
        for node in roster {
            if !replayed.dead.contains(node) {
                successor.last_heartbeat.insert(
                    node.clone(),
                    now_ms - successor.config.heartbeat_interval_ms,
                );
            }
        }
        successor.declared_dead = replayed.dead;
        for (topology, (attempts, retry_at_ms)) in &replayed.pending {
            successor.pending.insert(
                TopologyId::new(topology.clone()),
                Retry {
                    attempts: *attempts,
                    next_try_ms: retry_at_ms.max(now_ms),
                },
            );
        }
        for (topology, at_ms) in &replayed.last_reschedule_ms {
            successor
                .last_reschedule_ms
                .insert(TopologyId::new(topology.clone()), *at_ms);
        }
        successor.total_reschedule_attempts = replayed.reschedule_attempts;
        successor.suppressed_readmissions = replayed.suppressed_readmissions;
        successor.suppressed_reschedules = replayed.suppressed_reschedules;
        let applied = replayed.applied;
        successor.journal = Some(journal);
        (successor, applied)
    }

    /// The attached write-ahead journal, when
    /// [`RecoveryConfig::journal`] is enabled.
    pub fn journal(&self) -> Option<&ControlJournal> {
        self.journal.as_ref()
    }

    /// Detaches and returns the journal — what a crashing predecessor
    /// leaves behind for [`RecoveryManager::reassume`].
    pub fn take_journal(&mut self) -> Option<ControlJournal> {
        self.journal.take()
    }

    /// Appends to the journal when one is attached; a no-op otherwise.
    fn log(&mut self, record: ControlRecord) {
        if let Some(journal) = &mut self.journal {
            journal.append(record);
        }
    }

    /// Records a heartbeat from `node` at `now_ms`. Only nodes with at
    /// least one observed heartbeat are subject to failure detection.
    pub fn observe_heartbeat(&mut self, node: &str, now_ms: f64) {
        let entry = self.last_heartbeat.entry(node.to_owned()).or_insert(now_ms);
        *entry = entry.max(now_ms);
        if self.declared_dead.contains(node) {
            *self.consecutive_beats.entry(node.to_owned()).or_insert(0) += 1;
        }
    }

    /// Scheduler invocations spent on recovery rescheduling so far.
    pub fn reschedule_attempts(&self) -> u64 {
        self.total_reschedule_attempts
    }

    /// Flap events the manager absorbed instead of acting on:
    /// readmissions withheld by the trust hysteresis plus reschedules
    /// deferred by the churn limiter. Zero with the default (neutral)
    /// configuration.
    pub fn suppressed_flaps(&self) -> u64 {
        self.suppressed_readmissions + self.suppressed_reschedules
    }

    /// Nodes currently declared dead, in name order.
    pub fn dead_nodes(&self) -> impl Iterator<Item = &str> {
        self.declared_dead.iter().map(String::as_str)
    }

    /// True if any displaced topology still awaits a (full) placement.
    pub fn has_pending_reschedules(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Runs one control-loop iteration at `now_ms`: detect newly dead
    /// nodes, readmit recovered ones, and re-place every displaced
    /// topology whose retry is due. Returns what happened.
    ///
    /// `topologies` must contain every topology the plan may reference;
    /// displaced topologies missing from it are dropped from the retry
    /// queue (they can never be re-placed).
    pub fn tick<S: Scheduler + ?Sized>(
        &mut self,
        now_ms: f64,
        cluster: &mut Cluster,
        state: &mut GlobalState,
        scheduler: &S,
        topologies: &[&Topology],
    ) -> Vec<RecoveryEvent> {
        let mut events = Vec::new();
        self.detect(now_ms, cluster, state, &mut events);
        self.reschedule_due(now_ms, cluster, state, scheduler, topologies, &mut events);
        events
    }

    fn detect(
        &mut self,
        now_ms: f64,
        cluster: &mut Cluster,
        state: &mut GlobalState,
        events: &mut Vec<RecoveryEvent>,
    ) {
        let window = self.config.detection_window_ms();
        let nodes: Vec<(String, f64)> = self
            .last_heartbeat
            .iter()
            .map(|(n, &t)| (n.clone(), t))
            .collect();
        for (node, last) in nodes {
            let silent = now_ms - last >= window;
            if silent && !self.declared_dead.contains(&node) {
                self.log(ControlRecord::DeclareDead {
                    at_ms: now_ms,
                    node: node.clone(),
                });
                cluster.kill_node(&node);
                let displaced = state.handle_node_failure(&node);
                for tid in &displaced {
                    state.release_topology(tid.as_str());
                    self.pending.entry(tid.clone()).or_insert(Retry {
                        attempts: 0,
                        next_try_ms: now_ms,
                    });
                }
                self.declared_dead.insert(node.clone());
                events.push(RecoveryEvent::NodeDeclaredDead {
                    node,
                    at_ms: now_ms,
                    time_to_detect_ms: now_ms - last,
                    displaced,
                });
            } else if !silent && self.declared_dead.contains(&node) {
                // Trust hysteresis (active when `trust_threshold > 1`; 1
                // keeps the legacy readmit-on-first-beat behavior): a
                // returning node must deliver `trust_threshold`
                // consecutive beats before it rejoins the pool, and a
                // single miss restarts the streak — a flapper stays out.
                if self.config.trust_threshold > 1 {
                    if now_ms - last >= self.config.heartbeat_interval_ms {
                        // It went quiet again since its last beat.
                        self.consecutive_beats.insert(node.clone(), 0);
                        continue;
                    }
                    let beats = self.consecutive_beats.get(&node).copied().unwrap_or(0);
                    if beats < self.config.trust_threshold {
                        self.suppressed_readmissions += 1;
                        self.log(ControlRecord::SuppressFlap {
                            at_ms: now_ms,
                            subject: node.clone(),
                            kind: FlapKind::Readmission,
                        });
                        continue;
                    }
                }
                self.consecutive_beats.remove(&node);
                self.log(ControlRecord::DeclareAlive {
                    at_ms: now_ms,
                    node: node.clone(),
                });
                cluster.revive_node(&node);
                state.handle_node_recovery(&node);
                self.declared_dead.remove(&node);
                // Fresh capacity: give every degraded topology an
                // immediate upgrade attempt instead of waiting out its
                // backoff.
                let degraded: Vec<TopologyId> = state
                    .plan()
                    .iter()
                    .filter(|a| a.is_degraded())
                    .map(|a| a.topology().clone())
                    .collect();
                for tid in degraded {
                    let retry = self.pending.entry(tid).or_insert(Retry {
                        attempts: 0,
                        next_try_ms: now_ms,
                    });
                    retry.next_try_ms = retry.next_try_ms.min(now_ms);
                }
                events.push(RecoveryEvent::NodeRecovered {
                    node,
                    at_ms: now_ms,
                });
            } else if silent {
                // Still dead and silent for a full window again: any
                // partial trust streak is broken.
                self.consecutive_beats.remove(&node);
            }
        }
    }

    fn reschedule_due<S: Scheduler + ?Sized>(
        &mut self,
        now_ms: f64,
        cluster: &Cluster,
        state: &mut GlobalState,
        scheduler: &S,
        topologies: &[&Topology],
        events: &mut Vec<RecoveryEvent>,
    ) {
        let due: Vec<TopologyId> = self
            .pending
            .iter()
            .filter(|(_, r)| r.next_try_ms <= now_ms)
            .map(|(t, _)| t.clone())
            .collect();
        for tid in due {
            let Some(topology) = topologies.iter().find(|t| t.id() == &tid) else {
                self.pending.remove(&tid);
                continue;
            };
            // Churn limiter: a topology rescheduled less than
            // `min_reschedule_interval_ms` ago is deferred, not re-placed
            // — a flapping node pulling retries forward on every return
            // beat cannot thrash the scheduler. The deferred attempt
            // stays queued for when the quiet period ends.
            if self.config.min_reschedule_interval_ms > 0.0 {
                if let Some(&last) = self.last_reschedule_ms.get(&tid) {
                    let earliest = last + self.config.min_reschedule_interval_ms;
                    if now_ms < earliest {
                        // A topology that left the queue since `due`
                        // was computed has nothing to defer: skip it
                        // instead of panicking on the stale lookup.
                        let Some(retry) = self.pending.get_mut(&tid) else {
                            continue;
                        };
                        retry.next_try_ms = earliest;
                        let attempts = retry.attempts;
                        self.suppressed_reschedules += 1;
                        self.log(ControlRecord::SuppressFlap {
                            at_ms: now_ms,
                            subject: tid.as_str().to_owned(),
                            kind: FlapKind::Reschedule,
                        });
                        events.push(RecoveryEvent::RescheduleDeferred {
                            topology: tid,
                            at_ms: now_ms,
                            attempts,
                            retry_at_ms: earliest,
                        });
                        continue;
                    }
                }
            }
            // A stale entry that left the queue since `due` was
            // computed is skipped, not unwrapped.
            let attempts = {
                let Some(retry) = self.pending.get_mut(&tid) else {
                    continue;
                };
                retry.attempts += 1;
                retry.attempts
            };
            // A degraded placement from an earlier attempt is released so
            // this attempt can try for a strictly better one.
            let previous = if state
                .plan()
                .assignment(tid.as_str())
                .is_some_and(Assignment::is_degraded)
            {
                state.release_topology(tid.as_str())
            } else {
                None
            };
            self.total_reschedule_attempts += 1;
            self.last_reschedule_ms.insert(tid.clone(), now_ms);
            match scheduler.schedule(topology, cluster, state) {
                Ok(assignment) => {
                    self.log(ControlRecord::Reschedule {
                        at_ms: now_ms,
                        topology: tid.as_str().to_owned(),
                        attempts,
                        unplaced: assignment.unplaced().len(),
                    });
                    self.pending.remove(&tid);
                    events.push(RecoveryEvent::TopologyRescheduled {
                        topology: tid,
                        at_ms: now_ms,
                        attempts,
                        unplaced: assignment.unplaced().len(),
                    });
                }
                Err(_) => {
                    let degraded = place_degraded(topology, cluster, state);
                    let retry_at = self.next_backoff(now_ms, attempts);
                    match degraded {
                        Some(assignment) => {
                            // Partially running beats not running; keep
                            // the topology queued for an upgrade.
                            self.log(ControlRecord::Reschedule {
                                at_ms: now_ms,
                                topology: tid.as_str().to_owned(),
                                attempts,
                                unplaced: assignment.unplaced().len(),
                            });
                            if let Some(retry) = self.pending.get_mut(&tid) {
                                retry.next_try_ms = retry_at;
                            }
                            events.push(RecoveryEvent::TopologyRescheduled {
                                topology: tid,
                                at_ms: now_ms,
                                attempts,
                                unplaced: assignment.unplaced().len(),
                            });
                        }
                        None => {
                            // Nothing fit at all. If this attempt had
                            // released a previous degraded placement,
                            // restore it — shrinking to zero would be a
                            // regression, not degradation.
                            if let Some(prev) = previous {
                                restore_assignment(topology, &prev, cluster, state);
                            }
                            self.log(ControlRecord::Defer {
                                at_ms: now_ms,
                                topology: tid.as_str().to_owned(),
                                attempts,
                                retry_at_ms: retry_at,
                            });
                            if let Some(retry) = self.pending.get_mut(&tid) {
                                retry.next_try_ms = retry_at;
                            }
                            events.push(RecoveryEvent::RescheduleDeferred {
                                topology: tid,
                                at_ms: now_ms,
                                attempts,
                                retry_at_ms: retry_at,
                            });
                        }
                    }
                }
            }
        }
    }

    /// `now + min(base·2^(attempts-1), max) + jitter`, jitter uniform in
    /// `[0, base)` from the seeded generator — deterministic for a given
    /// config and call sequence, yet de-synchronized across topologies.
    fn next_backoff(&mut self, now_ms: f64, attempts: u32) -> f64 {
        let exponent = i32::try_from(attempts.saturating_sub(1).min(30)).expect("capped at 30");
        let delay = (self.config.backoff_base_ms * f64::powi(2.0, exponent))
            .min(self.config.backoff_max_ms);
        let jitter = self
            .rng
            .gen_range(0.0..self.config.backoff_base_ms.max(1.0));
        now_ms + delay + jitter
    }
}

/// Best-effort placement of `topology` on the surviving cluster.
///
/// Components are visited in BFS order (the same order the full
/// scheduler uses) and a component is eligible only when every upstream
/// component was itself placed — a tuple must have a complete path from
/// a spout to reach it. Each component's tasks are placed through the
/// ordinary Algorithm-4 node selection (which enforces the hard memory
/// constraint) and reserved under an [`UndoLog`]; if any task of the
/// component does not fit, the whole component rolls back bit-exactly
/// and is declared unplaced. Returns `None` when not a single component
/// fit, leaving `state` untouched.
fn place_degraded(
    topology: &Topology,
    cluster: &Cluster,
    state: &mut GlobalState,
) -> Option<Assignment> {
    let tid = topology.id().clone();
    let weights = SoftConstraintWeights::default();
    let mut selector = NodeSelector::new(cluster, &weights);
    let task_set = topology.task_set();
    let mut placed_components: BTreeSet<String> = BTreeSet::new();
    let mut slots: BTreeMap<TaskId, WorkerSlot> = BTreeMap::new();
    let mut unplaced: BTreeSet<TaskId> = BTreeSet::new();

    for component in bfs_component_order(topology) {
        let component = component.as_str();
        let upstream_complete = topology
            .upstream_ids(component)
            .iter()
            .all(|u| placed_components.contains(u.as_str()));
        let tasks = task_set.tasks_of(component);
        if !upstream_complete {
            unplaced.extend(tasks.iter().copied());
            continue;
        }
        let mut log = UndoLog::new();
        let mut component_slots: BTreeMap<TaskId, WorkerSlot> = BTreeMap::new();
        let mut fits = true;
        for &task in tasks {
            let Some(request) = task_set.resources(task) else {
                fits = false;
                break;
            };
            let Ok(node) = selector.select(state, request) else {
                fits = false;
                break;
            };
            if state
                .reserve_logged(&tid, &node, request, &mut log)
                .is_err()
            {
                fits = false;
                break;
            }
            match state.slot_for_logged(cluster, &tid, &node, &mut log) {
                Ok(slot) => {
                    component_slots.insert(task, slot);
                }
                Err(_) => {
                    fits = false;
                    break;
                }
            }
        }
        if fits {
            placed_components.insert(component.to_owned());
            slots.append(&mut component_slots);
        } else {
            state.rollback(log);
            unplaced.extend(tasks.iter().copied());
        }
    }

    if slots.is_empty() {
        return None;
    }
    let assignment = Assignment::with_unplaced(tid, slots, unplaced);
    state.commit(assignment.clone());
    Some(assignment)
}

/// Re-reserves and re-commits a previously released (degraded)
/// assignment. Reservations on nodes that died in the meantime are
/// dropped, exactly as [`GlobalState::rebuild`] treats them.
fn restore_assignment(
    topology: &Topology,
    assignment: &Assignment,
    cluster: &Cluster,
    state: &mut GlobalState,
) {
    let tid = assignment.topology().clone();
    let task_set = topology.task_set();
    for (task, slot) in assignment.iter() {
        if let Some(request) = task_set.resources(task) {
            let _ = state.reserve(&tid, &slot.node, request);
        }
        let _ = state.slot_for(cluster, &tid, &slot.node);
    }
    state.commit(assignment.clone());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rstorm::RStormScheduler;
    use crate::verify::{verify_plan, Violation};
    use rstorm_cluster::{ClusterBuilder, ResourceCapacity};
    use rstorm_topology::TopologyBuilder;

    fn two_node_cluster(memory_mb: f64) -> Cluster {
        ClusterBuilder::new()
            .add_node(
                "n0",
                "r0",
                ResourceCapacity::new(400.0, memory_mb, 100.0),
                4,
            )
            .add_node(
                "n1",
                "r0",
                ResourceCapacity::new(400.0, memory_mb, 100.0),
                4,
            )
            .build()
            .unwrap()
    }

    fn linear(name: &str, parallelism: u32, mem: f64) -> Topology {
        let mut b = TopologyBuilder::new(name);
        b.set_spout("s", parallelism)
            .set_cpu_load(10.0)
            .set_memory_load(mem);
        b.set_bolt("k", parallelism)
            .shuffle_grouping("s")
            .set_cpu_load(10.0)
            .set_memory_load(mem);
        b.build().unwrap()
    }

    struct Harness {
        cluster: Cluster,
        state: GlobalState,
        scheduler: RStormScheduler,
        manager: RecoveryManager,
    }

    fn harness(cluster: Cluster, topology: &Topology, config: RecoveryConfig) -> Harness {
        let mut state = GlobalState::new(&cluster);
        let scheduler = RStormScheduler::new();
        scheduler.schedule(topology, &cluster, &mut state).unwrap();
        Harness {
            cluster,
            state,
            scheduler,
            manager: RecoveryManager::new(config),
        }
    }

    /// One heartbeat round + tick: every node except those in `down`
    /// heartbeats at `t`.
    fn step(h: &mut Harness, topology: &Topology, t: f64, down: &[&str]) -> Vec<RecoveryEvent> {
        let names: Vec<String> = h
            .cluster
            .nodes()
            .iter()
            .map(|n| n.id().as_str().to_owned())
            .collect();
        for name in names {
            if !down.contains(&name.as_str()) {
                h.manager.observe_heartbeat(&name, t);
            }
        }
        h.manager
            .tick(t, &mut h.cluster, &mut h.state, &h.scheduler, &[topology])
    }

    #[test]
    fn silence_is_detected_after_the_miss_threshold() {
        // The small topology colocates entirely on n0, so n0 is the
        // victim whose loss displaces it.
        let t = linear("t", 2, 128.0);
        let mut h = harness(two_node_cluster(2048.0), &t, RecoveryConfig::default());
        assert!(step(&mut h, &t, 0.0, &[]).is_empty());
        // n0 goes silent after t=0; threshold is 3 × 1000 ms.
        assert!(step(&mut h, &t, 1_000.0, &["n0"]).is_empty());
        assert!(step(&mut h, &t, 2_000.0, &["n0"]).is_empty());
        let events = step(&mut h, &t, 3_000.0, &["n0"]);
        match &events[0] {
            RecoveryEvent::NodeDeclaredDead {
                node,
                at_ms,
                time_to_detect_ms,
                displaced,
            } => {
                assert_eq!(node, "n0");
                assert_eq!(*at_ms, 3_000.0);
                assert_eq!(*time_to_detect_ms, 3_000.0);
                assert_eq!(displaced.len(), 1, "the topology lived on n0");
            }
            other => panic!("expected NodeDeclaredDead, got {other:?}"),
        }
        assert!(!h.cluster.is_alive("n0"));
        assert_eq!(h.manager.dead_nodes().collect::<Vec<_>>(), ["n0"]);
    }

    #[test]
    fn displaced_topology_is_rescheduled_onto_survivors() {
        // The small topology colocates on n0; kill n0 and it must be
        // fully re-placed on the survivor.
        let t = linear("t", 2, 128.0);
        let mut h = harness(two_node_cluster(2048.0), &t, RecoveryConfig::default());
        step(&mut h, &t, 0.0, &[]);
        for ms in 1..3 {
            step(&mut h, &t, f64::from(ms) * 1_000.0, &["n0"]);
        }
        let events = step(&mut h, &t, 3_000.0, &["n0"]);
        // Detection and the full re-placement happen in the same tick:
        // the survivor has room for all four tasks.
        assert!(matches!(
            events[1],
            RecoveryEvent::TopologyRescheduled {
                attempts: 1,
                unplaced: 0,
                ..
            }
        ));
        let assignment = h.state.plan().assignment("t").unwrap();
        assert_eq!(assignment.len(), 4);
        assert!(assignment
            .iter()
            .all(|(_, slot)| slot.node.as_str() == "n1"));
        assert!(!h.manager.has_pending_reschedules());
        assert!(verify_plan(h.state.plan(), &[&t], &h.cluster).is_empty());
    }

    #[test]
    fn degraded_placement_respects_memory_and_upstream_order() {
        // 2 + 2 tasks × 700 MB: fits two 2048 MB nodes, not one. After
        // n1 dies only the spout component fits the survivor.
        let t = linear("t", 2, 700.0);
        let mut h = harness(two_node_cluster(2048.0), &t, RecoveryConfig::default());
        step(&mut h, &t, 0.0, &[]);
        for ms in 1..3 {
            step(&mut h, &t, f64::from(ms) * 1_000.0, &["n1"]);
        }
        let events = step(&mut h, &t, 3_000.0, &["n1"]);
        let Some(RecoveryEvent::TopologyRescheduled { unplaced, .. }) = events.get(1) else {
            panic!("expected a degraded TopologyRescheduled, got {events:?}");
        };
        assert_eq!(*unplaced, 2, "the bolt component is deferred");
        let assignment = h.state.plan().assignment("t").unwrap();
        assert!(assignment.is_degraded());
        let task_set = t.task_set();
        for &task in task_set.tasks_of("s") {
            assert!(assignment.slot_of(task).is_some(), "spouts are placed");
        }
        for &task in task_set.tasks_of("k") {
            assert!(assignment.unplaced().contains(&task), "bolts are declared");
        }
        // The explicit deficit passes verification; memory is not
        // overcommitted.
        let violations = verify_plan(h.state.plan(), &[&t], &h.cluster);
        assert!(
            violations.is_empty(),
            "degraded plan must verify cleanly: {violations:?}"
        );
        assert!(h.manager.has_pending_reschedules(), "upgrade still queued");
    }

    #[test]
    fn node_recovery_upgrades_a_degraded_placement() {
        let t = linear("t", 2, 700.0);
        let mut h = harness(two_node_cluster(2048.0), &t, RecoveryConfig::default());
        step(&mut h, &t, 0.0, &[]);
        for ms in 1..4 {
            step(&mut h, &t, f64::from(ms) * 1_000.0, &["n1"]);
        }
        assert!(h.state.plan().assignment("t").unwrap().is_degraded());
        // n1 heartbeats again: readmitted, and the pending upgrade
        // becomes due immediately.
        let events = step(&mut h, &t, 4_000.0, &[]);
        assert!(matches!(
            events[0],
            RecoveryEvent::NodeRecovered { ref node, .. } if node == "n1"
        ));
        assert!(matches!(
            events[1],
            RecoveryEvent::TopologyRescheduled { unplaced: 0, .. }
        ));
        let assignment = h.state.plan().assignment("t").unwrap();
        assert!(!assignment.is_degraded());
        assert_eq!(assignment.len(), 4);
        assert!(!h.manager.has_pending_reschedules());
        assert!(h.cluster.is_alive("n1"));
        assert!(verify_plan(h.state.plan(), &[&t], &h.cluster).is_empty());
    }

    #[test]
    fn unschedulable_topology_backs_off_exponentially() {
        // The spout component alone (2 × 1600 MB) exceeds the surviving
        // 3000 MB node, so after the failure not even a degraded
        // placement fits: every attempt is a total failure and must be
        // deferred with exponentially growing delays.
        let mut b = TopologyBuilder::new("t");
        b.set_spout("s", 2)
            .set_cpu_load(10.0)
            .set_memory_load(1_600.0);
        b.set_bolt("k", 2)
            .shuffle_grouping("s")
            .set_cpu_load(10.0)
            .set_memory_load(100.0);
        let t = b.build().unwrap();
        let mut h = harness(two_node_cluster(3_000.0), &t, RecoveryConfig::default());
        step(&mut h, &t, 0.0, &[]);
        for ms in 1..3 {
            step(&mut h, &t, f64::from(ms) * 1_000.0, &["n1"]);
        }
        let mut retries = Vec::new();
        let mut now = 3_000.0;
        for _ in 0..4 {
            let events = step(&mut h, &t, now, &["n1"]);
            // Jump straight to the scheduled retry so every loop
            // iteration performs exactly one more attempt.
            let mut next = now + 1.0;
            for e in events {
                if let RecoveryEvent::RescheduleDeferred {
                    retry_at_ms, at_ms, ..
                } = e
                {
                    retries.push(retry_at_ms - at_ms);
                    next = next.max(retry_at_ms);
                }
            }
            now = next;
        }
        assert_eq!(retries.len(), 4, "every attempt defers: {retries:?}");
        for (i, gap) in retries.iter().enumerate() {
            // Attempt n waits base·2^(n-1) + jitter, jitter ∈ [0, base).
            let floor = 500.0 * f64::powi(2.0, i32::try_from(i).unwrap());
            assert!(
                *gap >= floor && *gap < floor + 500.0,
                "retry {i} gap {gap} outside [{floor}, {floor} + 500)"
            );
        }
        assert!(
            h.state.plan().assignment("t").is_none(),
            "nothing could be placed"
        );
        assert!(h.manager.has_pending_reschedules(), "still queued");
    }

    #[test]
    fn backoff_jitter_is_deterministic_per_seed() {
        let mut a = RecoveryManager::new(RecoveryConfig::default());
        let mut b = RecoveryManager::new(RecoveryConfig::default());
        let mut c = RecoveryManager::new(RecoveryConfig {
            jitter_seed: 7,
            ..RecoveryConfig::default()
        });
        let seq_a: Vec<f64> = (1..6).map(|n| a.next_backoff(0.0, n)).collect();
        let seq_b: Vec<f64> = (1..6).map(|n| b.next_backoff(0.0, n)).collect();
        let seq_c: Vec<f64> = (1..6).map(|n| c.next_backoff(0.0, n)).collect();
        assert_eq!(seq_a, seq_b, "same seed, same jitter sequence");
        assert_ne!(seq_a, seq_c, "different seed decorrelates");
        // The exponential delay is capped at backoff_max_ms.
        let mut m = RecoveryManager::new(RecoveryConfig::default());
        let capped = m.next_backoff(0.0, 30);
        assert!(capped <= 30_000.0 + 500.0, "cap applies: {capped}");
    }

    #[test]
    fn tick_without_failures_is_a_no_op() {
        let t = linear("t", 2, 128.0);
        let mut h = harness(two_node_cluster(2048.0), &t, RecoveryConfig::default());
        let before = format!("{:?}", h.state.plan());
        for ms in 0..10 {
            assert!(step(&mut h, &t, f64::from(ms) * 1_000.0, &[]).is_empty());
        }
        assert_eq!(format!("{:?}", h.state.plan()), before);
        assert_eq!(h.manager.reschedule_attempts(), 0);
    }

    /// Flap injection: n1 beats on even ticks and misses on odd ones.
    /// With a 1-miss suspicion threshold each miss re-declares it and
    /// each beat pulls the degraded topology's upgrade retry forward —
    /// exactly the thrash pattern the churn limiter absorbs.
    #[test]
    fn flapping_node_triggers_at_most_one_reschedule_under_the_churn_limiter() {
        // 2 + 2 tasks × 700 MB span both 2048 MB nodes, so losing n1
        // degrades the topology and every readmission queues an upgrade
        // that would land work right back on the flapper.
        let t = linear("t", 2, 700.0);
        let config = RecoveryConfig {
            miss_threshold: 1,
            trust_threshold: 1,
            min_reschedule_interval_ms: 60_000.0,
            ..RecoveryConfig::default()
        };
        let mut h = harness(two_node_cluster(2048.0), &t, config);
        step(&mut h, &t, 0.0, &[]);
        let mut rescheduled = 0u32;
        let mut deferred = 0u32;
        for tick in 1..12 {
            let down: &[&str] = if tick % 2 == 1 { &["n1"] } else { &[] };
            for e in step(&mut h, &t, f64::from(tick) * 1_000.0, down) {
                match e {
                    RecoveryEvent::TopologyRescheduled { .. } => rescheduled += 1,
                    RecoveryEvent::RescheduleDeferred { .. } => deferred += 1,
                    _ => {}
                }
            }
        }
        assert_eq!(
            rescheduled, 1,
            "the flapper gets exactly the initial re-placement"
        );
        assert_eq!(h.manager.reschedule_attempts(), 1, "one scheduler call");
        assert!(deferred >= 2, "later flap cycles defer: {deferred}");
        assert_eq!(h.manager.suppressed_flaps(), u64::from(deferred));
    }

    #[test]
    fn trust_hysteresis_keeps_a_flapper_out_and_readmits_after_a_streak() {
        let t = linear("t", 2, 128.0);
        let config = RecoveryConfig {
            miss_threshold: 1,
            trust_threshold: 3,
            ..RecoveryConfig::default()
        };
        let mut h = harness(two_node_cluster(2048.0), &t, config);
        step(&mut h, &t, 0.0, &[]);
        // One miss declares n0 dead (threshold 1).
        let events = step(&mut h, &t, 1_000.0, &["n0"]);
        assert!(matches!(events[0], RecoveryEvent::NodeDeclaredDead { .. }));
        // Strict alternation: single beats never reach the 3-beat trust
        // streak, so the flapper is never readmitted.
        for tick in 2..10 {
            let down: &[&str] = if tick % 2 == 1 { &["n0"] } else { &[] };
            let events = step(&mut h, &t, f64::from(tick) * 1_000.0, down);
            assert!(
                !events
                    .iter()
                    .any(|e| matches!(e, RecoveryEvent::NodeRecovered { .. })),
                "flapper readmitted at tick {tick}: {events:?}"
            );
        }
        assert!(h.manager.dead_nodes().any(|n| n == "n0"));
        assert!(h.manager.suppressed_flaps() > 0, "withheld readmissions");
        // Three consecutive beats rebuild trust and readmit.
        let mut recovered = false;
        for tick in 10..14 {
            let events = step(&mut h, &t, f64::from(tick) * 1_000.0, &[]);
            recovered |= events.iter().any(
                |e| matches!(e, RecoveryEvent::NodeRecovered { ref node, .. } if node == "n0"),
            );
        }
        assert!(recovered, "a steady streak earns readmission");
        assert!(h.cluster.is_alive("n0"));
    }

    #[test]
    fn hysteresis_never_declares_a_steadily_beating_node_dead() {
        let t = linear("t", 2, 128.0);
        let config = RecoveryConfig {
            miss_threshold: 2,
            trust_threshold: 3,
            min_reschedule_interval_ms: 30_000.0,
            ..RecoveryConfig::default()
        };
        let mut h = harness(two_node_cluster(2048.0), &t, config);
        for tick in 0..50 {
            let events = step(&mut h, &t, f64::from(tick) * 1_000.0, &[]);
            assert!(events.is_empty(), "tick {tick} acted on a healthy node");
        }
        assert_eq!(h.manager.dead_nodes().count(), 0);
        assert_eq!(h.manager.suppressed_flaps(), 0);
        assert_eq!(h.manager.reschedule_attempts(), 0);
    }

    #[test]
    fn degraded_memory_never_exceeds_survivor_capacity() {
        // Wide topology: only a prefix of components can fit; whatever
        // is placed must respect the hard constraint exactly.
        let mut b = TopologyBuilder::new("wide");
        b.set_spout("s", 3).set_cpu_load(5.0).set_memory_load(500.0);
        b.set_bolt("k1", 3)
            .shuffle_grouping("s")
            .set_cpu_load(5.0)
            .set_memory_load(500.0);
        b.set_bolt("k2", 3)
            .shuffle_grouping("k1")
            .set_cpu_load(5.0)
            .set_memory_load(500.0);
        let t = b.build().unwrap();
        let mut h = harness(two_node_cluster(4096.0), &t, RecoveryConfig::default());
        step(&mut h, &t, 0.0, &[]);
        for ms in 1..4 {
            step(&mut h, &t, f64::from(ms) * 1_000.0, &["n1"]);
        }
        let assignment = h.state.plan().assignment("wide").unwrap();
        assert!(assignment.is_degraded());
        let placed_mb = assignment.len() as f64 * 500.0;
        assert!(
            placed_mb <= 4096.0,
            "placed {placed_mb} MB exceeds the survivor"
        );
        let violations = verify_plan(h.state.plan(), &[&t], &h.cluster);
        assert!(
            !violations
                .iter()
                .any(|v| matches!(v, Violation::MemoryOvercommit { .. })),
            "hard constraint violated: {violations:?}"
        );
    }

    #[test]
    fn the_shared_detection_window_and_slack_are_consistent() {
        let cfg = RecoveryConfig::default();
        assert_eq!(cfg.detection_window_ms(), 3_000.0);
        assert_eq!(
            cfg.detection_slack_ms(),
            cfg.detection_window_ms()
                + f64::from(RecoveryManager::DETECTION_SLACK_INTERVALS) * cfg.heartbeat_interval_ms
        );
    }

    /// Satellite boundary: at exactly `miss_threshold` consecutive
    /// misses — silence of exactly `detection_window_ms` — the
    /// declaration fires; one tick inside the window it does not.
    #[test]
    fn declaration_fires_exactly_at_the_miss_threshold_boundary() {
        let t = linear("t", 2, 128.0);
        let cfg = RecoveryConfig::default();
        let window = cfg.detection_window_ms();
        let mut h = harness(two_node_cluster(2048.0), &t, cfg);
        step(&mut h, &t, 0.0, &[]);
        // Strictly inside the window: not yet the threshold's worth of
        // consecutive misses.
        assert!(step(&mut h, &t, window - 1.0, &["n0"]).is_empty());
        // At exactly the window boundary the `>=` closes it.
        let events = step(&mut h, &t, window, &["n0"]);
        match &events[0] {
            RecoveryEvent::NodeDeclaredDead {
                node,
                time_to_detect_ms,
                ..
            } => {
                assert_eq!(node, "n0");
                assert_eq!(*time_to_detect_ms, window);
            }
            other => panic!("expected NodeDeclaredDead, got {other:?}"),
        }
    }

    /// Satellite hysteresis boundary: a declared-dead node is readmitted
    /// on exactly its `trust_threshold`-th consecutive beat, not one
    /// earlier.
    #[test]
    fn readmission_lands_exactly_at_trust_threshold_beats() {
        let t = linear("t", 2, 128.0);
        let config = RecoveryConfig {
            miss_threshold: 1,
            trust_threshold: 3,
            ..RecoveryConfig::default()
        };
        let mut h = harness(two_node_cluster(2048.0), &t, config);
        step(&mut h, &t, 0.0, &[]);
        let events = step(&mut h, &t, 1_000.0, &["n0"]);
        assert!(matches!(events[0], RecoveryEvent::NodeDeclaredDead { .. }));
        // Beats one and two are withheld by the hysteresis.
        for tick in 2..4 {
            let events = step(&mut h, &t, f64::from(tick) * 1_000.0, &[]);
            assert!(
                !events
                    .iter()
                    .any(|e| matches!(e, RecoveryEvent::NodeRecovered { .. })),
                "readmitted after only {} beats: {events:?}",
                tick - 1
            );
        }
        assert_eq!(h.manager.suppressed_flaps(), 2);
        // The third consecutive beat readmits.
        let events = step(&mut h, &t, 4_000.0, &[]);
        assert!(
            events.iter().any(
                |e| matches!(e, RecoveryEvent::NodeRecovered { ref node, .. } if node == "n0")
            ),
            "the trust_threshold-th beat readmits: {events:?}"
        );
        assert!(h.cluster.is_alive("n0"));
    }

    /// Satellite: replaying a flap storm's journal reproduces the live
    /// manager's suppression bookkeeping exactly.
    #[test]
    fn journal_replay_of_a_flap_storm_matches_live_suppressed_flaps() {
        // The 700 MB topology spans both nodes, so flapping n1 degrades
        // it and queues upgrade retries that the churn limiter defers,
        // while the trust hysteresis withholds n1's readmissions.
        let t = linear("t", 2, 700.0);
        let config = RecoveryConfig {
            miss_threshold: 1,
            trust_threshold: 2,
            min_reschedule_interval_ms: 60_000.0,
            journal: true,
            ..RecoveryConfig::default()
        };
        let mut h = harness(two_node_cluster(2048.0), &t, config);
        step(&mut h, &t, 0.0, &[]);
        for tick in 1..12 {
            let down: &[&str] = if tick % 2 == 1 { &["n1"] } else { &[] };
            step(&mut h, &t, f64::from(tick) * 1_000.0, down);
        }
        assert!(h.manager.suppressed_flaps() > 0, "the storm was absorbed");
        let replayed = h.manager.journal().expect("journal attached").replay();
        assert_eq!(replayed.suppressed_flaps(), h.manager.suppressed_flaps());
        assert!(replayed.suppressed_readmissions > 0);
        assert!(replayed.suppressed_reschedules > 0);
        assert_eq!(
            replayed.dead.iter().map(String::as_str).collect::<Vec<_>>(),
            h.manager.dead_nodes().collect::<Vec<_>>()
        );
        assert_eq!(
            replayed.reschedule_attempts,
            h.manager.reschedule_attempts()
        );
    }

    /// Journaling is passive: the same scenario with and without the
    /// journal produces identical events and counters.
    #[test]
    fn journaling_never_changes_control_decisions() {
        let t = linear("t", 2, 700.0);
        let base = RecoveryConfig {
            miss_threshold: 1,
            trust_threshold: 2,
            min_reschedule_interval_ms: 60_000.0,
            ..RecoveryConfig::default()
        };
        let journaled = RecoveryConfig {
            journal: true,
            ..base.clone()
        };
        let run = |config: RecoveryConfig| {
            let mut h = harness(two_node_cluster(2048.0), &t, config);
            let mut all = Vec::new();
            for tick in 0..12 {
                let down: &[&str] = if tick % 2 == 1 { &["n1"] } else { &[] };
                all.extend(step(&mut h, &t, f64::from(tick) * 1_000.0, down));
            }
            (
                all,
                h.manager.suppressed_flaps(),
                h.manager.reschedule_attempts(),
            )
        };
        assert_eq!(run(base), run(journaled));
    }

    #[test]
    fn reassume_replays_the_journal_and_redeclares_diverged_nodes() {
        let t = linear("t", 2, 128.0);
        let config = RecoveryConfig {
            journal: true,
            ..RecoveryConfig::default()
        };
        let mut h = harness(two_node_cluster(2048.0), &t, config.clone());
        step(&mut h, &t, 0.0, &[]);
        for ms in 1..=3 {
            step(&mut h, &t, f64::from(ms) * 1_000.0, &["n0"]);
        }
        assert!(h.manager.dead_nodes().any(|n| n == "n0"));
        assert!(!h.manager.has_pending_reschedules());

        // Nimbus crashes at t=3 s and a successor reassumes at t=10 s
        // from the predecessor's journal.
        let journal = h.manager.take_journal();
        let roster: Vec<String> = h
            .cluster
            .nodes()
            .iter()
            .map(|n| n.id().as_str().to_owned())
            .collect();
        let (mut successor, replayed) =
            RecoveryManager::reassume(config, journal, 10_000.0, &roster);
        assert!(replayed >= 2, "dead declaration + reschedule: {replayed}");
        assert!(
            successor.dead_nodes().any(|n| n == "n0"),
            "the journaled dead set is adopted"
        );
        assert_eq!(
            successor.reschedule_attempts(),
            h.manager.reschedule_attempts(),
            "attempt counters continue, they do not restart"
        );

        // n1 went silent during the outage: its live state diverged from
        // the journal's believed-alive. The seeded handoff heartbeat
        // re-declares it within an ordinary detection window.
        let events = successor.tick(13_000.0, &mut h.cluster, &mut h.state, &h.scheduler, &[&t]);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, RecoveryEvent::NodeDeclaredDead { node, .. } if node == "n1")),
            "diverged node re-declared: {events:?}"
        );
    }

    #[test]
    fn reassume_without_a_journal_is_cold_and_blind() {
        let t = linear("t", 2, 128.0);
        let mut h = harness(two_node_cluster(2048.0), &t, RecoveryConfig::default());
        step(&mut h, &t, 0.0, &[]);
        let roster: Vec<String> = h
            .cluster
            .nodes()
            .iter()
            .map(|n| n.id().as_str().to_owned())
            .collect();
        let (mut cold, replayed) =
            RecoveryManager::reassume(RecoveryConfig::default(), None, 10_000.0, &roster);
        assert_eq!(replayed, 0);
        assert_eq!(cold.dead_nodes().count(), 0);
        // n0 has been silent since before the failover: the cold
        // successor never observes it, so it is never declared — the
        // blind spot the journal closes.
        for ms in [13_000.0, 16_000.0, 30_000.0] {
            let events = cold.tick(ms, &mut h.cluster, &mut h.state, &h.scheduler, &[&t]);
            assert!(events.is_empty(), "a cold successor cannot act: {events:?}");
        }
    }
}
