//! Scheduling errors.

use rstorm_topology::{TaskId, TopologyId};
use std::error::Error;
use std::fmt;

/// Why a scheduling attempt failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// No node satisfies a task's hard (memory) constraint.
    ///
    /// R-Storm refuses to violate hard constraints: "if a system attempts
    /// to use more memory resources than physically available the
    /// consequences are catastrophic" (§3).
    InsufficientMemory {
        /// The topology being scheduled.
        topology: TopologyId,
        /// The task that could not be placed.
        task: TaskId,
        /// The task's memory demand in MB.
        needed_mb: f64,
        /// The largest remaining memory on any alive node, in MB.
        best_available_mb: f64,
    },
    /// The cluster has no alive nodes.
    NoAliveNodes,
    /// The topology is already scheduled in this [`crate::GlobalState`].
    AlreadyScheduled(TopologyId),
    /// The instance exceeds an exact solver's tractability limit
    /// (exhaustive search is exponential; the paper's §3 rules it out for
    /// production precisely because of this).
    InstanceTooLarge {
        /// Number of tasks in the topology.
        tasks: usize,
        /// The solver's task limit.
        limit: usize,
    },
    /// A reservation or slot lookup named a node that is unknown to the
    /// cluster layout or no longer alive. Surfacing this as an error
    /// (instead of the pre-recovery `panic!`) keeps a mid-failure
    /// reschedule from aborting the host process.
    UnknownNode {
        /// The node id that failed to resolve.
        node: String,
    },
    /// An operation that refines an *existing* placement (the adaptive
    /// delta scheduler) was asked about a topology the
    /// [`crate::GlobalState`] has no assignment for.
    NotScheduled(TopologyId),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InsufficientMemory {
                topology,
                task,
                needed_mb,
                best_available_mb,
            } => write!(
                f,
                "cannot schedule `{topology}`: {task} needs {needed_mb} MB but the best \
                 node has only {best_available_mb} MB remaining"
            ),
            Self::NoAliveNodes => f.write_str("cluster has no alive nodes"),
            Self::AlreadyScheduled(t) => write!(f, "topology `{t}` is already scheduled"),
            Self::InstanceTooLarge { tasks, limit } => write!(
                f,
                "{tasks} tasks exceed the exact solver's limit of {limit} \
                 (exhaustive search is exponential)"
            ),
            Self::UnknownNode { node } => {
                write!(f, "unknown or dead node `{node}`")
            }
            Self::NotScheduled(t) => {
                write!(f, "topology `{t}` has no assignment to rebalance")
            }
        }
    }
}

impl Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ScheduleError::InsufficientMemory {
            topology: TopologyId::new("big"),
            task: TaskId(7),
            needed_mb: 4096.0,
            best_available_mb: 1024.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("big") && msg.contains("task-7"));
        assert!(msg.contains("4096") && msg.contains("1024"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<ScheduleError>();
    }
}
