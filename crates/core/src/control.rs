//! The control-plane write-ahead journal.
//!
//! Storm's Nimbus is fail-fast: it crashes rather than limping along,
//! and a successor recovers by replaying durable state (ZooKeeper in
//! real Storm). [`ControlJournal`] is this workspace's analog — an
//! append-only log of every control decision the
//! [`RecoveryManager`](crate::RecoveryManager) takes, written *before*
//! the decision mutates cluster state, so a successor that lost the
//! in-memory manager can rebuild exactly what its predecessor knew:
//!
//! * **Records** ([`ControlRecord`]) cover dead/alive declarations,
//!   reschedules (full and degraded), total-failure deferrals with
//!   their backoff deadlines, and flap suppressions (withheld
//!   readmissions, churn-limited reschedules).
//! * **Idempotency keys** ([`ControlRecord::idempotency_key`]) make
//!   every append and every replay step exactly-once: a record whose
//!   key was already applied is a duplicate or a stale retry of the
//!   same action racing the outage, and is suppressed rather than
//!   double-applied.
//! * **Replay** ([`ControlJournal::replay`]) folds the log into a
//!   [`ReplayState`] — the dead set, the pending-retry queue with
//!   attempt counts (so exponential backoff continues where it left
//!   off instead of restarting), the churn-limiter timestamps and the
//!   suppression counters. `RecoveryManager::reassume` seeds a
//!   successor from it and reconciles against live heartbeats.
//!
//! The journal is strictly opt-in
//! ([`RecoveryConfig::journal`](crate::RecoveryConfig::journal),
//! default off) and strictly passive: appending never changes what the
//! live manager decides, so a journaled run is bit-identical to an
//! unjournaled one.

use std::collections::{BTreeMap, BTreeSet};

/// Which flap-absorption path suppressed a control action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlapKind {
    /// The trust hysteresis withheld a readmission (the returning node
    /// had not yet delivered `trust_threshold` consecutive beats).
    Readmission,
    /// The churn limiter deferred a reschedule (the topology was
    /// re-placed less than `min_reschedule_interval_ms` ago).
    Reschedule,
}

impl FlapKind {
    fn label(self) -> &'static str {
        match self {
            Self::Readmission => "readmission",
            Self::Reschedule => "reschedule",
        }
    }
}

/// One durable control decision, journaled before it is acted on.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlRecord {
    /// A node exceeded the heartbeat-miss threshold and is about to be
    /// removed from the schedulable pool.
    DeclareDead {
        /// Decision time.
        at_ms: f64,
        /// The node being declared dead.
        node: String,
    },
    /// A declared-dead node earned readmission and is about to rejoin
    /// the pool.
    DeclareAlive {
        /// Decision time.
        at_ms: f64,
        /// The node being readmitted.
        node: String,
    },
    /// A displaced topology was handed to the scheduler and placed
    /// (fully if `unplaced == 0`, degraded otherwise — a degraded
    /// placement stays queued for an upgrade).
    Reschedule {
        /// Decision time.
        at_ms: f64,
        /// The re-placed topology.
        topology: String,
        /// Reschedule attempts consumed so far, for backoff continuity.
        attempts: u32,
        /// Tasks the surviving cluster could not fit (0 = full).
        unplaced: usize,
    },
    /// A reschedule attempt placed nothing at all and was pushed back
    /// with exponential backoff.
    Defer {
        /// Decision time.
        at_ms: f64,
        /// The still-unplaced topology.
        topology: String,
        /// Reschedule attempts consumed so far.
        attempts: u32,
        /// Backoff deadline of the next attempt.
        retry_at_ms: f64,
    },
    /// The flap-absorption machinery suppressed an action instead of
    /// taking it.
    SuppressFlap {
        /// Decision time.
        at_ms: f64,
        /// The node (readmission) or topology (reschedule) concerned.
        subject: String,
        /// Which absorption path fired.
        kind: FlapKind,
    },
}

impl ControlRecord {
    /// Decision time of the record.
    pub fn at_ms(&self) -> f64 {
        match self {
            Self::DeclareDead { at_ms, .. }
            | Self::DeclareAlive { at_ms, .. }
            | Self::Reschedule { at_ms, .. }
            | Self::Defer { at_ms, .. }
            | Self::SuppressFlap { at_ms, .. } => *at_ms,
        }
    }

    /// The per-action idempotency key: two records describe the same
    /// control action exactly when their keys are equal. Appending or
    /// replaying a key twice is a duplicate (or a stale retry racing an
    /// outage) and is suppressed.
    pub fn idempotency_key(&self) -> String {
        match self {
            Self::DeclareDead { at_ms, node } => format!("dead:{node}@{at_ms:?}"),
            Self::DeclareAlive { at_ms, node } => format!("alive:{node}@{at_ms:?}"),
            Self::Reschedule {
                at_ms,
                topology,
                attempts,
                ..
            } => format!("resched:{topology}@{at_ms:?}#{attempts}"),
            Self::Defer {
                at_ms,
                topology,
                attempts,
                ..
            } => format!("defer:{topology}@{at_ms:?}#{attempts}"),
            Self::SuppressFlap {
                at_ms,
                subject,
                kind,
            } => format!("flap:{}:{subject}@{at_ms:?}", kind.label()),
        }
    }
}

/// What a journal replay reconstructed: the successor's starting
/// bookkeeping. See [`ControlJournal::replay`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplayState {
    /// Nodes declared dead and not since readmitted.
    pub dead: BTreeSet<String>,
    /// Topologies still awaiting a (full) placement: name →
    /// `(attempts consumed, retry deadline)`.
    pub pending: BTreeMap<String, (u32, f64)>,
    /// When each topology was last handed to the scheduler, for churn-
    /// limiter continuity.
    pub last_reschedule_ms: BTreeMap<String, f64>,
    /// Scheduler invocations the predecessor spent on recovery.
    pub reschedule_attempts: u64,
    /// Readmissions the trust hysteresis withheld.
    pub suppressed_readmissions: u64,
    /// Reschedules the churn limiter deferred.
    pub suppressed_reschedules: u64,
    /// Records applied — the successor's decisions-replayed metric.
    pub applied: u64,
    /// Records skipped because their idempotency key was already
    /// applied (duplicate or stale).
    pub duplicates: u64,
}

impl ReplayState {
    /// Flap events absorbed instead of acted on — the journal-side
    /// mirror of `RecoveryManager::suppressed_flaps`.
    pub fn suppressed_flaps(&self) -> u64 {
        self.suppressed_readmissions + self.suppressed_reschedules
    }
}

/// Append-only write-ahead log of control decisions. See the module
/// docs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ControlJournal {
    records: Vec<ControlRecord>,
    keys: BTreeSet<String>,
    suppressed_appends: u64,
}

impl ControlJournal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `record` unless its idempotency key was already
    /// journaled. Returns whether the record was accepted; a rejected
    /// append is counted in [`ControlJournal::suppressed_appends`].
    pub fn append(&mut self, record: ControlRecord) -> bool {
        if self.keys.insert(record.idempotency_key()) {
            self.records.push(record);
            true
        } else {
            self.suppressed_appends += 1;
            false
        }
    }

    /// The journaled records, in append order.
    pub fn records(&self) -> &[ControlRecord] {
        &self.records
    }

    /// Number of journaled records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was journaled.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends rejected because their key was already journaled.
    pub fn suppressed_appends(&self) -> u64 {
        self.suppressed_appends
    }

    /// Folds the log into the successor's starting bookkeeping,
    /// applying each idempotency key at most once (keys seen twice are
    /// counted in [`ReplayState::duplicates`], not re-applied).
    pub fn replay(&self) -> ReplayState {
        let mut state = ReplayState::default();
        let mut seen: BTreeSet<String> = BTreeSet::new();
        for record in &self.records {
            if !seen.insert(record.idempotency_key()) {
                state.duplicates += 1;
                continue;
            }
            state.applied += 1;
            match record {
                ControlRecord::DeclareDead { node, .. } => {
                    state.dead.insert(node.clone());
                }
                ControlRecord::DeclareAlive { node, .. } => {
                    state.dead.remove(node);
                }
                ControlRecord::Reschedule {
                    at_ms,
                    topology,
                    attempts,
                    unplaced,
                } => {
                    state.reschedule_attempts += 1;
                    state.last_reschedule_ms.insert(topology.clone(), *at_ms);
                    if *unplaced > 0 {
                        // Degraded: the upgrade retry stays queued and
                        // becomes due as soon as the successor ticks.
                        state.pending.insert(topology.clone(), (*attempts, *at_ms));
                    } else {
                        state.pending.remove(topology);
                    }
                }
                ControlRecord::Defer {
                    topology,
                    attempts,
                    retry_at_ms,
                    ..
                } => {
                    state.reschedule_attempts += 1;
                    state
                        .pending
                        .insert(topology.clone(), (*attempts, *retry_at_ms));
                }
                ControlRecord::SuppressFlap { kind, .. } => match kind {
                    FlapKind::Readmission => state.suppressed_readmissions += 1,
                    FlapKind::Reschedule => state.suppressed_reschedules += 1,
                },
            }
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dead(at_ms: f64, node: &str) -> ControlRecord {
        ControlRecord::DeclareDead {
            at_ms,
            node: node.to_owned(),
        }
    }

    fn alive(at_ms: f64, node: &str) -> ControlRecord {
        ControlRecord::DeclareAlive {
            at_ms,
            node: node.to_owned(),
        }
    }

    #[test]
    fn replay_folds_declarations_into_the_dead_set() {
        let mut j = ControlJournal::new();
        assert!(j.append(dead(3_000.0, "n0")));
        assert!(j.append(dead(3_000.0, "n1")));
        assert!(j.append(alive(9_000.0, "n0")));
        let state = j.replay();
        assert_eq!(state.dead.iter().collect::<Vec<_>>(), ["n1"]);
        assert_eq!(state.applied, 3);
        assert_eq!(state.duplicates, 0);
    }

    #[test]
    fn duplicate_keys_are_suppressed_at_append_time() {
        let mut j = ControlJournal::new();
        assert!(j.append(dead(3_000.0, "n0")));
        assert!(!j.append(dead(3_000.0, "n0")), "same action, same key");
        assert!(j.append(dead(4_000.0, "n0")), "a later death is distinct");
        assert_eq!(j.len(), 2);
        assert_eq!(j.suppressed_appends(), 1);
    }

    #[test]
    fn reschedule_records_track_the_pending_queue_and_backoff_continuity() {
        let mut j = ControlJournal::new();
        j.append(ControlRecord::Defer {
            at_ms: 3_000.0,
            topology: "t".into(),
            attempts: 1,
            retry_at_ms: 3_700.0,
        });
        j.append(ControlRecord::Reschedule {
            at_ms: 3_700.0,
            topology: "t".into(),
            attempts: 2,
            unplaced: 4,
        });
        let degraded = j.replay();
        assert_eq!(degraded.pending.get("t"), Some(&(2, 3_700.0)));
        assert_eq!(degraded.reschedule_attempts, 2);

        j.append(ControlRecord::Reschedule {
            at_ms: 8_000.0,
            topology: "t".into(),
            attempts: 3,
            unplaced: 0,
        });
        let full = j.replay();
        assert!(full.pending.is_empty(), "a full placement clears the queue");
        assert_eq!(full.last_reschedule_ms.get("t"), Some(&8_000.0));
    }

    #[test]
    fn suppression_records_mirror_the_flap_counters() {
        let mut j = ControlJournal::new();
        for tick in 1..4 {
            j.append(ControlRecord::SuppressFlap {
                at_ms: f64::from(tick) * 1_000.0,
                subject: "n0".into(),
                kind: FlapKind::Readmission,
            });
        }
        j.append(ControlRecord::SuppressFlap {
            at_ms: 5_000.0,
            subject: "t".into(),
            kind: FlapKind::Reschedule,
        });
        let state = j.replay();
        assert_eq!(state.suppressed_readmissions, 3);
        assert_eq!(state.suppressed_reschedules, 1);
        assert_eq!(state.suppressed_flaps(), 4);
    }

    #[test]
    fn idempotency_keys_distinguish_actions_not_representations() {
        let a = dead(3_000.0, "n0");
        let b = dead(3_000.0, "n0");
        let c = alive(3_000.0, "n0");
        assert_eq!(a.idempotency_key(), b.idempotency_key());
        assert_ne!(a.idempotency_key(), c.idempotency_key());
        assert_eq!(a.at_ms(), 3_000.0);
    }
}
