//! Simulation parameters.

/// Which network contention model serves `transfer()`.
///
/// The network plane (`crate::network`) is strictly opt-in: the default
/// [`NetworkModel::Legacy`] keeps every run bit-identical to the
/// pre-plane engine (pinned by the golden report, the parity property
/// suite, and the gate test), exactly like replay and incremental
/// routing were introduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkModel {
    /// Per-resource FIFO `LinkServer`s: each transfer serializes through
    /// its egress NIC, (for inter-rack hops) a single global uplink, and
    /// its ingress NIC, one after another. Concurrent flows queue; they
    /// never share a link's capacity. Bit-identical to the engine before
    /// the network plane existed.
    Legacy,
    /// Flow-level max-min fair sharing over a hierarchical link graph:
    /// per-NIC duplex links, per-rack uplink/downlink trunks and a core
    /// switch. Concurrent flows on a shared link split its capacity
    /// max-min fairly; completion times are recomputed on every flow
    /// start/finish (dslab-style progressive filling).
    Fair,
}

impl NetworkModel {
    /// Parses the CLI spelling (`legacy` / `fair`).
    ///
    /// # Errors
    ///
    /// Returns the offending word when it names no model.
    pub fn parse(word: &str) -> Result<Self, String> {
        match word {
            "legacy" => Ok(Self::Legacy),
            "fair" => Ok(Self::Fair),
            other => Err(format!(
                "unknown network model {other:?} (expected \"fair\" or \"legacy\")"
            )),
        }
    }
}

/// Knobs of a simulation run. Defaults mirror the paper's experimental
//  conventions where one exists.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Simulated duration in milliseconds. The paper runs experiments for
    /// ~15 minutes; [`SimConfig::default`] uses 300 s which is past
    /// convergence for every workload in this repository, and
    /// [`SimConfig::quick`] uses 60 s for tests.
    pub sim_time_ms: f64,
    /// Tuples per simulated batch (the simulation quantum). Larger batches
    /// simulate faster with coarser contention granularity.
    pub batch_tuples: u32,
    /// Maximum in-flight root batches per spout task — Storm's
    /// `topology.max.spout.pending`, the backpressure mechanism.
    pub max_pending: u32,
    /// Tuple-tree timeout in milliseconds (Storm's
    /// `topology.message.timeout.secs`, default 30 s). Roots not fully
    /// processed in time are failed and their credit returned.
    pub tuple_timeout_ms: f64,
    /// Throughput reporting window in ms (the paper reports tuples/10 s).
    pub window_ms: f64,
    /// RNG seed for routing decisions (same seed → identical run).
    pub seed: u64,
    /// CPU slowdown factor applied to a node whose placed tasks demand
    /// more memory than it has — models the paging/crash-restart thrash
    /// of an over-committed worker ("catastrophic failure", §3). 1.0
    /// disables the effect.
    pub oom_thrash_factor: f64,
    /// Per-root retry budget for failed tuple trees (Storm's at-least-once
    /// spout replay). On root timeout or crash-induced tree failure the
    /// spout re-emits the root up to this many times; roots failing beyond
    /// the budget are quarantined as poison tuples. `0` disables replay
    /// entirely and preserves bit-identical legacy (at-most-once) behavior.
    pub max_replays: u32,
    /// When true (the default), migrations patch only the routing-table
    /// rows whose producer or consumer moved instead of rebuilding the
    /// whole table — O(moved·degree) instead of O(tasks²). The patched
    /// table is bit-identical to a full rebuild (pinned by property
    /// tests), so this knob changes wall-clock cost only; `false` forces
    /// the legacy full rebuild on every migration.
    pub incremental_routing: bool,
    /// When true, the engine evaluates its accounting invariants — the
    /// replay-plane drain invariant
    /// `emitted == acked + quarantined + in_flight`, the live-root
    /// ledger, and report counter sanity — **in every build profile**
    /// and surfaces failures as typed
    /// [`crate::InvariantViolation`]s through
    /// [`crate::sim::Simulation::run_checked`] instead of
    /// `debug_assert!`ing. Off by default: a default run is bit-identical
    /// to the legacy engine and keeps the debug-only assertions. The
    /// chaos fuzzer forces this on so release-build campaigns actually
    /// check.
    pub check_invariants: bool,
    /// **Fuzzer self-test hook — never set this outside the planted-bug
    /// gate.** When true, quarantine accounting deliberately skips the
    /// `roots_quarantined` increment, breaking the drain invariant the
    /// first time a root exhausts its replay budget. The fuzz smoke and
    /// test suite use it to prove the campaign finds and shrinks a real
    /// violation; with the hook off (always, in real use) the branch is
    /// a single predictable-false comparison.
    #[doc(hidden)]
    pub planted_quarantine_bug: bool,
    /// Which contention model serves `transfer()` (see [`NetworkModel`]).
    /// Defaults to [`NetworkModel::Legacy`], which is bit-identical to
    /// the engine before the network plane existed; `Fair` routes every
    /// non-local transfer through the flow-level fair-share plane and
    /// unlocks the `network` section of the report.
    pub network_model: NetworkModel,
}

impl SimConfig {
    /// A short 60-second run for unit and integration tests.
    pub fn quick() -> Self {
        Self {
            sim_time_ms: 60_000.0,
            ..Self::default()
        }
    }

    /// Returns the configuration with a different seed (for replication
    /// runs).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the configuration with a different duration.
    pub fn with_sim_time_ms(mut self, sim_time_ms: f64) -> Self {
        assert!(
            sim_time_ms.is_finite() && sim_time_ms > 0.0,
            "sim time must be positive, got {sim_time_ms}"
        );
        self.sim_time_ms = sim_time_ms;
        self
    }

    /// Returns the configuration with a per-root replay budget (0 keeps
    /// replay disabled).
    pub fn with_max_replays(mut self, max_replays: u32) -> Self {
        self.max_replays = max_replays;
        self
    }

    /// Returns the configuration with incremental routing patches
    /// enabled or disabled (`false` forces a full rebuild per migration;
    /// results are bit-identical either way).
    pub fn with_incremental_routing(mut self, incremental_routing: bool) -> Self {
        self.incremental_routing = incremental_routing;
        self
    }

    /// Returns the configuration with release-build invariant checking
    /// enabled or disabled (see [`SimConfig::check_invariants`]). The
    /// report bits of a run are identical either way — only whether
    /// violations are *collected* changes.
    pub fn with_check_invariants(mut self, check_invariants: bool) -> Self {
        self.check_invariants = check_invariants;
        self
    }

    /// Fuzzer self-test hook (see
    /// [`SimConfig::planted_quarantine_bug`]).
    #[doc(hidden)]
    pub fn with_planted_quarantine_bug(mut self, planted: bool) -> Self {
        self.planted_quarantine_bug = planted;
        self
    }

    /// Returns the configuration with a different network contention
    /// model ([`NetworkModel::Legacy`] keeps the pre-plane behaviour).
    pub fn with_network_model(mut self, network_model: NetworkModel) -> Self {
        self.network_model = network_model;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            sim_time_ms: 300_000.0,
            batch_tuples: 10,
            max_pending: 100,
            tuple_timeout_ms: 30_000.0,
            window_ms: 10_000.0,
            seed: 42,
            oom_thrash_factor: 0.05,
            max_replays: 0,
            incremental_routing: true,
            check_invariants: false,
            planted_quarantine_bug: false,
            network_model: NetworkModel::Legacy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_storm_conventions() {
        let c = SimConfig::default();
        assert_eq!(c.tuple_timeout_ms, 30_000.0, "Storm's 30 s message timeout");
        assert_eq!(c.window_ms, 10_000.0, "paper reports tuples/10 s");
        assert!(c.max_pending > 0);
    }

    #[test]
    fn quick_is_shorter() {
        assert!(SimConfig::quick().sim_time_ms < SimConfig::default().sim_time_ms);
    }

    #[test]
    fn with_helpers() {
        let c = SimConfig::default()
            .with_seed(7)
            .with_sim_time_ms(1000.0)
            .with_max_replays(3)
            .with_incremental_routing(false);
        assert_eq!(c.seed, 7);
        assert_eq!(c.sim_time_ms, 1000.0);
        assert_eq!(c.max_replays, 3);
        assert!(!c.incremental_routing);
    }

    #[test]
    fn replay_is_off_by_default() {
        assert_eq!(SimConfig::default().max_replays, 0);
        assert_eq!(SimConfig::quick().max_replays, 0);
    }

    #[test]
    fn incremental_routing_is_on_by_default() {
        assert!(SimConfig::default().incremental_routing);
        assert!(SimConfig::quick().incremental_routing);
    }

    #[test]
    fn invariant_checking_is_off_by_default() {
        assert!(!SimConfig::default().check_invariants);
        assert!(!SimConfig::quick().check_invariants);
        assert!(!SimConfig::default().planted_quarantine_bug);
        let c = SimConfig::default().with_check_invariants(true);
        assert!(c.check_invariants);
    }

    #[test]
    #[should_panic(expected = "sim time")]
    fn non_positive_time_rejected() {
        SimConfig::default().with_sim_time_ms(0.0);
    }

    #[test]
    fn network_model_defaults_to_legacy() {
        assert_eq!(SimConfig::default().network_model, NetworkModel::Legacy);
        assert_eq!(SimConfig::quick().network_model, NetworkModel::Legacy);
        let c = SimConfig::default().with_network_model(NetworkModel::Fair);
        assert_eq!(c.network_model, NetworkModel::Fair);
    }

    #[test]
    fn network_model_parses_with_typed_errors() {
        assert_eq!(NetworkModel::parse("fair"), Ok(NetworkModel::Fair));
        assert_eq!(NetworkModel::parse("legacy"), Ok(NetworkModel::Legacy));
        let err = NetworkModel::parse("bogus").unwrap_err();
        assert!(err.contains("bogus"), "{err}");
        assert!(err.contains("fair"), "{err}");
    }
}
