//! The discrete-event simulation engine (fast path).
//!
//! The steady-state event loop touches only dense structures prepared at
//! build time by [`crate::build`]:
//!
//! * routing is a precomputed table — per producer task × output stream,
//!   the grouping is already resolved to a target pool and each target to
//!   its link path and latency, so emitting costs one RNG draw (for pick
//!   groupings) and zero allocation;
//! * in-flight tuple trees live in a generational slab with a free-list
//!   pool ([`crate::slab`]), not a `HashMap`;
//! * per-node CPU contention state is a dense `Vec` indexed by
//!   build-time slots ([`crate::servers::DenseCpuServer`]);
//! * throughput counters are a dense `Vec` indexed by interned sink ids —
//!   no `String` is hashed, cloned or compared between the first and the
//!   last event.
//!
//! [`crate::reference::ReferenceSimulation`] keeps the original
//! string-keyed implementation; parity tests assert both engines emit
//! identical [`SimReport`]s, which pins every reordering here to the
//! reference semantics (same RNG draw sequence, same event order, same
//! float arithmetic).

use crate::build::{ClusterIndex, GroupKind, LinkKind, Route, SimBuild, NO_SINK};
use crate::config::{NetworkModel, SimConfig};
use crate::event::EventQueue;
use crate::faults::{FaultEvent, FaultPlan};
use crate::network::{CompletedFlow, FairNetwork, LinkClass};
use crate::report::{
    InvariantViolation, LinkUtilization, NetworkObservations, SimDebugStats, SimReport, SimTotals,
};
use crate::servers::{legacy_link_fabric, DenseCpuServer, LinkServer};
use crate::slab::{RootSlab, RootState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rstorm_cluster::{Cluster, WorkerSlot};
use rstorm_core::{Assignment, MigrationPlan};
use rstorm_metrics::{CpuUtilizationTracker, StatisticServer, ThroughputReport, WindowedCounter};
use rstorm_topology::Topology;
use std::collections::VecDeque;
use std::sync::Arc;

/// A batch of tuples in flight, tagged with the root (spout emission) it
/// descends from for acking purposes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Batch {
    pub root: u64,
    pub tuples: u32,
}

/// The fast engine's heap payload, packed to 16 bytes so a scheduled
/// event is one 32-byte heap element (`RootTimeout`s live in a sidecar
/// FIFO — see [`Engine::timeouts`] — and never enter the heap).
#[derive(Debug, Clone, Copy)]
struct FastEv {
    root: u64,
    /// Event tag in the top two bits, global task index below.
    task_tag: u32,
    tuples: u32,
}

const TAG_SHIFT: u32 = 30;
const TASK_MASK: u32 = (1 << TAG_SHIFT) - 1;
const TAG_TRY_SPOUT: u32 = 0 << TAG_SHIFT;
const TAG_WORK_DONE: u32 = 1 << TAG_SHIFT;
const TAG_DELIVER: u32 = 2 << TAG_SHIFT;
const TAG_FAULT: u32 = 3 << TAG_SHIFT;

/// Sentinel task index marking a [`TAG_DELIVER`] event as a fair-plane
/// wake-up rather than a batch delivery (both tag bits are taken, so the
/// wake rides the deliver lane; real task indices never reach the mask).
/// The event's `root` field carries the plane's generation counter —
/// stale wake-ups are discarded.
const NET_WAKE_TASK: u32 = TASK_MASK;

/// A control event resolved to dense engine indices at build time (the
/// heap payload only carries an index into [`Engine::fault_actions`]).
/// The heap's two tag bits are exhausted, so every control-plane event —
/// faults, stats-export ticks and live migrations — rides the
/// [`TAG_FAULT`] lane and dispatches through this side table.
#[derive(Debug, Clone, Copy)]
enum FaultAction {
    Crash(u32),
    Recover(u32),
    SetLinkExtra(f64),
    /// Start dropping inter-rack transfers whose producer or consumer
    /// lives on this dense rack id (see [`FaultEvent::RackPartition`]).
    PartitionRack(u32),
    /// End the partition window for this dense rack id.
    HealRack(u32),
    /// Snapshot per-component stats into the exported
    /// [`StatisticServer`] and reschedule the next tick.
    StatsTick,
    /// Apply the migration at this index of [`Engine::migrations`].
    Migrate(u32),
}

impl FastEv {
    fn try_spout(task: usize) -> Self {
        Self {
            root: 0,
            task_tag: TAG_TRY_SPOUT | task as u32,
            tuples: 0,
        }
    }

    fn work_done(task: usize, batch: Batch) -> Self {
        Self {
            root: batch.root,
            task_tag: TAG_WORK_DONE | task as u32,
            tuples: batch.tuples,
        }
    }

    fn deliver(task: usize, batch: Batch) -> Self {
        Self {
            root: batch.root,
            task_tag: TAG_DELIVER | task as u32,
            tuples: batch.tuples,
        }
    }

    fn fault(action: usize) -> Self {
        Self {
            root: 0,
            task_tag: TAG_FAULT | action as u32,
            tuples: 0,
        }
    }
}

#[derive(Debug, Default)]
pub(crate) struct TaskRt {
    pub queue: VecDeque<Batch>,
    pub busy: bool,
    pub credits: u32,
    pub waiting_for_credit: bool,
    pub emit_acc: f64,
    /// Earliest time a rate-limited spout may emit its next root batch.
    pub next_emit_ms: f64,
    /// Set when this task's node crashed while a batch was being served:
    /// the already-scheduled `WorkDone` belongs to the dead worker and
    /// must be discarded (its batch is lost) instead of emitting.
    pub drop_next_work_done: bool,
    /// Earliest time this task may start serving a batch again — set by a
    /// live migration to `now + pause_ms` (the pause/drain/restore cost).
    /// Zero when the task never migrated, making the start-time clamp
    /// `now.max(resume_at_ms)` bit-neutral for untouched runs.
    pub resume_at_ms: f64,
    /// Total core-milliseconds of work this task has submitted — the
    /// stats-export hook's observed-CPU source. Write-only unless a
    /// [`StatisticServer`] is attached, so it cannot perturb the run.
    pub work_acc_ms: f64,
    /// Tuples this (bolt) task has processed, for stats export.
    pub processed_acc: u64,
    /// Tuples this task has emitted downstream, for stats export.
    pub emitted_acc: u64,
    /// The spout's replay buffer (replay mode only — always empty when
    /// `max_replays == 0`): failed logical roots awaiting re-emission as
    /// `(attempt, lost_tuples)` where `attempt` is the upcoming attempt
    /// number and `lost_tuples` carries crash-destroyed tuples from all
    /// prior attempts. Entries hold their original spout credit, so
    /// replays drain through the same `max_spout_pending` window as
    /// fresh emits — backpressure, not amplification. Crash draining
    /// must never touch this buffer: in Storm the pending buffer lives
    /// with the spout's acker ledger and survives worker restarts.
    pub replay_queue: VecDeque<(u32, u64)>,
}

/// Streaming accumulator for completed-root latencies (the population is
/// far too large to retain).
#[derive(Debug, Default)]
pub(crate) struct LatencyAccumulator {
    count: usize,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl LatencyAccumulator {
    pub fn record(&mut self, latency_ms: f64) {
        if self.count == 0 {
            self.min = latency_ms;
            self.max = latency_ms;
        } else {
            self.min = self.min.min(latency_ms);
            self.max = self.max.max(latency_ms);
        }
        self.count += 1;
        self.sum += latency_ms;
        self.sum_sq += latency_ms * latency_ms;
    }

    pub fn summary(&self) -> rstorm_metrics::Summary {
        if self.count == 0 {
            return rstorm_metrics::Summary::of([]);
        }
        let n = self.count as f64;
        let mean = self.sum / n;
        let variance = (self.sum_sq / n - mean * mean).max(0.0);
        rstorm_metrics::Summary {
            count: self.count,
            mean,
            stddev: variance.sqrt(),
            min: self.min,
            max: self.max,
        }
    }
}

/// The per-task constants the hot loop reads, packed densely (the full
/// [`crate::build::SimTaskSpec`] — strings, slots — is only consulted at
/// the report boundary).
#[derive(Debug, Clone, Copy)]
struct TaskStatic {
    node: u32,
    cpu_slot: u32,
    sink_ctr: u32,
    tuple_bytes: u32,
    work_ms_per_tuple: f64,
    emit_factor: f64,
    /// Spout pacing rate in tuples/s; negative means unlimited.
    max_rate: f64,
    is_spout: bool,
    is_sink: bool,
}

/// A migration request as handed to [`Simulation::schedule_migration`],
/// kept in source form until [`Engine::new`] resolves names to dense ids.
#[derive(Debug, Clone)]
struct PendingMigration {
    topology: String,
    at_ms: f64,
    pause_ms: f64,
    /// (task index within the topology, destination worker slot).
    moves: Vec<(u32, WorkerSlot)>,
}

/// A migration resolved to global task and dense node indices.
#[derive(Debug, Clone, Default)]
struct ResolvedMigration {
    pause_ms: f64,
    /// (global task index, destination dense node, destination slot).
    moves: Vec<(usize, usize, WorkerSlot)>,
}

/// Engine-side state of the stats-export hook.
#[derive(Debug)]
struct StatsState {
    server: Arc<StatisticServer>,
    interval_ms: f64,
    /// The `FaultAction::StatsTick` index, for self-rescheduling.
    action: usize,
    /// Per-task accumulator values at the previous tick, so each tick
    /// records only the delta into the windowed counters.
    last_work_ms: Vec<f64>,
    last_processed: Vec<u64>,
    last_emitted: Vec<u64>,
}

/// A configured simulation of one cluster executing any number of
/// scheduled topologies. See the [crate docs](crate) for the model.
#[derive(Debug)]
pub struct Simulation {
    cluster: Arc<Cluster>,
    config: SimConfig,
    index: ClusterIndex,
    build: SimBuild,
    faults: FaultPlan,
    stats: Option<(Arc<StatisticServer>, f64)>,
    migrations: Vec<PendingMigration>,
}

impl Simulation {
    /// Creates an empty simulation over `cluster`. Accepts either an
    /// owned [`Cluster`] or an `Arc<Cluster>` — harnesses that construct
    /// many simulations over the same cluster should share one `Arc`
    /// instead of deep-copying the cluster per run.
    pub fn new(cluster: impl Into<Arc<Cluster>>, config: SimConfig) -> Self {
        let cluster = cluster.into();
        let index = ClusterIndex::new(&cluster);
        let build = SimBuild::new(cluster.nodes().len());
        Self {
            cluster,
            config,
            index,
            build,
            faults: FaultPlan::new(),
            stats: None,
            migrations: Vec::new(),
        }
    }

    /// Attaches a [`StatisticServer`] and snapshots per-component stats
    /// into it every `interval_ms` of simulated time: observed CPU
    /// busy-time, processed/emitted tuple counts and input-queue depth.
    ///
    /// The export is a pure observer — it draws no randomness and mutates
    /// no engine state — so an exporting run produces the same
    /// [`SimReport`] as a plain one.
    ///
    /// # Panics
    ///
    /// Panics unless `interval_ms` is positive and finite.
    pub fn export_stats(&mut self, server: Arc<StatisticServer>, interval_ms: f64) {
        assert!(
            interval_ms.is_finite() && interval_ms > 0.0,
            "stats interval must be positive, got {interval_ms}"
        );
        self.stats = Some((server, interval_ms));
    }

    /// Schedules a live migration: at `at_ms`, every task in `plan.moves`
    /// relocates to its slot in `plan.updated`, paying a
    /// pause/drain/restore cost — the batch in service drains on the old
    /// node, carried queue contents and all future batches wait out a
    /// `pause_ms` service freeze on the destination.
    ///
    /// An empty plan schedules nothing, keeping the run bit-identical to
    /// an untouched one. Names are resolved when the simulation runs;
    /// unknown topologies or nodes panic there, consistent with
    /// [`Self::add_topology`].
    ///
    /// # Panics
    ///
    /// Panics if the times are negative or non-finite, or if the plan
    /// omits the destination slot of a moved task.
    pub fn schedule_migration(&mut self, plan: &MigrationPlan, at_ms: f64, pause_ms: f64) {
        assert!(
            at_ms.is_finite() && at_ms >= 0.0 && pause_ms.is_finite() && pause_ms >= 0.0,
            "migration times must be finite and non-negative, got at={at_ms} pause={pause_ms}"
        );
        if plan.is_empty() {
            return;
        }
        let moves = plan
            .moves
            .iter()
            .map(|m| {
                let slot = plan
                    .updated
                    .slot_of(m.task)
                    .unwrap_or_else(|| panic!("migration plan does not place {}", m.task))
                    .clone();
                (m.task.index() as u32, slot)
            })
            .collect();
        self.migrations.push(PendingMigration {
            topology: plan.topology.as_str().to_owned(),
            at_ms,
            pause_ms,
            moves,
        });
    }

    /// Injects a fault plan (see [`FaultPlan`]). Replaces any previously
    /// set plan; an empty plan restores fault-free behavior bit-for-bit.
    ///
    /// Node names are resolved against the cluster when the simulation
    /// runs; unknown names panic there, consistent with
    /// [`Self::add_topology`].
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// The currently configured fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Adds a scheduled topology to the simulation.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is incomplete or references nodes not in
    /// the cluster (verify foreign plans with `rstorm_core::verify_plan`
    /// first).
    pub fn add_topology(&mut self, topology: &Topology, assignment: &Assignment) {
        assert_eq!(
            topology.id().as_str(),
            assignment.topology().as_str(),
            "assignment belongs to a different topology"
        );
        self.build
            .append_topology(&self.index, self.cluster.costs(), topology, assignment);
    }

    /// Runs the simulation to completion and reports.
    ///
    /// # Panics
    ///
    /// Panics if no topology was added.
    pub fn run(self) -> SimReport {
        self.run_checked().report
    }

    /// Runs the simulation to completion and reports, together with any
    /// [`InvariantViolation`]s detected when
    /// [`SimConfig::check_invariants`] is on. With checking off (the
    /// default) the violation list is always empty and the report is
    /// bit-identical to [`Self::run`] — checking never perturbs the run,
    /// it only *collects* what the debug build would have asserted.
    ///
    /// # Panics
    ///
    /// Panics if no topology was added.
    pub fn run_checked(self) -> CheckedReport {
        assert!(
            !self.build.specs.is_empty(),
            "add at least one topology before running"
        );
        let (report, violations) = Engine::new(self).run();
        CheckedReport { report, violations }
    }
}

/// The outcome of [`Simulation::run_checked`]: the ordinary report plus
/// every invariant violation the checked engine observed (empty unless
/// [`SimConfig::check_invariants`] was on and something is actually
/// broken — the chaos fuzzer's oracle input).
#[derive(Debug, Clone)]
pub struct CheckedReport {
    /// The report, bit-identical to what [`Simulation::run`] returns.
    pub report: SimReport,
    /// Typed accounting/sanity violations, in detection order.
    pub violations: Vec<InvariantViolation>,
}

/// Mutable engine state, split from `Simulation` so the borrow checker
/// lets us index tasks and servers independently.
struct Engine {
    config: SimConfig,
    build: SimBuild,
    /// Kept alive for migrations, which re-derive routing from the cost
    /// matrix when placement changes mid-run.
    cluster: Arc<Cluster>,
    index: ClusterIndex,
    statics: Vec<TaskStatic>,

    queue: EventQueue<FastEv>,
    /// Pending `RootTimeout`s, in firing order. The tuple timeout is a
    /// fixed delta over a monotone clock, so deadlines arrive already
    /// sorted — a FIFO replaces ~`max_pending × spouts` heap residents
    /// with O(1) pushes and pops. Entries are `(key, seq, root)` with
    /// `seq` drawn from the shared [`EventQueue`] counter, so merging
    /// this lane with the heap by `(key, seq)` reproduces the exact
    /// single-queue event order.
    timeouts: VecDeque<(u64, u64, u64)>,
    cpus: Vec<DenseCpuServer>,
    egress: Vec<LinkServer>,
    ingress: Vec<LinkServer>,
    uplink: LinkServer,
    tasks: Vec<TaskRt>,
    roots: RootSlab,
    sink_counters: Vec<WindowedCounter>,
    rng: StdRng,
    totals: SimTotals,
    latency: LatencyAccumulator,
    events: u64,

    /// `config.max_replays > 0`. Every replay-plane branch and counter is
    /// gated on this so a replay-disabled run stays bit-identical to the
    /// legacy at-most-once engine (and to the reference oracle).
    replay_enabled: bool,
    /// Logical roots emitted but not yet settled (acked or quarantined):
    /// each is either a live unfailed slab attempt or a `replay_queue`
    /// entry. Maintains the drain invariant
    /// `roots_emitted == roots_completed + roots_quarantined + live_logical`.
    live_logical: u64,

    /// Liveness per dense node id; flipped by fault events only.
    node_down: Vec<bool>,
    /// Partition state per dense rack id; flipped by fault events only.
    rack_down: Vec<bool>,
    /// Count of currently partitioned racks. The hot transfer path
    /// checks this single integer; a plan with no partitions keeps it at
    /// zero forever, so fault-free and crash-only runs stay bit-identical
    /// to the legacy engine.
    racks_partitioned: u32,
    /// Global task indices hosted on each node (for crash draining and
    /// recovery re-kicks).
    node_tasks: Vec<Vec<usize>>,
    /// Extra per-transfer latency while a link degradation is active.
    link_extra_ms: f64,
    /// The fair-share network plane, present only when
    /// `config.network_model == NetworkModel::Fair`. `None` keeps every
    /// legacy run bit-identical to the pre-plane engine: all fair-plane
    /// branches are `is_some()` checks that never fire.
    network: Option<FairNetwork>,
    /// Fault actions resolved to dense ids, referenced by heap events.
    fault_actions: Vec<FaultAction>,
    /// `(at_ms, action index)` pairs scheduled into the queue by `run`.
    fault_schedule: Vec<(f64, usize)>,
    /// Stats-export hook, `None` unless a server was attached.
    stats: Option<StatsState>,
    /// Scheduled migrations resolved to dense ids.
    migrations: Vec<ResolvedMigration>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("tasks", &self.tasks.len())
            .field("now", &self.queue.now())
            .finish_non_exhaustive()
    }
}

impl Engine {
    fn new(sim: Simulation) -> Self {
        let Simulation {
            cluster,
            config,
            index,
            mut build,
            faults,
            stats: sim_stats,
            migrations: sim_migrations,
        } = sim;

        // Borrow the cost matrix; nothing here outlives this scope and
        // the per-route latencies were already baked in at build time.
        let costs = cluster.costs();
        let node_tasks = std::mem::take(&mut build.node_tasks);
        let cpus: Vec<DenseCpuServer> = index
            .cores
            .iter()
            .zip(&build.node_mem_demand)
            .zip(&index.memory_mb)
            .zip(&node_tasks)
            .map(|(((&cores, &demand), &capacity), globals)| {
                let thrash = if demand > capacity && config.oom_thrash_factor < 1.0 {
                    // Over-committed memory: the node pages/crash-loops.
                    config.oom_thrash_factor
                } else {
                    1.0
                };
                DenseCpuServer::new(cores, thrash, globals.clone())
            })
            .collect();

        // Resolve the fault plan to dense node ids now so the hot loop
        // never touches a string. Unknown names panic, consistent with
        // `add_topology`.
        let resolve = |node: &str| -> u32 {
            *index
                .node_of
                .get(node)
                .unwrap_or_else(|| panic!("fault plan references unknown node `{node}`"))
                as u32
        };
        let mut fault_actions = Vec::new();
        let mut fault_schedule = Vec::new();
        for ev in faults.events() {
            match ev {
                FaultEvent::NodeCrash { at_ms, node } => {
                    fault_schedule.push((*at_ms, fault_actions.len()));
                    fault_actions.push(FaultAction::Crash(resolve(node)));
                }
                FaultEvent::NodeRecover { at_ms, node } => {
                    fault_schedule.push((*at_ms, fault_actions.len()));
                    fault_actions.push(FaultAction::Recover(resolve(node)));
                }
                FaultEvent::LinkDegrade {
                    at_ms,
                    until_ms,
                    extra_latency_ms,
                } => {
                    fault_schedule.push((*at_ms, fault_actions.len()));
                    fault_actions.push(FaultAction::SetLinkExtra(*extra_latency_ms));
                    fault_schedule.push((*until_ms, fault_actions.len()));
                    fault_actions.push(FaultAction::SetLinkExtra(0.0));
                }
                FaultEvent::RackPartition {
                    at_ms,
                    until_ms,
                    rack,
                } => {
                    // `cluster.racks()` order is the dense rack-index
                    // order used by `ClusterIndex::rack_of_node`.
                    let r = cluster
                        .racks()
                        .iter()
                        .position(|id| id.as_str() == rack)
                        .unwrap_or_else(|| panic!("fault plan references unknown rack `{rack}`"))
                        as u32;
                    fault_schedule.push((*at_ms, fault_actions.len()));
                    fault_actions.push(FaultAction::PartitionRack(r));
                    fault_schedule.push((*until_ms, fault_actions.len()));
                    fault_actions.push(FaultAction::HealRack(r));
                }
                // Control-plane events have no data-plane effect: the
                // engine keeps running; only the chaos harnesses'
                // RecoveryManager loop reacts to them.
                FaultEvent::NimbusCrash { .. } | FaultEvent::ControlLoss { .. } => {}
            }
        }

        // Stats export and migrations share the fault lane (see
        // `FaultAction`). The first stats tick fires one interval in;
        // later ticks self-reschedule.
        let stats = sim_stats.map(|(server, interval_ms)| {
            let action = fault_actions.len();
            fault_actions.push(FaultAction::StatsTick);
            fault_schedule.push((interval_ms, action));
            StatsState {
                server,
                interval_ms,
                action,
                last_work_ms: vec![0.0; build.specs.len()],
                last_processed: vec![0; build.specs.len()],
                last_emitted: vec![0; build.specs.len()],
            }
        });
        let mut migrations = Vec::new();
        for m in sim_migrations {
            let base = build
                .specs
                .iter()
                .position(|s| s.topology == m.topology)
                .unwrap_or_else(|| {
                    panic!("migration references unknown topology `{}`", m.topology)
                });
            let moves = m
                .moves
                .iter()
                .map(|(task, slot)| {
                    let node = *index.node_of.get(slot.node.as_str()).unwrap_or_else(|| {
                        panic!("migration references unknown node `{}`", slot.node)
                    });
                    (base + *task as usize, node, slot.clone())
                })
                .collect();
            fault_schedule.push((m.at_ms, fault_actions.len()));
            fault_actions.push(FaultAction::Migrate(migrations.len() as u32));
            migrations.push(ResolvedMigration {
                pause_ms: m.pause_ms,
                moves,
            });
        }
        let (egress, ingress, uplink) = legacy_link_fabric(
            index.cores.len(),
            costs.node_bandwidth_mbps,
            costs.inter_rack_bandwidth_mbps,
        );
        let network = match config.network_model {
            NetworkModel::Legacy => None,
            NetworkModel::Fair => Some(FairNetwork::new(
                index.cores.len(),
                cluster.racks().len(),
                costs.node_bandwidth_mbps,
                costs.inter_rack_bandwidth_mbps,
                config.window_ms,
                config.sim_time_ms,
            )),
        };

        let tasks = build
            .specs
            .iter()
            .map(|s| TaskRt {
                credits: if s.is_spout {
                    s.max_spout_pending.unwrap_or(config.max_pending)
                } else {
                    0
                },
                ..TaskRt::default()
            })
            .collect();
        let statics = build
            .specs
            .iter()
            .map(|s| TaskStatic {
                node: s.node_idx as u32,
                cpu_slot: s.cpu_slot,
                sink_ctr: s.sink_ctr,
                tuple_bytes: s.tuple_bytes,
                work_ms_per_tuple: s.work_ms_per_tuple,
                emit_factor: s.emit_factor,
                max_rate: s.max_rate_tuples_per_sec.unwrap_or(-1.0),
                is_spout: s.is_spout,
                is_sink: s.is_sink,
            })
            .collect();
        let sink_counters = (0..build.sink_counters)
            .map(|_| WindowedCounter::new(config.window_ms))
            .collect();

        let rng = StdRng::seed_from_u64(config.seed);
        let node_down = vec![false; index.cores.len()];
        let rack_down = vec![false; cluster.racks().len()];
        let replay_enabled = config.max_replays > 0;
        Self {
            config,
            build,
            cluster,
            index,
            statics,
            queue: EventQueue::new(),
            timeouts: VecDeque::new(),
            cpus,
            egress,
            ingress,
            uplink,
            tasks,
            roots: RootSlab::new(),
            sink_counters,
            rng,
            totals: SimTotals::default(),
            latency: LatencyAccumulator::default(),
            events: 0,
            replay_enabled,
            live_logical: 0,
            node_down,
            rack_down,
            racks_partitioned: 0,
            node_tasks,
            link_extra_ms: 0.0,
            network,
            fault_actions,
            fault_schedule,
            stats,
            migrations,
        }
    }

    fn run(mut self) -> (SimReport, Vec<InvariantViolation>) {
        for i in 0..self.statics.len() {
            if self.statics[i].is_spout {
                self.queue.schedule(0.0, FastEv::try_spout(i));
            }
        }
        let fault_schedule = std::mem::take(&mut self.fault_schedule);
        for (at_ms, action) in fault_schedule {
            self.queue.schedule(at_ms, FastEv::fault(action));
        }

        loop {
            // Merge the heap lane and the timeout FIFO by (key, seq):
            // whichever head is earlier is the event a single queue
            // would have popped.
            let take_timeout = match (self.queue.peek_key(), self.timeouts.front()) {
                (Some(h), Some(&(tk, ts, _))) => (tk, ts) < h,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (None, None) => break,
            };
            if take_timeout {
                let (key, _, root) = self.timeouts.pop_front().expect("front checked");
                let t = self.queue.advance_to(key);
                if t > self.config.sim_time_ms {
                    break;
                }
                self.events += 1;
                self.root_timeout(root);
            } else {
                let (t, ev) = self.queue.pop().expect("peek checked");
                if t > self.config.sim_time_ms {
                    break;
                }
                self.events += 1;
                let task = (ev.task_tag & TASK_MASK) as usize;
                let batch = Batch {
                    root: ev.root,
                    tuples: ev.tuples,
                };
                match ev.task_tag & !TASK_MASK {
                    TAG_TRY_SPOUT => self.try_spout(task),
                    TAG_WORK_DONE => self.work_done(task, batch),
                    TAG_DELIVER if task == NET_WAKE_TASK as usize => self.net_wake(ev.root),
                    TAG_DELIVER => self.deliver(task, batch),
                    _ => self.apply_fault(task),
                }
            }
        }

        self.report()
    }

    // ---- spout production --------------------------------------------

    fn try_spout(&mut self, i: usize) {
        if self.node_down[self.statics[i].node as usize] {
            return; // Crashed worker: the recovery event re-kicks spouts.
        }
        if self.tasks[i].busy {
            return; // WorkDone will retry.
        }
        // Replays drain first: the failed logical root still holds the
        // credit it took at first emission, so it bypasses the credit
        // gate and the pacing clock (a re-send is not a fresh arrival),
        // while fresh emits stay throttled by the shrunken window.
        if self.replay_enabled {
            if let Some((attempt, carried)) = self.tasks[i].replay_queue.pop_front() {
                self.totals.roots_replayed += 1;
                self.emit_root(i, attempt, carried);
                return;
            }
        }
        if self.tasks[i].credits == 0 {
            self.tasks[i].waiting_for_credit = true;
            return;
        }
        let now = self.queue.now();
        let spec = self.statics[i];
        // A rate-limited source paces its emissions regardless of credit
        // availability (the stream arrives at its own rate).
        if spec.max_rate >= 0.0 {
            if now + 1e-9 < self.tasks[i].next_emit_ms {
                let at = self.tasks[i].next_emit_ms;
                self.queue.schedule(at, FastEv::try_spout(i));
                return;
            }
            let interval = f64::from(self.config.batch_tuples) / spec.max_rate * 1000.0;
            let base = self.tasks[i].next_emit_ms.max(now);
            self.tasks[i].next_emit_ms = base + interval;
        }
        self.tasks[i].credits -= 1;
        if self.replay_enabled {
            self.totals.roots_emitted += 1;
            self.live_logical += 1;
        }
        self.emit_root(i, 0, 0);
    }

    /// Emits one root batch from spout `i` — attempt 0 for a fresh
    /// emission, attempt n with the carried `lost_tuples` tally for a
    /// replay. The caller has already settled admission (credit, pacing);
    /// the operation order below is the legacy `try_spout` tail, bit-for-bit.
    fn emit_root(&mut self, i: usize, attempt: u32, lost_tuples: u64) {
        let now = self.queue.now();
        let spec = self.statics[i];
        let deadline = now + self.config.tuple_timeout_ms;
        let root = self.roots.insert(RootState {
            pending: 1,
            born: now,
            deadline,
            spout: i as u32,
            failed: false,
            lost: 0,
            attempt,
            lost_tuples,
        });
        let (key, seq) = self.queue.alloc_slot(deadline);
        debug_assert!(
            self.timeouts
                .back()
                .is_none_or(|&(k, s, _)| (k, s) < (key, seq)),
            "timeout deadlines must arrive in order"
        );
        self.timeouts.push_back((key, seq, root));

        let batch = Batch {
            root,
            tuples: self.config.batch_tuples,
        };
        let work = f64::from(batch.tuples) * spec.work_ms_per_tuple;
        self.tasks[i].work_acc_ms += work;
        // `resume_at_ms` is 0.0 unless the task just migrated, so the
        // clamp is bit-neutral for untouched runs.
        let start = now.max(self.tasks[i].resume_at_ms);
        let done = self.cpus[spec.node as usize].serve(start, spec.cpu_slot as usize, work);
        self.tasks[i].busy = true;
        self.queue.schedule(done, FastEv::work_done(i, batch));
    }

    // ---- work completion ---------------------------------------------

    fn work_done(&mut self, i: usize, batch: Batch) {
        if self.tasks[i].drop_next_work_done {
            // The worker serving this batch died mid-service; the batch
            // is lost and nothing downstream of it ever happens. `busy`
            // guarantees exactly one WorkDone was in flight, so clearing
            // both flags fully resets the task.
            self.tasks[i].drop_next_work_done = false;
            self.tasks[i].busy = false;
            self.lose_batch(batch);
            return;
        }
        let now = self.queue.now();
        let spec = self.statics[i];

        if spec.is_spout {
            self.totals.spout_batches += 1;
        } else {
            self.totals.tuples_processed += u64::from(batch.tuples);
            self.tasks[i].processed_acc += u64::from(batch.tuples);
        }

        if spec.is_sink {
            let alive = self
                .roots
                .get(batch.root)
                .is_some_and(|r| !r.failed && now <= r.deadline);
            if alive {
                self.totals.tuples_completed += u64::from(batch.tuples);
                debug_assert_ne!(spec.sink_ctr, NO_SINK);
                self.sink_counters[spec.sink_ctr as usize].record(now, u64::from(batch.tuples));
            }
        }

        // Emission: anchor new copies on the root *before* releasing this
        // batch's own pending slot, so the root cannot complete early.
        if spec.emit_factor > 0.0 {
            let (_, group_len) = self.build.routing.task_groups[i];
            if group_len > 0 {
                self.tasks[i].emit_acc += spec.emit_factor;
                let n_out = self.tasks[i].emit_acc.floor() as u32;
                self.tasks[i].emit_acc -= f64::from(n_out);
                self.tasks[i].emitted_acc += u64::from(n_out) * u64::from(batch.tuples);
                for _ in 0..n_out {
                    self.emit(i, batch);
                }
            }
        }

        self.finish_pending(batch.root);

        self.tasks[i].busy = false;
        if spec.is_spout {
            let now = self.queue.now();
            self.queue.schedule(now, FastEv::try_spout(i));
        } else if let Some(next) = self.tasks[i].queue.pop_front() {
            self.start_processing(i, next);
        }
    }

    fn start_processing(&mut self, i: usize, batch: Batch) {
        let now = self.queue.now();
        let spec = self.statics[i];
        let work = f64::from(batch.tuples) * spec.work_ms_per_tuple;
        self.tasks[i].work_acc_ms += work;
        // Bit-neutral unless the task just migrated (see `try_spout`).
        let start = now.max(self.tasks[i].resume_at_ms);
        let done = self.cpus[spec.node as usize].serve(start, spec.cpu_slot as usize, work);
        self.tasks[i].busy = true;
        self.queue.schedule(done, FastEv::work_done(i, batch));
    }

    // ---- routing -------------------------------------------------------

    fn emit(&mut self, from: usize, batch: Batch) {
        let (group_start, group_len) = self.build.routing.task_groups[from];
        for g in group_start..group_start + group_len {
            let group = self.build.routing.groups[g as usize];
            match group.kind {
                GroupKind::Pick => {
                    let k = self.rng.gen_range(0..group.len as usize);
                    let route = self.build.routing.routes[group.start as usize + k];
                    self.transfer(from, route, batch);
                }
                GroupKind::All => {
                    for k in 0..group.len as usize {
                        let route = self.build.routing.routes[group.start as usize + k];
                        self.transfer(from, route, batch);
                    }
                }
            }
        }
    }

    fn transfer(&mut self, from: usize, route: Route, batch: Batch) {
        let now = self.queue.now();
        let spec = self.statics[from];
        let bytes = spec.tuple_bytes.saturating_mul(batch.tuples);

        // An active rack partition severs new inter-rack sends touching
        // the partitioned rack *before* any link server is consulted:
        // the dropped transfer consumes no egress/uplink/ingress
        // capacity, exactly as if the consumer's node had crashed. The
        // guard is a single integer compare when no partition is active,
        // keeping partition-free runs bit-identical.
        if self.racks_partitioned > 0 && matches!(route.kind, LinkKind::InterRack) {
            let src = self.index.rack_of_node[spec.node as usize];
            let dst = self.index.rack_of_node[route.to_node as usize];
            if self.rack_down[src] || self.rack_down[dst] {
                // Mirror the crashed-consumer path: the batch takes its
                // pending slot (as every transfer does) and is then lost,
                // so the tuple tree fails through the ordinary timeout.
                if let Some(root) = self.roots.get_mut(batch.root) {
                    root.pending += 1;
                }
                self.lose_batch(batch);
                return;
            }
        }

        // The fair-share plane (opt-in) turns every non-local transfer
        // into a flow that shares link capacity max-min fairly with all
        // concurrent flows; delivery is scheduled when the plane hands
        // the serialized batch back. Under the plane a degradation
        // shapes *capacity*, so `link_extra_ms` is not added here.
        if self.network.is_some() && !matches!(route.kind, LinkKind::Local) {
            let src_node = spec.node as usize;
            let dst_node = route.to_node as usize;
            let src_rack = self.index.rack_of_node[src_node];
            let dst_rack = self.index.rack_of_node[dst_node];
            if let Some(root) = self.roots.get_mut(batch.root) {
                root.pending += 1;
            }
            let net = self.network.as_mut().expect("checked above");
            let done = net.admit(
                now,
                src_node,
                dst_node,
                src_rack,
                dst_rack,
                matches!(route.kind, LinkKind::InterRack),
                f64::from(bytes),
                route.latency_ms,
                route.to,
                batch.root,
                batch.tuples,
            );
            self.finish_net_transition(done);
            return;
        }

        // `link_extra_ms` is 0.0 outside degradation windows; adding it
        // is then bit-neutral, preserving fault-free reference parity.
        let arrival = match route.kind {
            LinkKind::Local => now + route.latency_ms,
            LinkKind::SameRack => {
                let t1 = self.egress[spec.node as usize].serve(now, bytes);
                let t2 = self.ingress[route.to_node as usize].serve(t1, bytes);
                t2 + route.latency_ms + self.link_extra_ms
            }
            LinkKind::InterRack => {
                let t1 = self.egress[spec.node as usize].serve(now, bytes);
                let t2 = self.uplink.serve(t1, bytes);
                let t3 = self.ingress[route.to_node as usize].serve(t2, bytes);
                t3 + route.latency_ms + self.link_extra_ms
            }
        };

        if let Some(root) = self.roots.get_mut(batch.root) {
            root.pending += 1;
        }
        self.queue
            .schedule(arrival, FastEv::deliver(route.to as usize, batch));
    }

    // ---- fair-share network plane ---------------------------------------

    /// Handles a fair-plane wake-up event: if it carries the current
    /// generation, advance every flow to now, deliver the completed ones
    /// and re-arm; a stale generation means a later transition already
    /// superseded this wake-up.
    fn net_wake(&mut self, generation: u64) {
        let Some(net) = self.network.as_mut() else {
            return;
        };
        if generation != net.generation() {
            return;
        }
        let now = self.queue.now();
        let done = net.advance(now);
        self.finish_net_transition(done);
    }

    /// The tail of every fair-plane transition: schedule a delivery for
    /// each flow the plane just completed (serialization finished at the
    /// transition instant; propagation latency is added on top) and
    /// re-arm the single wake-up at the new earliest completion time.
    fn finish_net_transition(&mut self, done: Vec<CompletedFlow>) {
        let now = self.queue.now();
        for f in done {
            self.queue.schedule(
                now + f.latency_ms,
                FastEv::deliver(
                    f.to_task as usize,
                    Batch {
                        root: f.root,
                        tuples: f.tuples,
                    },
                ),
            );
        }
        let net = self.network.as_mut().expect("transition implies a plane");
        if let Some(at) = net.arm_wake() {
            let generation = net.generation();
            self.queue.schedule(
                at,
                FastEv {
                    root: generation,
                    task_tag: TAG_DELIVER | NET_WAKE_TASK,
                    tuples: 0,
                },
            );
        }
    }

    // ---- delivery ------------------------------------------------------

    fn deliver(&mut self, i: usize, batch: Batch) {
        self.totals.batches_delivered += 1;
        // Shed batches whose root already timed out: the real system's
        // queues would be drained of them by the replay mechanism, and
        // processing them would let queues grow without bound.
        let stale = self.roots.get(batch.root).is_none_or(|r| r.failed);
        if stale {
            self.totals.batches_dropped += 1;
            self.finish_pending(batch.root);
            return;
        }
        if self.node_down[self.statics[i].node as usize] {
            // Arrived at a crashed worker: the batch is lost and its
            // root will fail through the timeout path.
            self.lose_batch(batch);
            return;
        }
        if self.tasks[i].busy {
            self.tasks[i].queue.push_back(batch);
        } else {
            self.start_processing(i, batch);
        }
    }

    // ---- root lifecycle -------------------------------------------------

    /// Releases one pending slot of `root`, completing it if this was the
    /// last one.
    fn finish_pending(&mut self, root: u64) {
        let Some(state) = self.roots.get_mut(root) else {
            return;
        };
        state.pending -= 1;
        if state.pending > 0 {
            return;
        }
        let failed = state.failed;
        let spout = state.spout as usize;
        let born = state.born;
        self.roots.remove(root);
        if !failed {
            self.totals.roots_completed += 1;
            self.latency.record(self.queue.now() - born);
            if self.replay_enabled {
                // The logical root settles as acked. Any `lost_tuples`
                // carried from prior attempts die here uncharged: the
                // replay retransmitted that data, so nothing was lost
                // (an attempt with its own crash-lost batch can never
                // ack — only a later attempt can).
                self.live_logical -= 1;
            }
            self.return_credit(spout);
        }
    }

    fn root_timeout(&mut self, root: u64) {
        let Some(state) = self.roots.get_mut(root) else {
            return; // Completed before the deadline.
        };
        if state.failed {
            return;
        }
        state.failed = true;
        let spout = state.spout as usize;
        let attempt = state.attempt;
        let carried = state.lost_tuples;
        // Pending slots held by crash-lost batches can never be released
        // by processing (the batches no longer exist); the timeout drains
        // them so the slab slot is reclaimed. A live root always has
        // `pending >= 1`, and `pending` only reaches zero here when every
        // outstanding descendant was lost.
        state.pending -= state.lost;
        state.lost = 0;
        let fully_drained = state.pending == 0;
        if fully_drained {
            self.roots.remove(root);
        }
        self.totals.roots_timed_out += 1;
        if !self.replay_enabled {
            // Legacy at-most-once mode: the tuple is dropped and the
            // credit returns to the spout even though stale descendants
            // may still be in flight.
            self.return_credit(spout);
            return;
        }
        if attempt < self.config.max_replays {
            // At-least-once: queue the root on its spout's replay buffer.
            // The credit is NOT returned — the logical root keeps the one
            // it took at first emission until it acks or quarantines, so
            // replay pressure flows through the `max_spout_pending`
            // window instead of amplifying the emit rate.
            self.tasks[spout]
                .replay_queue
                .push_back((attempt + 1, carried));
            let now = self.queue.now();
            // Safe no-op if the spout is busy or its node is down; the
            // spout's WorkDone / node recovery re-kick it then.
            self.queue.schedule(now, FastEv::try_spout(spout));
        } else {
            // Retry budget exhausted: quarantine the poison tuple. Only
            // now do the crash-destroyed tuples of every attempt count as
            // lost — no replay will retransmit them. The planted-bug hook
            // (fuzzer self-test only) skips the settled-roots increment,
            // breaking the drain invariant on the first quarantine.
            if !self.config.planted_quarantine_bug {
                self.totals.roots_quarantined += 1;
            }
            self.totals.tuples_quarantined += u64::from(self.config.batch_tuples);
            self.totals.tuples_lost += carried;
            self.live_logical -= 1;
            self.return_credit(spout);
        }
    }

    fn return_credit(&mut self, spout: usize) {
        self.tasks[spout].credits += 1;
        if self.tasks[spout].waiting_for_credit {
            self.tasks[spout].waiting_for_credit = false;
            let now = self.queue.now();
            self.queue.schedule(now, FastEv::try_spout(spout));
        }
    }

    // ---- fault injection ------------------------------------------------

    fn apply_fault(&mut self, action: usize) {
        match self.fault_actions[action] {
            FaultAction::Crash(node) => self.crash_node(node as usize),
            FaultAction::Recover(node) => self.recover_node(node as usize),
            FaultAction::SetLinkExtra(extra_ms) => {
                self.link_extra_ms = extra_ms;
                // Under the fair plane the same knob degrades *capacity*
                // (a transition: flows slow down mid-transfer) instead of
                // adding per-transfer latency.
                if self.network.is_some() {
                    let now = self.queue.now();
                    let done = self
                        .network
                        .as_mut()
                        .expect("checked above")
                        .set_degrade(now, extra_ms);
                    self.finish_net_transition(done);
                }
            }
            FaultAction::PartitionRack(rack) => self.partition_rack(rack as usize),
            FaultAction::HealRack(rack) => self.heal_rack(rack as usize),
            FaultAction::StatsTick => self.stats_tick(),
            FaultAction::Migrate(m) => self.apply_migration(m as usize),
        }
    }

    /// Flushes the write-only per-task accumulators into the statistic
    /// server as window deltas and re-arms the next tick. Reads never
    /// feed back into the simulation, so an exporting run stays
    /// bit-identical to a plain one.
    fn stats_tick(&mut self) {
        let Some(mut stats) = self.stats.take() else {
            return;
        };
        let now = self.queue.now();
        // Attribute the delta to the middle of the elapsed interval so
        // the windowed counters bucket it where the work happened.
        let at_ms = now - 0.5 * stats.interval_ms;
        for i in 0..self.statics.len() {
            let spec = &self.build.specs[i];
            let rt = &self.tasks[i];
            let busy_delta = rt.work_acc_ms - stats.last_work_ms[i];
            if busy_delta > 0.0 {
                stats.server.record_busy_us(
                    &spec.topology,
                    &spec.component,
                    at_ms,
                    (busy_delta * 1000.0).round() as u64,
                );
                stats.last_work_ms[i] = rt.work_acc_ms;
            }
            let processed_delta = rt.processed_acc - stats.last_processed[i];
            if processed_delta > 0 {
                stats.server.record_processed(
                    &spec.topology,
                    &spec.component,
                    at_ms,
                    processed_delta,
                );
                stats.last_processed[i] = rt.processed_acc;
            }
            let emitted_delta = rt.emitted_acc - stats.last_emitted[i];
            if emitted_delta > 0 {
                stats
                    .server
                    .record_emitted(&spec.topology, &spec.component, at_ms, emitted_delta);
                stats.last_emitted[i] = rt.emitted_acc;
            }
            stats
                .server
                .record_queue_depth(&spec.topology, &spec.component, rt.queue.len() as u64);
        }
        let next = now + stats.interval_ms;
        if next <= self.config.sim_time_ms {
            self.queue.schedule(next, FastEv::fault(stats.action));
        }
        self.stats = Some(stats);
    }

    /// Executes a migration plan: each moved task's CPU slot deactivates
    /// on its old node (in-flight work completes there — `work_done`
    /// never consults the node), its queued batches carry over, and the
    /// task cold-starts on the destination once its pause window ends
    /// (`resume_at_ms` clamps the next service start). Memory demand and
    /// thrash follow the task; the routing table is patched over the
    /// moved tasks' rows (full rebuild when the patch declines or
    /// [`SimConfig::incremental_routing`] is off).
    fn apply_migration(&mut self, m: usize) {
        let migration = std::mem::take(&mut self.migrations[m]);
        let now = self.queue.now();
        let mut moved = Vec::new();
        for &(task, dest, ref slot) in &migration.moves {
            let old = self.statics[task].node as usize;
            if old == dest {
                continue;
            }
            debug_assert!(
                !self.node_down[dest],
                "migration targets a dead node (the adaptive plane must exclude them)"
            );
            self.cpus[old].deactivate(self.statics[task].cpu_slot as usize);
            let new_local = self.cpus[dest].add_task(task);
            let pos = self.node_tasks[old]
                .binary_search(&task)
                .expect("a migrating task lives on its source node");
            // The membership lists stay sorted by global task id (the
            // build appends in id order), so crash/recover can iterate
            // them directly without re-sorting a clone.
            self.node_tasks[old].remove(pos);
            let ins = self.node_tasks[dest]
                .binary_search(&task)
                .expect_err("a migrating task cannot already live on its destination");
            self.node_tasks[dest].insert(ins, task);
            let mem = self.build.specs[task].memory_mb;
            self.build.node_mem_demand[old] -= mem;
            self.build.node_mem_demand[dest] += mem;
            let spec = &mut self.build.specs[task];
            spec.node_idx = dest;
            spec.rack_idx = self.index.rack_of_node[dest];
            spec.slot = slot.clone();
            self.statics[task].node = dest as u32;
            self.statics[task].cpu_slot = new_local;
            self.tasks[task].resume_at_ms = now + migration.pause_ms;
            self.refresh_thrash(old);
            self.refresh_thrash(dest);
            moved.push(task);
        }
        if !moved.is_empty() {
            let patched = self.config.incremental_routing
                && self.build.patch_routing(self.cluster.costs(), &moved);
            if !patched {
                self.build.rebuild_routing(self.cluster.costs());
            }
        }
    }

    /// Recomputes a node's thrash factor after memory demand changed,
    /// mirroring the build-time rule.
    fn refresh_thrash(&mut self, node: usize) {
        let demand = self.build.node_mem_demand[node];
        let capacity = self.index.memory_mb[node];
        let thrash = if demand > capacity && self.config.oom_thrash_factor < 1.0 {
            self.config.oom_thrash_factor
        } else {
            1.0
        };
        self.cpus[node].set_thrash(thrash);
    }

    /// Kills every worker on `node`: queued and in-service batches are
    /// lost, spouts go dormant, future deliveries are lost on arrival
    /// (see [`Self::deliver`]). Idempotent.
    fn crash_node(&mut self, node: usize) {
        if self.node_down[node] {
            return;
        }
        self.node_down[node] = true;
        // `node_tasks` is kept sorted by global task id (`apply_migration`
        // inserts in order), so iterating it directly drains in a
        // migration-independent order — no clone-and-sort on the hot path.
        for k in 0..self.node_tasks[node].len() {
            let i = self.node_tasks[node][k];
            while let Some(batch) = self.tasks[i].queue.pop_front() {
                self.lose_batch(batch);
            }
            if self.tasks[i].busy {
                self.tasks[i].drop_next_work_done = true;
            }
        }
    }

    /// Brings `node` back: deliveries succeed again and dormant spouts
    /// are re-kicked (a spout that still has credit resumes immediately;
    /// `try_spout` re-checks `busy`/credits, so the kick is always safe).
    /// Idempotent.
    fn recover_node(&mut self, node: usize) {
        if !self.node_down[node] {
            return;
        }
        self.node_down[node] = false;
        let now = self.queue.now();
        // Sorted membership (see `crash_node`) keeps spout re-kicks in a
        // migration-independent enqueue order.
        for k in 0..self.node_tasks[node].len() {
            let i = self.node_tasks[node][k];
            if self.statics[i].is_spout {
                self.queue.schedule(now, FastEv::try_spout(i));
            }
        }
    }

    /// Starts a partition window on `rack`: from now until the matching
    /// [`Self::heal_rack`], inter-rack transfers whose producer or
    /// consumer lives on this rack are dropped at send time (see
    /// [`Self::transfer`]). Workers keep running and intra-rack/local
    /// traffic is unaffected; transfers already in flight still arrive —
    /// the uplink queue drains, new sends are severed. Idempotent.
    fn partition_rack(&mut self, rack: usize) {
        if self.rack_down[rack] {
            return;
        }
        self.rack_down[rack] = true;
        self.racks_partitioned += 1;
        // Under the fair plane the partition also cuts the rack's trunks
        // *mid-transfer*: in-flight flows crossing them are severed and
        // their batches lost (each already holds its root's pending slot
        // from admission, so the tree fails through the timeout path,
        // exactly like the legacy send-time drop).
        if self.network.is_some() {
            let now = self.queue.now();
            let (done, severed) = self
                .network
                .as_mut()
                .expect("checked above")
                .sever_rack(now, rack);
            for f in severed {
                self.lose_batch(Batch {
                    root: f.root,
                    tuples: f.tuples,
                });
            }
            self.finish_net_transition(done);
        }
    }

    /// Ends the partition window on `rack`. Idempotent.
    fn heal_rack(&mut self, rack: usize) {
        if !self.rack_down[rack] {
            return;
        }
        self.rack_down[rack] = false;
        self.racks_partitioned -= 1;
    }

    /// Accounts for a batch destroyed by a crash. A live root keeps the
    /// batch's pending slot occupied but remembers it as `lost`, so the
    /// tuple tree fails through the ordinary timeout path and the slot is
    /// drained there (see [`Self::root_timeout`]). Stale batches behave
    /// exactly as in [`Self::deliver`].
    fn lose_batch(&mut self, batch: Batch) {
        match self.roots.get_mut(batch.root) {
            Some(root) if !root.failed => {
                root.lost += 1;
                if self.replay_enabled {
                    // Defer the loss to the root's settlement: a replayed
                    // -then-acked root retransmitted this data, so
                    // charging `tuples_lost` here would double-count it
                    // as both lost and processed. Quarantine charges it.
                    root.lost_tuples += u64::from(batch.tuples);
                } else {
                    self.totals.tuples_lost += u64::from(batch.tuples);
                }
            }
            _ => {
                self.totals.batches_dropped += 1;
                self.finish_pending(batch.root);
            }
        }
    }

    // ---- reporting ------------------------------------------------------

    fn report(mut self) -> (SimReport, Vec<InvariantViolation>) {
        let mut violations = Vec::new();
        if self.replay_enabled {
            self.totals.roots_in_flight = self.live_logical;
            if self.config.check_invariants {
                // Checked mode: the same accounting identities the debug
                // build asserts, evaluated in every profile and surfaced
                // as typed violations instead of aborts.
                let queued: u64 = self.tasks.iter().map(|t| t.replay_queue.len() as u64).sum();
                let slab_live = self.roots.unfailed_live();
                if self.live_logical != slab_live + queued {
                    violations.push(InvariantViolation::LedgerMismatch {
                        live_logical: self.live_logical,
                        slab_live,
                        replay_queued: queued,
                    });
                }
                let settled = self
                    .totals
                    .roots_completed
                    .checked_add(self.totals.roots_quarantined)
                    .and_then(|s| s.checked_add(self.live_logical));
                if settled != Some(self.totals.roots_emitted) {
                    violations.push(InvariantViolation::DrainImbalance {
                        emitted: self.totals.roots_emitted,
                        completed: self.totals.roots_completed,
                        quarantined: self.totals.roots_quarantined,
                        in_flight: self.live_logical,
                    });
                }
            } else if !self.config.planted_quarantine_bug {
                #[cfg(debug_assertions)]
                {
                    let queued: u64 = self.tasks.iter().map(|t| t.replay_queue.len() as u64).sum();
                    debug_assert_eq!(
                        self.live_logical,
                        self.roots.unfailed_live() + queued,
                        "every un-settled logical root is exactly one live \
                         attempt or one replay-buffer entry"
                    );
                    debug_assert_eq!(
                        self.totals.roots_emitted,
                        self.totals.roots_completed
                            + self.totals.roots_quarantined
                            + self.live_logical,
                        "drain invariant: emitted == acked + quarantined + in_flight"
                    );
                }
            }
        }
        let elapsed = self.config.sim_time_ms;
        let mut tracker = CpuUtilizationTracker::new();
        for (i, cpu) in self.cpus.iter().enumerate() {
            tracker.register_node(self.index.node_names[i].clone(), cpu.cores());
            if cpu.busy_core_ms() > 0.0 {
                // Work committed past the horizon is clamped so that
                // utilization stays within physical capacity.
                let capacity = cpu.cores() * cpu.thrash() * elapsed;
                tracker.add_busy(&self.index.node_names[i], cpu.busy_core_ms().min(capacity));
            }
        }

        // Used-node counts from dense ids; the String keys of the report
        // maps are attached only here, at the boundary.
        let topo_count = self.build.topo_names.len();
        let node_count = self.index.node_names.len();
        let mut seen = vec![false; topo_count * node_count];
        let mut used_counts = vec![0usize; topo_count];
        for s in &self.build.specs {
            let cell = s.topo_id as usize * node_count + s.node_idx;
            if !seen[cell] {
                seen[cell] = true;
                used_counts[s.topo_id as usize] += 1;
            }
        }

        // Per-topology throughput from the dense sink counters. The float
        // arithmetic replicates `StatisticServer::topology_throughput`
        // exactly: sinks are summed in sorted-component-name order (the
        // interning order), then averaged.
        let num_windows = (elapsed / self.config.window_ms).floor() as usize;
        let mut throughput = std::collections::BTreeMap::new();
        let mut used_by_topology = std::collections::BTreeMap::new();
        for (tid, name) in self.build.topo_names.iter().enumerate() {
            let sinks = &self.build.sink_ctrs_by_topo[tid];
            let mut windows = vec![0.0f64; num_windows];
            if !sinks.is_empty() {
                for &ctr in sinks {
                    let counts = self.sink_counters[ctr as usize].complete_window_counts(elapsed);
                    for (w, c) in windows.iter_mut().zip(counts) {
                        *w += c as f64;
                    }
                }
                let n = sinks.len() as f64;
                for w in &mut windows {
                    *w /= n;
                }
            }
            throughput.insert(
                name.clone(),
                ThroughputReport {
                    window_ms: self.config.window_ms,
                    windows,
                },
            );
            used_by_topology.insert(name.clone(), used_counts[tid]);
        }

        let node_utilization = tracker.used_node_utilizations(elapsed);
        // Under the fair plane, inter-rack traffic is what the per-rack
        // uplink trunks carried; the legacy path keeps its single global
        // uplink counter. Link names are attached only here, at the
        // boundary — the plane itself knows only dense ids.
        let (inter_rack_mb, network) = match &self.network {
            Some(net) => {
                let links = net
                    .link_stats(elapsed)
                    .into_iter()
                    .map(|l| LinkUtilization {
                        link: match l.class {
                            LinkClass::Egress => {
                                format!("{}.egress", self.index.node_names[l.owner])
                            }
                            LinkClass::Ingress => {
                                format!("{}.ingress", self.index.node_names[l.owner])
                            }
                            LinkClass::Uplink => {
                                format!("{}.uplink", self.cluster.racks()[l.owner].as_str())
                            }
                            LinkClass::Downlink => {
                                format!("{}.downlink", self.cluster.racks()[l.owner].as_str())
                            }
                            LinkClass::Core => "core".to_owned(),
                        },
                        capacity_mbps: l.capacity_mbps,
                        mean_utilization: l.mean_utilization,
                        saturated_windows: l.saturated_windows,
                        mb_carried: l.carried_bytes / 1e6,
                    })
                    .collect();
                (
                    net.uplink_bytes() / 1e6,
                    Some(NetworkObservations { links }),
                )
            }
            None => (self.uplink.served_bytes() / 1e6, None),
        };
        let report = SimReport {
            duration_ms: elapsed,
            window_ms: self.config.window_ms,
            throughput,
            mean_used_cpu_utilization: tracker.mean_used_utilization(elapsed),
            used_nodes: tracker.used_node_count(),
            used_nodes_by_topology: used_by_topology,
            node_utilization,
            inter_rack_mb,
            latency_ms: self.latency.summary(),
            totals: self.totals,
            recovery: None,
            network,
            debug: SimDebugStats {
                events: self.events,
                root_pool_hits: self.roots.pool_hits,
                root_pool_misses: self.roots.pool_misses,
                max_live_roots: self.roots.max_live,
                route_entries: self.build.routing.routes.len() as u64,
            },
        };
        if self.config.check_invariants {
            violations.extend(report.sanity_violations());
        }
        (report, violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstorm_cluster::{ClusterBuilder, ResourceCapacity};
    use rstorm_core::schedulers::EvenScheduler;
    use rstorm_core::{schedule_all, GlobalState, RStormScheduler, Scheduler};
    use rstorm_topology::{ExecutionProfile, StreamGrouping, TopologyBuilder};

    fn emulab(racks: u32, nodes: u32) -> Cluster {
        ClusterBuilder::new()
            .homogeneous_racks(racks, nodes, ResourceCapacity::emulab_node(), 4)
            .build()
            .unwrap()
    }

    fn linear_topology(
        name: &str,
        parallelism: u32,
        profile: ExecutionProfile,
        cpu: f64,
        mem: f64,
    ) -> Topology {
        let mut b = TopologyBuilder::new(name);
        b.set_spout("c0", parallelism)
            .set_profile(profile)
            .set_cpu_load(cpu)
            .set_memory_load(mem);
        for i in 1..4 {
            let p = if i == 3 { profile.into_sink() } else { profile };
            b.set_bolt(format!("c{i}"), parallelism)
                .shuffle_grouping(format!("c{}", i - 1))
                .set_profile(p)
                .set_cpu_load(cpu)
                .set_memory_load(mem);
        }
        b.build().unwrap()
    }

    fn run_with<S: Scheduler>(
        scheduler: &S,
        topology: &Topology,
        cluster: &Cluster,
        config: SimConfig,
    ) -> SimReport {
        let mut state = GlobalState::new(cluster);
        let assignment = scheduler.schedule(topology, cluster, &mut state).unwrap();
        let mut sim = Simulation::new(cluster.clone(), config);
        sim.add_topology(topology, &assignment);
        sim.run()
    }

    #[test]
    fn tuples_flow_end_to_end() {
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::new(0.1, 1.0, 100), 20.0, 128.0);
        let report = run_with(&RStormScheduler::new(), &t, &cluster, SimConfig::quick());
        let thr = &report.throughput["t"];
        assert!(
            thr.steady_state(1).mean > 0.0,
            "sink saw tuples: {:?}",
            thr.windows
        );
        assert!(report.totals.spout_batches > 0);
        assert!(report.totals.roots_completed > 0);
        assert!(report.totals.tuples_completed > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::new(0.1, 1.0, 100), 20.0, 128.0);
        let r1 = run_with(&RStormScheduler::new(), &t, &cluster, SimConfig::quick());
        let r2 = run_with(&RStormScheduler::new(), &t, &cluster, SimConfig::quick());
        assert_eq!(r1.throughput["t"].windows, r2.throughput["t"].windows);
        assert_eq!(r1.totals, r2.totals);
    }

    #[test]
    fn conservation_invariants() {
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::new(0.2, 1.0, 200), 20.0, 128.0);
        let report = run_with(&RStormScheduler::new(), &t, &cluster, SimConfig::quick());
        let totals = &report.totals;
        assert!(totals.roots_completed + totals.roots_timed_out <= totals.spout_batches);
        assert!(totals.tuples_completed <= totals.tuples_processed);
        assert!(totals.batches_dropped <= totals.batches_delivered);
    }

    #[test]
    fn debug_stats_show_pool_reuse_and_routing() {
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::new(0.1, 1.0, 100), 20.0, 128.0);
        let report = run_with(&RStormScheduler::new(), &t, &cluster, SimConfig::quick());
        let d = &report.debug;
        assert!(d.events > 0, "events counted");
        assert!(d.route_entries > 0, "routes precomputed");
        // Root slots recycle: far more roots complete than the slab ever
        // holds at once, so the pool must be hit.
        assert!(
            d.root_pool_hits > 0,
            "root pool reused: {:?} (completed {})",
            d,
            report.totals.roots_completed
        );
        assert!(
            d.root_pool_misses <= d.max_live_roots,
            "slab only grows to the in-flight high-water mark: {d:?}"
        );
        // Roots are allocated at emission; a few may still be in flight
        // when the horizon cuts the run off.
        assert!(
            d.root_pool_hits + d.root_pool_misses >= report.totals.spout_batches,
            "every spout batch allocates a root: {:?} vs {}",
            d,
            report.totals.spout_batches
        );
    }

    #[test]
    fn backpressure_bounds_inflight_roots() {
        // A tiny, heavily CPU-bound sink limits end-to-end throughput;
        // max_pending must keep spout emission in check rather than let
        // it run at CPU speed.
        let cluster = emulab(1, 2);
        let mut b = TopologyBuilder::new("bp");
        b.set_spout("fast", 1)
            .set_profile(ExecutionProfile::new(0.01, 1.0, 100))
            .set_memory_load(64.0);
        b.set_bolt("slow-sink", 1)
            .shuffle_grouping("fast")
            .set_profile(ExecutionProfile::new(5.0, 0.0, 100))
            .set_memory_load(64.0);
        let t = b.build().unwrap();
        let mut config = SimConfig::quick();
        config.max_pending = 10;
        config.tuple_timeout_ms = 1e9; // no timeouts: pure backpressure
        let report = run_with(&RStormScheduler::new(), &t, &cluster, config);
        // The spout can only ever be max_pending roots ahead of the sink.
        assert!(
            report.totals.spout_batches <= report.totals.roots_completed + 10,
            "spout {} vs completed {}",
            report.totals.spout_batches,
            report.totals.roots_completed
        );
        assert!(
            report.debug.max_live_roots <= 10 + 1,
            "slab high-water mark tracks max_pending: {:?}",
            report.debug
        );
    }

    #[test]
    fn overload_causes_timeouts() {
        // One single-core node, CPU demand far beyond capacity, short
        // timeout: roots must start failing.
        let cluster = ClusterBuilder::new()
            .add_node("only", "r0", ResourceCapacity::emulab_node(), 4)
            .build()
            .unwrap();
        let mut b = TopologyBuilder::new("ovl");
        b.set_spout("s", 4)
            .set_profile(ExecutionProfile::new(1.0, 1.0, 100))
            .set_memory_load(64.0);
        b.set_bolt("heavy", 4)
            .shuffle_grouping("s")
            .set_profile(ExecutionProfile::new(50.0, 0.0, 100))
            .set_memory_load(64.0);
        let t = b.build().unwrap();
        let mut config = SimConfig::quick();
        config.tuple_timeout_ms = 2_000.0;
        let report = run_with(&EvenScheduler::new(), &t, &cluster, config);
        assert!(
            report.totals.roots_timed_out > 0,
            "expected timeouts under overload: {:?}",
            report.totals
        );
    }

    #[test]
    fn memory_overcommit_thrashes_node() {
        // 10 × 512 MB on a 2048 MB node → thrash; same workload on a big
        // node → healthy. The thrashing run must complete far fewer roots.
        let small = ClusterBuilder::new()
            .add_node("n", "r0", ResourceCapacity::new(400.0, 2048.0, 100.0), 4)
            .build()
            .unwrap();
        let big = ClusterBuilder::new()
            .add_node("n", "r0", ResourceCapacity::new(400.0, 65536.0, 100.0), 4)
            .build()
            .unwrap();
        let mut b = TopologyBuilder::new("mem");
        b.set_spout("s", 5)
            .set_profile(ExecutionProfile::new(0.5, 1.0, 100))
            .set_memory_load(512.0);
        b.set_bolt("k", 5)
            .shuffle_grouping("s")
            .set_profile(ExecutionProfile::new(0.5, 0.0, 100))
            .set_memory_load(512.0);
        let t = b.build().unwrap();
        let thrashed = run_with(&EvenScheduler::new(), &t, &small, SimConfig::quick());
        let healthy = run_with(&EvenScheduler::new(), &t, &big, SimConfig::quick());
        assert!(
            healthy.totals.roots_completed > 3 * thrashed.totals.roots_completed,
            "healthy {} vs thrashed {}",
            healthy.totals.roots_completed,
            thrashed.totals.roots_completed
        );
    }

    #[test]
    fn colocation_beats_spreading_for_network_bound_work() {
        // The core network-bound claim (Fig 8): with trivial per-tuple
        // work and fat tuples, R-Storm's colocated placement outperforms
        // the round-robin spread.
        let cluster = emulab(2, 6);
        let t = linear_topology("net", 6, ExecutionProfile::network_bound(400), 15.0, 128.0);
        // In-flight-limited regime (see the fig8 harness): placement
        // quality shows up as end-to-end latency.
        let mut config = SimConfig::quick();
        config.max_pending = 4;
        let rstorm = run_with(&RStormScheduler::new(), &t, &cluster, config.clone());
        let even = run_with(&EvenScheduler::new(), &t, &cluster, config);
        let r = rstorm.throughput["net"].steady_state(2).mean;
        let e = even.throughput["net"].steady_state(2).mean;
        assert!(
            r > e * 1.2,
            "R-Storm {r:.0} should clearly beat default {e:.0}"
        );
    }

    #[test]
    fn all_grouping_replicates_to_every_task() {
        // spout → bolt(all, p=3): every batch is processed three times.
        let cluster = emulab(1, 2);
        let mut b = TopologyBuilder::new("rep");
        b.set_spout("s", 1)
            .set_profile(ExecutionProfile::new(0.1, 1.0, 100))
            .set_memory_load(64.0);
        b.set_bolt("k", 3)
            .all_grouping("s")
            .set_profile(ExecutionProfile::new(0.05, 0.0, 100))
            .set_memory_load(64.0);
        let t = b.build().unwrap();
        let report = run_with(&RStormScheduler::new(), &t, &cluster, SimConfig::quick());
        let emitted = report.totals.spout_batches * 10; // 10 tuples/batch
        let processed = report.totals.tuples_processed;
        let ratio = processed as f64 / emitted as f64;
        assert!(
            (2.5..=3.0).contains(&ratio),
            "all-grouping fan-out should be ~3×, got {ratio:.2}"
        );
    }

    #[test]
    fn global_grouping_funnels_into_one_task() {
        // spout(p=2) → bolt(global, p=4): exactly one bolt task works, so
        // throughput is capped by a single task's service rate.
        let cluster = emulab(1, 4);
        let mut b = TopologyBuilder::new("glob");
        b.set_spout("s", 2)
            .set_profile(ExecutionProfile::new(0.05, 1.0, 100))
            .set_memory_load(64.0);
        b.set_bolt("k", 4)
            .global_grouping("s")
            .set_profile(ExecutionProfile::new(1.0, 0.0, 100))
            .set_memory_load(64.0);
        let t = b.build().unwrap();
        let report = run_with(&EvenScheduler::new(), &t, &cluster, SimConfig::quick());
        // One task at 1 ms/tuple can do at most 1000 tuples/s = 10 000
        // per window; with 4 tasks sharing it would be ~4×.
        let thr = report.steady_throughput("glob", 1);
        assert!(
            thr <= 10_500.0,
            "global grouping must serialize through one task, got {thr:.0}"
        );
        assert!(
            thr > 5_000.0,
            "but the single task should be busy: {thr:.0}"
        );
    }

    #[test]
    fn local_or_shuffle_prefers_the_local_task() {
        // Identical topologies, one shuffle and one local-or-shuffle;
        // under R-Storm's colocation the local variant keeps traffic in
        // the worker and completes faster.
        let make = |name: &str, local: bool| {
            let mut b = TopologyBuilder::new(name);
            b.set_max_spout_pending(4);
            b.set_spout("s", 4)
                .set_profile(ExecutionProfile::new(0.02, 1.0, 400))
                .set_cpu_load(20.0)
                .set_memory_load(64.0);
            let mut bolt = b.set_bolt("k", 4);
            if local {
                bolt.local_or_shuffle_grouping("s");
            } else {
                bolt.shuffle_grouping("s");
            }
            bolt.set_profile(ExecutionProfile::new(0.02, 0.0, 400))
                .set_cpu_load(20.0)
                .set_memory_load(64.0);
            b.build().unwrap()
        };
        let cluster = emulab(2, 6);
        let local = run_with(
            &RStormScheduler::new(),
            &make("local", true),
            &cluster,
            SimConfig::quick(),
        );
        let shuffled = run_with(
            &RStormScheduler::new(),
            &make("shuffled", false),
            &cluster,
            SimConfig::quick(),
        );
        assert!(
            local.latency_ms.mean < shuffled.latency_ms.mean,
            "local {:.3} ms vs shuffle {:.3} ms",
            local.latency_ms.mean,
            shuffled.latency_ms.mean
        );
    }

    #[test]
    fn colocated_placement_has_lower_latency() {
        let cluster = emulab(2, 6);
        let t = linear_topology("lat", 6, ExecutionProfile::network_bound(400), 15.0, 128.0);
        let mut config = SimConfig::quick();
        config.max_pending = 4;
        let rstorm = run_with(&RStormScheduler::new(), &t, &cluster, config.clone());
        let even = run_with(&EvenScheduler::new(), &t, &cluster, config);
        assert!(rstorm.latency_ms.count > 0 && even.latency_ms.count > 0);
        assert!(
            rstorm.latency_ms.mean < even.latency_ms.mean,
            "colocated {:.2} ms vs spread {:.2} ms",
            rstorm.latency_ms.mean,
            even.latency_ms.mean
        );
        // The throughput advantage IS the latency advantage in the
        // in-flight-limited regime (Little's law).
        assert!(rstorm.inter_rack_mb < even.inter_rack_mb);
    }

    #[test]
    fn multiple_topologies_share_the_cluster() {
        let cluster = emulab(2, 6);
        let t1 = linear_topology("a", 3, ExecutionProfile::new(0.2, 1.0, 100), 20.0, 128.0);
        let t2 = linear_topology("b", 3, ExecutionProfile::new(0.2, 1.0, 100), 20.0, 128.0);
        let plan = schedule_all(&RStormScheduler::new(), &[&t1, &t2], &cluster).unwrap();
        let mut sim = Simulation::new(cluster.clone(), SimConfig::quick());
        sim.add_topology(&t1, plan.assignment("a").unwrap());
        sim.add_topology(&t2, plan.assignment("b").unwrap());
        let report = sim.run();
        assert!(report.throughput["a"].steady_state(1).mean > 0.0);
        assert!(report.throughput["b"].steady_state(1).mean > 0.0);
        assert_eq!(report.used_nodes_by_topology.len(), 2);
    }

    #[test]
    fn shared_arc_cluster_avoids_per_sim_deep_copy() {
        // Constructing many simulations over one Arc'd cluster must not
        // clone the cluster (the fig8/fig10 harness pattern).
        let cluster = Arc::new(emulab(2, 3));
        let t = linear_topology("t", 2, ExecutionProfile::new(0.1, 1.0, 100), 20.0, 128.0);
        let mut state = GlobalState::new(&cluster);
        let assignment = RStormScheduler::new()
            .schedule(&t, &cluster, &mut state)
            .unwrap();
        let mut reports = Vec::new();
        for _ in 0..3 {
            let mut sim = Simulation::new(Arc::clone(&cluster), SimConfig::quick());
            sim.add_topology(&t, &assignment);
            reports.push(sim.run());
        }
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[1], reports[2]);
    }

    #[test]
    fn grouping_variants_route_without_string_keys() {
        // Exercise every grouping through the precomputed routing table
        // in one topology.
        let cluster = emulab(2, 3);
        let mut b = TopologyBuilder::new("mix");
        b.set_spout("s", 2)
            .set_profile(ExecutionProfile::new(0.05, 1.0, 100))
            .set_memory_load(64.0);
        b.set_bolt("all", 2)
            .all_grouping("s")
            .set_profile(ExecutionProfile::new(0.02, 1.0, 100))
            .set_memory_load(64.0);
        b.set_bolt("fields", 2)
            .fields_grouping("all", ["k"])
            .set_profile(ExecutionProfile::new(0.02, 1.0, 100))
            .set_memory_load(64.0);
        b.set_bolt("local", 2)
            .local_or_shuffle_grouping("fields")
            .set_profile(ExecutionProfile::new(0.02, 1.0, 100))
            .set_memory_load(64.0);
        b.set_bolt("sink", 1)
            .global_grouping("local")
            .set_profile(ExecutionProfile::new(0.02, 0.0, 100))
            .set_memory_load(64.0);
        let t = b.build().unwrap();
        assert!(matches!(
            t.consumers("s")[0].1.grouping,
            StreamGrouping::All
        ));
        let report = run_with(&RStormScheduler::new(), &t, &cluster, SimConfig::quick());
        assert!(report.totals.tuples_completed > 0);
    }

    #[test]
    #[should_panic(expected = "different topology")]
    fn mismatched_assignment_rejected() {
        let cluster = emulab(1, 2);
        let t = linear_topology("t", 1, ExecutionProfile::default(), 10.0, 64.0);
        let other = linear_topology("other", 1, ExecutionProfile::default(), 10.0, 64.0);
        let mut state = GlobalState::new(&cluster);
        let a = RStormScheduler::new()
            .schedule(&other, &cluster, &mut state)
            .unwrap();
        let mut sim = Simulation::new(cluster, SimConfig::quick());
        sim.add_topology(&t, &a);
    }

    #[test]
    #[should_panic(expected = "at least one topology")]
    fn empty_simulation_rejected() {
        let cluster = emulab(1, 1);
        Simulation::new(cluster, SimConfig::quick()).run();
    }

    // ---- fault injection ----

    fn assigned(topology: &Topology, cluster: &Cluster) -> Assignment {
        let mut state = GlobalState::new(cluster);
        RStormScheduler::new()
            .schedule(topology, cluster, &mut state)
            .unwrap()
    }

    fn run_faulted(
        topology: &Topology,
        cluster: &Cluster,
        assignment: &Assignment,
        plan: FaultPlan,
    ) -> SimReport {
        let mut sim = Simulation::new(cluster.clone(), SimConfig::quick());
        sim.add_topology(topology, assignment);
        sim.set_fault_plan(plan);
        sim.run()
    }

    /// A node of the assignment that hosts tasks (R-Storm colocates, so
    /// crashing an arbitrary node could miss the topology entirely).
    fn host_of(assignment: &Assignment) -> String {
        let host = assignment.iter().next().unwrap().1.node.as_str().to_owned();
        host
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::new(0.1, 1.0, 100), 20.0, 128.0);
        let a = assigned(&t, &cluster);
        let plain = run_with(&RStormScheduler::new(), &t, &cluster, SimConfig::quick());
        let faulted = run_faulted(&t, &cluster, &a, FaultPlan::new());
        assert_eq!(plain, faulted, "an empty plan is bit-identical");
        assert_eq!(faulted.totals.tuples_lost, 0);
    }

    #[test]
    fn node_crash_destroys_tuples_and_halts_its_tasks() {
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::new(0.1, 1.0, 100), 20.0, 128.0);
        let a = assigned(&t, &cluster);
        let victim = host_of(&a);
        let healthy = run_faulted(&t, &cluster, &a, FaultPlan::new());
        let crashed = run_faulted(
            &t,
            &cluster,
            &a,
            FaultPlan::new().crash_node(20_000.0, &victim),
        );
        assert!(crashed.totals.tuples_lost > 0, "queued work was destroyed");
        assert!(
            crashed.totals.roots_timed_out > healthy.totals.roots_timed_out,
            "in-flight trees fail through the timeout path"
        );
        assert!(
            crashed.totals.tuples_completed < healthy.totals.tuples_completed,
            "the outage costs throughput"
        );
        // Every window after the crash (+ timeout drain) is dead if the
        // whole topology lived on the victim; at minimum the tail is no
        // better than healthy.
        let w = &crashed.throughput["t"].windows;
        assert!(
            *w.last().unwrap() <= *healthy.throughput["t"].windows.last().unwrap(),
            "no recovery was scheduled: {w:?}"
        );
    }

    #[test]
    fn node_recovery_restores_flow() {
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::new(0.1, 1.0, 100), 20.0, 128.0);
        let a = assigned(&t, &cluster);
        let victim = host_of(&a);
        let plan = FaultPlan::new()
            .crash_node(20_000.0, &victim)
            .recover_node(30_000.0, &victim);
        let report = run_faulted(&t, &cluster, &a, plan);
        let windows = &report.throughput["t"].windows;
        // Window 2 covers [20 s, 30 s): the outage. The final window runs
        // well after recovery plus the 30 s tuple-timeout drain... which
        // the quick 60 s horizon does not reach for timed-out roots, but
        // fresh spout emissions restart immediately at recovery.
        assert!(
            *windows.last().unwrap() > 0.0,
            "flow resumed after recovery: {windows:?}"
        );
        assert!(report.totals.tuples_lost > 0);
    }

    #[test]
    fn link_degradation_inflates_latency() {
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::new(0.1, 1.0, 100), 20.0, 128.0);
        // Spread the topology across nodes so batches actually cross the
        // degraded links.
        let mut state = GlobalState::new(&cluster);
        let a = EvenScheduler::new()
            .schedule(&t, &cluster, &mut state)
            .unwrap();
        let healthy = run_faulted(&t, &cluster, &a, FaultPlan::new());
        let degraded = run_faulted(
            &t,
            &cluster,
            &a,
            FaultPlan::new().degrade_links(0.0, 60_000.0, 25.0),
        );
        assert!(
            degraded.latency_ms.mean > healthy.latency_ms.mean,
            "degraded {} ms <= healthy {} ms",
            degraded.latency_ms.mean,
            healthy.latency_ms.mean
        );
        assert_eq!(degraded.totals.tuples_lost, 0, "latency, not loss");
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::new(0.1, 1.0, 100), 20.0, 128.0);
        let a = assigned(&t, &cluster);
        let victim = host_of(&a);
        let plan = FaultPlan::new()
            .crash_node(15_000.0, &victim)
            .recover_node(25_000.0, &victim)
            .degrade_links(30_000.0, 40_000.0, 10.0);
        let r1 = run_faulted(&t, &cluster, &a, plan.clone());
        let r2 = run_faulted(&t, &cluster, &a, plan);
        assert_eq!(r1, r2);
        assert_eq!(r1.to_json(), r2.to_json());
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn fault_plan_with_unknown_node_rejected() {
        let cluster = emulab(1, 2);
        let t = linear_topology("t", 1, ExecutionProfile::default(), 10.0, 64.0);
        let a = assigned(&t, &cluster);
        run_faulted(
            &t,
            &cluster,
            &a,
            FaultPlan::new().crash_node(1_000.0, "ghost"),
        );
    }

    #[test]
    #[should_panic(expected = "unknown rack")]
    fn fault_plan_with_unknown_rack_rejected() {
        let cluster = emulab(1, 2);
        let t = linear_topology("t", 1, ExecutionProfile::default(), 10.0, 64.0);
        let a = assigned(&t, &cluster);
        run_faulted(
            &t,
            &cluster,
            &a,
            FaultPlan::new().partition_rack(1_000.0, 2_000.0, "ghost-rack"),
        );
    }

    #[test]
    fn rack_partition_severs_cross_rack_traffic_then_heals() {
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::new(0.1, 1.0, 100), 20.0, 128.0);
        // Spread the pipeline across nodes (and racks) so batches really
        // cross the uplink the partition severs.
        let mut state = GlobalState::new(&cluster);
        let a = EvenScheduler::new()
            .schedule(&t, &cluster, &mut state)
            .unwrap();
        let healthy = run_faulted(&t, &cluster, &a, FaultPlan::new());
        assert!(
            healthy.inter_rack_mb > 0.0,
            "the spread placement must exercise the uplink"
        );
        let rack = cluster.racks()[0].as_str().to_owned();
        let partitioned = run_faulted(
            &t,
            &cluster,
            &a,
            FaultPlan::new().partition_rack(20_000.0, 35_000.0, &rack),
        );
        assert!(
            partitioned.totals.tuples_lost > 0,
            "cross-rack sends die during the window"
        );
        assert!(
            partitioned.totals.roots_timed_out > healthy.totals.roots_timed_out,
            "severed trees fail through the timeout path"
        );
        assert!(
            partitioned.inter_rack_mb < healthy.inter_rack_mb,
            "dropped sends consume no uplink capacity: {} vs {}",
            partitioned.inter_rack_mb,
            healthy.inter_rack_mb
        );
        // Flow resumes once the window closes (fresh emissions cross
        // again well before the horizon).
        let windows = &partitioned.throughput["t"].windows;
        assert!(
            *windows.last().unwrap() > 0.0,
            "flow resumed after the heal: {windows:?}"
        );
    }

    #[test]
    fn partition_of_an_untouched_rack_changes_nothing() {
        // R-Storm colocates this topology onto one rack; partitioning
        // the *other* rack severs no route the run ever takes, so the
        // report must stay bit-identical to the healthy one.
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::new(0.1, 1.0, 100), 20.0, 128.0);
        let a = assigned(&t, &cluster);
        let host = host_of(&a);
        let host_rack = cluster.rack_of(&host).unwrap().as_str().to_owned();
        let other = cluster
            .racks()
            .iter()
            .find(|r| r.as_str() != host_rack)
            .expect("a second rack exists")
            .as_str()
            .to_owned();
        let healthy = run_faulted(&t, &cluster, &a, FaultPlan::new());
        let partitioned = run_faulted(
            &t,
            &cluster,
            &a,
            FaultPlan::new().partition_rack(10_000.0, 50_000.0, &other),
        );
        assert_eq!(healthy, partitioned, "no exercised route was severed");
        assert_eq!(healthy.to_json(), partitioned.to_json());
    }

    #[test]
    fn flap_storm_loses_and_recovers_repeatedly() {
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::new(0.1, 1.0, 100), 20.0, 128.0);
        let a = assigned(&t, &cluster);
        let victim = host_of(&a);
        let flapped = run_faulted(
            &t,
            &cluster,
            &a,
            FaultPlan::new().flap_storm(15_000.0, &victim, 3, 2_000.0, 8_000.0),
        );
        assert!(flapped.totals.tuples_lost > 0, "each dip destroys work");
        let windows = &flapped.throughput["t"].windows;
        assert!(
            *windows.last().unwrap() > 0.0,
            "the storm ends healed: {windows:?}"
        );
    }

    #[test]
    fn stats_export_is_a_pure_observer() {
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::new(0.1, 1.0, 100), 20.0, 128.0);
        let a = assigned(&t, &cluster);
        let plain = run_faulted(&t, &cluster, &a, FaultPlan::new());

        let server = Arc::new(StatisticServer::new(SimConfig::quick().window_ms));
        let mut sim = Simulation::new(cluster.clone(), SimConfig::quick());
        sim.add_topology(&t, &a);
        sim.export_stats(server.clone(), 5_000.0);
        let exported = sim.run();

        assert_eq!(plain, exported, "the export hook never perturbs the run");
        // ... while the server really did see the workload.
        let elapsed = SimConfig::quick().sim_time_ms;
        for c in ["c0", "c1", "c2", "c3"] {
            assert!(
                server.observed_cpu_points("t", c, elapsed) > 0.0,
                "{c} observed busy time"
            );
        }
        assert!(server.component_total("t", "c1") > 0, "processed counted");
        assert!(
            server.component_emitted_total("t", "c0") > 0,
            "emits counted"
        );
    }

    #[test]
    fn migration_relocates_work_and_stays_deterministic() {
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::new(0.1, 1.0, 100), 20.0, 128.0);
        let a = assigned(&t, &cluster);

        // Move every task off the busiest node onto a node the
        // assignment does not use at all.
        let used = a.used_nodes();
        let from = host_of(&a);
        let dest = cluster
            .nodes()
            .iter()
            .map(|n| n.id().as_str().to_owned())
            .find(|n| !used.contains(&rstorm_cluster::NodeId::new(n.as_str())))
            .expect("an idle node exists");
        let moved: Vec<rstorm_topology::TaskId> = a.tasks_on_node(&from);
        assert!(!moved.is_empty());
        let mut slots: std::collections::BTreeMap<_, _> =
            a.iter().map(|(task, slot)| (task, slot.clone())).collect();
        for &task in &moved {
            slots.insert(task, WorkerSlot::new(dest.as_str(), 6700));
        }
        let plan = MigrationPlan {
            topology: t.id().clone(),
            moves: moved
                .iter()
                .map(|&task| rstorm_core::MigrationMove {
                    task,
                    component: "c".to_owned(),
                    from: rstorm_cluster::NodeId::new(from.as_str()),
                    to: rstorm_cluster::NodeId::new(dest.as_str()),
                })
                .collect(),
            updated: Assignment::new(t.id().clone(), slots),
        };

        let run = |plan: &MigrationPlan| {
            let mut sim = Simulation::new(cluster.clone(), SimConfig::quick());
            sim.add_topology(&t, &a);
            sim.schedule_migration(plan, 20_000.0, 500.0);
            sim.run()
        };
        let r1 = run(&plan);
        let r2 = run(&plan);
        assert_eq!(r1, r2, "migration runs are deterministic");

        // Work flows both before and after the cut-over, and the report's
        // placement-derived stats reflect the move.
        let plain = run_faulted(&t, &cluster, &a, FaultPlan::new());
        assert!(r1.totals.tuples_completed > 0);
        assert!(
            r1.used_nodes > plain.used_nodes,
            "the idle destination shows up as used: {} vs {}",
            r1.used_nodes,
            plain.used_nodes
        );
        assert!(
            r1.node_utilization
                .iter()
                .any(|(n, u)| *n == dest && *u > 0.0),
            "destination accrued busy time: {:?}",
            r1.node_utilization
        );
    }

    #[test]
    fn empty_migration_plan_is_bit_identical() {
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::new(0.1, 1.0, 100), 20.0, 128.0);
        let a = assigned(&t, &cluster);
        let plain = run_faulted(&t, &cluster, &a, FaultPlan::new());
        let empty = MigrationPlan {
            topology: t.id().clone(),
            moves: Vec::new(),
            updated: Assignment::new(t.id().clone(), std::collections::BTreeMap::new()),
        };
        let mut sim = Simulation::new(cluster.clone(), SimConfig::quick());
        sim.add_topology(&t, &a);
        sim.schedule_migration(&empty, 10_000.0, 500.0);
        let report = sim.run();
        assert_eq!(plain, report);
        // Even the event count matches: an empty plan schedules nothing.
        assert_eq!(plain.debug.events, report.debug.events);
    }

    #[test]
    fn migration_bookkeeping_is_move_order_insensitive() {
        // `apply_migration` keeps the membership lists sorted by global
        // task id, so a later crash/recover of a migration-touched node
        // must still produce identical results whatever order the moves
        // were listed in — the drain order never depends on move order.
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::new(0.1, 1.0, 100), 20.0, 128.0);
        let a = assigned(&t, &cluster);

        let used = a.used_nodes();
        let from = host_of(&a);
        let dest = cluster
            .nodes()
            .iter()
            .map(|n| n.id().as_str().to_owned())
            .find(|n| !used.contains(&rstorm_cluster::NodeId::new(n.as_str())))
            .expect("an idle node exists");
        let moved: Vec<rstorm_topology::TaskId> = a.tasks_on_node(&from);
        assert!(moved.len() >= 2, "need several moves to permute");
        let mut slots: std::collections::BTreeMap<_, _> =
            a.iter().map(|(task, slot)| (task, slot.clone())).collect();
        for &task in &moved {
            slots.insert(task, WorkerSlot::new(dest.as_str(), 6700));
        }
        let plan_with = |order: Vec<rstorm_topology::TaskId>| MigrationPlan {
            topology: t.id().clone(),
            moves: order
                .into_iter()
                .map(|task| rstorm_core::MigrationMove {
                    task,
                    component: "c".to_owned(),
                    from: rstorm_cluster::NodeId::new(from.as_str()),
                    to: rstorm_cluster::NodeId::new(dest.as_str()),
                })
                .collect(),
            updated: Assignment::new(t.id().clone(), slots.clone()),
        };
        let forward = plan_with(moved.clone());
        let reversed = plan_with(moved.iter().rev().copied().collect());

        // Crash the destination after the cut-over, then heal it: both
        // the drain and the spout re-kick iterate the perturbed list.
        let faults = FaultPlan::new()
            .crash_node(40_000.0, dest.as_str())
            .recover_node(50_000.0, dest.as_str());
        let run = |plan: &MigrationPlan| {
            let mut sim = Simulation::new(cluster.clone(), SimConfig::quick());
            sim.add_topology(&t, &a);
            sim.schedule_migration(plan, 20_000.0, 500.0);
            sim.set_fault_plan(faults.clone());
            sim.run()
        };
        let r_fwd = run(&forward);
        let r_rev = run(&reversed);
        assert_eq!(r_fwd, r_rev, "move order must not leak into the run");
        assert!(
            r_fwd.totals.tuples_lost > 0,
            "the post-migration crash actually destroyed work"
        );
    }

    #[test]
    fn incremental_routing_gate_is_bit_identical() {
        // The same migrated-and-crashed scenario, run once through the
        // patch path and once through the legacy full rebuild: every
        // observable — including the event count — must match, which is
        // what licenses the patch path as the default.
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::new(0.1, 1.0, 100), 20.0, 128.0);
        let a = assigned(&t, &cluster);
        let from = host_of(&a);
        let dest = cluster
            .nodes()
            .iter()
            .map(|n| n.id().as_str().to_owned())
            .find(|n| {
                !a.used_nodes()
                    .contains(&rstorm_cluster::NodeId::new(n.as_str()))
            })
            .expect("an idle node exists");
        let moved: Vec<rstorm_topology::TaskId> = a.tasks_on_node(&from);
        let mut slots: std::collections::BTreeMap<_, _> =
            a.iter().map(|(task, slot)| (task, slot.clone())).collect();
        for &task in &moved {
            slots.insert(task, WorkerSlot::new(dest.as_str(), 6700));
        }
        let plan = MigrationPlan {
            topology: t.id().clone(),
            moves: moved
                .iter()
                .map(|&task| rstorm_core::MigrationMove {
                    task,
                    component: "c".to_owned(),
                    from: rstorm_cluster::NodeId::new(from.as_str()),
                    to: rstorm_cluster::NodeId::new(dest.as_str()),
                })
                .collect(),
            updated: Assignment::new(t.id().clone(), slots),
        };
        let faults = FaultPlan::new()
            .crash_node(40_000.0, dest.as_str())
            .recover_node(50_000.0, dest.as_str());
        let run = |incremental: bool| {
            let mut sim = Simulation::new(
                cluster.clone(),
                SimConfig::quick().with_incremental_routing(incremental),
            );
            sim.add_topology(&t, &a);
            sim.schedule_migration(&plan, 20_000.0, 500.0);
            sim.set_fault_plan(faults.clone());
            sim.run()
        };
        let patched = run(true);
        let rebuilt = run(false);
        assert_eq!(patched, rebuilt, "the gate must not change any physics");
        assert_eq!(patched.debug.events, rebuilt.debug.events);
    }

    // ---- guaranteed processing (spout replay) -------------------------

    fn run_replay(
        topology: &Topology,
        cluster: &Cluster,
        assignment: &Assignment,
        plan: FaultPlan,
        max_replays: u32,
    ) -> SimReport {
        let mut sim = Simulation::new(
            cluster.clone(),
            SimConfig::quick().with_max_replays(max_replays),
        );
        sim.add_topology(topology, assignment);
        sim.set_fault_plan(plan);
        sim.run()
    }

    #[test]
    fn replay_mode_only_adds_counters_on_a_healthy_run() {
        // Without faults nothing ever fails, so enabling replay must not
        // change the physics — every legacy observable matches the
        // replay-disabled run; only the new admission counters appear.
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::new(0.1, 1.0, 100), 20.0, 128.0);
        let a = assigned(&t, &cluster);
        let off = run_faulted(&t, &cluster, &a, FaultPlan::new());
        let on = run_replay(&t, &cluster, &a, FaultPlan::new(), 3);
        assert_eq!(off.throughput, on.throughput);
        assert_eq!(off.latency_ms, on.latency_ms);
        assert_eq!(off.inter_rack_mb, on.inter_rack_mb);
        assert_eq!(off.totals.spout_batches, on.totals.spout_batches);
        assert_eq!(off.totals.roots_completed, on.totals.roots_completed);
        assert_eq!(off.totals.tuples_completed, on.totals.tuples_completed);
        assert_eq!(on.totals.roots_replayed, 0);
        assert_eq!(on.totals.roots_quarantined, 0);
        assert!(on.totals.roots_emitted > 0, "admissions are now counted");
        assert_eq!(on.zero_loss_ratio(), 1.0);
        // The disabled run keeps every replay counter at zero.
        assert_eq!(off.totals.roots_emitted, 0);
        assert_eq!(off.zero_loss_ratio(), 1.0, "vacuous without admissions");
    }

    #[test]
    fn replay_recovers_every_root_of_a_survivable_crash() {
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::new(0.1, 1.0, 100), 20.0, 128.0);
        let a = assigned(&t, &cluster);
        let victim = host_of(&a);
        let plan = FaultPlan::new()
            .crash_node(20_000.0, &victim)
            .recover_node(25_000.0, &victim);
        let dropped = run_faulted(&t, &cluster, &a, plan.clone());
        assert!(dropped.totals.tuples_lost > 0, "the outage destroys work");

        let replayed = run_replay(&t, &cluster, &a, plan, 8);
        assert!(replayed.totals.roots_replayed > 0, "failed roots re-emit");
        assert_eq!(
            replayed.totals.roots_quarantined, 0,
            "a healed outage never exhausts an 8-replay budget"
        );
        assert_eq!(replayed.tuples_quarantined(), 0);
        assert_eq!(
            replayed.totals.tuples_lost, 0,
            "replayed-then-acked roots retransmitted their lost tuples"
        );
        assert_eq!(replayed.zero_loss_ratio(), 1.0);
        // The drain invariant the engine debug-asserts, re-checked here
        // in release builds too: emitted == acked + quarantined + in_flight.
        let tot = &replayed.totals;
        assert_eq!(
            tot.roots_emitted,
            tot.roots_completed + tot.roots_quarantined + tot.roots_in_flight
        );
    }

    /// Places every task of `spout_component` on node 0 and everything
    /// else on node 1 — a hand-built split so a test can kill the bolt
    /// side while the spouts keep running.
    fn split_assignment(t: &Topology, cluster: &Cluster, spout_component: &str) -> Assignment {
        let spout_node = cluster.nodes()[0].id().as_str().to_owned();
        let bolt_node = cluster.nodes()[1].id().as_str().to_owned();
        let task_set = t.task_set();
        let spouts: std::collections::BTreeSet<_> =
            task_set.tasks_of(spout_component).iter().copied().collect();
        let slots = task_set
            .tasks()
            .iter()
            .map(|task| {
                let node = if spouts.contains(&task.id) {
                    spout_node.as_str()
                } else {
                    bolt_node.as_str()
                };
                (task.id, WorkerSlot::new(node, 6700))
            })
            .collect();
        Assignment::new(t.id().clone(), slots)
    }

    #[test]
    fn replay_budget_exhaustion_quarantines_poison_roots() {
        // Spread the stages so a mid-pipeline node can die while the
        // spouts stay alive: their replays then keep re-failing until the
        // budget runs out and the roots quarantine.
        let cluster = emulab(1, 2);
        let t = linear_topology("t", 2, ExecutionProfile::new(0.1, 1.0, 100), 20.0, 128.0);
        let a = split_assignment(&t, &cluster, "c0");
        let victim = cluster.nodes()[1].id().as_str().to_owned();
        let mut config = SimConfig::quick().with_max_replays(1);
        config.tuple_timeout_ms = 5_000.0; // fail fast enough to exhaust
        let mut sim = Simulation::new(cluster.clone(), config);
        sim.add_topology(&t, &a);
        sim.set_fault_plan(FaultPlan::new().crash_node(10_000.0, &victim));
        let report = sim.run();
        assert!(
            report.totals.roots_quarantined > 0,
            "an unhealed outage defeats a 1-replay budget: {:?}",
            report.totals
        );
        assert!(report.tuples_quarantined() > 0);
        assert!(report.zero_loss_ratio() < 1.0);
        let tot = &report.totals;
        assert_eq!(
            tot.roots_emitted,
            tot.roots_completed + tot.roots_quarantined + tot.roots_in_flight
        );
    }

    #[test]
    fn replays_ride_the_spout_pending_window() {
        // Backpressure, not amplification: replays spend the credit the
        // root took at first emission, so in-flight logical roots — fresh
        // and replayed together — never exceed max_pending per spout,
        // even while a dead sink fails every tree.
        let cluster = emulab(1, 2);
        let mut b = TopologyBuilder::new("bp");
        b.set_spout("src", 1)
            .set_profile(ExecutionProfile::new(0.01, 1.0, 100))
            .set_memory_load(64.0);
        b.set_bolt("sink", 1)
            .shuffle_grouping("src")
            .set_profile(ExecutionProfile::new(0.05, 0.0, 100).into_sink())
            .set_memory_load(64.0);
        let t = b.build().unwrap();
        let a = split_assignment(&t, &cluster, "src");
        let sink_node = cluster.nodes()[1].id().as_str().to_owned();
        let mut config = SimConfig::quick().with_max_replays(3);
        config.max_pending = 10;
        config.tuple_timeout_ms = 2_000.0;
        let mut sim = Simulation::new(cluster.clone(), config);
        sim.add_topology(&t, &a);
        sim.set_fault_plan(FaultPlan::new().crash_node(5_000.0, &sink_node));
        let report = sim.run();
        let tot = &report.totals;
        assert!(tot.roots_replayed > 0, "the dead sink forces replays");
        assert!(
            tot.roots_emitted <= tot.roots_completed + tot.roots_quarantined + 10,
            "fresh admissions stall until replays settle: {tot:?}"
        );
        assert_eq!(
            tot.roots_emitted,
            tot.roots_completed + tot.roots_quarantined + tot.roots_in_flight
        );
        assert!(tot.roots_in_flight <= 10, "window bounds in-flight roots");
    }

    #[test]
    fn replay_runs_are_deterministic() {
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::new(0.1, 1.0, 100), 20.0, 128.0);
        let a = assigned(&t, &cluster);
        let victim = host_of(&a);
        let plan = FaultPlan::new()
            .crash_node(20_000.0, &victim)
            .recover_node(25_000.0, &victim);
        let r1 = run_replay(&t, &cluster, &a, plan.clone(), 4);
        let r2 = run_replay(&t, &cluster, &a, plan, 4);
        assert_eq!(r1, r2, "same plan, same seed, same bits");
        assert_eq!(r1.to_json(), r2.to_json());
        assert!(r1.to_json().contains("\"roots_replayed\""));
    }

    // ---- checked invariants (the fuzzer's oracle mode) -----------------

    /// The quarantine scenario of
    /// `replay_budget_exhaustion_quarantines_poison_roots`, runnable with
    /// invariant checking and/or the planted accounting bug.
    fn quarantine_run(check: bool, planted: bool) -> CheckedReport {
        let cluster = emulab(1, 2);
        let t = linear_topology("t", 2, ExecutionProfile::new(0.1, 1.0, 100), 20.0, 128.0);
        let a = split_assignment(&t, &cluster, "c0");
        let victim = cluster.nodes()[1].id().as_str().to_owned();
        let mut config = SimConfig::quick()
            .with_max_replays(1)
            .with_check_invariants(check)
            .with_planted_quarantine_bug(planted);
        config.tuple_timeout_ms = 5_000.0;
        let mut sim = Simulation::new(cluster.clone(), config);
        sim.add_topology(&t, &a);
        sim.set_fault_plan(FaultPlan::new().crash_node(10_000.0, &victim));
        sim.run_checked()
    }

    #[test]
    fn checked_run_is_clean_and_bit_identical() {
        let unchecked = quarantine_run(false, false);
        let checked = quarantine_run(true, false);
        assert!(
            unchecked.violations.is_empty(),
            "checking off never collects"
        );
        assert!(
            checked.violations.is_empty(),
            "a correct engine has nothing to report: {:?}",
            checked.violations
        );
        assert_eq!(
            unchecked.report, checked.report,
            "checking only observes, never perturbs"
        );
        assert_eq!(unchecked.report.to_json(), checked.report.to_json());
        assert!(
            checked.report.totals.roots_quarantined > 0,
            "the scenario really exercises the quarantine path"
        );
    }

    #[test]
    fn planted_quarantine_bug_trips_the_drain_invariant() {
        let broken = quarantine_run(true, true);
        assert!(
            broken
                .violations
                .iter()
                .any(|v| v.kind() == "drain_imbalance"),
            "the planted bug must surface as a typed violation: {:?}",
            broken.violations
        );
    }

    // ---- fair-share network plane --------------------------------------

    /// An even (spread) placement of a network-bound pipeline: the
    /// traffic pattern that actually exercises NICs and trunks.
    fn spread_net_assignment(topology: &Topology, cluster: &Cluster) -> Assignment {
        let mut state = GlobalState::new(cluster);
        EvenScheduler::new()
            .schedule(topology, cluster, &mut state)
            .unwrap()
    }

    fn run_faulted_with(
        topology: &Topology,
        cluster: &Cluster,
        assignment: &Assignment,
        plan: FaultPlan,
        config: SimConfig,
    ) -> SimReport {
        let mut sim = Simulation::new(cluster.clone(), config);
        sim.add_topology(topology, assignment);
        sim.set_fault_plan(plan);
        sim.run()
    }

    #[test]
    fn network_gate_default_is_bit_identical_to_explicit_legacy() {
        // `network_model` defaults to Legacy; spelling it out must change
        // nothing, down to the engine's event count — the same license
        // the replay and incremental-routing gates carry.
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::network_bound(400), 15.0, 128.0);
        let a = spread_net_assignment(&t, &cluster);
        let default_run = run_faulted(&t, &cluster, &a, FaultPlan::new());
        let explicit = run_faulted_with(
            &t,
            &cluster,
            &a,
            FaultPlan::new(),
            SimConfig::quick().with_network_model(NetworkModel::Legacy),
        );
        assert_eq!(default_run, explicit);
        assert_eq!(default_run.to_json(), explicit.to_json());
        assert_eq!(default_run.debug.events, explicit.debug.events);
        assert!(default_run.network.is_none(), "legacy exports no telemetry");
    }

    #[test]
    fn fair_plane_delivers_tuples_and_exports_link_telemetry() {
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::network_bound(400), 15.0, 128.0);
        let a = spread_net_assignment(&t, &cluster);
        let mut fair = SimConfig::quick().with_network_model(NetworkModel::Fair);
        fair.max_pending = 8; // bound concurrent flows; debug builds stay fast
        let r = run_faulted_with(&t, &cluster, &a, FaultPlan::new(), fair.clone());
        assert!(r.throughput["t"].steady_state(1).mean > 0.0);
        assert_eq!(r.totals.tuples_lost, 0, "a healthy fair run loses nothing");
        let net = r.network.as_ref().expect("fair runs export telemetry");
        // 6 NIC pairs + 2 trunk pairs + core for emulab(2, 3).
        assert_eq!(net.links.len(), 2 * 6 + 2 * 2 + 1);
        assert!(net.links.iter().any(|l| l.link.ends_with(".uplink")));
        assert!(
            net.links
                .iter()
                .filter(|l| l.link.ends_with(".uplink"))
                .any(|l| l.mb_carried > 0.0),
            "the spread placement pushes traffic through a trunk"
        );
        assert_eq!(net.trunk_utilization().len(), 2, "one entry per rack");
        assert!(
            r.inter_rack_mb > 0.0,
            "trunk bytes feed the inter_rack_mb metric"
        );
        // Determinism: the fair plane is driven by the same event queue.
        let r2 = run_faulted_with(&t, &cluster, &a, FaultPlan::new(), fair);
        assert_eq!(r, r2);
        assert_eq!(r.to_json(), r2.to_json());
    }

    #[test]
    fn fair_degradation_throttles_capacity_not_just_latency() {
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::network_bound(400), 15.0, 128.0);
        let a = spread_net_assignment(&t, &cluster);
        let mut fair = SimConfig::quick().with_network_model(NetworkModel::Fair);
        fair.max_pending = 8;
        let healthy = run_faulted_with(&t, &cluster, &a, FaultPlan::new(), fair.clone());
        // extra = 400 ms → capacity factor 0.2 for the whole run.
        let degraded = run_faulted_with(
            &t,
            &cluster,
            &a,
            FaultPlan::new().degrade_links(0.0, 60_000.0, 400.0),
            fair,
        );
        assert!(
            degraded.totals.tuples_completed < healthy.totals.tuples_completed,
            "a 5x capacity cut costs throughput: {} vs {}",
            degraded.totals.tuples_completed,
            healthy.totals.tuples_completed
        );
        assert_eq!(degraded.totals.tuples_lost, 0, "congestion, not loss");
    }

    #[test]
    fn fair_partition_severs_flows_mid_transfer_then_heals() {
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::network_bound(400), 15.0, 128.0);
        let a = spread_net_assignment(&t, &cluster);
        let mut fair = SimConfig::quick().with_network_model(NetworkModel::Fair);
        fair.max_pending = 8;
        let healthy = run_faulted_with(&t, &cluster, &a, FaultPlan::new(), fair.clone());
        assert!(healthy.inter_rack_mb > 0.0, "the trunk is exercised");
        let rack = cluster.racks()[0].as_str().to_owned();
        let partitioned = run_faulted_with(
            &t,
            &cluster,
            &a,
            FaultPlan::new().partition_rack(20_000.0, 35_000.0, &rack),
            fair,
        );
        assert!(
            partitioned.totals.tuples_lost > 0,
            "in-flight trunk flows are severed, not drained"
        );
        assert!(
            partitioned.totals.roots_timed_out > healthy.totals.roots_timed_out,
            "severed trees fail through the timeout path"
        );
        assert!(partitioned.inter_rack_mb < healthy.inter_rack_mb);
        let windows = &partitioned.throughput["t"].windows;
        assert!(
            *windows.last().unwrap() > 0.0,
            "flow resumed after the heal: {windows:?}"
        );
    }

    #[test]
    fn fair_colocation_beats_spreading_for_network_bound_work() {
        // The paper's Figure-8 argument at the network layer: under the
        // fair plane, R-Storm's proximity packing avoids the shared
        // trunks and NIC contention that an even spread pays for.
        let cluster = emulab(2, 6);
        let t = linear_topology("net", 6, ExecutionProfile::network_bound(400), 15.0, 128.0);
        let mut config = SimConfig::quick().with_network_model(NetworkModel::Fair);
        config.max_pending = 4;
        let r = run_with(&RStormScheduler::new(), &t, &cluster, config.clone());
        let e = run_with(&EvenScheduler::new(), &t, &cluster, config);
        let rt = r.throughput["net"].steady_state(2).mean;
        let et = e.throughput["net"].steady_state(2).mean;
        assert!(
            rt > et * 1.2,
            "proximity packing wins under contention: rstorm {rt} vs even {et}"
        );
        // The even spread pays in trunk traffic too.
        let trunk = |rep: &SimReport| {
            rep.network
                .as_ref()
                .unwrap()
                .links
                .iter()
                .filter(|l| l.link.ends_with(".uplink"))
                .map(|l| l.mb_carried)
                .sum::<f64>()
        };
        assert!(
            trunk(&e) > trunk(&r),
            "spreading crosses racks more: even {} MB vs rstorm {} MB",
            trunk(&e),
            trunk(&r)
        );
    }
}
