//! The discrete-event simulation engine.

use crate::build::{append_topology, ClusterIndex, SimTaskSpec};
use crate::config::SimConfig;
use crate::event::EventQueue;
use crate::report::{SimReport, SimTotals};
use crate::servers::{CpuServer, LinkServer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rstorm_cluster::{Cluster, PlacementRelation};
use rstorm_core::Assignment;
use rstorm_metrics::{CpuUtilizationTracker, StatisticServer};
use rstorm_topology::{StreamGrouping, Topology};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// A batch of tuples in flight, tagged with the root (spout emission) it
/// descends from for acking purposes.
#[derive(Debug, Clone, Copy)]
struct Batch {
    root: u64,
    tuples: u32,
}

#[derive(Debug)]
enum Ev {
    /// A spout task attempts to emit its next root batch.
    TrySpout(usize),
    /// A task finished the CPU work for a batch.
    WorkDone(usize, Batch),
    /// A batch arrives at a task's input queue.
    Deliver(usize, Batch),
    /// A root's tuple-tree timeout fired.
    RootTimeout(u64),
}

#[derive(Debug)]
struct RootState {
    pending: u32,
    born: f64,
    deadline: f64,
    spout: usize,
    failed: bool,
}

#[derive(Debug, Default)]
struct TaskRt {
    queue: VecDeque<Batch>,
    busy: bool,
    credits: u32,
    waiting_for_credit: bool,
    emit_acc: f64,
    /// Earliest time a rate-limited spout may emit its next root batch.
    next_emit_ms: f64,
}

/// A configured simulation of one cluster executing any number of
/// scheduled topologies. See the [crate docs](crate) for the model.
#[derive(Debug)]
pub struct Simulation {
    cluster: Cluster,
    config: SimConfig,
    index: ClusterIndex,
    specs: Vec<SimTaskSpec>,
    node_mem_demand: Vec<f64>,
    topologies: Vec<String>,
    stats: StatisticServer,
}

impl Simulation {
    /// Creates an empty simulation over `cluster`.
    pub fn new(cluster: Cluster, config: SimConfig) -> Self {
        let index = ClusterIndex::new(&cluster);
        let node_count = cluster.nodes().len();
        let stats = StatisticServer::new(config.window_ms);
        Self {
            cluster,
            config,
            index,
            specs: Vec::new(),
            node_mem_demand: vec![0.0; node_count],
            topologies: Vec::new(),
            stats,
        }
    }

    /// Adds a scheduled topology to the simulation.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is incomplete or references nodes not in
    /// the cluster (verify foreign plans with `rstorm_core::verify_plan`
    /// first).
    pub fn add_topology(&mut self, topology: &Topology, assignment: &Assignment) {
        assert_eq!(
            topology.id().as_str(),
            assignment.topology().as_str(),
            "assignment belongs to a different topology"
        );
        for sink in topology.sinks() {
            self.stats
                .declare_sink(topology.id().as_str(), sink.id().as_str());
        }
        append_topology(
            &mut self.specs,
            &mut self.node_mem_demand,
            &self.index,
            topology,
            assignment,
        );
        self.topologies.push(topology.id().as_str().to_owned());
    }

    /// Runs the simulation to completion and reports.
    ///
    /// # Panics
    ///
    /// Panics if no topology was added.
    pub fn run(self) -> SimReport {
        assert!(
            !self.specs.is_empty(),
            "add at least one topology before running"
        );
        Engine::new(self).run()
    }
}

/// Mutable engine state, split from `Simulation` so the borrow checker
/// lets us index tasks and servers independently.
struct Engine {
    cluster: Cluster,
    config: SimConfig,
    specs: Vec<SimTaskSpec>,
    topologies: Vec<String>,
    stats: StatisticServer,
    node_names: Vec<String>,

    queue: EventQueue<Ev>,
    cpus: Vec<CpuServer>,
    egress: Vec<LinkServer>,
    ingress: Vec<LinkServer>,
    uplink: LinkServer,
    tasks: Vec<TaskRt>,
    roots: HashMap<u64, RootState>,
    next_root: u64,
    rng: StdRng,
    totals: SimTotals,
    latency: LatencyAccumulator,
}

/// Streaming accumulator for completed-root latencies (the population is
/// far too large to retain).
#[derive(Debug, Default)]
struct LatencyAccumulator {
    count: usize,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl LatencyAccumulator {
    fn record(&mut self, latency_ms: f64) {
        if self.count == 0 {
            self.min = latency_ms;
            self.max = latency_ms;
        } else {
            self.min = self.min.min(latency_ms);
            self.max = self.max.max(latency_ms);
        }
        self.count += 1;
        self.sum += latency_ms;
        self.sum_sq += latency_ms * latency_ms;
    }

    fn summary(&self) -> rstorm_metrics::Summary {
        if self.count == 0 {
            return rstorm_metrics::Summary::of([]);
        }
        let n = self.count as f64;
        let mean = self.sum / n;
        let variance = (self.sum_sq / n - mean * mean).max(0.0);
        rstorm_metrics::Summary {
            count: self.count,
            mean,
            stddev: variance.sqrt(),
            min: self.min,
            max: self.max,
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("tasks", &self.tasks.len())
            .field("now", &self.queue.now())
            .finish_non_exhaustive()
    }
}

impl Engine {
    fn new(sim: Simulation) -> Self {
        let Simulation {
            cluster,
            config,
            index,
            specs,
            node_mem_demand,
            topologies,
            stats,
        } = sim;

        let costs = cluster.costs().clone();
        let cpus = index
            .cores
            .iter()
            .zip(&node_mem_demand)
            .zip(&index.memory_mb)
            .map(|((&cores, &demand), &capacity)| {
                let thrash = if demand > capacity && config.oom_thrash_factor < 1.0 {
                    // Over-committed memory: the node pages/crash-loops.
                    config.oom_thrash_factor
                } else {
                    1.0
                };
                CpuServer::new(cores, thrash)
            })
            .collect();
        let egress = (0..index.cores.len())
            .map(|_| LinkServer::from_mbps(costs.node_bandwidth_mbps))
            .collect();
        let ingress = (0..index.cores.len())
            .map(|_| LinkServer::from_mbps(costs.node_bandwidth_mbps))
            .collect();
        let uplink = LinkServer::from_mbps(costs.inter_rack_bandwidth_mbps);

        let tasks = specs
            .iter()
            .map(|s| TaskRt {
                credits: if s.is_spout {
                    s.max_spout_pending.unwrap_or(config.max_pending)
                } else {
                    0
                },
                ..TaskRt::default()
            })
            .collect();

        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            cluster,
            config,
            specs,
            topologies,
            stats,
            node_names: index.node_names,
            queue: EventQueue::new(),
            cpus,
            egress,
            ingress,
            uplink,
            tasks,
            roots: HashMap::new(),
            next_root: 0,
            rng,
            totals: SimTotals::default(),
            latency: LatencyAccumulator::default(),
        }
    }

    fn run(mut self) -> SimReport {
        for i in 0..self.specs.len() {
            if self.specs[i].is_spout {
                self.queue.schedule(0.0, Ev::TrySpout(i));
            }
        }

        while let Some((t, ev)) = self.queue.pop() {
            if t > self.config.sim_time_ms {
                break;
            }
            match ev {
                Ev::TrySpout(i) => self.try_spout(i),
                Ev::WorkDone(i, batch) => self.work_done(i, batch),
                Ev::Deliver(i, batch) => self.deliver(i, batch),
                Ev::RootTimeout(root) => self.root_timeout(root),
            }
        }

        self.report()
    }

    // ---- spout production --------------------------------------------

    fn try_spout(&mut self, i: usize) {
        if self.tasks[i].busy {
            return; // WorkDone will retry.
        }
        if self.tasks[i].credits == 0 {
            self.tasks[i].waiting_for_credit = true;
            return;
        }
        let now = self.queue.now();
        // A rate-limited source paces its emissions regardless of credit
        // availability (the stream arrives at its own rate).
        if let Some(rate) = self.specs[i].max_rate_tuples_per_sec {
            if now + 1e-9 < self.tasks[i].next_emit_ms {
                let at = self.tasks[i].next_emit_ms;
                self.queue.schedule(at, Ev::TrySpout(i));
                return;
            }
            let interval = f64::from(self.config.batch_tuples) / rate * 1000.0;
            let base = self.tasks[i].next_emit_ms.max(now);
            self.tasks[i].next_emit_ms = base + interval;
        }
        self.tasks[i].credits -= 1;
        let root = self.next_root;
        self.next_root += 1;
        let deadline = now + self.config.tuple_timeout_ms;
        self.roots.insert(
            root,
            RootState {
                pending: 1,
                born: now,
                deadline,
                spout: i,
                failed: false,
            },
        );
        self.queue.schedule(deadline, Ev::RootTimeout(root));

        let batch = Batch {
            root,
            tuples: self.config.batch_tuples,
        };
        let work = f64::from(batch.tuples) * self.specs[i].work_ms_per_tuple;
        let done = self.cpus[self.specs[i].node_idx].serve(now, i, work);
        self.tasks[i].busy = true;
        self.queue.schedule(done, Ev::WorkDone(i, batch));
    }

    // ---- work completion ---------------------------------------------

    fn work_done(&mut self, i: usize, batch: Batch) {
        let now = self.queue.now();
        let spec_is_spout = self.specs[i].is_spout;
        let spec_is_sink = self.specs[i].is_sink;

        if spec_is_spout {
            self.totals.spout_batches += 1;
            self.stats.record_emitted(
                &self.specs[i].topology,
                &self.specs[i].component,
                now,
                u64::from(batch.tuples),
            );
        } else {
            self.totals.tuples_processed += u64::from(batch.tuples);
        }

        if spec_is_sink {
            let alive = self
                .roots
                .get(&batch.root)
                .is_some_and(|r| !r.failed && now <= r.deadline);
            if alive {
                self.totals.tuples_completed += u64::from(batch.tuples);
                self.stats.record_processed(
                    &self.specs[i].topology,
                    &self.specs[i].component,
                    now,
                    u64::from(batch.tuples),
                );
            }
        } else if !spec_is_spout {
            self.stats.record_processed(
                &self.specs[i].topology,
                &self.specs[i].component,
                now,
                u64::from(batch.tuples),
            );
        }

        // Emission: anchor new copies on the root *before* releasing this
        // batch's own pending slot, so the root cannot complete early.
        if self.specs[i].emit_factor > 0.0 && !self.specs[i].consumers.is_empty() {
            self.tasks[i].emit_acc += self.specs[i].emit_factor;
            let n_out = self.tasks[i].emit_acc.floor() as u32;
            self.tasks[i].emit_acc -= f64::from(n_out);
            for _ in 0..n_out {
                self.emit(i, batch);
            }
        }

        self.finish_pending(batch.root);

        self.tasks[i].busy = false;
        if spec_is_spout {
            let now = self.queue.now();
            self.queue.schedule(now, Ev::TrySpout(i));
        } else if let Some(next) = self.tasks[i].queue.pop_front() {
            self.start_processing(i, next);
        }
    }

    fn start_processing(&mut self, i: usize, batch: Batch) {
        let now = self.queue.now();
        let work = f64::from(batch.tuples) * self.specs[i].work_ms_per_tuple;
        let done = self.cpus[self.specs[i].node_idx].serve(now, i, work);
        self.tasks[i].busy = true;
        self.queue.schedule(done, Ev::WorkDone(i, batch));
    }

    // ---- routing -------------------------------------------------------

    fn emit(&mut self, from: usize, batch: Batch) {
        let group_count = self.specs[from].consumers.len();
        for g in 0..group_count {
            let targets = self.pick_targets(from, g);
            for to in targets {
                self.transfer(from, to, batch);
            }
        }
    }

    fn pick_targets(&mut self, from: usize, group: usize) -> Vec<usize> {
        let group = &self.specs[from].consumers[group];
        let targets = &group.targets;
        debug_assert!(!targets.is_empty(), "validated topologies have tasks");
        match &group.grouping {
            StreamGrouping::Shuffle | StreamGrouping::Fields(_) => {
                // Fields grouping with uniformly distributed keys is
                // statistically identical to shuffle at this granularity.
                vec![targets[self.rng.gen_range(0..targets.len())]]
            }
            StreamGrouping::All => targets.clone(),
            StreamGrouping::Global => vec![targets[0]],
            StreamGrouping::LocalOrShuffle => {
                let from_slot = &self.specs[from].slot;
                let local: Vec<usize> = targets
                    .iter()
                    .copied()
                    .filter(|&t| self.specs[t].slot == *from_slot)
                    .collect();
                let pool = if local.is_empty() { targets } else { &local };
                vec![pool[self.rng.gen_range(0..pool.len())]]
            }
        }
    }

    fn transfer(&mut self, from: usize, to: usize, batch: Batch) {
        let now = self.queue.now();
        let costs = self.cluster.costs();
        let relation = relation_of(&self.specs[from], &self.specs[to]);
        let bytes = self.specs[from].tuple_bytes.saturating_mul(batch.tuples);
        let latency = costs.latency_ms(relation);

        let arrival = match relation {
            PlacementRelation::SameWorker | PlacementRelation::SameNode => now + latency,
            PlacementRelation::SameRack => {
                let t1 = self.egress[self.specs[from].node_idx].serve(now, bytes);
                let t2 = self.ingress[self.specs[to].node_idx].serve(t1, bytes);
                t2 + latency
            }
            PlacementRelation::InterRack => {
                let t1 = self.egress[self.specs[from].node_idx].serve(now, bytes);
                let t2 = self.uplink.serve(t1, bytes);
                let t3 = self.ingress[self.specs[to].node_idx].serve(t2, bytes);
                t3 + latency
            }
        };

        if let Some(root) = self.roots.get_mut(&batch.root) {
            root.pending += 1;
        }
        self.queue.schedule(arrival, Ev::Deliver(to, batch));
    }

    // ---- delivery ------------------------------------------------------

    fn deliver(&mut self, i: usize, batch: Batch) {
        self.totals.batches_delivered += 1;
        // Shed batches whose root already timed out: the real system's
        // queues would be drained of them by the replay mechanism, and
        // processing them would let queues grow without bound.
        let stale = self.roots.get(&batch.root).is_none_or(|r| r.failed);
        if stale {
            self.totals.batches_dropped += 1;
            self.finish_pending(batch.root);
            return;
        }
        if self.tasks[i].busy {
            self.tasks[i].queue.push_back(batch);
        } else {
            self.start_processing(i, batch);
        }
    }

    // ---- root lifecycle -------------------------------------------------

    /// Releases one pending slot of `root`, completing it if this was the
    /// last one.
    fn finish_pending(&mut self, root: u64) {
        let Some(state) = self.roots.get_mut(&root) else {
            return;
        };
        state.pending -= 1;
        if state.pending > 0 {
            return;
        }
        let failed = state.failed;
        let spout = state.spout;
        let born = state.born;
        self.roots.remove(&root);
        if !failed {
            self.totals.roots_completed += 1;
            self.latency.record(self.queue.now() - born);
            self.return_credit(spout);
        }
    }

    fn root_timeout(&mut self, root: u64) {
        let Some(state) = self.roots.get_mut(&root) else {
            return; // Completed before the deadline.
        };
        if state.failed {
            return;
        }
        state.failed = true;
        let spout = state.spout;
        self.totals.roots_timed_out += 1;
        // Storm replays the tuple: the credit returns to the spout even
        // though stale descendants may still be in flight.
        self.return_credit(spout);
    }

    fn return_credit(&mut self, spout: usize) {
        self.tasks[spout].credits += 1;
        if self.tasks[spout].waiting_for_credit {
            self.tasks[spout].waiting_for_credit = false;
            let now = self.queue.now();
            self.queue.schedule(now, Ev::TrySpout(spout));
        }
    }

    // ---- reporting ------------------------------------------------------

    fn report(self) -> SimReport {
        let elapsed = self.config.sim_time_ms;
        let mut tracker = CpuUtilizationTracker::new();
        for (i, cpu) in self.cpus.iter().enumerate() {
            tracker.register_node(self.node_names[i].clone(), cpu.cores());
            if cpu.busy_core_ms() > 0.0 {
                // Work committed past the horizon is clamped so that
                // utilization stays within physical capacity.
                let capacity = cpu.cores() * cpu.thrash() * elapsed;
                tracker.add_busy(&self.node_names[i], cpu.busy_core_ms().min(capacity));
            }
        }

        let mut throughput = std::collections::BTreeMap::new();
        let mut used_by_topology = std::collections::BTreeMap::new();
        for t in &self.topologies {
            throughput.insert(t.clone(), self.stats.topology_throughput(t, elapsed));
            let used: BTreeSet<String> = self
                .specs
                .iter()
                .filter(|s| &s.topology == t)
                .map(|s| s.slot.node.as_str().to_owned())
                .collect();
            used_by_topology.insert(t.clone(), used.len());
        }

        let node_utilization = tracker.used_node_utilizations(elapsed);
        SimReport {
            duration_ms: elapsed,
            window_ms: self.config.window_ms,
            throughput,
            mean_used_cpu_utilization: tracker.mean_used_utilization(elapsed),
            used_nodes: tracker.used_node_count(),
            used_nodes_by_topology: used_by_topology,
            node_utilization,
            inter_rack_mb: self.uplink.served_bytes() / 1e6,
            latency_ms: self.latency.summary(),
            totals: self.totals,
        }
    }
}

fn relation_of(a: &SimTaskSpec, b: &SimTaskSpec) -> PlacementRelation {
    if a.slot == b.slot {
        PlacementRelation::SameWorker
    } else if a.node_idx == b.node_idx {
        PlacementRelation::SameNode
    } else if a.rack_idx == b.rack_idx {
        PlacementRelation::SameRack
    } else {
        PlacementRelation::InterRack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstorm_cluster::{ClusterBuilder, ResourceCapacity};
    use rstorm_core::schedulers::EvenScheduler;
    use rstorm_core::{schedule_all, GlobalState, RStormScheduler, Scheduler};
    use rstorm_topology::{ExecutionProfile, TopologyBuilder};

    fn emulab(racks: u32, nodes: u32) -> Cluster {
        ClusterBuilder::new()
            .homogeneous_racks(racks, nodes, ResourceCapacity::emulab_node(), 4)
            .build()
            .unwrap()
    }

    fn linear_topology(
        name: &str,
        parallelism: u32,
        profile: ExecutionProfile,
        cpu: f64,
        mem: f64,
    ) -> Topology {
        let mut b = TopologyBuilder::new(name);
        b.set_spout("c0", parallelism)
            .set_profile(profile)
            .set_cpu_load(cpu)
            .set_memory_load(mem);
        for i in 1..4 {
            let p = if i == 3 { profile.into_sink() } else { profile };
            b.set_bolt(format!("c{i}"), parallelism)
                .shuffle_grouping(format!("c{}", i - 1))
                .set_profile(p)
                .set_cpu_load(cpu)
                .set_memory_load(mem);
        }
        b.build().unwrap()
    }

    fn run_with<S: Scheduler>(
        scheduler: &S,
        topology: &Topology,
        cluster: &Cluster,
        config: SimConfig,
    ) -> SimReport {
        let mut state = GlobalState::new(cluster);
        let assignment = scheduler.schedule(topology, cluster, &mut state).unwrap();
        let mut sim = Simulation::new(cluster.clone(), config);
        sim.add_topology(topology, &assignment);
        sim.run()
    }

    #[test]
    fn tuples_flow_end_to_end() {
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::new(0.1, 1.0, 100), 20.0, 128.0);
        let report = run_with(&RStormScheduler::new(), &t, &cluster, SimConfig::quick());
        let thr = &report.throughput["t"];
        assert!(
            thr.steady_state(1).mean > 0.0,
            "sink saw tuples: {:?}",
            thr.windows
        );
        assert!(report.totals.spout_batches > 0);
        assert!(report.totals.roots_completed > 0);
        assert!(report.totals.tuples_completed > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::new(0.1, 1.0, 100), 20.0, 128.0);
        let r1 = run_with(&RStormScheduler::new(), &t, &cluster, SimConfig::quick());
        let r2 = run_with(&RStormScheduler::new(), &t, &cluster, SimConfig::quick());
        assert_eq!(r1.throughput["t"].windows, r2.throughput["t"].windows);
        assert_eq!(r1.totals, r2.totals);
    }

    #[test]
    fn conservation_invariants() {
        let cluster = emulab(2, 3);
        let t = linear_topology("t", 2, ExecutionProfile::new(0.2, 1.0, 200), 20.0, 128.0);
        let report = run_with(&RStormScheduler::new(), &t, &cluster, SimConfig::quick());
        let totals = &report.totals;
        assert!(totals.roots_completed + totals.roots_timed_out <= totals.spout_batches);
        assert!(totals.tuples_completed <= totals.tuples_processed);
        assert!(totals.batches_dropped <= totals.batches_delivered);
    }

    #[test]
    fn backpressure_bounds_inflight_roots() {
        // A tiny, heavily CPU-bound sink limits end-to-end throughput;
        // max_pending must keep spout emission in check rather than let
        // it run at CPU speed.
        let cluster = emulab(1, 2);
        let mut b = TopologyBuilder::new("bp");
        b.set_spout("fast", 1)
            .set_profile(ExecutionProfile::new(0.01, 1.0, 100))
            .set_memory_load(64.0);
        b.set_bolt("slow-sink", 1)
            .shuffle_grouping("fast")
            .set_profile(ExecutionProfile::new(5.0, 0.0, 100))
            .set_memory_load(64.0);
        let t = b.build().unwrap();
        let mut config = SimConfig::quick();
        config.max_pending = 10;
        config.tuple_timeout_ms = 1e9; // no timeouts: pure backpressure
        let report = run_with(&RStormScheduler::new(), &t, &cluster, config);
        // The spout can only ever be max_pending roots ahead of the sink.
        assert!(
            report.totals.spout_batches <= report.totals.roots_completed + 10,
            "spout {} vs completed {}",
            report.totals.spout_batches,
            report.totals.roots_completed
        );
    }

    #[test]
    fn overload_causes_timeouts() {
        // One single-core node, CPU demand far beyond capacity, short
        // timeout: roots must start failing.
        let cluster = ClusterBuilder::new()
            .add_node("only", "r0", ResourceCapacity::emulab_node(), 4)
            .build()
            .unwrap();
        let mut b = TopologyBuilder::new("ovl");
        b.set_spout("s", 4)
            .set_profile(ExecutionProfile::new(1.0, 1.0, 100))
            .set_memory_load(64.0);
        b.set_bolt("heavy", 4)
            .shuffle_grouping("s")
            .set_profile(ExecutionProfile::new(50.0, 0.0, 100))
            .set_memory_load(64.0);
        let t = b.build().unwrap();
        let mut config = SimConfig::quick();
        config.tuple_timeout_ms = 2_000.0;
        let report = run_with(&EvenScheduler::new(), &t, &cluster, config);
        assert!(
            report.totals.roots_timed_out > 0,
            "expected timeouts under overload: {:?}",
            report.totals
        );
    }

    #[test]
    fn memory_overcommit_thrashes_node() {
        // 10 × 512 MB on a 2048 MB node → thrash; same workload on a big
        // node → healthy. The thrashing run must complete far fewer roots.
        let small = ClusterBuilder::new()
            .add_node("n", "r0", ResourceCapacity::new(400.0, 2048.0, 100.0), 4)
            .build()
            .unwrap();
        let big = ClusterBuilder::new()
            .add_node("n", "r0", ResourceCapacity::new(400.0, 65536.0, 100.0), 4)
            .build()
            .unwrap();
        let mut b = TopologyBuilder::new("mem");
        b.set_spout("s", 5)
            .set_profile(ExecutionProfile::new(0.5, 1.0, 100))
            .set_memory_load(512.0);
        b.set_bolt("k", 5)
            .shuffle_grouping("s")
            .set_profile(ExecutionProfile::new(0.5, 0.0, 100))
            .set_memory_load(512.0);
        let t = b.build().unwrap();
        let thrashed = run_with(&EvenScheduler::new(), &t, &small, SimConfig::quick());
        let healthy = run_with(&EvenScheduler::new(), &t, &big, SimConfig::quick());
        assert!(
            healthy.totals.roots_completed > 3 * thrashed.totals.roots_completed,
            "healthy {} vs thrashed {}",
            healthy.totals.roots_completed,
            thrashed.totals.roots_completed
        );
    }

    #[test]
    fn colocation_beats_spreading_for_network_bound_work() {
        // The core network-bound claim (Fig 8): with trivial per-tuple
        // work and fat tuples, R-Storm's colocated placement outperforms
        // the round-robin spread.
        let cluster = emulab(2, 6);
        let t = linear_topology("net", 6, ExecutionProfile::network_bound(400), 15.0, 128.0);
        // In-flight-limited regime (see the fig8 harness): placement
        // quality shows up as end-to-end latency.
        let mut config = SimConfig::quick();
        config.max_pending = 4;
        let rstorm = run_with(&RStormScheduler::new(), &t, &cluster, config.clone());
        let even = run_with(&EvenScheduler::new(), &t, &cluster, config);
        let r = rstorm.throughput["net"].steady_state(2).mean;
        let e = even.throughput["net"].steady_state(2).mean;
        assert!(
            r > e * 1.2,
            "R-Storm {r:.0} should clearly beat default {e:.0}"
        );
    }

    #[test]
    fn all_grouping_replicates_to_every_task() {
        // spout → bolt(all, p=3): every batch is processed three times.
        let cluster = emulab(1, 2);
        let mut b = TopologyBuilder::new("rep");
        b.set_spout("s", 1)
            .set_profile(ExecutionProfile::new(0.1, 1.0, 100))
            .set_memory_load(64.0);
        b.set_bolt("k", 3)
            .all_grouping("s")
            .set_profile(ExecutionProfile::new(0.05, 0.0, 100))
            .set_memory_load(64.0);
        let t = b.build().unwrap();
        let report = run_with(&RStormScheduler::new(), &t, &cluster, SimConfig::quick());
        let emitted = report.totals.spout_batches * 10; // 10 tuples/batch
        let processed = report.totals.tuples_processed;
        let ratio = processed as f64 / emitted as f64;
        assert!(
            (2.5..=3.0).contains(&ratio),
            "all-grouping fan-out should be ~3×, got {ratio:.2}"
        );
    }

    #[test]
    fn global_grouping_funnels_into_one_task() {
        // spout(p=2) → bolt(global, p=4): exactly one bolt task works, so
        // throughput is capped by a single task's service rate.
        let cluster = emulab(1, 4);
        let mut b = TopologyBuilder::new("glob");
        b.set_spout("s", 2)
            .set_profile(ExecutionProfile::new(0.05, 1.0, 100))
            .set_memory_load(64.0);
        b.set_bolt("k", 4)
            .global_grouping("s")
            .set_profile(ExecutionProfile::new(1.0, 0.0, 100))
            .set_memory_load(64.0);
        let t = b.build().unwrap();
        let report = run_with(&EvenScheduler::new(), &t, &cluster, SimConfig::quick());
        // One task at 1 ms/tuple can do at most 1000 tuples/s = 10 000
        // per window; with 4 tasks sharing it would be ~4×.
        let thr = report.steady_throughput("glob", 1);
        assert!(
            thr <= 10_500.0,
            "global grouping must serialize through one task, got {thr:.0}"
        );
        assert!(
            thr > 5_000.0,
            "but the single task should be busy: {thr:.0}"
        );
    }

    #[test]
    fn local_or_shuffle_prefers_the_local_task() {
        // Identical topologies, one shuffle and one local-or-shuffle;
        // under R-Storm's colocation the local variant keeps traffic in
        // the worker and completes faster.
        let make = |name: &str, local: bool| {
            let mut b = TopologyBuilder::new(name);
            b.set_max_spout_pending(4);
            b.set_spout("s", 4)
                .set_profile(ExecutionProfile::new(0.02, 1.0, 400))
                .set_cpu_load(20.0)
                .set_memory_load(64.0);
            let mut bolt = b.set_bolt("k", 4);
            if local {
                bolt.local_or_shuffle_grouping("s");
            } else {
                bolt.shuffle_grouping("s");
            }
            bolt.set_profile(ExecutionProfile::new(0.02, 0.0, 400))
                .set_cpu_load(20.0)
                .set_memory_load(64.0);
            b.build().unwrap()
        };
        let cluster = emulab(2, 6);
        let local = run_with(
            &RStormScheduler::new(),
            &make("local", true),
            &cluster,
            SimConfig::quick(),
        );
        let shuffled = run_with(
            &RStormScheduler::new(),
            &make("shuffled", false),
            &cluster,
            SimConfig::quick(),
        );
        assert!(
            local.latency_ms.mean < shuffled.latency_ms.mean,
            "local {:.3} ms vs shuffle {:.3} ms",
            local.latency_ms.mean,
            shuffled.latency_ms.mean
        );
    }

    #[test]
    fn colocated_placement_has_lower_latency() {
        let cluster = emulab(2, 6);
        let t = linear_topology("lat", 6, ExecutionProfile::network_bound(400), 15.0, 128.0);
        let mut config = SimConfig::quick();
        config.max_pending = 4;
        let rstorm = run_with(&RStormScheduler::new(), &t, &cluster, config.clone());
        let even = run_with(&EvenScheduler::new(), &t, &cluster, config);
        assert!(rstorm.latency_ms.count > 0 && even.latency_ms.count > 0);
        assert!(
            rstorm.latency_ms.mean < even.latency_ms.mean,
            "colocated {:.2} ms vs spread {:.2} ms",
            rstorm.latency_ms.mean,
            even.latency_ms.mean
        );
        // The throughput advantage IS the latency advantage in the
        // in-flight-limited regime (Little's law).
        assert!(rstorm.inter_rack_mb < even.inter_rack_mb);
    }

    #[test]
    fn multiple_topologies_share_the_cluster() {
        let cluster = emulab(2, 6);
        let t1 = linear_topology("a", 3, ExecutionProfile::new(0.2, 1.0, 100), 20.0, 128.0);
        let t2 = linear_topology("b", 3, ExecutionProfile::new(0.2, 1.0, 100), 20.0, 128.0);
        let plan = schedule_all(&RStormScheduler::new(), &[&t1, &t2], &cluster).unwrap();
        let mut sim = Simulation::new(cluster.clone(), SimConfig::quick());
        sim.add_topology(&t1, plan.assignment("a").unwrap());
        sim.add_topology(&t2, plan.assignment("b").unwrap());
        let report = sim.run();
        assert!(report.throughput["a"].steady_state(1).mean > 0.0);
        assert!(report.throughput["b"].steady_state(1).mean > 0.0);
        assert_eq!(report.used_nodes_by_topology.len(), 2);
    }

    #[test]
    #[should_panic(expected = "different topology")]
    fn mismatched_assignment_rejected() {
        let cluster = emulab(1, 2);
        let t = linear_topology("t", 1, ExecutionProfile::default(), 10.0, 64.0);
        let other = linear_topology("other", 1, ExecutionProfile::default(), 10.0, 64.0);
        let mut state = GlobalState::new(&cluster);
        let a = RStormScheduler::new()
            .schedule(&other, &cluster, &mut state)
            .unwrap();
        let mut sim = Simulation::new(cluster, SimConfig::quick());
        sim.add_topology(&t, &a);
    }

    #[test]
    #[should_panic(expected = "at least one topology")]
    fn empty_simulation_rejected() {
        let cluster = emulab(1, 1);
        Simulation::new(cluster, SimConfig::quick()).run();
    }
}
