//! Deterministic fault injection for the simulator.
//!
//! A [`FaultPlan`] is an explicit list of timed events — node crashes,
//! node recoveries, link degradations — that the fast engine injects into
//! its event queue alongside the workload's own events. The plan is plain
//! data: replaying the same plan against the same [`crate::SimConfig`]
//! (in particular the same seed) reproduces the run bit-for-bit, which is
//! what lets chaos scenarios be golden-tested like any other simulation.
//!
//! Crash semantics (see `crate::sim` for the implementation):
//!
//! * batches queued at, in flight toward, or being processed on a crashed
//!   node are **lost** — their tuple trees can no longer complete and
//!   fail through the ordinary tuple-timeout path, counted in
//!   [`crate::SimTotals::tuples_lost`];
//! * spouts on a crashed node stop emitting until the node recovers;
//! * while a link degradation is active, every same-rack and inter-rack
//!   transfer pays the extra latency on arrival.
//!
//! An **empty** plan leaves the engine's arithmetic untouched, so the
//! fast/reference parity guarantee is unchanged for fault-free runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One timed fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// The node's worker processes die at `at_ms`.
    NodeCrash {
        /// Simulation time of the crash in milliseconds.
        at_ms: f64,
        /// Cluster node id.
        node: String,
    },
    /// The node's workers come back at `at_ms` (spouts resume; bolts
    /// accept deliveries again).
    NodeRecover {
        /// Simulation time of the recovery in milliseconds.
        at_ms: f64,
        /// Cluster node id.
        node: String,
    },
    /// Every same-rack and inter-rack transfer arriving in
    /// `[at_ms, until_ms)` pays `extra_latency_ms` on top of its route
    /// latency.
    LinkDegrade {
        /// Start of the degradation window in milliseconds.
        at_ms: f64,
        /// End of the degradation window in milliseconds.
        until_ms: f64,
        /// Additional per-transfer latency in milliseconds.
        extra_latency_ms: f64,
    },
}

impl FaultEvent {
    fn at_ms(&self) -> f64 {
        match self {
            Self::NodeCrash { at_ms, .. }
            | Self::NodeRecover { at_ms, .. }
            | Self::LinkDegrade { at_ms, .. } => *at_ms,
        }
    }
}

/// A deterministic schedule of fault events (see the module docs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults; the engine behaves exactly as without
    /// fault support).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node crash at `at_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `at_ms` is not a finite non-negative time.
    pub fn crash_node(mut self, at_ms: f64, node: impl Into<String>) -> Self {
        assert!(at_ms.is_finite() && at_ms >= 0.0, "invalid fault time");
        self.events.push(FaultEvent::NodeCrash {
            at_ms,
            node: node.into(),
        });
        self
    }

    /// Adds a node recovery at `at_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `at_ms` is not a finite non-negative time.
    pub fn recover_node(mut self, at_ms: f64, node: impl Into<String>) -> Self {
        assert!(at_ms.is_finite() && at_ms >= 0.0, "invalid fault time");
        self.events.push(FaultEvent::NodeRecover {
            at_ms,
            node: node.into(),
        });
        self
    }

    /// Adds a link-degradation window `[at_ms, until_ms)` during which
    /// every non-local transfer pays `extra_latency_ms` extra.
    ///
    /// # Panics
    ///
    /// Panics on non-finite times, `until_ms <= at_ms`, or negative
    /// extra latency.
    pub fn degrade_links(mut self, at_ms: f64, until_ms: f64, extra_latency_ms: f64) -> Self {
        assert!(at_ms.is_finite() && at_ms >= 0.0, "invalid fault time");
        assert!(
            until_ms.is_finite() && until_ms > at_ms,
            "degradation window must end after it starts"
        );
        assert!(
            extra_latency_ms.is_finite() && extra_latency_ms >= 0.0,
            "extra latency must be a finite non-negative delay"
        );
        self.events.push(FaultEvent::LinkDegrade {
            at_ms,
            until_ms,
            extra_latency_ms,
        });
        self
    }

    /// Generates a crash/recover sequence deterministically from `seed`:
    /// `count` crashes against nodes drawn uniformly from `nodes`, at
    /// times uniform over `[start_ms, end_ms)`, each recovering
    /// `outage_ms` later. The same arguments always produce the same
    /// plan.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty or the time window is invalid.
    pub fn seeded_crashes(
        seed: u64,
        nodes: &[&str],
        count: usize,
        start_ms: f64,
        end_ms: f64,
        outage_ms: f64,
    ) -> Self {
        assert!(!nodes.is_empty(), "need at least one node to crash");
        assert!(
            start_ms.is_finite() && start_ms >= 0.0 && end_ms > start_ms,
            "invalid crash window"
        );
        assert!(
            outage_ms.is_finite() && outage_ms > 0.0,
            "outage must last a positive duration"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = Self::new();
        for _ in 0..count {
            let node = nodes[rng.gen_range(0..nodes.len())];
            let at = rng.gen_range(start_ms..end_ms);
            plan = plan.crash_node(at, node).recover_node(at + outage_ms, node);
        }
        plan
    }

    /// The events in insertion order. The engine orders them by time
    /// (ties by insertion order) when it schedules them.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The earliest event time, if any (useful for harnesses aligning
    /// measurement windows with the first fault).
    pub fn first_event_ms(&self) -> Option<f64> {
        self.events
            .iter()
            .map(FaultEvent::at_ms)
            .min_by(|a, b| a.partial_cmp(b).expect("fault times are finite"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_events() {
        let plan = FaultPlan::new()
            .crash_node(1_000.0, "n0")
            .recover_node(5_000.0, "n0")
            .degrade_links(2_000.0, 3_000.0, 4.0);
        assert_eq!(plan.events().len(), 3);
        assert!(!plan.is_empty());
        assert_eq!(plan.first_event_ms(), Some(1_000.0));
        assert_eq!(
            plan.events()[0],
            FaultEvent::NodeCrash {
                at_ms: 1_000.0,
                node: "n0".to_owned()
            }
        );
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let nodes = ["a", "b", "c"];
        let p1 = FaultPlan::seeded_crashes(7, &nodes, 4, 1_000.0, 50_000.0, 5_000.0);
        let p2 = FaultPlan::seeded_crashes(7, &nodes, 4, 1_000.0, 50_000.0, 5_000.0);
        assert_eq!(p1, p2);
        assert_eq!(p1.events().len(), 8, "each crash pairs with a recovery");
        let p3 = FaultPlan::seeded_crashes(8, &nodes, 4, 1_000.0, 50_000.0, 5_000.0);
        assert_ne!(p1, p3, "different seeds draw different schedules");
    }

    #[test]
    #[should_panic(expected = "window must end after")]
    fn inverted_degrade_window_rejected() {
        let _ = FaultPlan::new().degrade_links(5.0, 5.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid fault time")]
    fn negative_crash_time_rejected() {
        let _ = FaultPlan::new().crash_node(-1.0, "n");
    }
}
