//! Deterministic fault injection for the simulator.
//!
//! A [`FaultPlan`] is an explicit list of timed events — node crashes,
//! node recoveries, link degradations — that the fast engine injects into
//! its event queue alongside the workload's own events. The plan is plain
//! data: replaying the same plan against the same [`crate::SimConfig`]
//! (in particular the same seed) reproduces the run bit-for-bit, which is
//! what lets chaos scenarios be golden-tested like any other simulation.
//!
//! Crash semantics (see `crate::sim` for the implementation):
//!
//! * batches queued at, in flight toward, or being processed on a crashed
//!   node are **lost** — their tuple trees can no longer complete and
//!   fail through the ordinary tuple-timeout path, counted in
//!   [`crate::SimTotals::tuples_lost`];
//! * spouts on a crashed node stop emitting until the node recovers;
//! * while a link degradation is active, every same-rack and inter-rack
//!   transfer pays the extra latency on arrival.
//!
//! An **empty** plan leaves the engine's arithmetic untouched, so the
//! fast/reference parity guarantee is unchanged for fault-free runs.
//!
//! ## The fault vocabulary
//!
//! Beyond single crashes, plans compose richer failure shapes from the
//! same primitives:
//!
//! * [`FaultPlan::partition_rack`] isolates a whole rack for a window —
//!   every **inter-rack** transfer to or from the rack is dropped at send
//!   time, as if the far endpoint had crashed (intra-rack and local
//!   traffic keeps flowing). Control-plane harnesses model the matching
//!   heartbeat silence (see `crate::chaos::run_fault_plan_with`).
//! * [`FaultPlan::flap_storm`] expands into an alternating crash/recover
//!   train on one node — the scenario the recovery plane's trust
//!   hysteresis and churn limiter exist for.
//! * [`FaultPlan::crash_burst`] crashes a set of nodes at the same
//!   instant and recovers them together — correlated loss (a PDU or
//!   top-of-rack switch dying).
//! * [`FaultPlan::nimbus_crash`] and
//!   [`FaultPlan::lose_control_channel`] are **control-plane** atoms:
//!   the data-plane engine ignores them, while the control-plane
//!   harnesses in `crate::chaos` silence detection/rescheduling for the
//!   outage (Nimbus down, failing over to a successor on return) or
//!   drop heartbeat observations (channel loss, provoking false
//!   declarations).
//!
//! Plans round-trip through a line-oriented text form
//! ([`FaultPlan::to_text`] / [`FaultPlan::from_text`]) so the fuzz
//! plane's regression corpus under `tests/fuzz_corpus/` stays readable
//! and diffable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;

/// One timed fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// The node's worker processes die at `at_ms`.
    NodeCrash {
        /// Simulation time of the crash in milliseconds.
        at_ms: f64,
        /// Cluster node id.
        node: String,
    },
    /// The node's workers come back at `at_ms` (spouts resume; bolts
    /// accept deliveries again).
    NodeRecover {
        /// Simulation time of the recovery in milliseconds.
        at_ms: f64,
        /// Cluster node id.
        node: String,
    },
    /// Every same-rack and inter-rack transfer arriving in
    /// `[at_ms, until_ms)` pays `extra_latency_ms` on top of its route
    /// latency.
    LinkDegrade {
        /// Start of the degradation window in milliseconds.
        at_ms: f64,
        /// End of the degradation window in milliseconds.
        until_ms: f64,
        /// Additional per-transfer latency in milliseconds.
        extra_latency_ms: f64,
    },
    /// The rack is network-partitioned during `[at_ms, until_ms)`: every
    /// inter-rack transfer whose producer or consumer lives in `rack` is
    /// dropped at send time, exactly as if the destination had crashed
    /// (the tuple tree fails through the timeout path). Intra-rack and
    /// local traffic is unaffected, and transfers already in flight when
    /// the partition starts still arrive.
    RackPartition {
        /// Start of the partition window in milliseconds.
        at_ms: f64,
        /// End of the partition window in milliseconds.
        until_ms: f64,
        /// Cluster rack id.
        rack: String,
    },
    /// The control plane (Nimbus) is down during
    /// `[at_ms, at_ms + down_ms)`: no heartbeat is observed, no failure
    /// detected, no reschedule or recovery upgrade fires — while the
    /// data plane keeps running. At the first control tick after the
    /// window a successor reassumes, replaying the write-ahead journal
    /// when `RecoveryConfig::journal` is enabled and starting cold
    /// otherwise (see `rstorm_core::RecoveryManager::reassume`). A pure
    /// control-plane event: the data-plane engine ignores it.
    NimbusCrash {
        /// Start of the control outage in milliseconds.
        at_ms: f64,
        /// Length of the control outage in milliseconds.
        down_ms: f64,
    },
    /// The control channel drops every worker heartbeat during
    /// `[at_ms, until_ms)`: Nimbus stays up and keeps ticking, but no
    /// beat reaches it, so nodes *look* silent — a window longer than
    /// the detection window provokes false dead declarations the trust
    /// hysteresis must walk back once the channel heals. A pure
    /// control-plane event: the data-plane engine ignores it.
    ControlLoss {
        /// Start of the loss window in milliseconds.
        at_ms: f64,
        /// End of the loss window in milliseconds.
        until_ms: f64,
    },
}

impl FaultEvent {
    pub(crate) fn at_ms(&self) -> f64 {
        match self {
            Self::NodeCrash { at_ms, .. }
            | Self::NodeRecover { at_ms, .. }
            | Self::LinkDegrade { at_ms, .. }
            | Self::RackPartition { at_ms, .. }
            | Self::NimbusCrash { at_ms, .. }
            | Self::ControlLoss { at_ms, .. } => *at_ms,
        }
    }
}

/// A deterministic schedule of fault events (see the module docs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults; the engine behaves exactly as without
    /// fault support).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node crash at `at_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `at_ms` is not a finite non-negative time.
    pub fn crash_node(mut self, at_ms: f64, node: impl Into<String>) -> Self {
        assert!(at_ms.is_finite() && at_ms >= 0.0, "invalid fault time");
        self.events.push(FaultEvent::NodeCrash {
            at_ms,
            node: node.into(),
        });
        self
    }

    /// Adds a node recovery at `at_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `at_ms` is not a finite non-negative time.
    pub fn recover_node(mut self, at_ms: f64, node: impl Into<String>) -> Self {
        assert!(at_ms.is_finite() && at_ms >= 0.0, "invalid fault time");
        self.events.push(FaultEvent::NodeRecover {
            at_ms,
            node: node.into(),
        });
        self
    }

    /// Adds a link-degradation window `[at_ms, until_ms)` during which
    /// every non-local transfer pays `extra_latency_ms` extra.
    ///
    /// # Panics
    ///
    /// Panics on non-finite times, `until_ms <= at_ms`, or negative
    /// extra latency.
    pub fn degrade_links(mut self, at_ms: f64, until_ms: f64, extra_latency_ms: f64) -> Self {
        assert!(at_ms.is_finite() && at_ms >= 0.0, "invalid fault time");
        assert!(
            until_ms.is_finite() && until_ms > at_ms,
            "degradation window must end after it starts"
        );
        assert!(
            extra_latency_ms.is_finite() && extra_latency_ms >= 0.0,
            "extra latency must be a finite non-negative delay"
        );
        self.events.push(FaultEvent::LinkDegrade {
            at_ms,
            until_ms,
            extra_latency_ms,
        });
        self
    }

    /// Adds a rack partition over `[at_ms, until_ms)`: inter-rack
    /// transfers to or from `rack` are dropped at send time while the
    /// window is active (see [`FaultEvent::RackPartition`]).
    ///
    /// # Panics
    ///
    /// Panics on non-finite times or `until_ms <= at_ms`.
    pub fn partition_rack(mut self, at_ms: f64, until_ms: f64, rack: impl Into<String>) -> Self {
        assert!(at_ms.is_finite() && at_ms >= 0.0, "invalid fault time");
        assert!(
            until_ms.is_finite() && until_ms > at_ms,
            "partition window must end after it starts"
        );
        self.events.push(FaultEvent::RackPartition {
            at_ms,
            until_ms,
            rack: rack.into(),
        });
        self
    }

    /// Adds a control-plane (Nimbus) outage over
    /// `[at_ms, at_ms + down_ms)` — see [`FaultEvent::NimbusCrash`].
    ///
    /// # Panics
    ///
    /// Panics on a non-finite or negative start time, or a non-finite
    /// or non-positive duration.
    pub fn nimbus_crash(mut self, at_ms: f64, down_ms: f64) -> Self {
        assert!(at_ms.is_finite() && at_ms >= 0.0, "invalid fault time");
        assert!(
            down_ms.is_finite() && down_ms > 0.0,
            "control outage must last a positive duration"
        );
        self.events.push(FaultEvent::NimbusCrash { at_ms, down_ms });
        self
    }

    /// Adds a control-channel loss window `[at_ms, until_ms)` during
    /// which no worker heartbeat reaches Nimbus — see
    /// [`FaultEvent::ControlLoss`].
    ///
    /// # Panics
    ///
    /// Panics on non-finite times or `until_ms <= at_ms`.
    pub fn lose_control_channel(mut self, at_ms: f64, until_ms: f64) -> Self {
        assert!(at_ms.is_finite() && at_ms >= 0.0, "invalid fault time");
        assert!(
            until_ms.is_finite() && until_ms > at_ms,
            "control-loss window must end after it starts"
        );
        self.events
            .push(FaultEvent::ControlLoss { at_ms, until_ms });
        self
    }

    /// Adds a **flap storm**: `flaps` crash/recover cycles on `node`,
    /// the first crash at `first_at_ms`, each outage lasting `down_ms`
    /// and each recovery holding for `up_ms` before the next crash.
    /// Composed entirely from [`FaultEvent::NodeCrash`] /
    /// [`FaultEvent::NodeRecover`], so the engine needs no new
    /// machinery — the point is to stress the control plane's trust
    /// hysteresis and reschedule-churn limiter.
    ///
    /// # Panics
    ///
    /// Panics unless `flaps >= 1` and both durations are finite and
    /// positive.
    pub fn flap_storm(
        mut self,
        first_at_ms: f64,
        node: impl Into<String>,
        flaps: u32,
        down_ms: f64,
        up_ms: f64,
    ) -> Self {
        assert!(flaps >= 1, "a flap storm needs at least one cycle");
        assert!(
            down_ms.is_finite() && down_ms > 0.0 && up_ms.is_finite() && up_ms > 0.0,
            "flap durations must be finite and positive"
        );
        let node = node.into();
        let mut t = first_at_ms;
        for _ in 0..flaps {
            self = self
                .crash_node(t, node.clone())
                .recover_node(t + down_ms, node.clone());
            t += down_ms + up_ms;
        }
        self
    }

    /// Adds a **correlated crash burst**: every node in `nodes` crashes
    /// at `at_ms` and recovers together `outage_ms` later (a PDU or
    /// top-of-rack switch failure).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty or `outage_ms` is not finite positive.
    pub fn crash_burst<S: AsRef<str>>(mut self, at_ms: f64, nodes: &[S], outage_ms: f64) -> Self {
        assert!(!nodes.is_empty(), "a crash burst needs at least one node");
        assert!(
            outage_ms.is_finite() && outage_ms > 0.0,
            "outage must last a positive duration"
        );
        for node in nodes {
            self = self.crash_node(at_ms, node.as_ref());
        }
        for node in nodes {
            self = self.recover_node(at_ms + outage_ms, node.as_ref());
        }
        self
    }

    /// Generates a crash/recover sequence deterministically from `seed`:
    /// `count` crashes against nodes drawn uniformly from `nodes`, at
    /// times uniform over `[start_ms, end_ms)`, each recovering
    /// `outage_ms` later. The same arguments always produce the same
    /// plan.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty or the time window is invalid.
    pub fn seeded_crashes(
        seed: u64,
        nodes: &[&str],
        count: usize,
        start_ms: f64,
        end_ms: f64,
        outage_ms: f64,
    ) -> Self {
        assert!(!nodes.is_empty(), "need at least one node to crash");
        assert!(
            start_ms.is_finite() && start_ms >= 0.0 && end_ms > start_ms,
            "invalid crash window"
        );
        assert!(
            outage_ms.is_finite() && outage_ms > 0.0,
            "outage must last a positive duration"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = Self::new();
        for _ in 0..count {
            let node = nodes[rng.gen_range(0..nodes.len())];
            let at = rng.gen_range(start_ms..end_ms);
            plan = plan.crash_node(at, node).recover_node(at + outage_ms, node);
        }
        plan
    }

    /// The events in insertion order. The engine orders them by time
    /// (ties by insertion order) when it schedules them.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Rebuilds a plan from an explicit event vector — the shrinker's
    /// constructor. Events are taken as-is (they were validated when the
    /// parent plan was built, and the shrinker only drops events or
    /// tightens already-valid windows).
    pub(crate) fn from_event_vec(events: Vec<FaultEvent>) -> Self {
        Self { events }
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The earliest event time, if any (useful for harnesses aligning
    /// measurement windows with the first fault).
    pub fn first_event_ms(&self) -> Option<f64> {
        self.events
            .iter()
            .map(FaultEvent::at_ms)
            .min_by(|a, b| a.partial_cmp(b).expect("fault times are finite"))
    }

    /// Per-node outage windows `[crash, recover)` implied by the plan's
    /// crash/recover events, replaying them in engine order (time, ties
    /// by insertion) with the engine's idempotence — a crash while down
    /// or a recover while up is a no-op. An unhealed crash yields a
    /// window ending at `f64::INFINITY`.
    pub fn node_down_windows(&self) -> BTreeMap<&str, Vec<(f64, f64)>> {
        let mut ordered: Vec<(f64, usize)> = self
            .events
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                matches!(
                    e,
                    FaultEvent::NodeCrash { .. } | FaultEvent::NodeRecover { .. }
                )
            })
            .map(|(i, e)| (e.at_ms(), i))
            .collect();
        ordered.sort_by(|a, b| a.partial_cmp(b).expect("fault times are finite"));
        let mut windows: BTreeMap<&str, Vec<(f64, f64)>> = BTreeMap::new();
        let mut open: BTreeMap<&str, f64> = BTreeMap::new();
        for (at, i) in ordered {
            match &self.events[i] {
                FaultEvent::NodeCrash { node, .. } => {
                    open.entry(node.as_str()).or_insert(at);
                }
                FaultEvent::NodeRecover { node, .. } => {
                    if let Some(start) = open.remove(node.as_str()) {
                        windows.entry(node.as_str()).or_default().push((start, at));
                    }
                }
                _ => unreachable!("filtered to crash/recover above"),
            }
        }
        for (node, start) in open {
            windows
                .entry(node)
                .or_default()
                .push((start, f64::INFINITY));
        }
        windows
    }

    /// Control-plane outage windows `[at, at + down)` in insertion
    /// order.
    pub fn nimbus_down_windows(&self) -> Vec<(f64, f64)> {
        self.events
            .iter()
            .filter_map(|ev| match ev {
                FaultEvent::NimbusCrash { at_ms, down_ms } => Some((*at_ms, *at_ms + *down_ms)),
                _ => None,
            })
            .collect()
    }

    /// Control-channel loss windows `[at, until)` in insertion order.
    pub fn control_loss_windows(&self) -> Vec<(f64, f64)> {
        self.events
            .iter()
            .filter_map(|ev| match ev {
                FaultEvent::ControlLoss { at_ms, until_ms } => Some((*at_ms, *until_ms)),
                _ => None,
            })
            .collect()
    }

    /// True when the plan carries any control-plane event (Nimbus crash
    /// or control-channel loss).
    pub fn has_control_faults(&self) -> bool {
        self.events.iter().any(|ev| {
            matches!(
                ev,
                FaultEvent::NimbusCrash { .. } | FaultEvent::ControlLoss { .. }
            )
        })
    }

    /// Per-rack partition windows `[at, until)` in insertion order.
    pub fn rack_partition_windows(&self) -> BTreeMap<&str, Vec<(f64, f64)>> {
        let mut windows: BTreeMap<&str, Vec<(f64, f64)>> = BTreeMap::new();
        for ev in &self.events {
            if let FaultEvent::RackPartition {
                at_ms,
                until_ms,
                rack,
            } = ev
            {
                windows
                    .entry(rack.as_str())
                    .or_default()
                    .push((*at_ms, *until_ms));
            }
        }
        windows
    }

    /// Serializes the plan as one event per line — the regression-corpus
    /// format (`crash <at> <node>`, `recover <at> <node>`,
    /// `degrade <at> <until> <extra>`, `partition <at> <until> <rack>`,
    /// `nimbus <at> <down>`, `ctrl-loss <at> <until>`), with
    /// shortest-roundtrip floats so the text is byte-deterministic and
    /// [`FaultPlan::from_text`] reproduces the plan exactly.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            match ev {
                FaultEvent::NodeCrash { at_ms, node } => {
                    out.push_str(&format!("crash {at_ms:?} {node}\n"));
                }
                FaultEvent::NodeRecover { at_ms, node } => {
                    out.push_str(&format!("recover {at_ms:?} {node}\n"));
                }
                FaultEvent::LinkDegrade {
                    at_ms,
                    until_ms,
                    extra_latency_ms,
                } => {
                    out.push_str(&format!(
                        "degrade {at_ms:?} {until_ms:?} {extra_latency_ms:?}\n"
                    ));
                }
                FaultEvent::RackPartition {
                    at_ms,
                    until_ms,
                    rack,
                } => {
                    out.push_str(&format!("partition {at_ms:?} {until_ms:?} {rack}\n"));
                }
                FaultEvent::NimbusCrash { at_ms, down_ms } => {
                    out.push_str(&format!("nimbus {at_ms:?} {down_ms:?}\n"));
                }
                FaultEvent::ControlLoss { at_ms, until_ms } => {
                    out.push_str(&format!("ctrl-loss {at_ms:?} {until_ms:?}\n"));
                }
            }
        }
        out
    }

    /// Parses the [`FaultPlan::to_text`] format. Blank lines and lines
    /// starting with `#` are skipped, so corpus files can carry header
    /// comments.
    ///
    /// # Errors
    ///
    /// [`ParsePlanError`] names the offending 1-based line and what was
    /// wrong with it.
    pub fn from_text(text: &str) -> Result<Self, ParsePlanError> {
        let mut plan = Self::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut parts = trimmed.split_whitespace();
            let kind = parts.next().expect("non-empty after trim");
            let fields: Vec<&str> = parts.collect();
            let err = |message: String| ParsePlanError { line, message };
            let num = |raw: &str| -> Result<f64, ParsePlanError> {
                raw.parse::<f64>()
                    .ok()
                    .filter(|v| v.is_finite())
                    .ok_or_else(|| err(format!("`{raw}` is not a finite number")))
            };
            let time = |raw: &str| -> Result<f64, ParsePlanError> {
                let v = num(raw)?;
                if v < 0.0 {
                    return Err(err(format!("time `{raw}` is negative")));
                }
                Ok(v)
            };
            match kind {
                "crash" | "recover" => {
                    let [at, node] = fields[..] else {
                        return Err(err(format!("`{kind}` takes <at_ms> <node>")));
                    };
                    let at = time(at)?;
                    plan = if kind == "crash" {
                        plan.crash_node(at, node)
                    } else {
                        plan.recover_node(at, node)
                    };
                }
                "degrade" => {
                    let [at, until, extra] = fields[..] else {
                        return Err(err("`degrade` takes <at_ms> <until_ms> <extra_ms>".into()));
                    };
                    let (at, until, extra) = (time(at)?, time(until)?, time(extra)?);
                    if until <= at {
                        return Err(err("degradation window must end after it starts".into()));
                    }
                    plan = plan.degrade_links(at, until, extra);
                }
                "partition" => {
                    let [at, until, rack] = fields[..] else {
                        return Err(err("`partition` takes <at_ms> <until_ms> <rack>".into()));
                    };
                    let (at, until) = (time(at)?, time(until)?);
                    if until <= at {
                        return Err(err("partition window must end after it starts".into()));
                    }
                    plan = plan.partition_rack(at, until, rack);
                }
                "nimbus" => {
                    let [at, down] = fields[..] else {
                        return Err(err("`nimbus` takes <at_ms> <down_ms>".into()));
                    };
                    let (at, down) = (time(at)?, num(down)?);
                    if down <= 0.0 {
                        return Err(err("control outage must last a positive duration".into()));
                    }
                    plan = plan.nimbus_crash(at, down);
                }
                "ctrl-loss" => {
                    let [at, until] = fields[..] else {
                        return Err(err("`ctrl-loss` takes <at_ms> <until_ms>".into()));
                    };
                    let (at, until) = (time(at)?, time(until)?);
                    if until <= at {
                        return Err(err("control-loss window must end after it starts".into()));
                    }
                    plan = plan.lose_control_channel(at, until);
                }
                other => return Err(err(format!("unknown event kind `{other}`"))),
            }
        }
        Ok(plan)
    }
}

/// Why a textual fault plan was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePlanError {
    /// 1-based line of the offending event.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for ParsePlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParsePlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_events() {
        let plan = FaultPlan::new()
            .crash_node(1_000.0, "n0")
            .recover_node(5_000.0, "n0")
            .degrade_links(2_000.0, 3_000.0, 4.0);
        assert_eq!(plan.events().len(), 3);
        assert!(!plan.is_empty());
        assert_eq!(plan.first_event_ms(), Some(1_000.0));
        assert_eq!(
            plan.events()[0],
            FaultEvent::NodeCrash {
                at_ms: 1_000.0,
                node: "n0".to_owned()
            }
        );
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let nodes = ["a", "b", "c"];
        let p1 = FaultPlan::seeded_crashes(7, &nodes, 4, 1_000.0, 50_000.0, 5_000.0);
        let p2 = FaultPlan::seeded_crashes(7, &nodes, 4, 1_000.0, 50_000.0, 5_000.0);
        assert_eq!(p1, p2);
        assert_eq!(p1.events().len(), 8, "each crash pairs with a recovery");
        let p3 = FaultPlan::seeded_crashes(8, &nodes, 4, 1_000.0, 50_000.0, 5_000.0);
        assert_ne!(p1, p3, "different seeds draw different schedules");
    }

    #[test]
    #[should_panic(expected = "window must end after")]
    fn inverted_degrade_window_rejected() {
        let _ = FaultPlan::new().degrade_links(5.0, 5.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid fault time")]
    fn negative_crash_time_rejected() {
        let _ = FaultPlan::new().crash_node(-1.0, "n");
    }

    #[test]
    fn flap_storm_expands_to_alternating_pairs() {
        let plan = FaultPlan::new().flap_storm(1_000.0, "n0", 3, 500.0, 1_500.0);
        assert_eq!(plan.events().len(), 6);
        let windows = plan.node_down_windows();
        assert_eq!(
            windows["n0"],
            vec![(1_000.0, 1_500.0), (3_000.0, 3_500.0), (5_000.0, 5_500.0)]
        );
    }

    #[test]
    fn crash_burst_is_correlated() {
        let plan = FaultPlan::new().crash_burst(2_000.0, &["a", "b"], 1_000.0);
        let windows = plan.node_down_windows();
        assert_eq!(windows["a"], vec![(2_000.0, 3_000.0)]);
        assert_eq!(windows["b"], vec![(2_000.0, 3_000.0)]);
    }

    #[test]
    fn unhealed_crash_window_is_open_ended() {
        let plan = FaultPlan::new()
            .crash_node(1_000.0, "n0")
            .crash_node(4_000.0, "n0") // idempotent: already down
            .recover_node(500.0, "n1"); // idempotent: never crashed
        let windows = plan.node_down_windows();
        assert_eq!(windows["n0"], vec![(1_000.0, f64::INFINITY)]);
        assert!(!windows.contains_key("n1"));
    }

    #[test]
    fn partition_windows_are_tracked_per_rack() {
        let plan = FaultPlan::new()
            .partition_rack(5_000.0, 9_000.0, "rack-0")
            .partition_rack(20_000.0, 21_000.0, "rack-0")
            .partition_rack(1_000.0, 2_000.0, "rack-1");
        let windows = plan.rack_partition_windows();
        assert_eq!(
            windows["rack-0"],
            vec![(5_000.0, 9_000.0), (20_000.0, 21_000.0)]
        );
        assert_eq!(windows["rack-1"], vec![(1_000.0, 2_000.0)]);
        assert_eq!(plan.first_event_ms(), Some(1_000.0));
    }

    #[test]
    #[should_panic(expected = "partition window must end after")]
    fn inverted_partition_window_rejected() {
        let _ = FaultPlan::new().partition_rack(5.0, 5.0, "r");
    }

    #[test]
    fn text_round_trip_is_exact() {
        let plan = FaultPlan::new()
            .crash_node(1_000.5, "node-3")
            .recover_node(5_000.0, "node-3")
            .degrade_links(2_000.0, 3_000.0, 4.25)
            .partition_rack(10_000.0, 12_000.0, "rack-1")
            .nimbus_crash(15_000.0, 6_000.0)
            .lose_control_channel(25_000.0, 28_500.0);
        let text = plan.to_text();
        let parsed = FaultPlan::from_text(&text).unwrap();
        assert_eq!(parsed, plan);
        assert_eq!(parsed.to_text(), text, "serialization is a fixpoint");
    }

    #[test]
    fn control_plane_windows_are_tracked() {
        let plan = FaultPlan::new()
            .nimbus_crash(10_000.0, 5_000.0)
            .nimbus_crash(30_000.0, 2_000.0)
            .lose_control_channel(40_000.0, 44_000.0);
        assert!(plan.has_control_faults());
        assert_eq!(
            plan.nimbus_down_windows(),
            vec![(10_000.0, 15_000.0), (30_000.0, 32_000.0)]
        );
        assert_eq!(plan.control_loss_windows(), vec![(40_000.0, 44_000.0)]);
        // Control-plane atoms never register as data-plane outages.
        assert!(plan.node_down_windows().is_empty());
        let data_only = FaultPlan::new().crash_node(1.0, "n0");
        assert!(!data_only.has_control_faults());
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn zero_length_nimbus_outage_rejected() {
        let _ = FaultPlan::new().nimbus_crash(5.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "control-loss window must end after")]
    fn inverted_control_loss_window_rejected() {
        let _ = FaultPlan::new().lose_control_channel(5.0, 5.0);
    }

    #[test]
    fn text_parser_rejects_bad_control_events() {
        let err = FaultPlan::from_text("nimbus 10 0").unwrap_err();
        assert!(err.to_string().contains("positive duration"), "{err}");
        let err = FaultPlan::from_text("ctrl-loss 9 4").unwrap_err();
        assert!(err.to_string().contains("end after"), "{err}");
        let err = FaultPlan::from_text("nimbus 10").unwrap_err();
        assert!(err.to_string().contains("takes <at_ms> <down_ms>"), "{err}");
    }

    #[test]
    fn text_parser_skips_comments_and_rejects_garbage() {
        let ok = FaultPlan::from_text("# header\n\ncrash 10 n0\n").unwrap();
        assert_eq!(ok.events().len(), 1);
        let err = FaultPlan::from_text("crash ten n0").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("not a finite number"));
        let err = FaultPlan::from_text("crash 10 n0\nexplode 5 n1").unwrap_err();
        assert_eq!(err.line, 2);
        let err = FaultPlan::from_text("partition 9 4 r0").unwrap_err();
        assert!(err.to_string().contains("end after"), "{err}");
        let err = FaultPlan::from_text("crash -4 n0").unwrap_err();
        assert!(err.to_string().contains("negative"), "{err}");
    }
}
